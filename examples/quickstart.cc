/**
 * @file
 * Quickstart: the complete pipeline in ~60 lines.
 *
 *  1. Generate a small synthetic parallel application (traces).
 *  2. Statically analyze the per-thread traces.
 *  3. Build two placements: SHARE-REFS (sharing-based) and LOAD-BAL.
 *  4. Simulate both on a 4-processor multithreaded machine.
 *  5. Compare execution time and miss components.
 */

#include <cstdio>

#include "analysis/static_analysis.h"
#include "core/algorithms.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

int
main()
{
    using namespace tsp;

    // 1. A small application: 8 threads, 60%-shared references,
    //    moderately imbalanced thread lengths.
    workload::AppProfile app;
    app.name = "quickstart-app";
    app.threads = 8;
    app.meanLength = 100'000;
    app.lengthDevPct = 45.0;
    app.sharedRefFrac = 0.6;
    app.refsPerSharedAddr = 20.0;
    app.globalFrac = 0.8;
    app.neighborFrac = 0.2;
    app.globalWriteMode = workload::GlobalWriteMode::Migratory;
    app.seed = 2024;
    trace::TraceSet traces = workload::generateTraces(app);
    std::printf("generated %zu threads, %s instructions, %s data refs\n",
                traces.threadCount(),
                util::fmtCompact(static_cast<double>(
                    traces.totalInstructions())).c_str(),
                util::fmtCompact(static_cast<double>(
                    traces.totalMemRefs())).c_str());

    // 2. Static per-thread analysis (what a compiler could compute).
    auto analysis = analysis::StaticAnalysis::analyze(traces);
    std::printf("pairwise shared references (mean over pairs): %s\n",
                util::fmtCompact(
                    analysis.sharedRefs().pairSummary().mean())
                    .c_str());

    // 3. Two placements onto 4 processors.
    util::Rng rng(1);
    auto sharing = placement::place(placement::Algorithm::ShareRefs,
                                    analysis, 4, rng);
    auto loadBal = placement::place(placement::Algorithm::LoadBal,
                                    analysis, 4, rng);
    std::printf("SHARE-REFS placement: %s\n",
                sharing.describe().c_str());
    std::printf("LOAD-BAL   placement: %s\n",
                loadBal.describe().c_str());

    // 4. Simulate on a 4-processor, 2-contexts-per-processor machine.
    sim::SimConfig cfg;
    cfg.processors = 4;
    cfg.contexts = 2;
    cfg.cacheBytes = 32 * 1024;

    auto simShare = sim::simulate(cfg, traces, sharing);
    auto simLoad = sim::simulate(cfg, traces, loadBal);

    // 5. Compare.
    std::printf("\n%-12s %14s %12s %16s\n", "placement", "exec cycles",
                "miss rate", "comp+inval misses");
    auto report = [](const char *name, const sim::SimStats &s) {
        std::printf("%-12s %14s %12s %16s\n", name,
                    util::fmtThousands(static_cast<int64_t>(
                        s.executionTime())).c_str(),
                    util::fmtPercent(s.missRate()).c_str(),
                    util::fmtThousands(static_cast<int64_t>(
                        s.totalMissCount(sim::MissKind::Compulsory) +
                        s.totalMissCount(sim::MissKind::Invalidation)))
                        .c_str());
    };
    report("SHARE-REFS", simShare);
    report("LOAD-BAL", simLoad);

    std::printf("\nThe paper's finding in miniature: the sharing-based "
                "placement does not reduce the\ncompulsory+invalidation "
                "component, while load balancing reduces execution "
                "time.\n");
    return 0;
}
