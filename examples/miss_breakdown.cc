/**
 * @file
 * Miss breakdown: simulate one application at one machine point and
 * print the per-processor cycle and miss accounting — the simulator's
 * full observability surface (Figure 5's raw material, plus cycle
 * breakdowns the paper's processor unit maintains).
 *
 * Usage: miss_breakdown [app-name] [processors] [contexts]
 */

#include <cstdio>
#include <cstdlib>

#include "experiment/lab.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main(int argc, char **argv)
{
    using namespace tsp;

    workload::AppId app = argc > 1 ? workload::appByName(argv[1])
                                   : workload::AppId::MP3D;
    uint32_t procs = argc > 2
        ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
        : 4;
    experiment::Lab lab(workload::defaultScale());
    const auto &an = lab.analysis(app);
    uint32_t contexts = argc > 3
        ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
        : static_cast<uint32_t>(
              (an.threadCount() + procs - 1) / procs);

    experiment::MachinePoint point{procs, contexts};
    auto result =
        lab.run(app, placement::Algorithm::LoadBal, point);
    const auto &stats = result.stats;

    std::printf("%s on %s, LOAD-BAL placement\n",
                workload::appName(app).c_str(),
                lab.configFor(app, point).describe().c_str());
    std::printf("placement: %s\n\n", result.placement.describe().c_str());

    util::TextTable cycles("per-processor cycles");
    cycles.setHeader({"proc", "busy", "switch", "idle", "finish",
                      "utilization"});
    for (size_t p = 0; p < stats.procs.size(); ++p) {
        const auto &ps = stats.procs[p];
        double util = ps.finishTime
            ? static_cast<double>(ps.busyCycles) /
                  static_cast<double>(ps.finishTime)
            : 0.0;
        cycles.addRow({
            "P" + std::to_string(p),
            util::fmtThousands(static_cast<int64_t>(ps.busyCycles)),
            util::fmtThousands(static_cast<int64_t>(ps.switchCycles)),
            util::fmtThousands(static_cast<int64_t>(ps.idleCycles)),
            util::fmtThousands(static_cast<int64_t>(ps.finishTime)),
            util::fmtPercent(util, 1),
        });
    }
    cycles.print();

    util::TextTable misses("\nper-processor misses");
    misses.setHeader({"proc", "refs", "hits", "compulsory",
                      "intra-conf", "inter-conf", "invalidation",
                      "upgrades", "invals sent"});
    for (size_t p = 0; p < stats.procs.size(); ++p) {
        const auto &ps = stats.procs[p];
        misses.addRow({
            "P" + std::to_string(p),
            util::fmtThousands(static_cast<int64_t>(ps.memRefs)),
            util::fmtThousands(static_cast<int64_t>(ps.hits)),
            std::to_string(ps.missCount(sim::MissKind::Compulsory)),
            std::to_string(
                ps.missCount(sim::MissKind::IntraConflict)),
            std::to_string(
                ps.missCount(sim::MissKind::InterConflict)),
            std::to_string(
                ps.missCount(sim::MissKind::Invalidation)),
            std::to_string(ps.upgrades),
            std::to_string(ps.invalidationsSent),
        });
    }
    misses.print();

    std::printf("\nexecution time: %s cycles, overall miss rate %s\n",
                util::fmtThousands(static_cast<int64_t>(
                    stats.executionTime())).c_str(),
                util::fmtPercent(stats.missRate()).c_str());
    return 0;
}
