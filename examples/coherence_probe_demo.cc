/**
 * @file
 * Coherence probe demo: measure the thread-pair coherence traffic of
 * a suite application (Section 4.2's one-thread-per-processor run),
 * print the hottest pairs next to their static shared-reference
 * counts, and build the COHERENCE-TRAFFIC "oracle" placement from it.
 *
 * Usage: coherence_probe_demo [app-name]
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "experiment/lab.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main(int argc, char **argv)
{
    using namespace tsp;

    workload::AppId app = argc > 1 ? workload::appByName(argv[1])
                                   : workload::AppId::LocusRoute;
    experiment::Lab lab(workload::defaultScale());
    const auto &an = lab.analysis(app);
    const auto &dynamic = lab.coherenceMatrix(app);
    const auto &statics = an.sharedRefs();

    std::printf("coherence probe: %s, %zu threads, one per processor\n\n",
                workload::appName(app).c_str(), an.threadCount());

    // Rank thread pairs by measured coherence traffic.
    struct Pair { uint32_t a, b; double dyn, stat; };
    std::vector<Pair> pairs;
    for (uint32_t a = 0; a < an.threadCount(); ++a)
        for (uint32_t b = a + 1; b < an.threadCount(); ++b)
            pairs.push_back({a, b, dynamic.get(a, b),
                             statics.get(a, b)});
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair &x, const Pair &y) { return x.dyn > y.dyn; });

    util::TextTable table("hottest thread pairs (by measured traffic)");
    table.setHeader({"pair", "dynamic coherence events",
                     "static shared refs", "static/dynamic"});
    for (size_t i = 0; i < pairs.size() && i < 10; ++i) {
        const auto &p = pairs[i];
        table.addRow({
            "(" + std::to_string(p.a) + "," + std::to_string(p.b) + ")",
            util::fmtCompact(p.dyn),
            util::fmtCompact(p.stat),
            p.dyn > 0 ? util::fmtRatio(p.stat / p.dyn, 0) : "inf",
        });
    }
    table.print();

    // Build the oracle placement and compare against LOAD-BAL.
    experiment::MachinePoint point{
        4, static_cast<uint32_t>((an.threadCount() + 3) / 4)};
    auto oracle = lab.run(app, placement::Algorithm::CoherenceTraffic,
                          point);
    auto loadBal = lab.run(app, placement::Algorithm::LoadBal, point);
    std::printf("\nCOHERENCE-TRAFFIC placement: %s\n",
                oracle.placement.describe().c_str());
    std::printf("exec cycles: oracle %s vs LOAD-BAL %s (%s)\n",
                util::fmtThousands(static_cast<int64_t>(
                    oracle.executionTime)).c_str(),
                util::fmtThousands(static_cast<int64_t>(
                    loadBal.executionTime)).c_str(),
                util::fmtRatio(static_cast<double>(oracle.executionTime) /
                                   static_cast<double>(
                                       loadBal.executionTime),
                               2)
                    .c_str());
    std::printf("\nEven the best dynamically-informed sharing placement "
                "does not beat plain load balancing —\nthe paper's "
                "Section 4.2 conclusion.\n");
    return 0;
}
