/**
 * @file
 * Placement study: run every placement algorithm on one suite
 * application (default Pverify, overridable by argv[1]) across the
 * standard machine sweep, and report execution time, load imbalance
 * and sharing captured per processor — the workflow behind Figures
 * 2-4, on any application.
 *
 * Usage: placement_study [app-name] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "experiment/lab.h"
#include "experiment/studies.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main(int argc, char **argv)
{
    using namespace tsp;
    using placement::Algorithm;

    workload::AppId app = argc > 1
        ? workload::appByName(argv[1])
        : workload::AppId::Pverify;
    uint32_t scale = argc > 2
        ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
        : workload::defaultScale();

    experiment::Lab lab(scale);
    const auto &an = lab.analysis(app);
    std::printf("placement study: %s (%zu threads), scale 1/%u\n\n",
                workload::appName(app).c_str(), an.threadCount(),
                scale);

    for (const auto &point :
         experiment::standardSweep(
             static_cast<uint32_t>(an.threadCount()))) {
        util::TextTable table("machine: " + point.label());
        table.setHeader({"algorithm", "exec cycles", "vs RANDOM",
                         "load imbalance", "intra-cluster sharing"});
        auto random = lab.run(app, Algorithm::Random, point);
        for (Algorithm alg : placement::allAlgorithms()) {
            auto result = lab.run(app, alg, point);
            // Sharing captured inside clusters, as a fraction of all
            // pairwise shared references.
            double captured = 0.0;
            double total = an.sharedRefs().total();
            for (const auto &cluster : result.placement.clusters())
                captured += an.sharedRefs().withinSum(cluster);
            table.addRow({
                placement::algorithmName(alg),
                util::fmtThousands(static_cast<int64_t>(
                    result.executionTime)),
                util::fmtFixed(static_cast<double>(
                                   result.executionTime) /
                                   static_cast<double>(
                                       random.executionTime),
                               3),
                util::fmtFixed(result.loadImbalance, 3),
                total > 0.0 ? util::fmtPercent(captured / total)
                            : "n/a",
            });
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Note how 'vs RANDOM' tracks 'load imbalance', not "
                "'intra-cluster sharing' — the paper's conclusion.\n");
    return 0;
}
