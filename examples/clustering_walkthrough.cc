/**
 * @file
 * Clustering walkthrough: replays the paper's Section 2.1.1 worked
 * example (5 threads onto 2 processors) step by step, printing the
 * partition after every merge the SHARE-REFS engine accepts — the
 * same iterations Figure 1 illustrates, including the thread-balance
 * rejection in the final step.
 *
 * Thread numbering is 0-based here (paper threads 1..5 are 0..4).
 */

#include <cstdio>

#include "core/balance.h"
#include "core/clusterer.h"
#include "core/metrics.h"
#include "stats/pair_matrix.h"
#include "util/format.h"

int
main()
{
    using namespace tsp;
    using namespace tsp::placement;

    // Pairwise shared references shaped like Figure 1: threads 1 and
    // 2 (paper: 2 and 3) share most; 0 and 4 (paper: 1 and 5) next.
    stats::PairMatrix shared(5);
    shared.set(1, 2, 10.0);
    shared.set(0, 4, 8.0);
    shared.set(3, 4, 3.0);
    shared.set(0, 3, 2.0);
    shared.set(0, 1, 2.0);
    shared.set(0, 2, 2.0);
    shared.set(1, 3, 1.0);
    shared.set(2, 3, 1.0);
    shared.set(1, 4, 4.0);
    shared.set(2, 4, 4.0);

    std::printf("SHARE-REFS on 5 threads -> 2 processors "
                "(Section 2.1.1 example)\n\n");
    std::printf("pairwise shared-references matrix:\n      ");
    for (int j = 0; j < 5; ++j)
        std::printf("  t%d ", j);
    std::printf("\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("  t%d  ", i);
        for (int j = 0; j < 5; ++j)
            std::printf("%4.1f ", shared.get(i, j));
        std::printf("\n");
    }
    std::printf("\n");

    // The worked example's sharing-metric calculation: clusters {1,2}
    // and {3} (paper's {2,3} and {4}); the paper computes
    // (shared(2,4)+shared(3,4)) / (2*1).
    {
        ClusterSet cs(5);
        cs.merge(1, 2);
        double metric = pairAverage(shared, cs, 1, 2);
        std::printf("sharing-metric({t1,t2},{t3}) = (%.1f + %.1f) / "
                    "(2*1) = %.2f\n\n",
                    shared.get(1, 3), shared.get(2, 3), metric);
    }

    CoherenceTrafficMetric metric(shared);  // score = given matrix
    ThreadBalanceConstraint constraint(5, 2);
    GreedyClusterer engine(metric, constraint);

    int iteration = 0;
    engine.onMerge([&](const ClusterSet &cs, size_t, size_t,
                       MergeScore score) {
        std::printf("iteration %d: merged the pair with metric %.2f "
                    "-> partition now ",
                    ++iteration, score.primary);
        for (size_t c = 0; c < cs.clusterCount(); ++c) {
            std::printf("{");
            const auto &members = cs.members(c);
            for (size_t i = 0; i < members.size(); ++i)
                std::printf("%s%u", i ? "," : "", members[i]);
            std::printf("} ");
        }
        std::printf("\n");
    });

    PlacementMap map = engine.run(5, 2);
    std::printf("\nfinal placement: %s\n", map.describe().c_str());
    std::printf("thread balanced: %s\n",
                map.isThreadBalanced() ? "yes" : "no");
    std::printf("\nNote iteration 3: {t1,t2} + {t0,t4} had the top "
                "metric ((2+2+4+4)/4 = 3.00), but a 4-thread cluster "
                "violates thread balance (ceil(5/2) = 3), so the "
                "engine fell through to the next-best feasible pair "
                "({t0,t4} + {t3} at 2.50) — exactly the paper's "
                "step 3.\n");
    return 0;
}
