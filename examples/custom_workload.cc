/**
 * @file
 * Custom workload: build an application profile from scratch, sweep a
 * structural knob (how sequentially the threads share), and watch the
 * coherence traffic respond — a do-it-yourself version of the paper's
 * Section 4.2 investigation.
 *
 * The knob is refsPerSharedAddr: longer uninterrupted runs per shared
 * datum mean more sequential sharing, which is exactly what decouples
 * static sharing counts from runtime coherence traffic.
 */

#include <cstdio>

#include "analysis/static_analysis.h"
#include "sim/coherence_probe.h"
#include "trace/trace_io.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

int
main()
{
    using namespace tsp;

    util::TextTable table(
        "sequential sharing vs. runtime coherence traffic\n"
        "(fixed shared-reference volume; only run length varies)");
    table.setHeader({"refs/shared addr", "static shared refs",
                     "dynamic traffic", "dynamic % of refs",
                     "static/dynamic"});

    for (double runLength : {4.0, 16.0, 64.0, 256.0}) {
        workload::AppProfile p;
        p.name = "custom";
        p.threads = 12;
        p.meanLength = 80'000;
        p.sharedRefFrac = 0.6;
        p.refsPerSharedAddr = runLength;
        p.globalFrac = 1.0;
        p.globalWriteMode = workload::GlobalWriteMode::Migratory;
        p.seed = 31337;

        auto traces = workload::generateTraces(p);
        auto an = analysis::StaticAnalysis::analyze(traces);

        sim::SimConfig base;
        base.cacheBytes = 64 * 1024;
        auto probe = sim::measureCoherenceTraffic(traces, base);

        double staticTotal = an.sharedRefs().total();
        double dynTotal = static_cast<double>(
            probe.stats.dynamicSharingTraffic());
        table.addRow({
            util::fmtFixed(runLength, 0),
            util::fmtCompact(staticTotal),
            util::fmtCompact(dynTotal),
            util::fmtPercent(dynTotal /
                             static_cast<double>(an.totalRefs())),
            dynTotal > 0 ? util::fmtRatio(staticTotal / dynTotal, 0)
                         : "inf",
        });
    }
    table.print();

    // Bonus: persist a workload to disk and reload it, the
    // trace-driven workflow for experiments that share inputs.
    workload::AppProfile p;
    p.name = "saved";
    p.threads = 4;
    p.meanLength = 10'000;
    p.seed = 7;
    auto traces = workload::generateTraces(p);
    std::string path = "/tmp/tsp_custom_workload.tspt";
    trace::saveFile(traces, path);
    auto loaded = trace::loadFile(path);
    std::printf("\nsaved and reloaded '%s': %zu threads, %s "
                "instructions\n",
                loaded.name().c_str(), loaded.threadCount(),
                util::fmtCompact(static_cast<double>(
                    loaded.totalInstructions())).c_str());
    return 0;
}
