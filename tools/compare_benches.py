#!/usr/bin/env python3
"""Compare a Google-Benchmark JSON run against a recorded baseline.

Usage:
    tools/compare_benches.py BASELINE CURRENT [--threshold PCT]
                             [--advisory] [--out REPORT]
                             [--require PREFIX ...]

BASELINE is either the repo's BENCH_baseline.json (its top-level
"benchmarks" table) or a raw Google-Benchmark ``--benchmark_out`` JSON.
CURRENT is a raw Google-Benchmark JSON. Benchmarks present in both are
compared on throughput (items_per_second) when the baseline records it,
otherwise on real_time (lower is better).

Exit status 1 when any shared benchmark regresses by more than the
threshold (default 10%), unless --advisory is given: then the
comparison table is still printed (and written with --out) but the
exit status is always 0. Use --advisory on hardware that differs from
the machine the baseline was recorded on — absolute numbers only
transfer between identical hosts; see docs/performance.md for the
methodology (including why noisy-host runs need interleaved A/B
comparisons rather than this gate).

The comparison silently skips baseline entries absent from CURRENT (a
partial run is a valid way to gate a subset). --require PREFIX closes
that hole for benchmarks that must never drop out of a gated run: exit
status 2 if no compared benchmark name starts with PREFIX (repeatable).
"""

import argparse
import json
import sys


def load_baseline(path):
    """Return {name: {"items_per_second": x | None, "real_time": y | None,
    "time_unit": u}} from either baseline format."""
    with open(path) as f:
        data = json.load(f)
    if isinstance(data.get("benchmarks"), dict):
        # Repo baseline format: already a name -> metrics table.
        return {
            name: {
                "items_per_second": row.get("items_per_second"),
                "real_time": row.get("real_time"),
                "time_unit": row.get("time_unit", "ns"),
            }
            for name, row in data["benchmarks"].items()
        }
    return extract_gbench(data)


def extract_gbench(data):
    """Flatten a raw Google-Benchmark JSON into the comparison table."""
    table = {}
    for row in data.get("benchmarks", []):
        if row.get("run_type") == "aggregate" and \
                row.get("aggregate_name") != "mean":
            continue
        name = row.get("run_name", row.get("name"))
        if name is None:
            continue
        # Keep the best (max throughput / min time) across repetitions:
        # on shared hardware the fastest repetition is the least
        # interfered-with estimate of the code's true cost.
        entry = table.setdefault(
            name,
            {"items_per_second": None, "real_time": None,
             "time_unit": row.get("time_unit", "ns")})
        ips = row.get("items_per_second")
        if ips is not None:
            entry["items_per_second"] = (
                ips if entry["items_per_second"] is None
                else max(entry["items_per_second"], ips))
        rt = row.get("real_time")
        if rt is not None:
            entry["real_time"] = (
                rt if entry["real_time"] is None
                else min(entry["real_time"], rt))
    return table


def compare(baseline, current, threshold_pct):
    """Yield (name, metric, base, cur, delta_pct, regressed) rows."""
    for name in sorted(baseline):
        if name not in current:
            continue
        base, cur = baseline[name], current[name]
        if base.get("items_per_second") and cur.get("items_per_second"):
            b, c = base["items_per_second"], cur["items_per_second"]
            delta = (c - b) / b * 100.0  # higher is better
            yield name, "items/s", b, c, delta, delta < -threshold_pct
        elif base.get("real_time") and cur.get("real_time"):
            b, c = base["real_time"], cur["real_time"]
            delta = (b - c) / b * 100.0  # lower is better; + == faster
            unit = "time(%s)" % base.get("time_unit", "ns")
            yield name, unit, b, c, delta, delta < -threshold_pct


def fmt(value, metric):
    if metric == "items/s":
        return "%.3fM" % (value / 1e6)
    return "%.3f" % value


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--advisory", action="store_true",
                    help="report but never fail (cross-machine runs)")
    ap.add_argument("--out", help="also write the report to this file")
    ap.add_argument("--require", action="append", default=[],
                    metavar="PREFIX",
                    help="fail unless a compared benchmark name starts "
                         "with PREFIX (repeatable)")
    args = ap.parse_args()

    baseline = load_baseline(args.baseline)
    with open(args.current) as f:
        current = extract_gbench(json.load(f))

    rows = list(compare(baseline, current, args.threshold))
    if not rows:
        print("error: no overlapping benchmarks between %s and %s"
              % (args.baseline, args.current), file=sys.stderr)
        return 2
    compared = [name for name, *_ in rows]
    for prefix in args.require:
        if not any(name.startswith(prefix) for name in compared):
            print("error: required benchmark '%s*' missing from the "
                  "comparison (not in both %s and %s)"
                  % (prefix, args.baseline, args.current),
                  file=sys.stderr)
            return 2

    lines = ["%-40s %10s %12s %12s %8s %s"
             % ("benchmark", "metric", "baseline", "current",
                "delta", "")]
    regressions = 0
    for name, metric, b, c, delta, regressed in rows:
        flag = ""
        if regressed:
            flag = "REGRESSION"
            regressions += 1
        elif delta > args.threshold:
            flag = "improved"
        lines.append("%-40s %10s %12s %12s %+7.1f%% %s"
                     % (name, metric, fmt(b, metric), fmt(c, metric),
                        delta, flag))
    lines.append("")
    lines.append("%d benchmark(s) compared, %d regression(s) beyond "
                 "%.0f%%%s" % (len(rows), regressions, args.threshold,
                               " [advisory]" if args.advisory else ""))
    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")

    if regressions and not args.advisory:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
