/**
 * @file
 * tsp_trace — trace workflow CLI.
 *
 *   tsp_trace gen <app|all> <file.tspt> [scale]   generate suite traces
 *   tsp_trace info <file.tspt>                    header + totals
 *   tsp_trace analyze <file.tspt>                 Table 2-style metrics
 *   tsp_trace dump <file.tspt> <thread> [count]   first events of a thread
 *
 * Traces use the TSPT binary format (trace/trace_io.h), so workloads
 * can be generated once and replayed across experiments — the
 * trace-driven workflow of the paper.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/characteristics.h"
#include "analysis/static_analysis.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "util/format.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generator.h"
#include "workload/suite.h"

namespace {

using namespace tsp;

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  tsp_trace gen <app|all> <file.tspt> [scale]\n"
                 "  tsp_trace info <file.tspt>\n"
                 "  tsp_trace analyze <file.tspt>\n"
                 "  tsp_trace dump <file.tspt> <thread> [count]\n"
                 "apps: ");
    for (workload::AppId app : workload::allApps())
        std::fprintf(stderr, "%s ", workload::appName(app).c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    std::string appName = argv[2];
    std::string path = argv[3];
    uint32_t scale = argc > 4
        ? util::parseUnsigned32(argv[4], "scale", 1)
        : workload::defaultScale();

    if (appName == "all") {
        for (workload::AppId app : workload::allApps()) {
            auto traces =
                workload::generateTraces(workload::profile(app), scale);
            std::string file = path + "/" + workload::appName(app) +
                               ".tspt";
            trace::saveFile(traces, file);
            std::printf("wrote %s (%s instructions)\n", file.c_str(),
                        util::fmtCompact(static_cast<double>(
                            traces.totalInstructions())).c_str());
        }
        return 0;
    }
    workload::AppId app = workload::appByName(appName);
    auto traces = workload::generateTraces(workload::profile(app),
                                           scale);
    trace::saveFile(traces, path);
    std::printf("wrote %s: %zu threads, %s instructions, %s data "
                "refs, scale 1/%u\n",
                path.c_str(), traces.threadCount(),
                util::fmtCompact(static_cast<double>(
                    traces.totalInstructions())).c_str(),
                util::fmtCompact(static_cast<double>(
                    traces.totalMemRefs())).c_str(),
                scale);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    auto traces = trace::loadFile(argv[2]);
    std::printf("application: %s\n", traces.name().c_str());
    std::printf("threads:     %zu\n", traces.threadCount());
    std::printf("instructions:%s\n",
                util::fmtThousands(static_cast<int64_t>(
                    traces.totalInstructions())).c_str());
    std::printf("data refs:   %s\n",
                util::fmtThousands(static_cast<int64_t>(
                    traces.totalMemRefs())).c_str());

    util::TextTable table;
    table.setHeader({"thread", "instructions", "loads", "stores"});
    for (const auto &t : traces.threads()) {
        table.addRow({
            std::to_string(t.id()),
            util::fmtThousands(static_cast<int64_t>(
                t.instructionCount())),
            util::fmtThousands(static_cast<int64_t>(t.loadCount())),
            util::fmtThousands(static_cast<int64_t>(t.storeCount())),
        });
    }
    table.print();
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    auto traces = trace::loadFile(argv[2]);
    auto an = analysis::StaticAnalysis::analyze(traces);
    util::Rng rng(1);
    auto row = analysis::computeCharacteristics(an, rng);

    std::printf("application: %s\n", row.app.c_str());
    std::printf("pairwise sharing:      mean %s, dev %s%%\n",
                util::fmtCompact(row.pairwiseMean).c_str(),
                util::fmtFixed(row.pairwiseDevPct, 1).c_str());
    std::printf("n-way sharing:         mean %s, dev %s%%\n",
                util::fmtCompact(row.nwayMean).c_str(),
                util::fmtFixed(row.nwayDevPct, 1).c_str());
    std::printf("refs per shared addr:  %s (dev %s%%)\n",
                util::fmtFixed(row.refsPerSharedAddrMean, 1).c_str(),
                util::fmtFixed(row.refsPerSharedAddrDevPct, 1).c_str());
    std::printf("shared refs:           %s%%\n",
                util::fmtFixed(row.sharedRefsPct, 1).c_str());
    std::printf("thread length:         mean %s, dev %s%%\n",
                util::fmtCompact(row.lengthMean).c_str(),
                util::fmtFixed(row.lengthDevPct, 1).c_str());
    std::printf("shared addresses:      %s (private: %s)\n",
                util::fmtThousands(static_cast<int64_t>(
                    an.sharedAddrCount())).c_str(),
                util::fmtThousands(static_cast<int64_t>(
                    an.privateAddrCount())).c_str());
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    auto traces = trace::loadFile(argv[2]);
    uint32_t tid = util::parseUnsigned32(argv[3], "thread");
    size_t count = argc > 4
        ? static_cast<size_t>(util::parseUnsigned(argv[4], "count"))
        : 20;
    util::fatalIf(tid >= traces.threadCount(), "no such thread");

    const auto &t = traces.thread(tid);
    size_t shown = 0;
    for (const auto &e : t.events()) {
        if (shown++ >= count)
            break;
        switch (e.kind()) {
          case trace::EventKind::Work:
            std::printf("work  x%llu\n",
                        static_cast<unsigned long long>(
                            e.instructions()));
            break;
          case trace::EventKind::Load:
            std::printf("load  0x%llx\n",
                        static_cast<unsigned long long>(e.address()));
            break;
          case trace::EventKind::Store:
            std::printf("store 0x%llx\n",
                        static_cast<unsigned long long>(e.address()));
            break;
          case trace::EventKind::Barrier:
            std::printf("barrier #%llu\n",
                        static_cast<unsigned long long>(
                            e.barrierIndex()));
            break;
        }
    }
    std::printf("(%zu of %zu events)\n", std::min(shown, count),
                t.events().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    try {
        if (std::strcmp(argv[1], "gen") == 0)
            return cmdGen(argc, argv);
        if (std::strcmp(argv[1], "info") == 0)
            return cmdInfo(argc, argv);
        if (std::strcmp(argv[1], "analyze") == 0)
            return cmdAnalyze(argc, argv);
        if (std::strcmp(argv[1], "dump") == 0)
            return cmdDump(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return usage();
}
