/**
 * @file
 * tsp-serve: host the resident experiment daemon (svc::Daemon) and
 * drive it with the built-in closed-loop load generator — the
 * overload-survival harness behind the service CI smoke and a
 * capacity-tuning tool for humans (docs/service.md).
 *
 *   tsp_serve [options]
 *
 * options:
 *   --scale N            workload scale divisor (default 8)
 *   --app NAME           palette application (default Water)
 *   --workers N          daemon worker threads (default 2)
 *   --capacity N         bounded queue capacity (default 64)
 *   --deadline MS        default per-request deadline (0 = none)
 *   --store PATH         crash-safe result store (empty = memory only)
 *   --clients N          closed-loop clients (default 4)
 *   --requests N         requests per client (default 16)
 *   --jobs-per-request N cells per request (default 1)
 *   --retry-budget N     shed retries per request (default 2)
 *   --retry-backoff MS   initial shed-retry backoff (default 1)
 *   --seed N             load-generator seed (default 1)
 *   --metrics-out PATH   write the metrics snapshot on exit
 *
 * network modes:
 *   --listen PORT        serve the wire protocol on --host:PORT
 *                        (0 = ephemeral; the bound port is printed)
 *                        instead of running the load generator
 *   --connect PORT       the load generator submits over the wire to
 *                        --host:PORT instead of in-process
 *   --host ADDR          bind/connect address (default 127.0.0.1)
 *   --max-connections N  listener admission limit (default 64)
 *
 * SIGINT/SIGTERM begin a graceful drain: clients stop issuing, the
 * daemon stops admitting, queued and in-flight requests finish, the
 * report still prints, and the exit code is 0 — a clean drain is
 * success, not an error (kill -9 is the crash the result store is
 * built to survive).
 *
 * Exit codes: 0 success (including a signal-initiated clean drain);
 * 1 error; 2 usage.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <thread>

#include "obs/metrics.h"
#include "svc/daemon.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/parse.h"
#include "workload/suite.h"

namespace {

using namespace tsp;

/** Tripped by SIGINT/SIGTERM; polled by the load-gen clients. */
util::CancelToken gStop;
volatile std::sig_atomic_t gSignal = 0;

extern "C" void
onSignal(int sig)
{
    // Async-signal-safe only: latch and return. The clients notice,
    // stop issuing, and the main thread drains the daemon cleanly.
    gSignal = sig;
    gStop.requestCancel();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tsp_serve [options]\n"
        "  --scale N      --app NAME        --workers N\n"
        "  --capacity N   --deadline MS     --store PATH\n"
        "  --clients N    --requests N      --jobs-per-request N\n"
        "  --retry-budget N  --retry-backoff MS  --seed N\n"
        "  --metrics-out PATH\n"
        "  --listen PORT  --connect PORT  --host ADDR\n"
        "  --max-connections N\n"
        "see docs/service.md for semantics and capacity tuning\n");
    return 2;
}

int
run(int argc, char **argv)
{
    svc::Daemon::Config config;
    svc::LoadGenOptions loadgen;
    workload::AppId app = workload::AppId::Water;
    std::string metricsOut;
    std::string host = "127.0.0.1";
    int listenPort = -1;  // -1 = load-generator mode
    size_t maxConnections = 64;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            util::fatalIf(i + 1 >= argc,
                          std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scale"))
            config.scale = util::parseUnsigned32(next("--scale"),
                                                 "--scale", 1);
        else if (!std::strcmp(argv[i], "--app"))
            app = workload::appByName(next("--app"));
        else if (!std::strcmp(argv[i], "--workers"))
            config.workers = util::parseUnsigned32(
                next("--workers"), "--workers", 1, 4096);
        else if (!std::strcmp(argv[i], "--capacity"))
            config.queueCapacity = util::parseUnsigned32(
                next("--capacity"), "--capacity", 1);
        else if (!std::strcmp(argv[i], "--deadline"))
            config.defaultDeadline =
                std::chrono::milliseconds(util::parseUnsigned32(
                    next("--deadline"), "--deadline"));
        else if (!std::strcmp(argv[i], "--store"))
            config.storePath = next("--store");
        else if (!std::strcmp(argv[i], "--clients"))
            loadgen.clients = util::parseUnsigned32(
                next("--clients"), "--clients", 1, 4096);
        else if (!std::strcmp(argv[i], "--requests"))
            loadgen.requestsPerClient = util::parseUnsigned32(
                next("--requests"), "--requests", 1);
        else if (!std::strcmp(argv[i], "--jobs-per-request"))
            loadgen.jobsPerRequest = util::parseUnsigned32(
                next("--jobs-per-request"), "--jobs-per-request", 1);
        else if (!std::strcmp(argv[i], "--retry-budget"))
            loadgen.retryBudget = util::parseUnsigned32(
                next("--retry-budget"), "--retry-budget");
        else if (!std::strcmp(argv[i], "--retry-backoff"))
            loadgen.retryBackoff =
                std::chrono::milliseconds(util::parseUnsigned32(
                    next("--retry-backoff"), "--retry-backoff", 1));
        else if (!std::strcmp(argv[i], "--seed"))
            loadgen.seed = util::parseUnsigned32(next("--seed"),
                                                 "--seed");
        else if (!std::strcmp(argv[i], "--metrics-out"))
            metricsOut = next("--metrics-out");
        else if (!std::strcmp(argv[i], "--listen"))
            listenPort = static_cast<int>(util::parseUnsigned32(
                next("--listen"), "--listen", 0, 65535));
        else if (!std::strcmp(argv[i], "--connect"))
            loadgen.serverPort =
                static_cast<uint16_t>(util::parseUnsigned32(
                    next("--connect"), "--connect", 1, 65535));
        else if (!std::strcmp(argv[i], "--host"))
            host = next("--host");
        else if (!std::strcmp(argv[i], "--max-connections"))
            maxConnections = util::parseUnsigned32(
                next("--max-connections"), "--max-connections", 1);
        else
            return usage();
    }
    if (!metricsOut.empty())
        obs::setMetricsEnabled(true);

    svc::Daemon daemon(config);
    loadgen.palette = svc::defaultPalette(daemon.lab(), app);
    loadgen.stop = &gStop;
    loadgen.serverHost = host;

    std::printf("tsp-serve: %s scale %u, %u workers, capacity %zu, "
                "store %s\n",
                workload::appName(app).c_str(), config.scale,
                config.workers, config.queueCapacity,
                config.storePath.empty() ? "(none)"
                                         : config.storePath.c_str());
    std::fflush(stdout);

    if (listenPort >= 0) {
        // Network serve mode: host the wire protocol until a signal
        // begins the drain. tsp-client (or a socket-mode loadgen) is
        // the traffic source.
        svc::Server::Config serverConfig;
        serverConfig.host = host;
        serverConfig.port = static_cast<uint16_t>(listenPort);
        serverConfig.maxConnections = maxConnections;
        svc::Server server(daemon, serverConfig);
        std::printf("listening on %s:%u\n", host.c_str(),
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);

        while (!gStop.cancelled())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));

        // Drain order: refuse new network work, refuse new
        // admissions, finish what was admitted, then flush the
        // earned answers out of the sockets.
        server.beginDrain();
        daemon.beginDrain();
        daemon.drain();
        server.stop();

        svc::Server::Counters net = server.counters();
        std::printf(
            "server: %llu accepted, %llu rejected, %llu malformed, "
            "%llu reaped, %llu frames in, %llu frames out\n",
            static_cast<unsigned long long>(net.accepted),
            static_cast<unsigned long long>(net.rejected),
            static_cast<unsigned long long>(net.malformed),
            static_cast<unsigned long long>(net.reaped),
            static_cast<unsigned long long>(net.framesIn),
            static_cast<unsigned long long>(net.framesOut));
    } else {
        svc::LoadGenReport report = svc::runLoadGen(daemon, loadgen);

        // Graceful drain: stop admitting, finish queued and
        // in-flight requests, join the workers. Runs on the signal
        // path too.
        daemon.beginDrain();
        daemon.drain();

        std::printf("%s\n", report.summary().c_str());
    }
    svc::Daemon::Counters counters = daemon.counters();
    std::printf("daemon: %llu admitted, %llu shed, %llu expired, "
                "%llu completed\n",
                static_cast<unsigned long long>(counters.admitted),
                static_cast<unsigned long long>(counters.shed),
                static_cast<unsigned long long>(counters.expired),
                static_cast<unsigned long long>(counters.completed));
    if (daemon.store()) {
        std::printf("store: %zu results resident in %s\n",
                    daemon.store()->size(),
                    daemon.store()->path().c_str());
    }
    if (gSignal != 0) {
        std::printf("drained cleanly after signal %d\n",
                    static_cast<int>(gSignal));
    } else {
        std::printf("drained cleanly\n");
    }

    if (!metricsOut.empty())
        obs::Registry::instance().writeJsonFile(metricsOut);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tsp-serve: %s\n", e.what());
        return 1;
    }
}
