/**
 * @file
 * tsp-client: submit one study request to a tsp-serve --listen
 * daemon over the wire protocol, stream its progress, and print the
 * per-cell results with a drift-proof digest — the CI network smoke's
 * client half and a human probe for a running service
 * (docs/service.md).
 *
 *   tsp_client --port PORT [options]
 *
 * options:
 *   --host ADDR          server address (default 127.0.0.1)
 *   --port N             server port (required)
 *   --scale N            workload scale divisor (default 8); must
 *                        match the server's for store cache hits
 *   --app NAME           application (default Water)
 *   --alg NAME           placement algorithm; repeatable, one cell
 *                        per use at the first standard machine point
 *                        (default: LOAD-BAL and SHARE-REFS)
 *   --deadline MS        per-request deadline (0 = server default)
 *   --priority N         request priority (default 0)
 *   --retry-budget N     reconnect-and-reissue attempts (default 3)
 *   --retry-backoff MS   initial reconnect backoff (default 10)
 *   --timeout MS         receive silence budget; reset by every
 *                        progress frame (default 10000)
 *   --local-fallback     when the transport stays dead past the
 *                        budget, run the cells locally instead of
 *                        failing (the simulation is deterministic, so
 *                        the digest is unchanged)
 *
 * Re-issuing the same request is idempotent: the server memoizes
 * completed cells in the result store, so a retry after a torn
 * connection — or a kill -9 and restart — lands as cache hits with a
 * bit-identical answer.
 *
 * Exit codes: 0 answered (including via --local-fallback);
 * 1 transport dead; 2 usage; 3 rejected by a healthy server.
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "experiment/configs.h"
#include "experiment/lab.h"
#include "svc/client.h"
#include "svc/daemon.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/parse.h"
#include "workload/suite.h"

namespace {

using namespace tsp;
using experiment::MachinePoint;
using experiment::RunJob;
using experiment::RunResult;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tsp_client --port PORT [options]\n"
        "  --host ADDR    --scale N         --app NAME\n"
        "  --alg NAME (repeatable)          --deadline MS\n"
        "  --priority N   --retry-budget N  --retry-backoff MS\n"
        "  --timeout MS   --local-fallback\n"
        "see docs/service.md for the wire protocol and semantics\n");
    return 2;
}

/** Exact bit pattern of a double, matching the loadgen's digests. */
std::string
hexBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

/** One result line per cell, in request order: digest input. */
std::string
resultLines(const std::vector<RunJob> &jobs,
            const svc::StudyResponse &response)
{
    std::string text;
    for (size_t i = 0; i < response.outcomes.size(); ++i) {
        const auto &outcome = response.outcomes[i];
        text += experiment::describeJob(jobs[i]) + " => ";
        if (!outcome.ok()) {
            text += "FAILED(" + outcome.error() + ")\n";
            continue;
        }
        const RunResult &result = outcome.value();
        text += "t=" + std::to_string(result.executionTime) +
                " imb=" + hexBits(result.loadImbalance) + " refs=" +
                std::to_string(result.stats.totalMemRefs()) +
                " miss=" +
                std::to_string(result.missSummary().totalMisses()) +
                "\n";
    }
    return text;
}

/**
 * Graceful degradation: the same deterministic simulation the server
 * would have run, minus the store — answers match bit-for-bit.
 */
svc::StudyResponse
runLocally(uint32_t scale, const std::vector<RunJob> &jobs)
{
    experiment::Lab lab(scale);
    svc::StudyResponse response;
    response.outcomes.assign(jobs.size(),
                             experiment::Outcome<RunResult>{});
    for (size_t i = 0; i < jobs.size(); ++i) {
        const RunJob &job = jobs[i];
        try {
            response.outcomes[i] =
                experiment::Outcome<RunResult>::success(
                    lab.run(job.app, job.alg, job.point,
                            job.infiniteCache, job.memSystem));
            ++response.executed;
        } catch (const std::exception &e) {
            response.outcomes[i] =
                experiment::Outcome<RunResult>::failure(e.what());
        }
    }
    response.status = svc::StudyStatus::Completed;
    return response;
}

int
run(int argc, char **argv)
{
    svc::Client::Config config;
    workload::AppId app = workload::AppId::Water;
    std::vector<placement::Algorithm> algs;
    uint32_t scale = 8;
    std::chrono::milliseconds deadline{0};
    int priority = 0;
    bool localFallback = false;
    bool havePort = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            util::fatalIf(i + 1 >= argc,
                          std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--host"))
            config.host = next("--host");
        else if (!std::strcmp(argv[i], "--port")) {
            config.port = static_cast<uint16_t>(util::parseUnsigned32(
                next("--port"), "--port", 1, 65535));
            havePort = true;
        } else if (!std::strcmp(argv[i], "--scale"))
            scale = util::parseUnsigned32(next("--scale"), "--scale",
                                          1);
        else if (!std::strcmp(argv[i], "--app"))
            app = workload::appByName(next("--app"));
        else if (!std::strcmp(argv[i], "--alg")) {
            const char *name = next("--alg");
            std::optional<placement::Algorithm> alg =
                placement::algorithmFromName(name);
            util::fatalIf(!alg.has_value(),
                          std::string("unknown algorithm: ") + name);
            algs.push_back(*alg);
        } else if (!std::strcmp(argv[i], "--deadline"))
            deadline =
                std::chrono::milliseconds(util::parseUnsigned32(
                    next("--deadline"), "--deadline"));
        else if (!std::strcmp(argv[i], "--priority"))
            priority = static_cast<int>(util::parseUnsigned32(
                next("--priority"), "--priority", 0, 1000));
        else if (!std::strcmp(argv[i], "--retry-budget"))
            config.retryBudget = util::parseUnsigned32(
                next("--retry-budget"), "--retry-budget");
        else if (!std::strcmp(argv[i], "--retry-backoff"))
            config.retryBackoff =
                std::chrono::milliseconds(util::parseUnsigned32(
                    next("--retry-backoff"), "--retry-backoff", 1));
        else if (!std::strcmp(argv[i], "--timeout"))
            config.recvTimeout =
                std::chrono::milliseconds(util::parseUnsigned32(
                    next("--timeout"), "--timeout", 1));
        else if (!std::strcmp(argv[i], "--local-fallback"))
            localFallback = true;
        else
            return usage();
    }
    if (!havePort)
        return usage();
    if (algs.empty())
        algs = {placement::Algorithm::LoadBal,
                placement::Algorithm::ShareRefs};
    config.identity = "svc.tsp-client";

    // The request's cells: each named algorithm at the first standard
    // machine point of the scaled workload. The point depends only on
    // (app, scale), so the same flags always build — and re-issue —
    // the byte-identical request.
    uint32_t threads;
    {
        experiment::Lab lab(scale);
        threads = static_cast<uint32_t>(
            lab.traces(app).threadCount());
    }
    const MachinePoint point =
        experiment::standardSweep(threads).front();
    svc::StudyRequest request;
    request.deadline = deadline;
    request.priority = priority;
    for (placement::Algorithm alg : algs)
        request.jobs.push_back({app, alg, point, false});
    std::vector<RunJob> jobs = request.jobs;

    std::printf("tsp-client: %s scale %u -> %s:%u (%zu cells)\n",
                workload::appName(app).c_str(), scale,
                config.host.c_str(),
                static_cast<unsigned>(config.port), jobs.size());
    std::fflush(stdout);

    svc::Client client(config);
    svc::Client::Result got = client.submit(
        request, [](const svc::StudyProgress &progress) {
            if (progress.stage == svc::StudyProgress::Stage::Running)
                std::printf("progress: running %u/%u (%.3f ms)\n",
                            progress.cellsDone, progress.totalCells,
                            progress.lastCellMillis);
            else
                std::printf("progress: %s %u/%u\n",
                            svc::stageName(progress.stage).c_str(),
                            progress.cellsDone,
                            progress.totalCells);
            std::fflush(stdout);
        });

    if (got.rejected) {
        std::printf("rejected: %s (%u attempts)\n",
                    got.rejection.c_str(), got.attempts);
        return 3;
    }
    std::optional<svc::StudyResponse> answer;
    if (got.answered) {
        answer = std::move(got.response);
    } else if (localFallback) {
        std::printf("transport dead after %u attempts; running %zu "
                    "cells locally\n",
                    got.attempts, jobs.size());
        std::fflush(stdout);
        answer = runLocally(scale, jobs);
    } else {
        std::printf("transport dead after %u attempts "
                    "(%u reconnects)\n",
                    got.attempts, got.reconnects);
        return 1;
    }

    const svc::StudyResponse &response = *answer;
    std::string lines = resultLines(jobs, response);
    std::fputs(lines.c_str(), stdout);
    std::printf("status: %s, %u attempts, %u reconnects\n",
                svc::statusName(response.status).c_str(),
                got.attempts, got.reconnects);
    std::printf("cells: %llu executed, %llu store hits\n",
                static_cast<unsigned long long>(response.executed),
                static_cast<unsigned long long>(response.cacheHits));
    std::printf("result digest: %08x\n", util::crc32(lines));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tsp-client: %s\n", e.what());
        return 1;
    }
}
