#!/usr/bin/env bash
# Run every bench binary with TSP_OUT set and collect per-bench
# wall-clock into one CSV for trend tracking.
#
# usage: tools/run_benches.sh [build-dir] [out-dir]
#
#   build-dir  where the bench binaries live (default: build)
#   out-dir    where logs, per-bench CSVs and the wall-clock summary
#              go (default: $TSP_OUT, else bench_out)
#
# Honors TSP_SCALE and TSP_JOBS. The summary CSV has one row per
# bench: name, exit status, wall-clock seconds.
#
# Each bench also exports its metrics registry (see
# docs/observability.md) to <out-dir>/<bench>.metrics.json, and its
# Google-Benchmark results (refs/sec, wall-ms per case) to
# <out-dir>/<bench>.json — the machine-readable input that
# tools/compare_benches.py gates against BENCH_baseline.json (see
# docs/performance.md).

set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-${TSP_OUT:-bench_out}}
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR not found (build first: cmake --build $BUILD_DIR)" >&2
    exit 2
fi

mkdir -p "$OUT_DIR"
SUMMARY="$OUT_DIR/bench_wallclock.csv"
echo "bench,status,wall_seconds,jobs" > "$SUMMARY"
JOBS=${TSP_JOBS:-$(nproc 2>/dev/null || echo 1)}

overall_start=$(date +%s)
failures=0
for bench in "$BENCH_DIR"/*; do
    [ -x "$bench" ] || continue
    name=$(basename "$bench")
    log="$OUT_DIR/$name.log"
    start_ns=$(date +%s%N)
    if TSP_OUT="$OUT_DIR" TSP_METRICS=1 \
       TSP_METRICS_OUT="$OUT_DIR/$name.metrics.json" \
       "$bench" --benchmark_out="$OUT_DIR/$name.json" \
                --benchmark_out_format=json > "$log" 2>&1; then
        status=ok
    else
        status=fail
        failures=$((failures + 1))
    fi
    end_ns=$(date +%s%N)
    secs=$(awk -v a="$start_ns" -v b="$end_ns" \
               'BEGIN { printf "%.3f", (b - a) / 1e9 }')
    echo "$name,$status,$secs,$JOBS" >> "$SUMMARY"
    echo "[$status] $name ${secs}s"
done
overall_end=$(date +%s)

echo
echo "wrote $SUMMARY ($(($(wc -l < "$SUMMARY") - 1)) benches," \
     "$((overall_end - overall_start))s total, TSP_JOBS=$JOBS)"
[ "$failures" -eq 0 ] || echo "WARNING: $failures bench(es) failed" >&2
exit 0
