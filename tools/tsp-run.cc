/**
 * @file
 * tsp_run — one-shot experiment CLI: place one suite application with
 * one algorithm on one machine configuration and print the full
 * statistics.
 *
 *   tsp_run <app> <algorithm> <processors> [options]
 *
 * options:
 *   --contexts N     hardware contexts/processor (default: fit all)
 *   --cache BYTES    cache size (default: the app's paper cache,
 *                    scaled)
 *   --assoc N        associativity (default 1, direct-mapped)
 *   --latency N      memory latency cycles (default 50)
 *   --switch N       context switch cycles (default 6)
 *   --scale N        workload scale divisor (default TSP_SCALE or 8)
 *   --infinite       use the 8 MB "infinite" cache
 *   --profile        collect the write-run sharing profile
 *   --jobs N         worker threads for parallel experiment drivers
 *                    (overrides TSP_JOBS; results are identical at
 *                    any width)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiment/lab.h"
#include "sim/machine.h"
#include "util/bits.h"
#include "util/error.h"
#include "util/format.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/suite.h"

namespace {

using namespace tsp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tsp_run <app> <algorithm> <processors> [options]\n"
        "  --contexts N  --cache BYTES  --assoc N  --latency N\n"
        "  --switch N    --scale N      --infinite --profile\n"
        "  --jobs N\n"
        "algorithms: ");
    for (placement::Algorithm alg : placement::allAlgorithms())
        std::fprintf(stderr, "%s ",
                     placement::algorithmName(alg).c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    try {
        workload::AppId app = workload::appByName(argv[1]);
        auto alg = placement::algorithmFromName(argv[2]);
        if (!alg) {
            std::fprintf(stderr, "unknown algorithm: %s\n", argv[2]);
            return usage();
        }
        uint32_t procs = static_cast<uint32_t>(
            std::strtoul(argv[3], nullptr, 10));

        uint32_t contexts = 0, assoc = 1, latency = 50, switchCy = 6;
        uint64_t cacheBytes = 0;
        uint32_t scale = workload::defaultScale();
        bool infinite = false, profile = false;
        for (int i = 4; i < argc; ++i) {
            auto next = [&](const char *flag) -> const char * {
                util::fatalIf(i + 1 >= argc,
                              std::string(flag) + " needs a value");
                return argv[++i];
            };
            if (!std::strcmp(argv[i], "--contexts"))
                contexts = static_cast<uint32_t>(
                    std::strtoul(next("--contexts"), nullptr, 10));
            else if (!std::strcmp(argv[i], "--cache"))
                cacheBytes = std::strtoull(next("--cache"), nullptr,
                                           10);
            else if (!std::strcmp(argv[i], "--assoc"))
                assoc = static_cast<uint32_t>(
                    std::strtoul(next("--assoc"), nullptr, 10));
            else if (!std::strcmp(argv[i], "--latency"))
                latency = static_cast<uint32_t>(
                    std::strtoul(next("--latency"), nullptr, 10));
            else if (!std::strcmp(argv[i], "--switch"))
                switchCy = static_cast<uint32_t>(
                    std::strtoul(next("--switch"), nullptr, 10));
            else if (!std::strcmp(argv[i], "--scale"))
                scale = static_cast<uint32_t>(
                    std::strtoul(next("--scale"), nullptr, 10));
            else if (!std::strcmp(argv[i], "--infinite"))
                infinite = true;
            else if (!std::strcmp(argv[i], "--profile"))
                profile = true;
            else if (!std::strcmp(argv[i], "--jobs"))
                util::ThreadPool::setDefaultJobs(static_cast<unsigned>(
                    std::strtoul(next("--jobs"), nullptr, 10)));
            else
                return usage();
        }

        experiment::Lab lab(scale);
        const auto &an = lab.analysis(app);
        if (contexts == 0) {
            contexts = static_cast<uint32_t>(
                util::divCeil(an.threadCount(), procs));
        }

        sim::SimConfig cfg =
            lab.configFor(app, {procs, contexts}, infinite);
        if (cacheBytes)
            cfg.cacheBytes = cacheBytes;
        cfg.associativity = assoc;
        cfg.memoryLatency = latency;
        cfg.contextSwitchCycles = switchCy;
        cfg.profileSharing = profile;
        cfg.validate();

        auto placement = lab.placementFor(app, *alg, procs);
        auto stats = sim::simulate(cfg, lab.traces(app), placement);

        std::printf("%s | %s | %s\n", workload::appName(app).c_str(),
                    placement::algorithmName(*alg).c_str(),
                    cfg.describe().c_str());
        std::printf("placement: %s\n", placement.describe().c_str());
        std::printf("load imbalance: %s\n\n",
                    util::fmtFixed(placement.loadImbalance(
                                       an.threadLength()),
                                   3)
                        .c_str());

        util::TextTable table;
        table.setHeader({"metric", "value"});
        auto add = [&](const std::string &k, uint64_t v) {
            table.addRow({k, util::fmtThousands(
                                 static_cast<int64_t>(v))});
        };
        add("execution time (cycles)", stats.executionTime());
        add("instructions", stats.totalInstructions());
        add("data references", stats.totalMemRefs());
        add("hits", stats.totalHits());
        add("compulsory misses",
            stats.totalMissCount(sim::MissKind::Compulsory));
        add("intra-thread conflicts",
            stats.totalMissCount(sim::MissKind::IntraConflict));
        add("inter-thread conflicts",
            stats.totalMissCount(sim::MissKind::InterConflict));
        add("invalidation misses",
            stats.totalMissCount(sim::MissKind::Invalidation));
        add("upgrades", stats.totalUpgrades());
        add("invalidations sent", stats.totalInvalidationsSent());
        add("sharing compulsory", stats.sharingCompulsoryMisses);
        table.addRow({"miss rate",
                      util::fmtPercent(stats.missRate())});
        table.print();

        if (stats.profiledSharing) {
            const auto &p = stats.sharingProfile;
            std::printf("\nsharing profile: %llu shared blocks "
                        "(read-only %s, migratory %s), mean write run "
                        "%s\n",
                        static_cast<unsigned long long>(
                            p.sharedBlocks),
                        util::fmtPercent(p.readOnlyFraction(), 1)
                            .c_str(),
                        util::fmtPercent(p.migratoryFraction(), 1)
                            .c_str(),
                        util::fmtFixed(p.writeRunLength.mean(), 1)
                            .c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
