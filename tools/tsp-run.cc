/**
 * @file
 * tsp_run — one-shot experiment CLI: place one suite application with
 * one algorithm on one machine configuration and print the full
 * statistics. Also hosts the fault-tolerant sweep driver.
 *
 *   tsp_run <app> <algorithm> <processors> [options]
 *   tsp_run sweep <app> [options]
 *   tsp_run hierarchy <app> [options]
 *   tsp_run chaos [options]
 *   tsp_run sample [options]
 *
 * options (single run):
 *   --contexts N     hardware contexts/processor (default: fit all)
 *   --cache BYTES    cache size (default: the app's paper cache,
 *                    scaled)
 *   --assoc N        associativity (default 1, direct-mapped)
 *   --latency N      memory latency cycles (default 50)
 *   --switch N       context switch cycles (default 6)
 *   --scale N        workload scale divisor (default TSP_SCALE or 8)
 *   --infinite       use the 8 MB "infinite" cache
 *   --profile        collect the write-run sharing profile
 *   --jobs N         worker threads for parallel experiment drivers
 *                    (overrides TSP_JOBS; results are identical at
 *                    any width)
 *   --metrics-out PATH  enable the metrics registry and export it as
 *                       JSON to PATH on completion
 *   --fault SPEC     arm one deterministic fault: site:nth[+]:kind
 *                    (see docs/robustness.md; same as TSP_FAULT)
 *   --paranoid N     run the coherence invariant checker every N
 *                    memory references (0 disables; same as
 *                    TSP_PARANOID)
 *
 * options (sweep mode):
 *   --scale N          workload scale divisor
 *   --jobs N           worker threads
 *   --batch N          lanes per batched lockstep simulation: up to N
 *                      cells of one application advance together over
 *                      its shared traces (bit-identical results;
 *                      overrides TSP_BATCH; 1 = off)
 *   --checkpoint PATH  journal completed cells to PATH; a re-run
 *                      replays the journal and simulates only the
 *                      missing cells (crash-safe resume)
 *   --deadline MS      watchdog: warn when one cell runs longer than
 *                      MS milliseconds
 *   --metrics-out PATH enable the metrics registry and export it as
 *                      JSON to PATH on completion
 *   --trace-out PATH   write a per-cell Chrome trace-event timeline
 *                      (JSONL; open in chrome://tracing or Perfetto)
 *   --fault SPEC       arm one deterministic fault (site:nth[+]:kind)
 *   --paranoid N       invariant-check every N references
 *
 * options (hierarchy mode — placement sensitivity across the
 * memory-system variants of docs/memory_system.md; takes the same
 * flags as sweep mode, plus):
 *   --csv PATH         write the full study as CSV to PATH
 *
 * options (chaos mode — run the fault-injection matrix, see
 * docs/robustness.md):
 *   --scale N   --jobs N   --app NAME   --workdir PATH   --verbose
 *
 * options (sample mode — BBV phase-sampling error-vs-speed study,
 * docs/performance.md "Sampling methodology"):
 *   --app NAME       add a suite application (repeatable; default:
 *                    all of them)
 *   --threads N      add a synthetic scalable workload with N
 *                    threads on N processors (up to 1024)
 *   --mean N         synthetic workload mean thread length
 *   --scale N        workload scale divisor
 *   --length-mult N  thread-length multiplier (sampling pays off on
 *                    long traces; 8-32x shows the >=20x regime)
 *   --window LIST    comma-separated window sizes, in per-thread
 *                    references (default 20000,50000)
 *   --clusters LIST  comma-separated phase counts (default 4,8)
 *   --warmup N       warmup windows per representative (default 1)
 *   --csv PATH       write the study as CSV to PATH
 *
 * Signals: a sweep receiving SIGINT/SIGTERM cancels cooperatively —
 * in-flight cells finish and are journaled, the checkpoint, metrics
 * export and trace timeline are flushed, and the process exits with
 * code 4 (resume by re-running with the same --checkpoint).
 *
 * Exit codes: 0 success; 1 error; 2 usage; 3 degraded (failed cells /
 * chaos matrix failures); 4 interrupted by signal.
 *
 * All numeric flags are parsed strictly: non-numeric, negative or
 * overflowing values fail with a message naming the flag.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "experiment/chaos.h"
#include "experiment/checkpoint.h"
#include "experiment/lab.h"
#include "experiment/report.h"
#include "experiment/sampling_study.h"
#include "experiment/studies.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/machine.h"
#include "svc/chaos_leg.h"
#include "util/bits.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/format.h"
#include "util/parse.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/suite.h"

namespace {

using namespace tsp;

/** Exit codes (also documented in the file header). */
constexpr int kExitDegraded = 3;
constexpr int kExitInterrupted = 4;

/** Tripped by SIGINT/SIGTERM; polled by the sweep between cells. */
util::CancelToken gCancel;
volatile std::sig_atomic_t gSignal = 0;

extern "C" void
onSignal(int sig)
{
    // Only async-signal-safe operations: set two atomics and return.
    // The sweep loop notices, finishes in-flight cells, flushes the
    // checkpoint/metrics/trace, and exits with kExitInterrupted.
    gSignal = sig;
    gCancel.requestCancel();
}

void
installSignalHandlers()
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: tsp_run <app> <algorithm> <processors> [options]\n"
        "       tsp_run sweep <app> [--checkpoint PATH]"
        " [--deadline MS]\n"
        "       tsp_run hierarchy <app> [--csv PATH]"
        " [--checkpoint PATH]\n"
        "       tsp_run chaos [--scale N] [--app NAME]"
        " [--workdir PATH] [--verbose]\n"
        "       tsp_run sample [--app NAME ...] [--threads N]"
        " [--mean N] [--scale N]\n"
        "               [--length-mult N] [--window LIST]"
        " [--clusters LIST]\n"
        "               [--warmup N] [--csv PATH]\n"
        "  --contexts N  --cache BYTES  --assoc N  --latency N\n"
        "  --switch N    --scale N      --infinite --profile\n"
        "  --jobs N      --metrics-out PATH  --trace-out PATH\n"
        "  --fault site:nth[+]:kind    --paranoid N\n"
        "  --batch N     lanes per lockstep simulation batch in sweep\n"
        "                mode (default $TSP_BATCH, else 1 = off)\n"
        "algorithms: ");
    for (placement::Algorithm alg : placement::allAlgorithms())
        std::fprintf(stderr, "%s ",
                     placement::algorithmName(alg).c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

/**
 * Fault-tolerant figure sweep: execTimeStudy in degraded mode with an
 * optional checkpoint journal and per-cell watchdog. Failed cells
 * render as FAILED; the failure summary and the sweep statistics
 * (cells replayed from the checkpoint vs simulated vs failed) print
 * after the table.
 */
int
runSweep(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    workload::AppId app = workload::appByName(argv[2]);

    uint32_t scale = workload::defaultScale();
    unsigned jobs = util::ThreadPool::defaultJobs();
    unsigned batch = experiment::defaultBatchLanes();
    std::string checkpointPath;
    std::string metricsPath;
    std::string tracePath;
    uint64_t deadlineMs = 0;
    for (int i = 3; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            util::fatalIf(i + 1 >= argc,
                          std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scale"))
            scale = util::parseUnsigned32(next("--scale"), "--scale",
                                          1);
        else if (!std::strcmp(argv[i], "--jobs"))
            jobs = util::parseUnsigned32(next("--jobs"), "--jobs", 0,
                                         4096);
        else if (!std::strcmp(argv[i], "--batch"))
            batch = util::parseUnsigned32(next("--batch"), "--batch",
                                          1, 4096);
        else if (!std::strcmp(argv[i], "--checkpoint"))
            checkpointPath = next("--checkpoint");
        else if (!std::strcmp(argv[i], "--deadline"))
            deadlineMs = util::parseUnsigned(next("--deadline"),
                                             "--deadline", 1);
        else if (!std::strcmp(argv[i], "--metrics-out"))
            metricsPath = next("--metrics-out");
        else if (!std::strcmp(argv[i], "--trace-out"))
            tracePath = next("--trace-out");
        else if (!std::strcmp(argv[i], "--fault"))
            fault::arm(next("--fault"));
        else if (!std::strcmp(argv[i], "--paranoid"))
            sim::setDefaultParanoidEvery(util::parseUnsigned(
                next("--paranoid"), "--paranoid"));
        else
            return usage();
    }

    if (!metricsPath.empty())
        obs::setMetricsEnabled(true);
    installSignalHandlers();
    std::optional<obs::TraceSink> trace;
    if (!tracePath.empty()) {
        trace.emplace(tracePath, "tsp_run sweep");
        obs::TraceSink::installGlobal(&*trace);
    }

    experiment::Lab lab(scale);
    std::optional<experiment::Checkpoint> checkpoint;
    if (!checkpointPath.empty()) {
        checkpoint.emplace(checkpointPath, scale);
        if (checkpoint->size())
            std::printf("checkpoint: %s holds %zu completed cells\n",
                        checkpointPath.c_str(), checkpoint->size());
    }

    std::vector<experiment::JobFailure> failures;
    experiment::SweepStats stats;
    std::vector<double> cellMillis;
    experiment::SweepOptions options;
    options.jobs = jobs;
    options.batch = batch;
    options.checkpoint = checkpoint ? &*checkpoint : nullptr;
    options.failures = &failures;
    options.statsOut = &stats;
    options.jobDeadline = std::chrono::milliseconds(deadlineMs);
    options.cellMillisOut = &cellMillis;
    options.cancel = &gCancel;

    auto points = experiment::execTimeStudy(
        lab, app, placement::figureAlgorithms(), options);

    // One row per algorithm, one column per machine point.
    std::vector<std::string> cols;
    for (const auto &pt : points) {
        std::string label = pt.point.label();
        if (std::find(cols.begin(), cols.end(), label) == cols.end())
            cols.push_back(label);
    }
    util::TextTable table(workload::appName(app) +
                          " execution time (normalized to RANDOM)");
    std::vector<std::string> header{"algorithm"};
    header.insert(header.end(), cols.begin(), cols.end());
    table.setHeader(header);
    for (placement::Algorithm alg : placement::figureAlgorithms()) {
        std::vector<std::string> row{placement::algorithmName(alg)};
        row.resize(1 + cols.size());
        for (const auto &pt : points) {
            if (pt.alg != alg)
                continue;
            auto it = std::find(cols.begin(), cols.end(),
                                pt.point.label());
            row[1 + static_cast<size_t>(it - cols.begin())] =
                pt.failed ? "FAILED"
                          : util::fmtFixed(pt.normalizedToRandom, 3);
        }
        table.addRow(row);
    }
    table.print();

    std::printf("\nsweep: %zu cells (%zu unique), %zu replayed from "
                "checkpoint, %zu simulated, %zu failed\n",
                stats.total, stats.unique, stats.fromCheckpoint,
                stats.executed, stats.failed);
    if (stats.cancelled)
        std::printf("cancelled: %zu cells skipped (signal %d)\n",
                    stats.cancelled, static_cast<int>(gSignal));
    if (stats.executed) {
        double sum = 0.0, maxMs = 0.0;
        for (double ms : cellMillis) {
            sum += ms;
            maxMs = std::max(maxMs, ms);
        }
        std::printf("cell wall time: %s ms total (max %s ms per "
                    "cell)\n",
                    util::fmtFixed(sum, 1).c_str(),
                    util::fmtFixed(maxMs, 1).c_str());
    }
    if (stats.watchdogFlagged)
        std::printf("watchdog: %zu cells exceeded the %llu ms "
                    "deadline\n",
                    stats.watchdogFlagged,
                    static_cast<unsigned long long>(deadlineMs));
    std::string summary = experiment::renderFailureSummary(failures);
    if (!summary.empty())
        std::printf("%s", summary.c_str());

    if (trace) {
        obs::TraceSink::installGlobal(nullptr);
        trace->close();
        std::printf("(wrote %s: %llu trace events)\n",
                    tracePath.c_str(),
                    static_cast<unsigned long long>(trace->events()));
    }
    if (!metricsPath.empty()) {
        obs::Registry::instance().writeJsonFile(metricsPath);
        std::printf("(wrote %s)\n", metricsPath.c_str());
    }
    if (gCancel.cancelled()) {
        // Everything above already flushed: the checkpoint journals
        // each cell on completion, and the trace/metrics files were
        // just closed. Resuming re-runs only the skipped cells.
        std::printf("interrupted: resume with the same --checkpoint "
                    "to finish the remaining cells\n");
        return kExitInterrupted;
    }
    return failures.empty() ? 0 : kExitDegraded;
}

/**
 * `tsp_run hierarchy <app>`: the memory-system bridge study. Runs the
 * figure algorithms at every standard machine point under each
 * memory-system variant (flat-1994 -> shared-l2 -> moesi ->
 * contended) and prints one normalized-to-RANDOM table per variant,
 * plus the shared-L2 hit rate and interconnect queueing observed at
 * the largest machine point. Same robustness surface as sweep mode
 * (checkpoint, watchdog, cooperative cancel); --csv writes the full
 * study for plotting.
 */
int
runHierarchy(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    workload::AppId app = workload::appByName(argv[2]);

    uint32_t scale = workload::defaultScale();
    unsigned jobs = util::ThreadPool::defaultJobs();
    unsigned batch = experiment::defaultBatchLanes();
    std::string checkpointPath;
    std::string metricsPath;
    std::string csvPath;
    uint64_t deadlineMs = 0;
    for (int i = 3; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            util::fatalIf(i + 1 >= argc,
                          std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scale"))
            scale = util::parseUnsigned32(next("--scale"), "--scale",
                                          1);
        else if (!std::strcmp(argv[i], "--jobs"))
            jobs = util::parseUnsigned32(next("--jobs"), "--jobs", 0,
                                         4096);
        else if (!std::strcmp(argv[i], "--batch"))
            batch = util::parseUnsigned32(next("--batch"), "--batch",
                                          1, 4096);
        else if (!std::strcmp(argv[i], "--checkpoint"))
            checkpointPath = next("--checkpoint");
        else if (!std::strcmp(argv[i], "--deadline"))
            deadlineMs = util::parseUnsigned(next("--deadline"),
                                             "--deadline", 1);
        else if (!std::strcmp(argv[i], "--metrics-out"))
            metricsPath = next("--metrics-out");
        else if (!std::strcmp(argv[i], "--csv"))
            csvPath = next("--csv");
        else if (!std::strcmp(argv[i], "--fault"))
            fault::arm(next("--fault"));
        else if (!std::strcmp(argv[i], "--paranoid"))
            sim::setDefaultParanoidEvery(util::parseUnsigned(
                next("--paranoid"), "--paranoid"));
        else
            return usage();
    }

    if (!metricsPath.empty())
        obs::setMetricsEnabled(true);
    installSignalHandlers();

    experiment::Lab lab(scale);
    std::optional<experiment::Checkpoint> checkpoint;
    if (!checkpointPath.empty()) {
        checkpoint.emplace(checkpointPath, scale);
        if (checkpoint->size())
            std::printf("checkpoint: %s holds %zu completed cells\n",
                        checkpointPath.c_str(), checkpoint->size());
    }

    std::vector<experiment::JobFailure> failures;
    experiment::SweepStats stats;
    experiment::SweepOptions options;
    options.jobs = jobs;
    options.batch = batch;
    options.checkpoint = checkpoint ? &*checkpoint : nullptr;
    options.failures = &failures;
    options.statsOut = &stats;
    options.jobDeadline = std::chrono::milliseconds(deadlineMs);
    options.cancel = &gCancel;

    auto points = experiment::hierarchyStudy(
        lab, app, placement::figureAlgorithms(), options);

    // One table per memory system: rows are algorithms, columns are
    // machine points, cells normalized to RANDOM under that system.
    std::vector<std::string> cols;
    for (const auto &pt : points) {
        std::string label = pt.point.label();
        if (std::find(cols.begin(), cols.end(), label) == cols.end())
            cols.push_back(label);
    }
    for (experiment::MemSystem ms : experiment::allMemSystems()) {
        util::TextTable table(
            workload::appName(app) + " on " +
            experiment::memSystemName(ms) +
            " (normalized to RANDOM on the same memory system)");
        std::vector<std::string> header{"algorithm"};
        header.insert(header.end(), cols.begin(), cols.end());
        table.setHeader(header);
        for (placement::Algorithm alg :
             placement::figureAlgorithms()) {
            std::vector<std::string> row{
                placement::algorithmName(alg)};
            row.resize(1 + cols.size());
            for (const auto &pt : points) {
                if (pt.memSystem != ms || pt.alg != alg)
                    continue;
                auto it = std::find(cols.begin(), cols.end(),
                                    pt.point.label());
                row[1 + static_cast<size_t>(it - cols.begin())] =
                    pt.failed
                        ? "FAILED"
                        : util::fmtFixed(pt.normalizedToRandom, 3);
            }
            table.addRow(row);
        }
        table.print();

        // Memory-system behavior at the largest machine point, from
        // the RANDOM cell (every algorithm sees the same hierarchy).
        for (auto rit = points.rbegin(); rit != points.rend();
             ++rit) {
            if (rit->memSystem != ms ||
                rit->alg != placement::Algorithm::Random ||
                rit->failed)
                continue;
            uint64_t lookups = rit->l2Hits + rit->l2Misses;
            if (lookups || rit->netQueueingCycles) {
                std::printf("  at %s: L2 hit rate %s (%llu lookups), "
                            "interconnect queueing %llu cycles\n",
                            rit->point.label().c_str(),
                            lookups
                                ? util::fmtPercent(
                                      static_cast<double>(
                                          rit->l2Hits) /
                                      static_cast<double>(lookups))
                                      .c_str()
                                : "n/a",
                            static_cast<unsigned long long>(lookups),
                            static_cast<unsigned long long>(
                                rit->netQueueingCycles));
            }
            break;
        }
        std::printf("\n");
    }

    std::printf("hierarchy: %zu cells (%zu unique), %zu replayed "
                "from checkpoint, %zu simulated, %zu failed\n",
                stats.total, stats.unique, stats.fromCheckpoint,
                stats.executed, stats.failed);
    if (stats.cancelled)
        std::printf("cancelled: %zu cells skipped (signal %d)\n",
                    stats.cancelled, static_cast<int>(gSignal));
    std::string summary = experiment::renderFailureSummary(failures);
    if (!summary.empty())
        std::printf("%s", summary.c_str());

    if (!csvPath.empty()) {
        experiment::writeHierarchyCsv(csvPath, points);
        std::printf("(wrote %s)\n", csvPath.c_str());
    }
    if (!metricsPath.empty()) {
        obs::Registry::instance().writeJsonFile(metricsPath);
        std::printf("(wrote %s)\n", metricsPath.c_str());
    }
    if (gCancel.cancelled()) {
        std::printf("interrupted: resume with the same --checkpoint "
                    "to finish the remaining cells\n");
        return kExitInterrupted;
    }
    return failures.empty() ? 0 : kExitDegraded;
}

/**
 * `tsp_run chaos`: the full fault-site x failure-kind matrix (see
 * docs/robustness.md). Each cell arms one deterministic fault, runs a
 * checkpointed sweep + trace roundtrip + CSV report, and checks the
 * no-crash / clean-degrade-or-resume / bit-identical-recovery
 * trifecta.
 */
int
runChaos(int argc, char **argv)
{
    experiment::chaos::Options opt;
    opt.verbose = true;
    for (int i = 2; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            util::fatalIf(i + 1 >= argc,
                          std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scale"))
            opt.scale = util::parseUnsigned32(next("--scale"),
                                              "--scale", 1);
        else if (!std::strcmp(argv[i], "--jobs"))
            opt.jobs = util::parseUnsigned32(next("--jobs"), "--jobs",
                                             0, 4096);
        else if (!std::strcmp(argv[i], "--app"))
            opt.app = workload::appByName(next("--app"));
        else if (!std::strcmp(argv[i], "--workdir"))
            opt.workDir = next("--workdir");
        else if (!std::strcmp(argv[i], "--verbose"))
            opt.verbose = true;
        else if (!std::strcmp(argv[i], "--quiet"))
            opt.verbose = false;
        else
            return usage();
    }
    // The svc daemon/store leg joins the scenario so the four service
    // fault sites are reachable (docs/robustness.md).
    opt.extension = svc::chaosLeg(opt.app, opt.scale);

    auto matrix = experiment::chaos::runMatrix(opt);
    std::printf("chaos: %zu/%zu cells passed the trifecta "
                "(no crash, clean degrade or resume, bit-identical "
                "recovery)\n",
                matrix.passedCount(), matrix.cells.size());
    for (const auto &cell : matrix.cells) {
        if (!cell.passed())
            std::printf("  FAILED %s\n", cell.describe().c_str());
    }
    return matrix.allPassed() ? 0 : kExitDegraded;
}

/** Comma-separated unsigned list, e.g. --window 20000,50000. */
std::vector<uint64_t>
parseList(const char *text, const char *flag)
{
    std::vector<uint64_t> out;
    std::string item;
    for (const char *p = text;; ++p) {
        if (*p == ',' || *p == '\0') {
            out.push_back(util::parseUnsigned(item, flag, 1));
            item.clear();
            if (*p == '\0')
                break;
        } else {
            item += *p;
        }
    }
    return out;
}

/**
 * BBV phase-sampling error-vs-speed study: for each application and
 * each (window, clusters) setting, compare the phase-sampled estimate
 * against the unsampled streaming run and report the execution-time
 * error, the fraction of references simulated, and the wall-clock
 * speedup (docs/performance.md, "Sampling methodology").
 */
int
runSample(int argc, char **argv)
{
    std::vector<workload::AppProfile> profiles;
    experiment::SamplingStudyOptions options;
    options.scale = workload::defaultScale();
    options.windows.clear();
    options.clusters.clear();
    std::string csvPath;
    uint32_t synthThreads = 0;
    uint64_t synthMean = 50'000;
    for (int i = 2; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            util::fatalIf(i + 1 >= argc,
                          std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--app"))
            profiles.push_back(
                workload::profile(workload::appByName(next("--app"))));
        else if (!std::strcmp(argv[i], "--threads"))
            synthThreads = util::parseUnsigned32(
                next("--threads"), "--threads", 2, sim::kMaxProcessors);
        else if (!std::strcmp(argv[i], "--mean"))
            synthMean =
                util::parseUnsigned(next("--mean"), "--mean", 1);
        else if (!std::strcmp(argv[i], "--scale"))
            options.scale = util::parseUnsigned32(next("--scale"),
                                                  "--scale", 1);
        else if (!std::strcmp(argv[i], "--length-mult"))
            options.lengthMult = util::parseUnsigned32(
                next("--length-mult"), "--length-mult", 1, 1024);
        else if (!std::strcmp(argv[i], "--window"))
            options.windows = parseList(next("--window"), "--window");
        else if (!std::strcmp(argv[i], "--clusters")) {
            options.clusters.clear();
            for (uint64_t k : parseList(next("--clusters"),
                                        "--clusters"))
                options.clusters.push_back(
                    static_cast<uint32_t>(k));
        }
        else if (!std::strcmp(argv[i], "--warmup"))
            options.warmupWindows = util::parseUnsigned32(
                next("--warmup"), "--warmup", 0, 64);
        else if (!std::strcmp(argv[i], "--csv"))
            csvPath = next("--csv");
        else if (!std::strcmp(argv[i], "--paranoid"))
            sim::setDefaultParanoidEvery(util::parseUnsigned(
                next("--paranoid"), "--paranoid"));
        else
            return usage();
    }
    if (synthThreads)
        profiles.push_back(
            experiment::syntheticScaleProfile(synthThreads, synthMean));
    if (profiles.empty())
        for (workload::AppId app : workload::allApps())
            profiles.push_back(workload::profile(app));
    if (options.windows.empty())
        options.windows = {20'000, 50'000};
    if (options.clusters.empty())
        options.clusters = {4, 8};

    experiment::SamplingStudy study =
        experiment::samplingStudy(profiles, options);

    std::printf("%-10s %5s %8s %4s %8s %7s %9s %8s\n", "app",
                "procs", "window", "k", "err%", "refs/", "plan_ms",
                "speedup");
    for (const experiment::SamplingCell &c : study.cells)
        std::printf("%-10s %5u %8llu %4u %8.3f %7.1f %9.1f %8.2f\n",
                    c.app.c_str(), c.processors,
                    static_cast<unsigned long long>(c.windowRefs),
                    c.clustersRequested, c.errorPct, c.refsRatio,
                    c.planWallMs, c.speedup);
    if (!csvPath.empty()) {
        experiment::writeSamplingCsv(csvPath, study);
        std::printf("study written to %s\n", csvPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    try {
        if (!std::strcmp(argv[1], "sweep"))
            return runSweep(argc, argv);
        if (!std::strcmp(argv[1], "hierarchy"))
            return runHierarchy(argc, argv);
        if (!std::strcmp(argv[1], "chaos"))
            return runChaos(argc, argv);
        if (!std::strcmp(argv[1], "sample"))
            return runSample(argc, argv);
        if (argc < 4)
            return usage();

        workload::AppId app = workload::appByName(argv[1]);
        auto alg = placement::algorithmFromName(argv[2]);
        if (!alg) {
            std::fprintf(stderr, "unknown algorithm: %s\n", argv[2]);
            return usage();
        }
        uint32_t procs = util::parseUnsigned32(
            argv[3], "processors", 1, sim::kMaxProcessors);

        uint32_t contexts = 0, assoc = 1, latency = 50, switchCy = 6;
        uint64_t cacheBytes = 0;
        uint32_t scale = workload::defaultScale();
        bool infinite = false, profile = false;
        std::string metricsPath;
        for (int i = 4; i < argc; ++i) {
            auto next = [&](const char *flag) -> const char * {
                util::fatalIf(i + 1 >= argc,
                              std::string(flag) + " needs a value");
                return argv[++i];
            };
            if (!std::strcmp(argv[i], "--contexts"))
                contexts = util::parseUnsigned32(next("--contexts"),
                                                 "--contexts", 1);
            else if (!std::strcmp(argv[i], "--cache"))
                cacheBytes = util::parseUnsigned(next("--cache"),
                                                 "--cache", 1);
            else if (!std::strcmp(argv[i], "--assoc"))
                assoc = util::parseUnsigned32(next("--assoc"),
                                              "--assoc", 1);
            else if (!std::strcmp(argv[i], "--latency"))
                latency = util::parseUnsigned32(next("--latency"),
                                                "--latency", 1);
            else if (!std::strcmp(argv[i], "--switch"))
                switchCy = util::parseUnsigned32(next("--switch"),
                                                 "--switch");
            else if (!std::strcmp(argv[i], "--scale"))
                scale = util::parseUnsigned32(next("--scale"),
                                              "--scale", 1);
            else if (!std::strcmp(argv[i], "--infinite"))
                infinite = true;
            else if (!std::strcmp(argv[i], "--profile"))
                profile = true;
            else if (!std::strcmp(argv[i], "--jobs"))
                util::ThreadPool::setDefaultJobs(util::parseUnsigned32(
                    next("--jobs"), "--jobs", 0, 4096));
            else if (!std::strcmp(argv[i], "--metrics-out"))
                metricsPath = next("--metrics-out");
            else if (!std::strcmp(argv[i], "--fault"))
                fault::arm(next("--fault"));
            else if (!std::strcmp(argv[i], "--paranoid"))
                sim::setDefaultParanoidEvery(util::parseUnsigned(
                    next("--paranoid"), "--paranoid"));
            else
                return usage();
        }

        if (!metricsPath.empty())
            obs::setMetricsEnabled(true);

        experiment::Lab lab(scale);
        const auto &an = lab.analysis(app);
        if (contexts == 0) {
            contexts = static_cast<uint32_t>(
                util::divCeil(an.threadCount(), procs));
        }

        sim::SimConfig cfg =
            lab.configFor(app, {procs, contexts}, infinite);
        if (cacheBytes)
            cfg.cacheBytes = cacheBytes;
        cfg.associativity = assoc;
        cfg.memoryLatency = latency;
        cfg.contextSwitchCycles = switchCy;
        cfg.profileSharing = profile;
        cfg.validate();

        auto placement = lab.placementFor(app, *alg, procs);
        auto stats = sim::simulate(cfg, lab.traces(app), placement);

        std::printf("%s | %s | %s\n", workload::appName(app).c_str(),
                    placement::algorithmName(*alg).c_str(),
                    cfg.describe().c_str());
        std::printf("placement: %s\n", placement.describe().c_str());
        std::printf("load imbalance: %s\n\n",
                    util::fmtFixed(placement.loadImbalance(
                                       an.threadLength()),
                                   3)
                        .c_str());

        util::TextTable table;
        table.setHeader({"metric", "value"});
        auto add = [&](const std::string &k, uint64_t v) {
            table.addRow({k, util::fmtThousands(
                                 static_cast<int64_t>(v))});
        };
        add("execution time (cycles)", stats.executionTime());
        add("instructions", stats.totalInstructions());
        add("data references", stats.totalMemRefs());
        add("hits", stats.totalHits());
        add("compulsory misses",
            stats.totalMissCount(sim::MissKind::Compulsory));
        add("intra-thread conflicts",
            stats.totalMissCount(sim::MissKind::IntraConflict));
        add("inter-thread conflicts",
            stats.totalMissCount(sim::MissKind::InterConflict));
        add("invalidation misses",
            stats.totalMissCount(sim::MissKind::Invalidation));
        add("upgrades", stats.totalUpgrades());
        add("invalidations sent", stats.totalInvalidationsSent());
        add("sharing compulsory", stats.sharingCompulsoryMisses);
        table.addRow({"miss rate",
                      util::fmtPercent(stats.missRate())});
        table.print();

        if (stats.profiledSharing) {
            const auto &p = stats.sharingProfile;
            std::printf("\nsharing profile: %llu shared blocks "
                        "(read-only %s, migratory %s), mean write run "
                        "%s\n",
                        static_cast<unsigned long long>(
                            p.sharedBlocks),
                        util::fmtPercent(p.readOnlyFraction(), 1)
                            .c_str(),
                        util::fmtPercent(p.migratoryFraction(), 1)
                            .c_str(),
                        util::fmtFixed(p.writeRunLength.mean(), 1)
                            .c_str());
        }
        if (!metricsPath.empty()) {
            obs::Registry::instance().writeJsonFile(metricsPath);
            std::printf("(wrote %s)\n", metricsPath.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
