/**
 * @file
 * Tests for the exhaustive placement oracles, and oracle-backed
 * quality bounds on the production heuristics: LPT + refinement vs.
 * the true optimal makespan, and the greedy cluster-combining engine
 * vs. the true maximum sharing capture.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/balance.h"
#include "core/clusterer.h"
#include "core/load_balance.h"
#include "core/metrics.h"
#include "core/optimal.h"
#include "util/error.h"
#include "util/rng.h"

namespace tsp::placement {
namespace {

// ------------------------------------------------------------- makespan

TEST(OptimalMakespan, KnownInstance)
{
    // {7,6,5,4,3} on 2 processors: optimum 13 ({7,6} vs {5,4,3}).
    auto result = optimalMakespan({7, 6, 5, 4, 3}, 2);
    EXPECT_DOUBLE_EQ(result.value, 13.0);
    auto loads = result.map.processorLoads({7, 6, 5, 4, 3});
    EXPECT_EQ(*std::max_element(loads.begin(), loads.end()), 13u);
}

TEST(OptimalMakespan, SingleProcessor)
{
    auto result = optimalMakespan({3, 3, 3}, 1);
    EXPECT_DOUBLE_EQ(result.value, 9.0);
}

TEST(OptimalMakespan, MoreProcessorsThanThreads)
{
    auto result = optimalMakespan({10, 20}, 5);
    EXPECT_DOUBLE_EQ(result.value, 20.0);
}

TEST(OptimalMakespan, GuardsAgainstLargeInstances)
{
    std::vector<uint64_t> lengths(maxOracleThreads + 1, 1);
    EXPECT_THROW(optimalMakespan(lengths, 2), util::FatalError);
    EXPECT_THROW(optimalMakespan({}, 2), util::FatalError);
    EXPECT_THROW(optimalMakespan({1}, 0), util::FatalError);
}

class LptVsOptimal : public ::testing::TestWithParam<int>
{};

TEST_P(LptVsOptimal, RefinedLptIsNearOptimal)
{
    util::Rng rng(4000 + GetParam());
    uint32_t t = 5 + static_cast<uint32_t>(rng.nextBelow(6));
    uint32_t p = 2 + static_cast<uint32_t>(rng.nextBelow(3));
    std::vector<uint64_t> lengths(t);
    for (auto &l : lengths)
        l = 100 + rng.nextBelow(10000);

    auto optimal = optimalMakespan(lengths, p);
    auto lpt = loadBalancedPlacement(lengths, p);
    auto loads = lpt.processorLoads(lengths);
    double peak = static_cast<double>(
        *std::max_element(loads.begin(), loads.end()));

    EXPECT_GE(peak, optimal.value);  // the oracle really is a bound
    // LPT + local search: empirically within a few percent; the
    // theoretical LPT bound (4/3) is a hard backstop.
    EXPECT_LE(peak, optimal.value * (4.0 / 3.0) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LptVsOptimal,
                         ::testing::Range(0, 15));

// -------------------------------------------------------------- sharing

TEST(OptimalSharing, PicksTheObviousPartition)
{
    // Pairs (0,1) and (2,3) share heavily; any other partition loses.
    stats::PairMatrix m(4);
    m.set(0, 1, 10.0);
    m.set(2, 3, 8.0);
    m.set(0, 2, 1.0);
    auto result = optimalSharingCapture(m, 2);
    EXPECT_DOUBLE_EQ(result.value, 18.0);
    EXPECT_EQ(result.map.processorOf(0), result.map.processorOf(1));
    EXPECT_EQ(result.map.processorOf(2), result.map.processorOf(3));
    EXPECT_TRUE(result.map.isThreadBalanced());
}

TEST(OptimalSharing, RespectsThreadBalance)
{
    // All sharing concentrated on one trio; thread balance forbids
    // putting all three together when t=4, p=2 (2+2 split required).
    stats::PairMatrix m(4);
    m.set(0, 1, 10.0);
    m.set(0, 2, 10.0);
    m.set(1, 2, 10.0);
    auto result = optimalSharingCapture(m, 2);
    EXPECT_TRUE(result.map.isThreadBalanced());
    EXPECT_DOUBLE_EQ(result.value, 10.0);  // only one pair co-located
}

TEST(OptimalSharing, UnevenThreadCounts)
{
    // 5 threads on 2 processors: one cluster of 3, one of 2.
    stats::PairMatrix m(5);
    m.set(0, 1, 5.0);
    m.set(1, 2, 5.0);
    m.set(3, 4, 7.0);
    auto result = optimalSharingCapture(m, 2);
    EXPECT_TRUE(result.map.isThreadBalanced());
    EXPECT_DOUBLE_EQ(result.value, 17.0);  // {0,1,2} + {3,4}
}

TEST(OptimalSharing, GuardsAgainstLargeInstances)
{
    stats::PairMatrix big(maxOracleThreads + 1);
    EXPECT_THROW(optimalSharingCapture(big, 2), util::FatalError);
}

class GreedyVsOptimal : public ::testing::TestWithParam<int>
{};

TEST_P(GreedyVsOptimal, GreedyCapturesMostOfOptimalSharing)
{
    util::Rng rng(6000 + GetParam());
    uint32_t t = 6 + static_cast<uint32_t>(rng.nextBelow(4));
    uint32_t p = 2 + static_cast<uint32_t>(rng.nextBelow(2));
    stats::PairMatrix m(t);
    for (uint32_t a = 0; a < t; ++a)
        for (uint32_t b = a + 1; b < t; ++b)
            m.set(a, b, static_cast<double>(rng.nextBelow(100)));

    auto optimal = optimalSharingCapture(m, p);

    CoherenceTrafficMetric metric(m);
    ThreadBalanceConstraint constraint(t, p);
    GreedyClusterer engine(metric, constraint);
    auto greedyMap = engine.run(t, p);
    double captured = 0.0;
    for (const auto &cluster : greedyMap.clusters())
        captured += m.withinSum(cluster);

    EXPECT_LE(captured, optimal.value + 1e-9);
    // The greedy engine is a heuristic; on random instances it should
    // still land within 25% of the optimum.
    EXPECT_GE(captured, optimal.value * 0.75)
        << "t=" << t << " p=" << p << " optimal=" << optimal.value;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyVsOptimal,
                         ::testing::Range(0, 15));

TEST(OptimalSharing, ExploredCountIsReported)
{
    stats::PairMatrix m(6);
    auto result = optimalSharingCapture(m, 2);
    EXPECT_GT(result.explored, 0u);
}

} // namespace
} // namespace tsp::placement
