/**
 * @file
 * Workload generator tests: the trace composer's ratio bookkeeping,
 * layout construction, thread-length sampling, suite registry, and a
 * parameterized validation of all fourteen calibrated applications
 * against their Table 2 targets.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/static_analysis.h"
#include "trace/address_space.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/composer.h"
#include "workload/generator.h"
#include "workload/suite.h"
#include "workload/validate.h"

namespace tsp::workload {
namespace {

using trace::AddressSpace;

// --------------------------------------------------------------- composer

TEST(Composer, HitsLengthExactly)
{
    TraceComposer::Params params;
    params.targetLength = 10000;
    params.dataRefFrac = 0.4;
    params.sharedRefFrac = 0.5;
    params.writeFrac = 0.3;
    params.privatePoolBase = AddressSpace::privateBase(0);
    params.privatePoolWords = 256;
    TraceComposer c(0, params, util::Rng(1));
    uint64_t addr = AddressSpace::sharedWord(0);
    while (c.sharedRef(addr, false)) {
    }
    auto trace = c.finish();
    EXPECT_EQ(trace.instructionCount(), 10000u);
}

TEST(Composer, RatiosApproximateTargets)
{
    TraceComposer::Params params;
    params.targetLength = 50000;
    params.dataRefFrac = 0.35;
    params.sharedRefFrac = 0.6;
    params.writeFrac = 0.3;
    params.privatePoolBase = AddressSpace::privateBase(1);
    params.privatePoolWords = 512;
    TraceComposer c(1, params, util::Rng(2));
    uint64_t i = 0;
    while (c.sharedRef(AddressSpace::sharedWord(i++ % 1000), false)) {
    }
    auto trace = c.finish();

    double refFrac = static_cast<double>(trace.memRefCount()) /
                     static_cast<double>(trace.instructionCount());
    EXPECT_NEAR(refFrac, 0.35, 0.02);

    // Shared = refs into the shared region.
    uint64_t shared = 0;
    for (const auto &e : trace.events())
        if (e.isMemRef() && AddressSpace::isShared(e.address()))
            ++shared;
    double sharedFrac = static_cast<double>(shared) /
                        static_cast<double>(trace.memRefCount());
    EXPECT_NEAR(sharedFrac, 0.6, 0.03);
}

TEST(Composer, FinishPadsShortBudget)
{
    TraceComposer::Params params;
    params.targetLength = 500;
    params.dataRefFrac = 0.5;
    params.sharedRefFrac = 0.0;  // no shared refs at all
    params.writeFrac = 0.2;
    params.privatePoolBase = AddressSpace::privateBase(2);
    params.privatePoolWords = 64;
    TraceComposer c(2, params, util::Rng(3));
    auto trace = c.finish();
    EXPECT_EQ(trace.instructionCount(), 500u);
    EXPECT_GT(trace.memRefCount(), 0u);
}

TEST(Composer, BadParamsAreFatal)
{
    TraceComposer::Params params;
    params.targetLength = 100;
    params.dataRefFrac = 0.0;  // invalid
    params.sharedRefFrac = 0.5;
    params.writeFrac = 0.3;
    params.privatePoolBase = AddressSpace::privateBase(0);
    params.privatePoolWords = 8;
    EXPECT_THROW(TraceComposer(0, params, util::Rng(4)),
                 util::FatalError);
}

// ----------------------------------------------------------------- layout

TEST(Layout, PoolSizesFollowBudgets)
{
    AppProfile p;
    p.threads = 8;
    p.meanLength = 100000;
    p.dataRefFrac = 0.4;
    p.sharedRefFrac = 0.5;      // 20k shared refs per thread
    p.refsPerSharedAddr = 20.0; // -> ~1000 addresses
    p.globalFrac = 1.0;
    auto layout = computeLayout(p, 1);
    EXPECT_NEAR(static_cast<double>(layout.globalWords), 1000.0, 64.0);
    EXPECT_EQ(layout.edgeWords, 0u);
    EXPECT_EQ(layout.mailboxWords, 0u);
    EXPECT_EQ(layout.sliceWords, 0u);
}

TEST(Layout, MixtureMustSumToOne)
{
    AppProfile p;
    p.globalFrac = 0.5;
    p.neighborFrac = 0.2;  // sums to 0.7
    EXPECT_THROW(computeLayout(p, 1), util::FatalError);
}

TEST(Layout, RegionsDoNotOverlap)
{
    AppProfile p;
    p.threads = 4;
    p.meanLength = 200000;
    p.globalFrac = 0.4;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.2;
    p.sliceFrac = 0.2;
    auto layout = computeLayout(p, 1);
    EXPECT_LE(layout.globalBase + layout.globalWords,
              layout.edgesBase);
    EXPECT_LE(layout.edgesBase + 4 * layout.edgeWords,
              layout.mailboxBase);
    EXPECT_LE(layout.mailboxBase + 16 * layout.mailboxWords,
              layout.slicesBase);
    EXPECT_GT(layout.totalWords(), 0u);
}

// ---------------------------------------------------------------- lengths

TEST(Lengths, ZeroDevIsUniform)
{
    AppProfile p;
    p.threads = 8;
    p.meanLength = 80000;
    p.lengthDevPct = 0.0;
    auto lengths = sampleThreadLengths(p, 1);
    for (uint64_t l : lengths)
        EXPECT_EQ(l, 80000u);
}

TEST(Lengths, MeanIsPinnedAndDeterministic)
{
    AppProfile p;
    p.threads = 16;
    p.meanLength = 100000;
    p.lengthDevPct = 60.0;
    p.seed = 9;
    auto a = sampleThreadLengths(p, 1);
    auto b = sampleThreadLengths(p, 1);
    EXPECT_EQ(a, b);
    double sum = 0;
    for (uint64_t l : a)
        sum += static_cast<double>(l);
    EXPECT_NEAR(sum / 16.0, 100000.0, 2000.0);
}

TEST(Lengths, ScaleDividesMean)
{
    AppProfile p;
    p.threads = 4;
    p.meanLength = 64000;
    p.lengthDevPct = 0.0;
    auto lengths = sampleThreadLengths(p, 8);
    for (uint64_t l : lengths)
        EXPECT_EQ(l, 8000u);
}

TEST(Lengths, HighDevProducesImbalance)
{
    AppProfile p;
    p.threads = 32;
    p.meanLength = 50000;
    p.lengthDevPct = 180.0;
    p.seed = 13;
    auto lengths = sampleThreadLengths(p, 1);
    uint64_t mx = 0, mn = UINT64_MAX;
    for (uint64_t l : lengths) {
        mx = std::max(mx, l);
        mn = std::min(mn, l);
    }
    EXPECT_GT(mx, 3 * mn);
}

// ------------------------------------------------------------------ suite

TEST(Suite, FourteenAppsSplitByGrain)
{
    EXPECT_EQ(allApps().size(), 14u);
    EXPECT_EQ(coarseApps().size(), 7u);
    EXPECT_EQ(mediumApps().size(), 7u);
    for (AppId app : coarseApps())
        EXPECT_EQ(profile(app).grain, Grain::Coarse);
    for (AppId app : mediumApps())
        EXPECT_EQ(profile(app).grain, Grain::Medium);
}

TEST(Suite, GaussHasTheMostThreads)
{
    EXPECT_EQ(profile(AppId::Gauss).threads, 127u);
    for (AppId app : allApps())
        EXPECT_LE(profile(app).threads, 127u);
}

TEST(Suite, FFTHasLargestLengthDeviation)
{
    double fft = profile(AppId::FFT).lengthDevPct;
    for (AppId app : allApps())
        EXPECT_LE(profile(app).lengthDevPct, fft);
    EXPECT_NEAR(fft, 187.6, 1e-9);
}

TEST(Suite, CacheSizesFollowThePaper)
{
    // Coarse apps + Health + FFT: 32 KB; other medium: 64 KB.
    for (AppId app : coarseApps())
        EXPECT_EQ(profile(app).cacheBytes, 32u * 1024);
    EXPECT_EQ(profile(AppId::Health).cacheBytes, 32u * 1024);
    EXPECT_EQ(profile(AppId::FFT).cacheBytes, 32u * 1024);
    EXPECT_EQ(profile(AppId::Gauss).cacheBytes, 64u * 1024);
    EXPECT_EQ(profile(AppId::Fullconn).cacheBytes, 64u * 1024);
}

TEST(Suite, NamesRoundTrip)
{
    for (AppId app : allApps())
        EXPECT_EQ(appByName(appName(app)), app);
    EXPECT_THROW(appByName("NotAnApp"), util::FatalError);
}

TEST(Suite, ScaledCacheFloorsAt4KB)
{
    EXPECT_EQ(scaledCacheBytes(AppId::Water, 1), 32u * 1024);
    EXPECT_EQ(scaledCacheBytes(AppId::Water, 4), 8u * 1024);
    EXPECT_EQ(scaledCacheBytes(AppId::Water, 64), 4u * 1024);
}

TEST(Suite, TracesAreMemoized)
{
    auto a = appTraces(AppId::FFT, 64);
    auto b = appTraces(AppId::FFT, 64);
    EXPECT_EQ(a.get(), b.get());
}

// -------------------------------------------- per-app profile validation

class SuiteValidation : public ::testing::TestWithParam<AppId>
{};

TEST_P(SuiteValidation, GeneratedTracesMatchProfileTargets)
{
    AppId app = GetParam();
    const AppProfile &p = profile(app);
    const uint32_t scale = 16;
    auto traces = appTraces(app, scale);
    auto report = validateTraces(p, *traces, scale);
    EXPECT_TRUE(report.allOk()) << report.render();
}

TEST_P(SuiteValidation, AddressesStayInDesignatedRegions)
{
    AppId app = GetParam();
    const uint32_t scale = 16;
    auto traces = appTraces(app, scale);
    for (const auto &t : traces->threads()) {
        uint64_t privLo = AddressSpace::privateBase(t.id());
        uint64_t privHi = privLo + AddressSpace::privateSpan;
        for (const auto &e : t.events()) {
            if (!e.isMemRef())
                continue;
            uint64_t a = e.address();
            bool inShared = AddressSpace::isShared(a);
            bool inOwnPrivate = a >= privLo && a < privHi;
            ASSERT_TRUE(inShared || inOwnPrivate)
                << appName(app) << " thread " << t.id() << " addr "
                << std::hex << a;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteValidation,
                         ::testing::ValuesIn(allApps()),
                         [](const auto &info) {
                             std::string n = appName(info.param);
                             std::string out;
                             for (char c : n)
                                 if (std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     out.push_back(c);
                             return out;
                         });

TEST(Generator, DeterministicAcrossCalls)
{
    const AppProfile &p = profile(AppId::Water);
    auto a = generateTraces(p, 32);
    auto b = generateTraces(p, 32);
    ASSERT_EQ(a.threadCount(), b.threadCount());
    for (uint32_t i = 0; i < a.threadCount(); ++i)
        EXPECT_EQ(a.thread(i), b.thread(i));
}

TEST(Generator, SharingActuallyExists)
{
    // Every app must have at least one pair of threads with shared
    // references, or the placement study is vacuous.
    for (AppId app : allApps()) {
        auto traces = appTraces(app, 16);
        auto an = analysis::StaticAnalysis::analyze(*traces);
        EXPECT_GT(an.sharedRefs().total(), 0.0) << appName(app);
    }
}

TEST(Generator, ScaleIsValidated)
{
    EXPECT_THROW(generateTraces(profile(AppId::Water), 3),
                 util::FatalError);
}

TEST(DefaultScale, FallsBackToEight)
{
    // (Environment-dependent: only checked when TSP_SCALE is unset.)
    if (getenv("TSP_SCALE") == nullptr) {
        EXPECT_EQ(defaultScale(), 8u);
    }
}

} // namespace
} // namespace tsp::workload
