/**
 * @file
 * Unit tests for the trace module: event packing, thread traces,
 * cursors, trace sets, address layout and serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/address_space.h"
#include "trace/event.h"
#include "trace/thread_trace.h"
#include "trace/trace_io.h"
#include "trace/trace_set.h"
#include "util/error.h"

namespace tsp::trace {
namespace {

// ----------------------------------------------------------------- event

TEST(TraceEvent, PackUnpackLoad)
{
    TraceEvent e = TraceEvent::load(0xDEADBEEF);
    EXPECT_EQ(e.kind(), EventKind::Load);
    EXPECT_TRUE(e.isMemRef());
    EXPECT_FALSE(e.isStore());
    EXPECT_EQ(e.address(), 0xDEADBEEFull);
    EXPECT_EQ(e.instructions(), 1u);
}

TEST(TraceEvent, PackUnpackStore)
{
    TraceEvent e = TraceEvent::store(0x1234);
    EXPECT_EQ(e.kind(), EventKind::Store);
    EXPECT_TRUE(e.isStore());
    EXPECT_EQ(e.address(), 0x1234ull);
}

TEST(TraceEvent, PackUnpackWork)
{
    TraceEvent e = TraceEvent::work(1000);
    EXPECT_EQ(e.kind(), EventKind::Work);
    EXPECT_FALSE(e.isMemRef());
    EXPECT_EQ(e.instructions(), 1000u);
}

TEST(TraceEvent, RawRoundTrip)
{
    TraceEvent e = TraceEvent::store(TraceEvent::maxPayload);
    EXPECT_EQ(TraceEvent::fromRaw(e.raw()), e);
}

TEST(TraceEvent, BoundsChecked)
{
    EXPECT_THROW(TraceEvent::work(0), util::PanicError);
    EXPECT_THROW(TraceEvent::work(TraceEvent::maxPayload + 1),
                 util::PanicError);
    EXPECT_THROW(TraceEvent::load(TraceEvent::maxPayload + 1),
                 util::PanicError);
    EXPECT_EQ(TraceEvent::load(0).address(), 0u);
}

TEST(TraceEvent, AddressOnWorkPanics)
{
    EXPECT_THROW(TraceEvent::work(5).address(), util::PanicError);
}

TEST(TraceEvent, PackUnpackBarrier)
{
    TraceEvent e = TraceEvent::barrier(4);
    EXPECT_EQ(e.kind(), EventKind::Barrier);
    EXPECT_FALSE(e.isMemRef());
    EXPECT_EQ(e.instructions(), 0u);
    EXPECT_EQ(e.barrierIndex(), 4u);
    EXPECT_EQ(TraceEvent::fromRaw(e.raw()), e);
    EXPECT_THROW(TraceEvent::work(1).barrierIndex(), util::PanicError);
}

TEST(ThreadTrace, BarriersAreNumberedAndCounted)
{
    ThreadTrace t;
    t.appendWork(3);
    t.appendBarrier();
    t.appendLoad(4);
    t.appendBarrier();
    EXPECT_EQ(t.barrierCount(), 2u);
    EXPECT_EQ(t.instructionCount(), 4u);  // barriers cost nothing
    EXPECT_EQ(t.events()[1].barrierIndex(), 0u);
    EXPECT_EQ(t.events()[3].barrierIndex(), 1u);
}

TEST(TraceCursor, BarrierEndsChunk)
{
    ThreadTrace t;
    t.appendWork(5);
    t.appendBarrier();
    t.appendWork(2);
    TraceCursor cur(t);
    auto c1 = cur.next();
    EXPECT_EQ(c1.work, 5u);
    EXPECT_FALSE(c1.hasRef);
    EXPECT_TRUE(c1.isBarrier);
    auto c2 = cur.next();
    EXPECT_EQ(c2.work, 2u);
    EXPECT_FALSE(c2.isBarrier);
    EXPECT_TRUE(cur.done());
}

TEST(TraceIo, BarrierEventsRoundTrip)
{
    TraceSet s("sync-app");
    ThreadTrace t0(0);
    t0.appendWork(5);
    t0.appendBarrier();
    t0.appendStore(8);
    s.addThread(std::move(t0));
    std::stringstream buf;
    saveBinary(s, buf);
    TraceSet loaded = loadBinary(buf);
    EXPECT_EQ(loaded.thread(0), s.thread(0));
    EXPECT_EQ(loaded.thread(0).barrierCount(), 1u);
}

// ----------------------------------------------------------- thread trace

TEST(ThreadTrace, CountsAreExact)
{
    ThreadTrace t(3);
    t.appendWork(10);
    t.appendLoad(100);
    t.appendStore(200);
    t.appendWork(5);
    EXPECT_EQ(t.id(), 3u);
    EXPECT_EQ(t.instructionCount(), 17u);
    EXPECT_EQ(t.memRefCount(), 2u);
    EXPECT_EQ(t.loadCount(), 1u);
    EXPECT_EQ(t.storeCount(), 1u);
}

TEST(ThreadTrace, AdjacentWorkRunsMerge)
{
    ThreadTrace t;
    t.appendWork(10);
    t.appendWork(20);
    EXPECT_EQ(t.events().size(), 1u);
    EXPECT_EQ(t.instructionCount(), 30u);
}

TEST(ThreadTrace, ZeroWorkIsNoOp)
{
    ThreadTrace t;
    t.appendWork(0);
    EXPECT_TRUE(t.empty());
}

TEST(ThreadTrace, AppendEventDispatches)
{
    ThreadTrace t;
    t.append(TraceEvent::work(4));
    t.append(TraceEvent::load(8));
    t.append(TraceEvent::store(12));
    EXPECT_EQ(t.instructionCount(), 6u);
    EXPECT_EQ(t.memRefCount(), 2u);
}

// ---------------------------------------------------------------- cursor

TEST(TraceCursor, ChunksCombineWorkAndRef)
{
    ThreadTrace t;
    t.appendWork(7);
    t.appendLoad(100);
    t.appendStore(200);
    t.appendWork(3);

    TraceCursor cur(t);
    auto c1 = cur.next();
    EXPECT_EQ(c1.work, 7u);
    EXPECT_TRUE(c1.hasRef);
    EXPECT_FALSE(c1.isStore);
    EXPECT_EQ(c1.addr, 100u);
    EXPECT_EQ(c1.instructions(), 8u);

    auto c2 = cur.next();
    EXPECT_EQ(c2.work, 0u);
    EXPECT_TRUE(c2.isStore);
    EXPECT_EQ(c2.addr, 200u);

    auto c3 = cur.next();
    EXPECT_EQ(c3.work, 3u);
    EXPECT_FALSE(c3.hasRef);
    EXPECT_TRUE(cur.done());
}

TEST(TraceCursor, ChunkInstructionTotalMatchesTrace)
{
    ThreadTrace t;
    t.appendWork(5);
    t.appendLoad(4);
    t.appendWork(2);
    t.appendStore(8);
    t.appendWork(9);
    TraceCursor cur(t);
    uint64_t total = 0;
    while (!cur.done())
        total += cur.next().instructions();
    EXPECT_EQ(total, t.instructionCount());
}

TEST(TraceCursor, EmptyTraceIsImmediatelyDone)
{
    ThreadTrace t;
    TraceCursor cur(t);
    EXPECT_TRUE(cur.done());
}

// -------------------------------------------------------------- trace set

TEST(TraceSet, ThreadsMustBeDense)
{
    TraceSet s("app");
    s.addThread(ThreadTrace(0));
    EXPECT_THROW(s.addThread(ThreadTrace(5)), util::FatalError);
}

TEST(TraceSet, TotalsAggregate)
{
    TraceSet s("app");
    ThreadTrace t0(0);
    t0.appendWork(10);
    t0.appendLoad(4);
    ThreadTrace t1(1);
    t1.appendStore(8);
    s.addThread(std::move(t0));
    s.addThread(std::move(t1));
    EXPECT_EQ(s.threadCount(), 2u);
    EXPECT_EQ(s.totalInstructions(), 12u);
    EXPECT_EQ(s.totalMemRefs(), 2u);
    EXPECT_EQ(s.threadLengths(), (std::vector<uint64_t>{11, 1}));
}

// ---------------------------------------------------------- address space

TEST(AddressSpace, SharedAndPrivateDisjoint)
{
    EXPECT_TRUE(AddressSpace::isShared(AddressSpace::sharedWord(0)));
    EXPECT_TRUE(AddressSpace::isShared(
        AddressSpace::sharedWord(AddressSpace::sharedSpan /
                                     AddressSpace::wordBytes -
                                 1)));
    for (uint32_t tid : {0u, 1u, 64u, 127u}) {
        EXPECT_FALSE(AddressSpace::isShared(
            AddressSpace::privateWord(tid, 0)));
    }
}

TEST(AddressSpace, PrivateRegionsDisjointAcrossThreads)
{
    // A full private span of thread t must end before thread t+1's.
    for (uint32_t tid = 0; tid < 127; ++tid) {
        EXPECT_LE(AddressSpace::privateBase(tid) +
                      AddressSpace::privateSpan,
                  AddressSpace::privateBase(tid + 1));
    }
}

TEST(AddressSpace, PrivateBasesAvoid8MBIndexCollisions)
{
    // For the Section 4.3 "infinite cache" study: consecutive threads'
    // private pools must map to distinct 8 MB cache index windows
    // (given realistic per-thread footprints).
    constexpr uint64_t cache = 8ull * 1024 * 1024;
    constexpr uint64_t footprint = 48 * 1024;  // generous
    for (uint32_t a = 0; a < 32; ++a) {
        uint64_t ia = AddressSpace::privateBase(a) % cache;
        for (uint32_t b = a + 1; b < 32; ++b) {
            uint64_t ib = AddressSpace::privateBase(b) % cache;
            uint64_t lo = std::min(ia, ib), hi = std::max(ia, ib);
            EXPECT_GE(hi - lo, footprint)
                << "threads " << a << " and " << b;
        }
    }
}

TEST(AddressSpace, WordAddressesAreAligned)
{
    EXPECT_EQ(AddressSpace::sharedWord(5) % AddressSpace::wordBytes, 0u);
    EXPECT_EQ(AddressSpace::privateWord(3, 7) % AddressSpace::wordBytes,
              0u);
}

// -------------------------------------------------------------------- io

TEST(TraceIo, BinaryRoundTrip)
{
    TraceSet s("roundtrip-app");
    ThreadTrace t0(0);
    t0.appendWork(100);
    t0.appendLoad(AddressSpace::sharedWord(1));
    t0.appendStore(AddressSpace::privateWord(0, 2));
    ThreadTrace t1(1);
    t1.appendStore(44);
    s.addThread(std::move(t0));
    s.addThread(std::move(t1));

    std::stringstream buf;
    saveBinary(s, buf);
    TraceSet loaded = loadBinary(buf);

    EXPECT_EQ(loaded.name(), "roundtrip-app");
    ASSERT_EQ(loaded.threadCount(), 2u);
    EXPECT_EQ(loaded.thread(0), s.thread(0));
    EXPECT_EQ(loaded.thread(1), s.thread(1));
    EXPECT_EQ(loaded.totalInstructions(), s.totalInstructions());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE-not-a-trace";
    EXPECT_THROW(loadBinary(buf), util::FatalError);
}

TEST(TraceIo, RejectsTruncatedFile)
{
    TraceSet s("x");
    ThreadTrace t0(0);
    t0.appendWork(5);
    s.addThread(std::move(t0));
    std::stringstream buf;
    saveBinary(s, buf);
    std::string whole = buf.str();
    std::stringstream cut(whole.substr(0, whole.size() - 4));
    EXPECT_THROW(loadBinary(cut), util::FatalError);
}

TEST(TraceIo, FileRoundTrip)
{
    TraceSet s("file-app");
    ThreadTrace t0(0);
    t0.appendLoad(16);
    s.addThread(std::move(t0));
    std::string path = testing::TempDir() + "/tsp_trace_test.tspt";
    saveFile(s, path);
    TraceSet loaded = loadFile(path);
    EXPECT_EQ(loaded.name(), "file-app");
    EXPECT_EQ(loaded.thread(0), s.thread(0));
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_THROW(loadFile("/nonexistent/path/to/trace.tspt"),
                 util::FatalError);
}

} // namespace
} // namespace tsp::trace
