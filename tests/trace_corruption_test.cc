/**
 * @file
 * Fuzz-style robustness tests for the TSPT trace reader: every
 * truncation point and every single-byte corruption of a valid file
 * must surface as a clean FatalError — never a crash, a hang or a
 * bad_alloc from a corrupt declared size.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "trace/address_space.h"
#include "trace/trace_io.h"
#include "trace/trace_set.h"
#include "util/error.h"

namespace tsp::trace {
namespace {

/** A small trace exercising every section of the format. */
TraceSet
sampleSet()
{
    TraceSet s("corruption-app");
    ThreadTrace t0(0);
    t0.appendWork(100);
    t0.appendLoad(AddressSpace::sharedWord(1));
    t0.appendBarrier();
    t0.appendStore(AddressSpace::privateWord(0, 2));
    ThreadTrace t1(1);
    t1.appendStore(44);
    t1.appendWork(7);
    s.addThread(std::move(t0));
    s.addThread(std::move(t1));
    return s;
}

std::string
serialized(const TraceSet &s)
{
    std::ostringstream buf;
    saveBinary(s, buf);
    return buf.str();
}

void
appendU32(std::string &out, uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

TEST(TraceCorruption, EveryTruncationIsFatal)
{
    std::string whole = serialized(sampleSet());
    ASSERT_GT(whole.size(), 20u);
    for (size_t len = 0; len < whole.size(); ++len) {
        std::istringstream cut(whole.substr(0, len));
        EXPECT_THROW(loadBinary(cut), util::FatalError)
            << "prefix of " << len << " bytes parsed successfully";
    }
}

TEST(TraceCorruption, EveryByteFlipIsFatal)
{
    std::string whole = serialized(sampleSet());
    for (size_t i = 0; i < whole.size(); ++i) {
        std::string bad = whole;
        bad[i] = static_cast<char>(bad[i] ^ 0xFF);
        std::istringstream is(bad);
        EXPECT_THROW(loadBinary(is), util::FatalError)
            << "flip at byte " << i << " parsed successfully";
    }
}

TEST(TraceCorruption, CorruptionErrorsNameTheOffset)
{
    std::string whole = serialized(sampleSet());
    std::string bad = whole;
    bad[bad.size() - 1] =
        static_cast<char>(bad[bad.size() - 1] ^ 0xFF);
    std::istringstream is(bad);
    try {
        loadBinary(is);
        FAIL() << "corrupt payload parsed successfully";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceCorruption, VersionOneFilesStillLoad)
{
    // v2 layout: magic(4) version(4) payloadSize(8) crc(4) payload.
    // A v1 file is just magic + version + the raw body.
    TraceSet s = sampleSet();
    std::string v2 = serialized(s);
    std::string body = v2.substr(20);

    std::string v1("TSPT", 4);
    appendU32(v1, 1);
    v1 += body;

    std::istringstream is(v1);
    TraceSet loaded = loadBinary(is);
    EXPECT_EQ(loaded.name(), s.name());
    ASSERT_EQ(loaded.threadCount(), s.threadCount());
    EXPECT_EQ(loaded.thread(0), s.thread(0));
    EXPECT_EQ(loaded.thread(1), s.thread(1));
}

TEST(TraceCorruption, HugeDeclaredNameLengthDoesNotAllocate)
{
    // v1 so the reader hits the raw body directly: a 4 GB name length
    // against a near-empty stream must fail by validation, not by
    // attempting the allocation.
    std::string file("TSPT", 4);
    appendU32(file, 1);
    appendU32(file, 0xFFFFFFFFu);  // declared name length
    file += "ab";
    std::istringstream is(file);
    try {
        loadBinary(is);
        FAIL() << "huge name length parsed successfully";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceCorruption, HugeDeclaredEventCountDoesNotAllocate)
{
    std::string file("TSPT", 4);
    appendU32(file, 1);
    appendU32(file, 1);  // name length
    file += "x";
    appendU32(file, 1);  // thread count
    appendU32(file, 0);  // thread id
    uint64_t count = 1ull << 60;
    file.append(reinterpret_cast<const char *>(&count), sizeof(count));
    std::istringstream is(file);
    try {
        loadBinary(is);
        FAIL() << "huge event count parsed successfully";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceCorruption, UnsupportedVersionIsFatal)
{
    std::string file("TSPT", 4);
    appendU32(file, 3);
    std::istringstream is(file);
    EXPECT_THROW(loadBinary(is), util::FatalError);
}

TEST(TraceCorruption, DeclaredPayloadSizeMismatchIsFatal)
{
    // Append trailing garbage: v2's declared payload size no longer
    // matches the remaining bytes, which must be rejected up front.
    std::string whole = serialized(sampleSet());
    whole += "trailing-garbage";
    std::istringstream is(whole);
    EXPECT_THROW(loadBinary(is), util::FatalError);
}

} // namespace
} // namespace tsp::trace
