/**
 * @file
 * sim::SharerSet unit tests: randomized parity against a
 * std::set<uint32_t> reference at widths spanning the inline/spill
 * boundary (1, 64, 128, 129, 1024), iteration-order guarantees (the
 * ascending countr_zero walk the golden digests depend on), and the
 * spill/shrink boundary behavior.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/config.h"
#include "sim/sharer_set.h"
#include "util/rng.h"

namespace tsp::sim {
namespace {

std::vector<uint32_t>
ascending(const std::set<uint32_t> &s)
{
    return std::vector<uint32_t>(s.begin(), s.end());
}

// Randomized insert/erase/query parity against the reference set, at
// every interesting width. forEach order must equal std::set order
// (ascending), which is the countr_zero walk the simulator's
// invalidation delivery relies on.
TEST(SharerSet, RandomizedParityAcrossWidths)
{
    for (uint32_t width : {1u, 64u, 128u, 129u, 1024u}) {
        util::Rng rng(0xC0FFEEu + width);
        SharerSet set;
        std::set<uint32_t> ref;
        for (int step = 0; step < 4000; ++step) {
            uint32_t id = static_cast<uint32_t>(rng.nextBelow(width));
            switch (rng.nextBelow(3)) {
              case 0:
                set.set(id);
                ref.insert(id);
                break;
              case 1:
                set.reset(id);
                ref.erase(id);
                break;
              default:
                EXPECT_EQ(set.test(id), ref.count(id) > 0)
                    << "width " << width << " id " << id;
                break;
            }
            if (step % 97 == 0) {
                EXPECT_EQ(set.count(), ref.size()) << "width " << width;
                EXPECT_EQ(set.any(), !ref.empty()) << "width " << width;
                EXPECT_EQ(set.toVector(), ascending(ref))
                    << "width " << width;
            }
        }
        EXPECT_EQ(set.toVector(), ascending(ref)) << "width " << width;
        set.clear();
        EXPECT_FALSE(set.any());
        EXPECT_EQ(set.count(), 0u);
    }
}

// Copy/assign/move parity after randomized mutation, including narrow
// <- wide and wide <- narrow assignments (capacity reuse path).
TEST(SharerSet, CopyMoveAssignParity)
{
    util::Rng rng(0xBADF00Du);
    SharerSet wide, narrow;
    std::set<uint32_t> wideRef, narrowRef;
    for (int step = 0; step < 1000; ++step) {
        uint32_t w = static_cast<uint32_t>(rng.nextBelow(1024));
        uint32_t n = static_cast<uint32_t>(rng.nextBelow(100));
        wide.set(w);
        wideRef.insert(w);
        narrow.set(n);
        narrowRef.insert(n);
    }

    SharerSet copy(wide);
    EXPECT_EQ(copy.toVector(), ascending(wideRef));
    EXPECT_TRUE(copy == wide);

    // Narrow <- wide must grow; wide <- narrow must zero the tail.
    SharerSet a = narrow;
    a = wide;
    EXPECT_EQ(a.toVector(), ascending(wideRef));
    SharerSet b = wide;
    b = narrow;
    EXPECT_EQ(b.toVector(), ascending(narrowRef));
    EXPECT_TRUE(b == narrow);

    SharerSet moved(std::move(a));
    EXPECT_EQ(moved.toVector(), ascending(wideRef));
    SharerSet target;
    target = std::move(moved);
    EXPECT_EQ(target.toVector(), ascending(wideRef));
}

// The inline/spill boundary: ids < 128 never spill (the hot-path
// allocation-free contract), id 128 spills, and shrinkToFit returns
// to inline storage once the high words empty out.
TEST(SharerSet, SpillAndShrinkBoundary)
{
    SharerSet s;
    EXPECT_EQ(s.capacityBits(), SharerSet::kInlineBits);
    for (uint32_t id = 0; id < SharerSet::kInlineBits; ++id)
        s.set(id);
    EXPECT_FALSE(s.spilled());
    EXPECT_EQ(s.count(), SharerSet::kInlineBits);

    s.set(SharerSet::kInlineBits);  // first id that cannot fit inline
    EXPECT_TRUE(s.spilled());
    EXPECT_EQ(s.count(), SharerSet::kInlineBits + 1);
    EXPECT_TRUE(s.test(SharerSet::kInlineBits));
    EXPECT_TRUE(s.test(0));

    // Beyond-capacity queries are benign on narrow sets.
    SharerSet narrow;
    narrow.set(5);
    EXPECT_FALSE(narrow.test(kMaxProcessors - 1));
    narrow.reset(kMaxProcessors - 1);  // no-op, no growth
    EXPECT_FALSE(narrow.spilled());

    // Shrink: while any high bit is set shrinkToFit must refuse...
    s.shrinkToFit();
    EXPECT_TRUE(s.spilled());
    // ...and once the high words are clear it returns to inline with
    // the low bits intact.
    s.reset(SharerSet::kInlineBits);
    s.shrinkToFit();
    EXPECT_FALSE(s.spilled());
    EXPECT_EQ(s.count(), SharerSet::kInlineBits);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(SharerSet::kInlineBits - 1));

    // A cleared spilled set keeps capacity until asked to shrink.
    SharerSet t;
    t.set(1000);
    EXPECT_TRUE(t.spilled());
    t.clear();
    EXPECT_TRUE(t.spilled());
    EXPECT_GE(t.capacityBits(), 1001u);
    t.shrinkToFit();
    EXPECT_FALSE(t.spilled());
}

// kMaxProcessors is the one and only cap: a set at the cap's width
// works, and equality is width-agnostic.
TEST(SharerSet, WidthAgnosticEquality)
{
    SharerSet a, b;
    a.set(3);
    b.set(3);
    b.set(kMaxProcessors - 1);
    EXPECT_FALSE(a == b);
    b.reset(kMaxProcessors - 1);
    EXPECT_TRUE(a == b);  // b is wide, a inline; same members
    EXPECT_TRUE(b == a);
}

} // namespace
} // namespace tsp::sim
