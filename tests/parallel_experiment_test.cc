/**
 * @file
 * Tests of the parallel experiment engine: ParallelRunner fan-out
 * order and deduplication, Lab's concurrent memoization, and the
 * headline guarantee — study results are bit-identical between
 * serial (jobs=1) and wide (jobs=N) execution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "experiment/checkpoint.h"
#include "experiment/lab.h"
#include "experiment/parallel.h"
#include "experiment/studies.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace tsp::experiment {
namespace {

using placement::Algorithm;
using workload::AppId;

constexpr uint32_t kScale = 64;

unsigned
wideJobs()
{
    return std::max(4u, std::thread::hardware_concurrency());
}

// ---------------------------------------------------------- ParallelRunner

TEST(ParallelRunner, ResultsComeBackInInputOrder)
{
    Lab lab(kScale);
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::LoadBal, {4, 2}, false},
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::ShareRefs, {8, 1}, false},
    };
    auto parallel = ParallelRunner(lab, wideJobs()).runAll(jobs);
    ASSERT_EQ(parallel.size(), jobs.size());

    Lab serialLab(kScale);
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto expect = serialLab.run(jobs[i].app, jobs[i].alg,
                                    jobs[i].point,
                                    jobs[i].infiniteCache);
        EXPECT_EQ(parallel[i].executionTime, expect.executionTime);
        EXPECT_EQ(parallel[i].placement.assignment(),
                  expect.placement.assignment());
        EXPECT_EQ(parallel[i].loadImbalance, expect.loadImbalance);
    }
}

TEST(ParallelRunner, DuplicateJobsShareOneResult)
{
    Lab lab(kScale);
    RunJob job{AppId::Water, Algorithm::Random, {4, 2}, false};
    auto results =
        ParallelRunner(lab, wideJobs()).runAll({job, job, job});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].executionTime, results[1].executionTime);
    EXPECT_EQ(results[0].executionTime, results[2].executionTime);
    EXPECT_EQ(results[0].placement.assignment(),
              results[2].placement.assignment());
}

TEST(ParallelRunner, ZeroJobsClampsToSerial)
{
    Lab lab(kScale);
    ParallelRunner runner(lab, 0);
    EXPECT_EQ(runner.jobs(), 1u);
    auto results = runner.runAll(
        {{AppId::Water, Algorithm::LoadBal, {2, 4}, false}});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].executionTime, 0u);
}

TEST(ParallelRunner, WarmupMatchesLazyMaterialization)
{
    Lab warm(kScale), lazy(kScale);
    ParallelRunner(warm, wideJobs())
        .warmup({AppId::Water, AppId::BarnesHut}, /*coherence=*/true);
    for (AppId app : {AppId::Water, AppId::BarnesHut}) {
        EXPECT_EQ(warm.analysis(app).totalRefs(),
                  lazy.analysis(app).totalRefs());
        EXPECT_EQ(warm.coherenceMatrix(app).total(),
                  lazy.coherenceMatrix(app).total());
    }
}

// ------------------------------------------------- concurrent memoization

TEST(LabConcurrency, ConcurrentCallersShareOneCachedInstance)
{
    Lab lab(kScale);
    constexpr size_t n = 16;
    std::vector<const trace::TraceSet *> traces(n, nullptr);
    std::vector<const analysis::StaticAnalysis *> analyses(n, nullptr);
    util::ThreadPool pool(4);
    pool.parallelFor(n, [&](size_t i) {
        traces[i] = &lab.traces(AppId::Water);
        analyses[i] = &lab.analysis(AppId::Water);
    });
    for (size_t i = 1; i < n; ++i) {
        EXPECT_EQ(traces[i], traces[0]);
        EXPECT_EQ(analyses[i], analyses[0]);
    }
}

TEST(LabConcurrency, DifferentAppsMaterializeConcurrently)
{
    Lab lab(kScale);
    const std::vector<AppId> apps = {AppId::Water, AppId::BarnesHut,
                                     AppId::MP3D, AppId::Cholesky};
    util::ThreadPool pool(4);
    std::atomic<uint64_t> totalRefs{0};
    pool.parallelFor(apps.size(), [&](size_t i) {
        totalRefs += lab.analysis(apps[i]).totalRefs();
    });
    uint64_t expect = 0;
    Lab serial(kScale);
    for (AppId app : apps)
        expect += serial.analysis(app).totalRefs();
    EXPECT_EQ(totalRefs.load(), expect);
}

// -------------------------------------------- serial/parallel determinism

TEST(Determinism, ExecTimeStudyBitIdenticalAcrossJobs)
{
    const std::vector<Algorithm> algs = {
        Algorithm::Random, Algorithm::LoadBal, Algorithm::ShareRefs,
        Algorithm::MinShare};
    for (AppId app : {AppId::Water, AppId::BarnesHut}) {
        Lab serialLab(kScale), parallelLab(kScale);
        auto serial = execTimeStudy(serialLab, app, algs, /*jobs=*/1);
        auto wide = execTimeStudy(parallelLab, app, algs, wideJobs());
        ASSERT_EQ(serial.size(), wide.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].alg, wide[i].alg);
            EXPECT_EQ(serial[i].point.processors,
                      wide[i].point.processors);
            EXPECT_EQ(serial[i].point.contexts,
                      wide[i].point.contexts);
            EXPECT_EQ(serial[i].cycles, wide[i].cycles);
            // Exact (bitwise) double equality is the contract.
            EXPECT_EQ(serial[i].normalizedToRandom,
                      wide[i].normalizedToRandom);
            EXPECT_EQ(serial[i].loadImbalance, wide[i].loadImbalance);
        }
    }
}

TEST(Determinism, ResultsBitIdenticalWithObservabilityOnOrOff)
{
    // The observability acceptance bar: metrics recording plus a live
    // trace sink must not perturb a single bit of any result, at any
    // pool width.
    const std::vector<Algorithm> algs = {
        Algorithm::Random, Algorithm::LoadBal, Algorithm::ShareRefs};
    const AppId app = AppId::Water;

    obs::setMetricsEnabled(false);
    Lab plainLab(kScale);
    auto plain = execTimeStudy(plainLab, app, algs, wideJobs());

    obs::setMetricsEnabled(true);
    const std::string tracePath =
        testing::TempDir() + "obs_determinism_trace.json";
    std::vector<double> cellMillis;
    std::vector<ExecTimePoint> observed;
    {
        obs::TraceSink sink(tracePath, "determinism");
        obs::TraceSink::installGlobal(&sink);
        Lab obsLab(kScale);
        SweepOptions options;
        options.jobs = wideJobs();
        options.cellMillisOut = &cellMillis;
        observed = execTimeStudy(obsLab, app, algs, options);
    }
    obs::setMetricsEnabled(false);

    ASSERT_EQ(plain.size(), observed.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].cycles, observed[i].cycles);
        EXPECT_EQ(plain[i].normalizedToRandom,
                  observed[i].normalizedToRandom);
        EXPECT_EQ(plain[i].loadImbalance, observed[i].loadImbalance);
    }

    // And the observability side effects actually happened.
    EXPECT_FALSE(cellMillis.empty());
    bool sawTiming = false;
    for (size_t i = 0; i < observed.size(); ++i) {
        if (observed[i].wallMs > 0.0)
            sawTiming = true;
        EXPECT_GE(observed[i].wallMs, 0.0);
    }
    EXPECT_TRUE(sawTiming) << "executed cells must report wall time";
}

TEST(Determinism, MissComponentStudyBitIdenticalAcrossJobs)
{
    const std::vector<Algorithm> algs = {
        Algorithm::Random, Algorithm::ShareRefs, Algorithm::LoadBal};
    for (AppId app : {AppId::Water, AppId::BarnesHut}) {
        Lab serialLab(kScale), parallelLab(kScale);
        auto serial =
            missComponentStudy(serialLab, app, algs, /*jobs=*/1);
        auto wide =
            missComponentStudy(parallelLab, app, algs, wideJobs());
        ASSERT_EQ(serial.size(), wide.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].alg, wide[i].alg);
            EXPECT_EQ(serial[i].compulsory, wide[i].compulsory);
            EXPECT_EQ(serial[i].intraConflict, wide[i].intraConflict);
            EXPECT_EQ(serial[i].interConflict, wide[i].interConflict);
            EXPECT_EQ(serial[i].invalidation, wide[i].invalidation);
            EXPECT_EQ(serial[i].refs, wide[i].refs);
        }
    }
}

TEST(Determinism, Table5StudyBitIdenticalAcrossJobs)
{
    Lab serialLab(kScale), parallelLab(kScale);
    auto serial = table5Study(serialLab, AppId::Water, /*jobs=*/1);
    auto wide = table5Study(parallelLab, AppId::Water, wideJobs());
    ASSERT_EQ(serial.size(), wide.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].processors, wide[i].processors);
        EXPECT_EQ(serial[i].bestStatic, wide[i].bestStatic);
        EXPECT_EQ(serial[i].bestStaticVsLoadBal,
                  wide[i].bestStaticVsLoadBal);
        EXPECT_EQ(serial[i].coherenceVsLoadBal,
                  wide[i].coherenceVsLoadBal);
    }
}

// --------------------------------------------------------- fault isolation

TEST(FaultIsolation, PoisonJobDegradesWithoutPollutingOthers)
{
    // contexts == 0 fails SimConfig::validate with a FatalError — the
    // canonical "one bad cell in a big sweep" case.
    const RunJob poison{AppId::Water, Algorithm::LoadBal, {4, 0},
                        false};
    const std::vector<RunJob> good = {
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::ShareRefs, {4, 2}, false},
        {AppId::Water, Algorithm::LoadBal, {8, 1}, false},
    };
    std::vector<RunJob> jobs = {good[0], poison, good[1], good[2]};

    Lab cleanLab(kScale);
    auto clean = ParallelRunner(cleanLab, 1).runAll(good);

    for (unsigned width : {1u, wideJobs()}) {
        Lab lab(kScale);
        SweepOptions options;
        options.jobs = width;
        SweepStats stats;
        options.statsOut = &stats;
        auto outcomes =
            ParallelRunner(lab, options).runAllOutcomes(jobs);
        ASSERT_EQ(outcomes.size(), jobs.size());

        EXPECT_FALSE(outcomes[1].ok());
        EXPECT_NE(outcomes[1].error().find("fatal:"),
                  std::string::npos)
            << outcomes[1].error();
        EXPECT_EQ(stats.failed, 1u);
        EXPECT_EQ(stats.executed, jobs.size());

        // Every healthy cell is bit-identical to the clean run.
        const size_t cleanIdx[] = {0, 2, 3};
        for (size_t k = 0; k < 3; ++k) {
            const auto &oc = outcomes[cleanIdx[k]];
            ASSERT_TRUE(oc.ok());
            EXPECT_EQ(oc.value().executionTime,
                      clean[k].executionTime);
            EXPECT_EQ(oc.value().placement.assignment(),
                      clean[k].placement.assignment());
            EXPECT_EQ(oc.value().loadImbalance,
                      clean[k].loadImbalance);
        }
    }
}

TEST(FaultIsolation, StrictRunAllThrowsNamingTheJob)
{
    Lab lab(kScale);
    const RunJob poison{AppId::Water, Algorithm::LoadBal, {4, 0},
                        false};
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::Random, {2, 4}, false}, poison};
    try {
        ParallelRunner(lab, wideJobs()).runAll(jobs);
        FAIL() << "strict runAll accepted a poisoned sweep";
    } catch (const util::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(describeJob(poison)),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultIsolation, PanicStillFailsTheWholeSweepFast)
{
    Lab lab(kScale);
    SweepOptions options;
    options.jobs = wideJobs();
    options.faultInjector = [](const RunJob &job) {
        if (job.alg == Algorithm::ShareRefs)
            util::panic("injected library bug");
    };
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::ShareRefs, {4, 2}, false},
    };
    EXPECT_THROW(ParallelRunner(lab, options).runAllOutcomes(jobs),
                 util::PanicError);
}

TEST(FaultIsolation, DegradedStudyMatchesCleanStudyElsewhere)
{
    const std::vector<Algorithm> algs = {
        Algorithm::Random, Algorithm::LoadBal, Algorithm::ShareRefs};

    Lab cleanLab(kScale);
    auto clean = execTimeStudy(cleanLab, AppId::Water, algs,
                               /*jobs=*/1);

    Lab lab(kScale);
    std::vector<JobFailure> failures;
    SweepOptions options;
    options.jobs = wideJobs();
    options.failures = &failures;
    options.faultInjector = [](const RunJob &job) {
        if (job.alg == Algorithm::ShareRefs &&
            job.point.processors == 4)
            util::fatal("injected cell failure");
    };
    auto degraded = execTimeStudy(lab, AppId::Water, algs, options);

    ASSERT_EQ(degraded.size(), clean.size());
    size_t failedCells = 0;
    for (size_t i = 0; i < degraded.size(); ++i) {
        if (degraded[i].failed) {
            ++failedCells;
            EXPECT_EQ(degraded[i].alg, Algorithm::ShareRefs);
            EXPECT_EQ(degraded[i].point.processors, 4u);
            EXPECT_NE(degraded[i].error.find("injected"),
                      std::string::npos)
                << degraded[i].error;
            continue;
        }
        EXPECT_EQ(degraded[i].cycles, clean[i].cycles);
        EXPECT_EQ(degraded[i].normalizedToRandom,
                  clean[i].normalizedToRandom);
        EXPECT_EQ(degraded[i].loadImbalance, clean[i].loadImbalance);
    }
    EXPECT_GT(failedCells, 0u);
    EXPECT_EQ(failures.size(), failedCells);
    for (const auto &f : failures)
        EXPECT_NE(f.describe().find("injected"), std::string::npos);
}

TEST(FaultIsolation, StrictStudyStillThrowsOnInjectedFailure)
{
    Lab lab(kScale);
    SweepOptions options;
    options.jobs = wideJobs();
    options.faultInjector = [](const RunJob &job) {
        if (job.alg == Algorithm::LoadBal)
            util::fatal("injected cell failure");
    };
    EXPECT_THROW(execTimeStudy(lab, AppId::Water,
                               {Algorithm::Random,
                                Algorithm::LoadBal},
                               options),
                 util::FatalError);
}

TEST(FaultIsolation, WatchdogFlagsSlowCells)
{
    Lab lab(kScale);
    SweepStats stats;
    SweepOptions options;
    options.jobs = 2;
    options.statsOut = &stats;
    options.jobDeadline = std::chrono::milliseconds(5);
    options.faultInjector = [](const RunJob &job) {
        if (job.alg == Algorithm::ShareRefs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40));
    };
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::ShareRefs, {4, 2}, false},
    };
    auto outcomes = ParallelRunner(lab, options).runAllOutcomes(jobs);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[1].ok());
    EXPECT_GE(stats.watchdogFlagged, 1u);
}

TEST(Determinism, Table4StudyMatchesSerialRows)
{
    Lab serialLab(kScale), parallelLab(kScale);
    const std::vector<AppId> apps = {AppId::Water, AppId::BarnesHut};
    auto wide = table4Study(parallelLab, apps, wideJobs());
    ASSERT_EQ(wide.size(), apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
        auto expect = table4Row(serialLab, apps[i]);
        EXPECT_EQ(wide[i].app, expect.app);
        EXPECT_EQ(wide[i].staticTotal, expect.staticTotal);
        EXPECT_EQ(wide[i].dynamicTotal, expect.dynamicTotal);
        EXPECT_EQ(wide[i].staticOverDynamic,
                  expect.staticOverDynamic);
        EXPECT_EQ(wide[i].dynamicPairDevPct,
                  expect.dynamicPairDevPct);
    }
}

// ------------------------------------------------------------ cancellation

TEST(Cancellation, PreCancelledTokenSkipsEveryCell)
{
    Lab lab(kScale);
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::LoadBal, {4, 2}, false},
    };

    util::CancelToken token;
    token.requestCancel();
    SweepStats stats;
    SweepOptions options;
    options.jobs = 1;
    options.cancel = &token;
    options.statsOut = &stats;
    auto outcomes = ParallelRunner(lab, options).runAllOutcomes(jobs);

    ASSERT_EQ(outcomes.size(), jobs.size());
    for (const auto &outcome : outcomes) {
        ASSERT_FALSE(outcome.ok());
        EXPECT_NE(outcome.error().find("cancelled"),
                  std::string::npos);
    }
    EXPECT_EQ(stats.cancelled, jobs.size());
    EXPECT_EQ(stats.executed, 0u);
    // Cancelled cells are not *failures* — nothing actually broke.
    EXPECT_EQ(stats.failed, 0u);
}

TEST(Cancellation, MidSweepCancelIsCleanlyResumable)
{
    std::string path =
        testing::TempDir() + "/cancel_resume.tspc";
    std::remove(path.c_str());
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::LoadBal, {2, 4}, false},
        {AppId::Water, Algorithm::ShareRefs, {4, 2}, false},
        {AppId::Water, Algorithm::MinShare, {4, 2}, false},
    };

    Lab baselineLab(kScale);
    auto baseline = ParallelRunner(baselineLab, 1).runAll(jobs);

    // The token trips while the second cell is in flight (the hook
    // runs after the cell's cancellation poll): that cell completes
    // and journals; the remaining cells are skipped.
    util::CancelToken token;
    size_t started = 0;
    {
        Lab lab(kScale);
        Checkpoint cp(path, kScale);
        SweepStats stats;
        SweepOptions options;
        options.jobs = 1;  // deterministic input-order execution
        options.cancel = &token;
        options.checkpoint = &cp;
        options.statsOut = &stats;
        options.faultInjector = [&](const RunJob &) {
            if (++started == 2)
                token.requestCancel();
        };
        auto outcomes =
            ParallelRunner(lab, options).runAllOutcomes(jobs);

        EXPECT_TRUE(outcomes[0].ok());
        EXPECT_TRUE(outcomes[1].ok());
        EXPECT_FALSE(outcomes[2].ok());
        EXPECT_FALSE(outcomes[3].ok());
        EXPECT_EQ(stats.executed, 2u);
        EXPECT_EQ(stats.cancelled, 2u);
        EXPECT_EQ(stats.failed, 0u);
        EXPECT_EQ(cp.size(), 2u);
    }

    // Resume without the token: journaled cells replay, skipped cells
    // run now, and the whole sweep is bit-identical to the baseline.
    Lab lab(kScale);
    Checkpoint cp(path, kScale);
    SweepStats stats;
    SweepOptions options;
    options.jobs = 1;
    options.checkpoint = &cp;
    options.statsOut = &stats;
    auto resumed = ParallelRunner(lab, options).runAll(jobs);
    EXPECT_EQ(stats.fromCheckpoint, 2u);
    EXPECT_EQ(stats.executed, 2u);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (size_t i = 0; i < resumed.size(); ++i) {
        EXPECT_EQ(resumed[i].executionTime,
                  baseline[i].executionTime);
        EXPECT_EQ(resumed[i].stats.totalMemRefs(),
                  baseline[i].stats.totalMemRefs());
        EXPECT_EQ(resumed[i].stats.totalHits(),
                  baseline[i].stats.totalHits());
        EXPECT_EQ(resumed[i].placement.assignment(),
                  baseline[i].placement.assignment());
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace tsp::experiment
