/**
 * @file
 * Tests of the deterministic fault-injection framework: spec grammar,
 * arm/disarm/current semantics, exact nth-hit ordinals (one-shot and
 * persistent), the three failure kinds, the catalog-or-panic rule for
 * site names, the disarmed fast path's zero-allocation guarantee, and
 * the end-to-end pin that a sweep with the framework compiled in but
 * disarmed (or armed at an unreachable ordinal) is bit-identical to
 * one that never touches it.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "experiment/lab.h"
#include "fault/fault.h"
#include "util/error.h"
#include "util/thread_pool.h"

using namespace tsp;

// --------------------------------------------------------------------
// Global allocation counter (same idiom as obs_metrics_test): every
// operator new in this binary bumps it, so a test can assert that a
// region of code allocates nothing.

namespace {
std::atomic<uint64_t> allocationCount{0};
}

// GCC pairs its builtin operator-new knowledge with the free() below
// and warns; the pairing is in fact consistent (new = malloc here).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** RAII: leave every test with the framework disarmed. */
class DisarmedScope
{
  public:
    DisarmedScope() { fault::disarm(); }
    ~DisarmedScope() { fault::disarm(); }
};

/** One cataloged injection site exercised directly by these tests. */
void
hitSimStep()
{
    TSP_FAULT_POINT("sim.step");
}

// ------------------------------------------------------ spec grammar

TEST(FaultSpec, ParsesOneShotErrorSpec)
{
    fault::FaultSpec spec =
        fault::parseFaultSpec("checkpoint.append:2:error");
    EXPECT_EQ(spec.site, "checkpoint.append");
    EXPECT_EQ(spec.nth, 2u);
    EXPECT_FALSE(spec.persistent);
    EXPECT_EQ(spec.kind, fault::Kind::Error);
    EXPECT_EQ(spec.describe(), "checkpoint.append:2:error");
}

TEST(FaultSpec, ParsesPersistentFatalSpec)
{
    fault::FaultSpec spec =
        fault::parseFaultSpec("trace.write:1+:fatal");
    EXPECT_EQ(spec.site, "trace.write");
    EXPECT_EQ(spec.nth, 1u);
    EXPECT_TRUE(spec.persistent);
    EXPECT_EQ(spec.kind, fault::Kind::Fatal);
    EXPECT_EQ(spec.describe(), "trace.write:1+:fatal");
}

TEST(FaultSpec, ParsesDelayKind)
{
    fault::FaultSpec spec = fault::parseFaultSpec("sim.step:3:delay");
    EXPECT_EQ(spec.kind, fault::Kind::Delay);
    EXPECT_EQ(spec.nth, 3u);
}

TEST(FaultSpec, MalformedSpecsAreFatal)
{
    EXPECT_THROW(fault::parseFaultSpec(""), util::FatalError);
    EXPECT_THROW(fault::parseFaultSpec("sim.step"), util::FatalError);
    EXPECT_THROW(fault::parseFaultSpec("sim.step:1"),
                 util::FatalError);
    EXPECT_THROW(fault::parseFaultSpec("sim.step:zero:error"),
                 util::FatalError);
    EXPECT_THROW(fault::parseFaultSpec("sim.step:0:error"),
                 util::FatalError);
    EXPECT_THROW(fault::parseFaultSpec("sim.step:1:eventually"),
                 util::FatalError);
}

TEST(FaultSpec, UncatalogedSiteIsFatal)
{
    EXPECT_THROW(fault::parseFaultSpec("nope.nothere:1:error"),
                 util::FatalError);
}

TEST(FaultSpec, KindNamesRoundTrip)
{
    ASSERT_EQ(fault::allKinds().size(), 3u);
    for (fault::Kind kind : fault::allKinds())
        EXPECT_EQ(fault::kindFromName(fault::kindName(kind)), kind);
    EXPECT_THROW(fault::kindFromName("segfault"), util::FatalError);
}

// --------------------------------------------------- catalog/registry

TEST(FaultRegistry, CatalogPinsTheSiteCount)
{
    EXPECT_EQ(fault::Registry::catalog().size(), 20u)
        << "fault site added or removed: update fault/fault.cc, "
           "docs/robustness.md and this count together";
    for (const fault::SiteInfo &site : fault::Registry::catalog()) {
        EXPECT_TRUE(fault::Registry::isCataloged(site.name));
        EXPECT_FALSE(site.owner.empty());
        EXPECT_FALSE(site.help.empty());
    }
    EXPECT_FALSE(fault::Registry::isCataloged("nope.nothere"));
}

TEST(FaultRegistry, ArmDisarmAndCurrentAgree)
{
    DisarmedScope scope;
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::Registry::instance().current().has_value());

    fault::arm("sim.step:5:delay");
    EXPECT_TRUE(fault::armed());
    auto current = fault::Registry::instance().current();
    ASSERT_TRUE(current.has_value());
    EXPECT_EQ(current->describe(), "sim.step:5:delay");

    fault::disarm();
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::Registry::instance().current().has_value());
}

TEST(FaultRegistry, ArmingAnUncatalogedSiteIsFatal)
{
    DisarmedScope scope;
    EXPECT_THROW(
        fault::Registry::instance().arm({"nope.nothere", 1, false,
                                         fault::Kind::Error}),
        util::FatalError);
    EXPECT_FALSE(fault::armed());
}

TEST(FaultRegistry, UncatalogedFaultPointIsAPanic)
{
    DisarmedScope scope;
    // The catalog-or-panic rule only runs on the armed path (the
    // disarmed fast path never looks at the name).
    fault::arm("sim.step:1000000:error");
    EXPECT_THROW(TSP_FAULT_POINT("nope.nothere"), util::PanicError);
}

// ------------------------------------------------------ nth semantics

TEST(FaultInjection, OneShotFiresExactlyAtTheNthHit)
{
    DisarmedScope scope;
    fault::Registry::instance().resetCounters();
    fault::arm("sim.step:2:error");

    EXPECT_NO_THROW(hitSimStep());  // hit 1
    try {
        hitSimStep();               // hit 2: fires
        FAIL() << "armed ordinal did not fire";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("sim.step"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("hit 2"),
                  std::string::npos);
    }
    EXPECT_NO_THROW(hitSimStep());  // hit 3: one-shot is spent

    fault::Site &site = fault::Registry::instance().site("sim.step");
    EXPECT_EQ(site.hits(), 3u);
    EXPECT_EQ(site.triggered(), 1u);
}

TEST(FaultInjection, PersistentFiresOnEveryHitFromTheNth)
{
    DisarmedScope scope;
    fault::Registry::instance().resetCounters();
    fault::arm("sim.step:2+:error");

    EXPECT_NO_THROW(hitSimStep());
    EXPECT_THROW(hitSimStep(), std::runtime_error);
    EXPECT_THROW(hitSimStep(), std::runtime_error);
    EXPECT_THROW(hitSimStep(), std::runtime_error);

    fault::Site &site = fault::Registry::instance().site("sim.step");
    EXPECT_EQ(site.hits(), 4u);
    EXPECT_EQ(site.triggered(), 3u);
}

TEST(FaultInjection, RearmingResetsTheOrdinalCount)
{
    DisarmedScope scope;
    fault::arm("sim.step:2:error");
    EXPECT_NO_THROW(hitSimStep());
    // Re-arming the same spec restarts hit counting from zero.
    fault::arm("sim.step:2:error");
    EXPECT_NO_THROW(hitSimStep());
    EXPECT_THROW(hitSimStep(), std::runtime_error);
}

TEST(FaultInjection, FatalKindThrowsFatalError)
{
    DisarmedScope scope;
    fault::arm("sim.step:1:fatal");
    EXPECT_THROW(hitSimStep(), util::FatalError);
}

TEST(FaultInjection, DelayKindStallsWithoutThrowing)
{
    DisarmedScope scope;
    fault::Registry::instance().resetCounters();
    fault::arm("sim.step:1:delay");
    EXPECT_NO_THROW(hitSimStep());
    EXPECT_EQ(fault::Registry::instance().site("sim.step").triggered(),
              1u);
}

TEST(FaultInjection, InjectedCountAccumulatesAcrossArms)
{
    DisarmedScope scope;
    uint64_t before = fault::Registry::instance().injectedCount();
    fault::arm("sim.step:1:delay");
    hitSimStep();
    fault::arm("sim.step:1:delay");
    hitSimStep();
    EXPECT_EQ(fault::Registry::instance().injectedCount(), before + 2);
}

TEST(FaultInjection, CountersResetOnDemand)
{
    DisarmedScope scope;
    fault::arm("sim.step:1000000:error");
    hitSimStep();
    fault::disarm();
    fault::Registry::instance().resetCounters();
    for (const auto &c : fault::Registry::instance().counters()) {
        EXPECT_EQ(c.hits, 0u) << c.name;
        EXPECT_EQ(c.triggered, 0u) << c.name;
    }
}

// ------------------------------------------------- disabled fast path

TEST(FaultInjection, DisarmedFaultPointsAllocateNothing)
{
    DisarmedScope scope;
    // Warm the site's static registration first (it allocates once).
    fault::arm("sim.step:1000000:error");
    hitSimStep();
    fault::disarm();

    const uint64_t hitsBefore =
        fault::Registry::instance().site("sim.step").hits();
    const uint64_t allocsBefore =
        allocationCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 100000; ++i)
        hitSimStep();
    const uint64_t allocsAfter =
        allocationCount.load(std::memory_order_relaxed);

    EXPECT_EQ(allocsAfter - allocsBefore, 0u)
        << "the disarmed fault-point fast path must not allocate";
    // And it must not count: hits are only tracked while armed.
    EXPECT_EQ(fault::Registry::instance().site("sim.step").hits(),
              hitsBefore);
}

// ------------------------------------------- pool dispatch faults

TEST(FaultInjection, PoolDispatchFaultJoinsAllShardsBeforeThrowing)
{
    DisarmedScope scope;
    util::ThreadPool pool(4);
    // One-shot dispatch fault with >= 2 shards: exactly one shard
    // future throws while the others keep iterating against
    // parallelFor's stack-local shard state. Regression for
    // rethrowing from the first failed future before joining the
    // rest, which unwound that state under the running shards
    // (use-after-scope).
    fault::arm("pool.dispatch:1:error");
    constexpr size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    try {
        pool.parallelFor(n, [&](size_t i) {
            hits[i]++;
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        });
        FAIL() << "expected the injected dispatch fault";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("pool.dispatch"),
                  std::string::npos);
    }
    fault::disarm();
    // The surviving shards plus the calling thread still covered
    // every index exactly once before the fault propagated.
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

// ------------------------------------- end-to-end determinism pins

TEST(FaultInjection, DisarmedSweepIsBitIdenticalToUnreachableArm)
{
    DisarmedScope scope;
    experiment::Lab lab(64);

    auto baseline = lab.run(workload::AppId::Water,
                            placement::Algorithm::ShareRefs, {4, 2},
                            false);

    // Compiled in and armed — but at an ordinal no run ever reaches —
    // the framework must not perturb a single statistic.
    fault::arm("sim.step:1000000000:error");
    auto armedRun = lab.run(workload::AppId::Water,
                            placement::Algorithm::ShareRefs, {4, 2},
                            false);
    fault::disarm();

    EXPECT_EQ(baseline.executionTime, armedRun.executionTime);
    EXPECT_EQ(baseline.loadImbalance, armedRun.loadImbalance);
    EXPECT_EQ(baseline.placement.assignment(),
              armedRun.placement.assignment());
    EXPECT_EQ(baseline.stats.totalMemRefs(),
              armedRun.stats.totalMemRefs());
    EXPECT_EQ(baseline.stats.totalHits(), armedRun.stats.totalHits());
    EXPECT_EQ(baseline.stats.totalMisses(),
              armedRun.stats.totalMisses());
    EXPECT_EQ(baseline.stats.totalInvalidationsSent(),
              armedRun.stats.totalInvalidationsSent());
    EXPECT_EQ(baseline.stats.sharingCompulsoryMisses,
              armedRun.stats.sharingCompulsoryMisses);
    // The armed run counted sim.step hits (one per memory reference).
    EXPECT_GT(fault::Registry::instance().site("sim.step").hits(), 0u);
}

} // namespace
