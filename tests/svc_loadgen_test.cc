/**
 * @file
 * The closed-loop load generator (svc::runLoadGen) and its shed-retry
 * policy: deterministic, bounded per-client backoff schedules; an
 * overload run whose counters reconcile exactly (nothing lost,
 * nothing double-counted, nonzero sheds survived); and a
 * scheduling-independent result digest that matches across identical
 * shed-free runs — the property the restart/cache-hit CI leg leans on.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "svc/daemon.h"
#include "svc/loadgen.h"
#include "util/retry.h"

namespace tsp::svc {
namespace {

using namespace std::chrono_literals;

constexpr uint32_t kScale = 64;

std::vector<experiment::RunJob>
smallPalette()
{
    // Two cheap distinct cells: enough for dedup and digest checks
    // without making the overload run slow.
    experiment::MachinePoint point{4, 4};
    return {{workload::AppId::Water, placement::Algorithm::LoadBal,
             point, false},
            {workload::AppId::Water, placement::Algorithm::ShareRefs,
             point, false}};
}

std::vector<std::chrono::milliseconds>
delaysOf(unsigned client, unsigned attempts,
         std::chrono::milliseconds initial, unsigned draws)
{
    util::BackoffSchedule schedule(
        loadGenRetryPolicy(client, attempts, initial));
    std::vector<std::chrono::milliseconds> delays;
    for (unsigned i = 0; i < draws; ++i)
        delays.push_back(schedule.next());
    return delays;
}

TEST(LoadGenRetryPolicy, ScheduleIsDeterministicPerClient)
{
    auto a = delaysOf(3, 4, 2ms, 8);
    auto b = delaysOf(3, 4, 2ms, 8);
    EXPECT_EQ(a, b);  // pure function of the client identity

    // Distinct clients jitter on distinct schedules (they should not
    // thunder back into a full queue in lockstep).
    auto other = delaysOf(4, 4, 2ms, 8);
    EXPECT_NE(a, other);
}

TEST(LoadGenRetryPolicy, DelaysStayWithinTheConfiguredBounds)
{
    util::RetryPolicy policy = loadGenRetryPolicy(7, 5, 3ms);
    EXPECT_EQ(policy.maxAttempts, 5u);
    EXPECT_EQ(policy.initialBackoff, 3ms);
    EXPECT_NE(policy.jitterSeed, 0u);  // jitter actually on

    for (auto delay : delaysOf(7, 5, 3ms, 64)) {
        EXPECT_GE(delay, 3ms);
        EXPECT_LE(delay, policy.maxBackoff);
    }
    // A zero retry budget still yields a valid one-attempt policy.
    EXPECT_EQ(loadGenRetryPolicy(7, 0, 3ms).maxAttempts, 1u);
}

TEST(LoadGen, OverloadRunShedsButEveryRequestIsAccountedFor)
{
    // A deliberately overwhelmed daemon: one worker, capacity 1,
    // four closed-loop clients with a tiny retry budget.
    Daemon::Config config;
    config.scale = kScale;
    config.workers = 1;
    config.queueCapacity = 1;
    Daemon daemon(config);

    LoadGenOptions options;
    options.clients = 4;
    options.requestsPerClient = 6;
    options.palette = smallPalette();
    options.retryBudget = 1;
    options.retryBackoff = 1ms;
    options.seed = 42;

    LoadGenReport report = runLoadGen(daemon, options);
    daemon.drain();

    const uint64_t issued =
        static_cast<uint64_t>(options.clients) *
        options.requestsPerClient;
    // Exact conservation: every request was admitted, abandoned after
    // its retry budget, or skipped — and every admitted request got
    // exactly one answer.
    EXPECT_EQ(report.admitted + report.abandoned + report.skipped,
              issued);
    EXPECT_EQ(report.skipped, 0u);  // no stop token in play
    EXPECT_EQ(report.completed + report.expired +
                  report.deadlineExceeded + report.failed,
              report.admitted);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.latenciesMs.size(), report.admitted);

    // Attempts = one per admission + one per shed observed.
    EXPECT_EQ(report.attempts, report.admitted + report.shed);
    // Capacity 1 against 4 clients must shed; the daemon's view and
    // the clients' view of the shed/admit split must agree.
    EXPECT_GT(report.shed, 0u);
    Daemon::Counters counters = daemon.counters();
    EXPECT_EQ(counters.admitted, report.admitted);
    EXPECT_EQ(counters.shed, report.shed);
    EXPECT_EQ(counters.completed, report.admitted);

    // Percentiles come from the sorted latency set.
    ASSERT_FALSE(report.latenciesMs.empty());
    EXPECT_LE(report.p50Ms, report.p99Ms);
    EXPECT_LE(report.p99Ms, report.maxMs);
    EXPECT_EQ(report.maxMs, report.latenciesMs.back());
    EXPECT_FALSE(report.resultDigest.empty());
    EXPECT_NE(report.summary().find("result digest:"),
              std::string::npos);
}

TEST(LoadGen, ShedFreeRunsDigestIdentically)
{
    LoadGenOptions options;
    options.clients = 2;
    options.requestsPerClient = 4;
    options.jobsPerRequest = 2;
    options.palette = smallPalette();
    options.seed = 7;

    auto runOnce = [&options]() {
        // Ample capacity: no sheds, so the request streams (and hence
        // the digests) are exactly reproducible.
        Daemon::Config config;
        config.scale = kScale;
        config.workers = 2;
        config.queueCapacity = 64;
        Daemon daemon(config);
        LoadGenReport report = runLoadGen(daemon, options);
        EXPECT_EQ(report.shed, 0u);
        EXPECT_EQ(report.abandoned, 0u);
        daemon.drain();
        return report;
    };

    LoadGenReport first = runOnce();
    LoadGenReport second = runOnce();
    EXPECT_EQ(first.resultDigest, second.resultDigest);
    EXPECT_EQ(first.completed, second.completed);

    // A different seed draws different request streams.
    options.seed = 8;
    LoadGenReport third = runOnce();
    EXPECT_NE(first.resultDigest, third.resultDigest);
}

} // namespace
} // namespace tsp::svc
