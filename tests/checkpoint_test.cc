/**
 * @file
 * Tests of the crash-safe checkpoint journal: full-fidelity
 * record/replay of run results, recovery from mid-record truncation
 * (the signature of a killed sweep), corrupt-record isolation, and
 * end-to-end sweep resume running only the missing cells.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/checkpoint.h"
#include "experiment/lab.h"
#include "experiment/parallel.h"
#include "fault/fault.h"
#include "util/error.h"

namespace tsp::experiment {
namespace {

using placement::Algorithm;
using workload::AppId;

constexpr uint32_t kScale = 64;

std::string
tempJournal(const std::string &name)
{
    std::string path = testing::TempDir() + "/" + name + ".tspc";
    std::remove(path.c_str());
    return path;
}

std::string
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.executionTime, b.executionTime);
    EXPECT_EQ(a.loadImbalance, b.loadImbalance);
    EXPECT_EQ(a.placement.assignment(), b.placement.assignment());
    ASSERT_EQ(a.stats.procs.size(), b.stats.procs.size());
    for (size_t i = 0; i < a.stats.procs.size(); ++i) {
        EXPECT_EQ(a.stats.procs[i].busyCycles,
                  b.stats.procs[i].busyCycles);
        EXPECT_EQ(a.stats.procs[i].hits, b.stats.procs[i].hits);
        EXPECT_EQ(a.stats.procs[i].misses, b.stats.procs[i].misses);
        EXPECT_EQ(a.stats.procs[i].finishTime,
                  b.stats.procs[i].finishTime);
    }
    EXPECT_EQ(a.stats.coherencePairs.total(),
              b.stats.coherencePairs.total());
    EXPECT_EQ(a.stats.sharingCompulsoryMisses,
              b.stats.sharingCompulsoryMisses);
    EXPECT_EQ(a.stats.networkTransactions, b.stats.networkTransactions);
}

TEST(Checkpoint, RecordedResultsReplayBitIdentically)
{
    std::string path = tempJournal("roundtrip");
    Lab lab(kScale);
    RunJob job{AppId::Water, Algorithm::ShareRefs, {4, 2}, false};
    RunResult fresh =
        lab.run(job.app, job.alg, job.point, job.infiniteCache);

    {
        Checkpoint cp(path, kScale);
        EXPECT_EQ(cp.size(), 0u);
        EXPECT_FALSE(cp.lookup(job).has_value());
        cp.record(job, fresh);
        EXPECT_EQ(cp.size(), 1u);
    }

    // A new process opening the same journal sees the exact result.
    Checkpoint cp(path, kScale);
    EXPECT_EQ(cp.size(), 1u);
    EXPECT_EQ(cp.droppedBytes(), 0u);
    auto replayed = cp.lookup(job);
    ASSERT_TRUE(replayed.has_value());
    expectSameResult(*replayed, fresh);
}

TEST(Checkpoint, RecordIsIdempotent)
{
    std::string path = tempJournal("idempotent");
    Lab lab(kScale);
    RunJob job{AppId::Water, Algorithm::LoadBal, {2, 4}, false};
    RunResult r = lab.run(job.app, job.alg, job.point, false);

    Checkpoint cp(path, kScale);
    cp.record(job, r);
    size_t bytes = readAll(path).size();
    cp.record(job, r);
    EXPECT_EQ(cp.size(), 1u);
    EXPECT_EQ(readAll(path).size(), bytes);
}

TEST(Checkpoint, ScaleMismatchIsFatal)
{
    std::string path = tempJournal("scale");
    {
        Checkpoint cp(path, kScale);
        Lab lab(kScale);
        RunJob job{AppId::Water, Algorithm::Random, {2, 4}, false};
        cp.record(job, lab.run(job.app, job.alg, job.point, false));
    }
    EXPECT_THROW(Checkpoint(path, kScale * 2), util::FatalError);
}

TEST(Checkpoint, GarbageFileIsFatal)
{
    std::string path = tempJournal("garbage");
    writeAll(path, "definitely not a TSPC journal");
    EXPECT_THROW(Checkpoint(path, kScale), util::FatalError);
}

TEST(Checkpoint, TruncatedTailRecordIsDroppedAndRewritable)
{
    std::string path = tempJournal("truncated");
    Lab lab(kScale);
    RunJob first{AppId::Water, Algorithm::Random, {2, 4}, false};
    RunJob second{AppId::Water, Algorithm::ShareRefs, {4, 2}, false};
    RunResult r1 = lab.run(first.app, first.alg, first.point, false);
    RunResult r2 =
        lab.run(second.app, second.alg, second.point, false);
    {
        Checkpoint cp(path, kScale);
        cp.record(first, r1);
        cp.record(second, r2);
    }

    // Kill simulation: chop 7 bytes off the tail, mid-record.
    std::string bytes = readAll(path);
    ASSERT_GT(bytes.size(), 7u);
    writeAll(path, bytes.substr(0, bytes.size() - 7));

    Checkpoint cp(path, kScale);
    EXPECT_EQ(cp.size(), 1u);
    EXPECT_GT(cp.droppedBytes(), 0u);
    ASSERT_TRUE(cp.lookup(first).has_value());
    EXPECT_FALSE(cp.lookup(second).has_value());
    expectSameResult(*cp.lookup(first), r1);

    // The dropped cell can be journaled again and survives reopen.
    cp.record(second, r2);
    Checkpoint reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.droppedBytes(), 0u);
    expectSameResult(*reopened.lookup(second), r2);
}

TEST(Checkpoint, CorruptMiddleRecordDropsTheTail)
{
    std::string path = tempJournal("bitrot");
    Lab lab(kScale);
    RunJob first{AppId::Water, Algorithm::Random, {2, 4}, false};
    RunJob second{AppId::Water, Algorithm::LoadBal, {4, 2}, false};
    {
        Checkpoint cp(path, kScale);
        cp.record(first, lab.run(first.app, first.alg, first.point,
                                 false));
        cp.record(second, lab.run(second.app, second.alg,
                                  second.point, false));
    }

    // Flip one byte inside the first record's payload: its CRC frame
    // no longer matches, so it and everything after it are dropped.
    std::string bytes = readAll(path);
    size_t target = 12 + 8 + 4;  // header + frame + a payload byte
    ASSERT_LT(target, bytes.size());
    bytes[target] = static_cast<char>(bytes[target] ^ 0xFF);
    writeAll(path, bytes);

    Checkpoint cp(path, kScale);
    EXPECT_EQ(cp.size(), 0u);
    EXPECT_GT(cp.droppedBytes(), 0u);
}

TEST(Checkpoint, ResumesBitIdenticallyAfterInjectedRenameFailure)
{
    std::string path = tempJournal("fault_rename");
    Lab lab(kScale);
    RunJob first{AppId::Water, Algorithm::Random, {2, 4}, false};
    RunJob second{AppId::Water, Algorithm::ShareRefs, {4, 2}, false};
    RunResult r1 = lab.run(first.app, first.alg, first.point, false);
    RunResult r2 =
        lab.run(second.app, second.alg, second.point, false);

    Checkpoint cp(path, kScale);
    cp.record(first, r1);
    std::string journalBefore = readAll(path);
    ASSERT_FALSE(journalBefore.empty());

    // Every tmp->journal rename now fails: the bounded retry exhausts
    // and the append surfaces the injected error to the caller.
    fault::arm("checkpoint.rename:1+:error");
    EXPECT_THROW(cp.record(second, r2), std::runtime_error);
    fault::disarm();

    // Atomic publish held: the journal on disk is exactly the
    // pre-failure journal, not a torn half-append.
    EXPECT_EQ(readAll(path), journalBefore);

    // A fresh process resumes from the surviving journal: the first
    // cell replays bit-identically, the failed one is simply absent
    // and can be journaled again.
    Checkpoint resumed(path, kScale);
    EXPECT_EQ(resumed.size(), 1u);
    EXPECT_EQ(resumed.droppedBytes(), 0u);
    ASSERT_TRUE(resumed.lookup(first).has_value());
    expectSameResult(*resumed.lookup(first), r1);
    EXPECT_FALSE(resumed.lookup(second).has_value());

    resumed.record(second, r2);
    Checkpoint reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 2u);
    ASSERT_TRUE(reopened.lookup(second).has_value());
    expectSameResult(*reopened.lookup(second), r2);
}

TEST(Checkpoint, SweepResumesRunningOnlyMissingCells)
{
    std::string path = tempJournal("resume");
    std::vector<RunJob> jobs = {
        {AppId::Water, Algorithm::Random, {2, 4}, false},
        {AppId::Water, Algorithm::LoadBal, {2, 4}, false},
        {AppId::Water, Algorithm::ShareRefs, {4, 2}, false},
        {AppId::Water, Algorithm::MinShare, {4, 2}, false},
    };

    // A clean, checkpoint-free run for the bit-identical baseline.
    Lab baselineLab(kScale);
    auto baseline = ParallelRunner(baselineLab, 1).runAll(jobs);

    // First sweep is killed after two cells: only they get journaled.
    {
        Lab lab(kScale);
        Checkpoint cp(path, kScale);
        SweepOptions options;
        options.jobs = 2;
        options.checkpoint = &cp;
        std::vector<RunJob> firstHalf(jobs.begin(), jobs.begin() + 2);
        ParallelRunner(lab, options).runAll(firstHalf);
        EXPECT_EQ(cp.size(), 2u);
    }

    // The resumed sweep replays those two and simulates the rest.
    Lab lab(kScale);
    Checkpoint cp(path, kScale);
    SweepStats stats;
    SweepOptions options;
    options.jobs = 2;
    options.checkpoint = &cp;
    options.statsOut = &stats;
    auto resumed = ParallelRunner(lab, options).runAll(jobs);

    EXPECT_EQ(stats.total, jobs.size());
    EXPECT_EQ(stats.unique, jobs.size());
    EXPECT_EQ(stats.fromCheckpoint, 2u);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.failed, 0u);

    ASSERT_EQ(resumed.size(), baseline.size());
    for (size_t i = 0; i < resumed.size(); ++i)
        expectSameResult(resumed[i], baseline[i]);

    // A third pass is all replay.
    Lab thirdLab(kScale);
    Checkpoint cp2(path, kScale);
    SweepStats stats2;
    SweepOptions options2;
    options2.jobs = 2;
    options2.checkpoint = &cp2;
    options2.statsOut = &stats2;
    auto third = ParallelRunner(thirdLab, options2).runAll(jobs);
    EXPECT_EQ(stats2.fromCheckpoint, jobs.size());
    EXPECT_EQ(stats2.executed, 0u);
    for (size_t i = 0; i < third.size(); ++i)
        expectSameResult(third[i], baseline[i]);
}

} // namespace
} // namespace tsp::experiment
