/**
 * @file
 * Unit tests for the static analyzer: sharing matrices, per-thread
 * statistics, N-way sharing and the Table 2 characteristics row, on
 * hand-crafted traces with known answers.
 */

#include <gtest/gtest.h>

#include "analysis/characteristics.h"
#include "analysis/nway.h"
#include "analysis/static_analysis.h"
#include "analysis/thread_summary.h"
#include "trace/trace_set.h"
#include "util/error.h"
#include "util/rng.h"

namespace tsp::analysis {
namespace {

using trace::ThreadTrace;
using trace::TraceSet;

/** Addresses used by the crafted traces (word aligned). */
constexpr uint64_t A = 0x1000, B = 0x2000, C = 0x3000, D = 0x4000;

/**
 * Three threads:
 *  t0: 3 loads of A, 1 store of B, work 10
 *  t1: 2 loads of A, 2 loads of B, 1 store of C
 *  t2: 4 loads of D (private)
 */
TraceSet
craftedSet()
{
    TraceSet s("crafted");
    ThreadTrace t0(0);
    t0.appendLoad(A);
    t0.appendLoad(A);
    t0.appendLoad(A);
    t0.appendStore(B);
    t0.appendWork(10);
    ThreadTrace t1(1);
    t1.appendLoad(A);
    t1.appendLoad(A);
    t1.appendLoad(B);
    t1.appendLoad(B);
    t1.appendStore(C);
    ThreadTrace t2(2);
    for (int i = 0; i < 4; ++i)
        t2.appendLoad(D);
    s.addThread(std::move(t0));
    s.addThread(std::move(t1));
    s.addThread(std::move(t2));
    return s;
}

// --------------------------------------------------------- thread summary

TEST(ThreadSummary, CountsReadsAndWrites)
{
    TraceSet s = craftedSet();
    ThreadSummary sum(s.thread(0));
    EXPECT_EQ(sum.id(), 0u);
    EXPECT_EQ(sum.instructionCount(), 14u);
    EXPECT_EQ(sum.memRefCount(), 4u);
    EXPECT_EQ(sum.distinctAddrs(), 2u);
    EXPECT_EQ(sum.access(A).reads, 3u);
    EXPECT_EQ(sum.access(A).writes, 0u);
    EXPECT_EQ(sum.access(B).writes, 1u);
    EXPECT_TRUE(sum.access(B).written());
    EXPECT_EQ(sum.access(0x9999).total(), 0u);
}

// -------------------------------------------------------- static analysis

TEST(StaticAnalysis, SharedRefsMatchHandCount)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    // shared-references(t0, t1): A (3 + 2) + B (1 + 2) = 8.
    EXPECT_DOUBLE_EQ(an.sharedRefs().get(0, 1), 8.0);
    EXPECT_DOUBLE_EQ(an.sharedRefs().get(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(an.sharedRefs().get(1, 2), 0.0);
}

TEST(StaticAnalysis, SharedAddrsMatchHandCount)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    EXPECT_DOUBLE_EQ(an.sharedAddrs().get(0, 1), 2.0);  // A and B
    EXPECT_DOUBLE_EQ(an.sharedAddrs().get(0, 2), 0.0);
}

TEST(StaticAnalysis, WriteSharedRestrictedToWrittenAddrs)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    // Only B is written by one of (t0, t1): refs 1 + 2 = 3.
    EXPECT_DOUBLE_EQ(an.writeSharedRefs().get(0, 1), 3.0);
}

TEST(StaticAnalysis, PerThreadSharedAndPrivateCounts)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    // Globally shared addresses: A, B. C and D are private.
    EXPECT_EQ(an.sharedAddrCount(), 2u);
    EXPECT_EQ(an.privateAddrCount(), 2u);
    EXPECT_EQ(an.threadSharedRefs()[0], 4u);   // 3xA + 1xB
    EXPECT_EQ(an.threadSharedRefs()[1], 4u);   // 2xA + 2xB
    EXPECT_EQ(an.threadSharedRefs()[2], 0u);
    EXPECT_EQ(an.threadSharedAddrs()[0], 2u);
    EXPECT_EQ(an.threadPrivateAddrs()[1], 1u);  // C
    EXPECT_EQ(an.threadPrivateAddrs()[2], 1u);  // D
}

TEST(StaticAnalysis, TotalsAggregate)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    EXPECT_EQ(an.totalRefs(), 13u);
    EXPECT_EQ(an.totalInstructions(), 23u);
    EXPECT_EQ(an.threadLength()[0], 14u);
    EXPECT_EQ(an.threadRefs()[2], 4u);
    EXPECT_EQ(an.threadCount(), 3u);
    EXPECT_EQ(an.appName(), "crafted");
}

TEST(StaticAnalysis, EmptySetIsFatal)
{
    TraceSet empty("none");
    EXPECT_THROW(StaticAnalysis::analyze(empty), util::FatalError);
}

TEST(StaticAnalysis, SymmetricPairsViaSharedAddress)
{
    // All three threads touch one common address; every pair shares it.
    TraceSet s("tri");
    for (uint32_t i = 0; i < 3; ++i) {
        ThreadTrace t(i);
        t.appendLoad(A);
        t.appendLoad(A);
        s.addThread(std::move(t));
    }
    auto an = StaticAnalysis::analyze(s);
    EXPECT_DOUBLE_EQ(an.sharedRefs().get(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(an.sharedRefs().get(0, 2), 4.0);
    EXPECT_DOUBLE_EQ(an.sharedRefs().get(1, 2), 4.0);
    EXPECT_EQ(an.sharedAddrCount(), 1u);
}

// ------------------------------------------------------------------ nway

TEST(NwaySharing, TwoClustersPartitionWholeMatrix)
{
    stats::PairMatrix m(4);
    m.set(0, 1, 10.0);
    m.set(2, 3, 6.0);
    m.set(0, 2, 1.0);
    util::Rng rng(1);
    auto s = nwaySharing(m, 2, 16, rng);
    EXPECT_EQ(s.count(), 32u);  // 2 clusters x 16 samples
    // Each sampled partition's two within-sums total <= matrix total.
    EXPECT_LE(s.max(), m.total());
    EXPECT_GE(s.min(), 0.0);
}

TEST(NwaySharing, SingleClusterEqualsTotal)
{
    stats::PairMatrix m(4);
    m.set(0, 1, 3.0);
    m.set(1, 2, 4.0);
    util::Rng rng(2);
    auto s = nwaySharing(m, 1, 4, rng);
    EXPECT_DOUBLE_EQ(s.mean(), m.total());
    EXPECT_DOUBLE_EQ(s.devPercent(), 0.0);
}

TEST(NwaySharing, BadClusterCountIsFatal)
{
    stats::PairMatrix m(4);
    util::Rng rng(3);
    EXPECT_THROW(nwaySharing(m, 0, 1, rng), util::FatalError);
    EXPECT_THROW(nwaySharing(m, 5, 1, rng), util::FatalError);
}

// -------------------------------------------------------- characteristics

TEST(Characteristics, RowMatchesHandComputation)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    util::Rng rng(7);
    auto row = computeCharacteristics(an, rng);

    EXPECT_EQ(row.app, "crafted");
    // Pairwise mean over 3 pairs: (8 + 0 + 0) / 3.
    EXPECT_NEAR(row.pairwiseMean, 8.0 / 3.0, 1e-9);
    // refs per shared addr: t0 4/2, t1 4/2; t2 has none.
    EXPECT_NEAR(row.refsPerSharedAddrMean, 2.0, 1e-9);
    // shared%: t0 4/4, t1 4/5, t2 0/4 -> mean of 100, 80, 0.
    EXPECT_NEAR(row.sharedRefsPct, 60.0, 1e-9);
    // lengths 14, 5, 4.
    EXPECT_NEAR(row.lengthMean, 23.0 / 3.0, 1e-9);
    EXPECT_GT(row.lengthDevPct, 0.0);
}

TEST(Characteristics, DeterministicGivenSeed)
{
    auto an = StaticAnalysis::analyze(craftedSet());
    util::Rng r1(7), r2(7);
    auto a = computeCharacteristics(an, r1);
    auto b = computeCharacteristics(an, r2);
    EXPECT_DOUBLE_EQ(a.nwayMean, b.nwayMean);
    EXPECT_DOUBLE_EQ(a.nwayDevPct, b.nwayDevPct);
}

} // namespace
} // namespace tsp::analysis
