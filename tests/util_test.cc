/**
 * @file
 * Unit tests for the util module: rng, bits, format, table, logging,
 * error handling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bits.h"
#include "util/error.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/table.h"

namespace tsp::util {
namespace {

// ---------------------------------------------------------------- errors

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Error, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Error, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Error, MessagesArePrefixed)
{
    try {
        fatal("xyz");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: xyz");
    }
    try {
        panic("abc");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: abc");
    }
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowZeroPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.nextBelow(0), PanicError);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, Uniform01InRangeAndCentered)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.uniform01();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalMeanDevMatchesTargets)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.lognormalMeanDev(100.0, 50.0);
        ASSERT_GT(x, 0.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 100.0, 2.0);
    EXPECT_NEAR(std::sqrt(var), 50.0, 3.0);
}

TEST(Rng, LognormalZeroDevIsDegenerate)
{
    Rng rng(19);
    EXPECT_DOUBLE_EQ(rng.lognormalMeanDev(42.0, 0.0), 42.0);
}

TEST(Rng, ZipfStaysInRangeAndSkews)
{
    Rng rng(23);
    uint64_t first = 0, total = 20000;
    for (uint64_t i = 0; i < total; ++i) {
        uint64_t v = rng.zipf(100, 1.0);
        ASSERT_LT(v, 100u);
        first += (v == 0);
    }
    // Rank 0 should dominate any uniform share (1%) by far.
    EXPECT_GT(first, total / 20);
}

TEST(Rng, ZipfZeroExponentIsUniformish)
{
    Rng rng(29);
    uint64_t low = 0, total = 20000;
    for (uint64_t i = 0; i < total; ++i)
        low += (rng.zipf(10, 0.0) < 5);
    EXPECT_NEAR(static_cast<double>(low) / total, 0.5, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(v);
    std::set<int> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, ForkStreamsAreIndependent)
{
    Rng a(37);
    Rng child = a.fork();
    // The child should not replay the parent's stream.
    Rng b(37);
    b.next();  // advance like the fork did
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (child.next() == b.next());
    EXPECT_LT(same, 4);
}

// ------------------------------------------------------------------ bits

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1025), 10u);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(Bits, AlignDownUp)
{
    EXPECT_EQ(alignDown(100, 32), 96u);
    EXPECT_EQ(alignUp(100, 32), 128u);
    EXPECT_EQ(alignDown(96, 32), 96u);
    EXPECT_EQ(alignUp(96, 32), 96u);
}

TEST(Bits, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(divCeil(1, 100), 1u);
}

// ---------------------------------------------------------------- format

TEST(Format, Fixed)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtFixed(-1.0, 0), "-1");
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPercent(0.1234), "12.34%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Format, Thousands)
{
    EXPECT_EQ(fmtThousands(0), "0");
    EXPECT_EQ(fmtThousands(999), "999");
    EXPECT_EQ(fmtThousands(1000), "1,000");
    EXPECT_EQ(fmtThousands(1234567), "1,234,567");
    EXPECT_EQ(fmtThousands(-1234567), "-1,234,567");
}

TEST(Format, Compact)
{
    EXPECT_EQ(fmtCompact(950), "950");
    EXPECT_EQ(fmtCompact(12340), "12.3k");
    EXPECT_EQ(fmtCompact(4200000), "4.20M");
}

TEST(Format, Ratio)
{
    EXPECT_EQ(fmtRatio(42.0), "42.0x");
    EXPECT_EQ(fmtRatio(1.25, 2), "1.25x");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(fmtBytes(512), "512 B");
    EXPECT_EQ(fmtBytes(32 * 1024), "32 KB");
    EXPECT_EQ(fmtBytes(8ull * 1024 * 1024), "8 MB");
    EXPECT_EQ(fmtBytes(1536), "1.5 KB");
}

// ----------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows)
{
    TextTable t("Title");
    t.setHeader({"App", "Value"});
    t.addRow({"FFT", "42"});
    t.addRow({"Gauss", "7"});
    std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("App"), std::string::npos);
    EXPECT_NE(out.find("FFT"), std::string::npos);
    EXPECT_NE(out.find("Gauss"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, NumericColumnsRightAligned)
{
    TextTable t;
    t.setHeader({"Name", "N"});
    t.addRow({"a", "1"});
    t.addRow({"b", "100"});
    std::string out = t.render();
    // The 1 should be padded on the left to the width of 100.
    EXPECT_NE(out.find("  1"), std::string::npos);
}

TEST(Table, RowWidthMismatchIsFatal)
{
    TextTable t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, SeparatorProducesRule)
{
    TextTable t;
    t.setHeader({"xcol"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // Two rules: one under the header, one before row 2.
    size_t first = out.find("---");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(out.find("---", first + 3), std::string::npos);
}

TEST(Table, EmptyTableRendersTitleOnly)
{
    TextTable t("just a title");
    EXPECT_EQ(t.render(), "just a title\n");
}

// --------------------------------------------------------------- logging

TEST(Logging, LevelFilteringWorks)
{
    Logger &log = Logger::instance();
    LogLevel prev = log.level();
    log.setLevel(LogLevel::Silent);
    EXPECT_NO_THROW(inform("hidden"));
    EXPECT_NO_THROW(warn("hidden"));
    log.setLevel(prev);
}

TEST(Logging, ConcatBuildsMessage)
{
    EXPECT_EQ(concat("a", 1, "b", 2.5), "a1b2.5");
}

// ----------------------------------------------------------------- parse

TEST(Parse, AcceptsPlainDecimal)
{
    EXPECT_EQ(parseUnsigned("0", "--n"), 0u);
    EXPECT_EQ(parseUnsigned("42", "--n"), 42u);
    EXPECT_EQ(parseUnsigned("18446744073709551615", "--n"),
              UINT64_MAX);
    EXPECT_EQ(parseUnsigned32("4294967295", "--n"), UINT32_MAX);
}

TEST(Parse, RejectsGarbageNamingTheFlag)
{
    for (const char *bad : {"", "8x", "x8", "1.5", " 8", "8 ", "+8",
                            "0x10"}) {
        try {
            parseUnsigned(bad, "--contexts");
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("--contexts"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(Parse, RejectsNegativeWithAHint)
{
    try {
        parseUnsigned("-3", "--jobs");
        FAIL() << "accepted a negative value";
    } catch (const FatalError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("--jobs"), std::string::npos) << what;
        EXPECT_NE(what.find("negative"), std::string::npos) << what;
    }
}

TEST(Parse, RejectsOverflow)
{
    EXPECT_THROW(parseUnsigned("18446744073709551616", "--n"),
                 FatalError);
    EXPECT_THROW(parseUnsigned32("4294967296", "--n"), FatalError);
}

TEST(Parse, EnforcesRange)
{
    EXPECT_EQ(parseUnsigned("5", "--n", 1, 10), 5u);
    EXPECT_THROW(parseUnsigned("0", "--n", 1, 10), FatalError);
    EXPECT_THROW(parseUnsigned("11", "--n", 1, 10), FatalError);
}

} // namespace
} // namespace tsp::util
