/**
 * @file
 * End-to-end integration tests asserting the paper's headline *shapes*
 * on generated workloads at reduced scale:
 *
 *  1. LOAD-BAL beats RANDOM substantially on high thread-length
 *     deviation applications (Figures 2, 3).
 *  2. Compulsory + invalidation misses are insensitive to the
 *     placement algorithm (Section 4.2, Figure 5).
 *  3. The 8 MB cache eliminates conflict misses, and sharing-based
 *     placement still does not beat LOAD-BAL by more than a whisker
 *     (Section 4.3, Table 5).
 *  4. Dynamic coherence traffic is orders of magnitude below static
 *     shared-reference counts (Table 4).
 */

#include <gtest/gtest.h>

#include "experiment/lab.h"
#include "experiment/studies.h"
#include "sim/results.h"

namespace tsp::experiment {
namespace {

using placement::Algorithm;
using workload::AppId;

constexpr uint32_t kScale = 16;

TEST(PaperShapes, LoadBalancingBeatsRandomOnFFT)
{
    // FFT has the largest thread-length deviation (187.6%); the paper
    // reports LOAD-BAL 13-56% faster than RANDOM.
    Lab lab(kScale);
    auto points = execTimeStudy(lab, AppId::FFT,
                                {Algorithm::LoadBal});
    ASSERT_FALSE(points.empty());
    bool everMuchFaster = false;
    for (const auto &pt : points) {
        EXPECT_LT(pt.normalizedToRandom, 1.05)
            << "LOAD-BAL slower than RANDOM at " << pt.point.label();
        everMuchFaster |= pt.normalizedToRandom < 0.9;
    }
    EXPECT_TRUE(everMuchFaster)
        << "LOAD-BAL never gained >10% over RANDOM on FFT";
}

TEST(PaperShapes, SharingPlacementDoesNotBeatLoadBalance)
{
    Lab lab(kScale);
    auto points = execTimeStudy(
        lab, AppId::FFT,
        {Algorithm::LoadBal, Algorithm::ShareRefs, Algorithm::MaxWrites});
    double loadBalBest = 1e18;
    double sharingBest = 1e18;
    for (const auto &pt : points) {
        double v = pt.normalizedToRandom;
        if (pt.alg == Algorithm::LoadBal)
            loadBalBest = std::min(loadBalBest, v);
        else
            sharingBest = std::min(sharingBest, v);
    }
    EXPECT_LE(loadBalBest, sharingBest + 0.02);
}

TEST(PaperShapes, CompulsoryAndInvalidationMissesAreInvariant)
{
    // Across placement algorithms at a fixed machine point, the
    // compulsory + invalidation miss component stays within a tight
    // band (the paper: "fairly constant across all placement
    // algorithms").
    Lab lab(kScale);
    auto rows = missComponentStudy(
        lab, AppId::Water,
        {Algorithm::Random, Algorithm::ShareRefs, Algorithm::MinShare,
         Algorithm::LoadBal});

    // Group rows by machine point. "Fairly constant" means the spread
    // between placement algorithms is a negligible share of the total
    // reference stream (absolute counts are small, so ratios between
    // them are noisy even in the paper's own data).
    std::map<std::string, std::vector<double>> byPoint;
    uint64_t refs = rows.front().refs;
    for (const auto &row : rows) {
        byPoint[row.point.label()].push_back(
            static_cast<double>(row.compulsory + row.invalidation));
    }
    for (const auto &[label, values] : byPoint) {
        double lo = *std::min_element(values.begin(), values.end());
        double hi = *std::max_element(values.begin(), values.end());
        ASSERT_GT(lo, 0.0);
        EXPECT_LT((hi - lo) / static_cast<double>(refs), 0.005)
            << "compulsory+invalidation varied too much at " << label;
        EXPECT_LT(hi / lo, 3.0) << label;
    }
}

TEST(PaperShapes, ConflictMissesShiftInterToIntra)
{
    // With fewer threads per processor the cache is effectively larger
    // and conflicts shift from inter-thread to intra-thread (Fig 5).
    Lab lab(kScale);
    auto rows =
        missComponentStudy(lab, AppId::Water, {Algorithm::Random});
    ASSERT_GE(rows.size(), 2u);
    const auto &manyThreads = rows.front();  // 2 processors
    const auto &fewThreads = rows.back();    // most processors
    double interShareMany =
        static_cast<double>(manyThreads.interConflict) /
        static_cast<double>(manyThreads.totalMisses());
    double interShareFew =
        static_cast<double>(fewThreads.interConflict) /
        static_cast<double>(fewThreads.totalMisses());
    EXPECT_GT(interShareMany, interShareFew);
}

TEST(PaperShapes, InfiniteCacheKillsConflictMisses)
{
    Lab lab(kScale);
    MachinePoint pt{4, 2};
    auto result =
        lab.run(AppId::Water, Algorithm::Random, pt, /*infinite=*/true);
    EXPECT_EQ(result.stats.totalMissCount(sim::MissKind::IntraConflict),
              0u);
    EXPECT_EQ(result.stats.totalMissCount(sim::MissKind::InterConflict),
              0u);
    EXPECT_GT(result.stats.totalMissCount(sim::MissKind::Compulsory),
              0u);
}

TEST(PaperShapes, StaticDwarfsDynamicSharingOnWholeSuite)
{
    // Table 4's gap, checked on one coarse and one medium app.
    Lab lab(kScale);
    for (AppId app : {AppId::MP3D, AppId::Grav}) {
        auto row = table4Row(lab, app);
        EXPECT_GT(row.staticOverDynamic, 5.0)
            << row.app << ": static " << row.staticTotal << " dynamic "
            << row.dynamicTotal;
        EXPECT_LT(row.dynamicPctOfRefs, 5.0) << row.app;
    }
}

TEST(PaperShapes, Table5SharingNeverBeatsLoadBalMeaningfully)
{
    Lab lab(kScale);
    for (const auto &cell : table5Study(lab, AppId::Water)) {
        // The paper: sharing-based wins are at most ~2%; we allow a
        // slightly wider band for the scaled workload.
        EXPECT_GT(cell.bestStaticVsLoadBal, 0.90)
            << "sharing-based placement beat LOAD-BAL by >10% at "
            << cell.processors << " processors";
    }
}

TEST(PaperShapes, ExecutionTimeScalesDownWithProcessors)
{
    // Sanity: more processors should not slow the application down.
    Lab lab(kScale);
    auto points =
        execTimeStudy(lab, AppId::BarnesHut, {Algorithm::LoadBal});
    ASSERT_GE(points.size(), 2u);
    EXPECT_LT(points.back().cycles, points.front().cycles);
}

} // namespace
} // namespace tsp::experiment
