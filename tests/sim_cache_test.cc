/**
 * @file
 * Unit tests for the per-processor cache: frame mapping, presence, and
 * the paper's four-way miss classification from departure history.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/config.h"
#include "util/error.h"

namespace tsp::sim {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.processors = 1;
    cfg.contexts = 1;
    cfg.cacheBytes = 1024;  // 32 frames of 32 B
    cfg.blockBytes = 32;
    return cfg;
}

TEST(Cache, FrameCountMatchesConfig)
{
    Cache c(smallConfig());
    EXPECT_EQ(c.numFrames(), 32u);
}

/** Install @p block into @p c as if a miss fill happened. */
Cache::Frame &
install(Cache &c, uint64_t block, uint32_t tid,
        CoherenceState state = CoherenceState::Shared)
{
    Cache::Frame &f = c.victimFor(block);
    f.tag = block;
    f.state = state;
    f.threadId = tid;
    c.touch(f);
    return f;
}

TEST(Cache, DirectMappedAliasing)
{
    Cache c(smallConfig());
    // Blocks 0 and 32 map to the same set in a 32-set cache; with one
    // way, installing 32 evicts 0.
    install(c, 0, 0);
    EXPECT_TRUE(c.present(0));
    Cache::Frame &v = c.victimFor(32);
    EXPECT_EQ(v.tag, 0u);  // the victim is block 0's frame
    install(c, 32, 0);
    EXPECT_TRUE(c.present(32));
    EXPECT_FALSE(c.present(0));
}

TEST(Cache, PresenceRequiresValidMatchingTag)
{
    Cache c(smallConfig());
    EXPECT_FALSE(c.present(5));
    Cache::Frame &f = install(c, 5, 0);
    EXPECT_TRUE(c.present(5));
    EXPECT_FALSE(c.present(5 + 32));  // alias, different tag
    f.state = CoherenceState::Invalid;
    EXPECT_FALSE(c.present(5));
}

TEST(Cache, TwoWaySetHoldsAliases)
{
    SimConfig cfg = smallConfig();
    cfg.associativity = 2;
    Cache c(cfg);
    EXPECT_EQ(c.ways(), 2u);
    EXPECT_EQ(c.numFrames(), 32u);  // 16 sets x 2 ways
    // Blocks 0 and 16 alias in a 16-set cache but coexist in 2 ways.
    install(c, 0, 0);
    install(c, 16, 0);
    EXPECT_TRUE(c.present(0));
    EXPECT_TRUE(c.present(16));
    // A third alias evicts the LRU one (block 0).
    Cache::Frame &v = c.victimFor(32);
    EXPECT_EQ(v.tag, 0u);
}

TEST(Cache, LruVictimFollowsTouches)
{
    SimConfig cfg = smallConfig();
    cfg.associativity = 2;
    Cache cache(cfg);
    install(cache, 0, 0);
    install(cache, 16, 0);
    // Re-touch block 0: block 16 becomes LRU.
    cache.touch(*cache.lookup(0));
    EXPECT_EQ(cache.victimFor(32).tag, 16u);
}

TEST(Cache, FirstMissIsCompulsory)
{
    Cache c(smallConfig());
    EXPECT_EQ(c.classifyMiss(7, 0), MissKind::Compulsory);
}

TEST(Cache, EvictionByOwnThreadIsIntraConflict)
{
    Cache c(smallConfig());
    c.recordEviction(7, 3);
    EXPECT_EQ(c.classifyMiss(7, 3), MissKind::IntraConflict);
}

TEST(Cache, EvictionByOtherThreadIsInterConflict)
{
    Cache c(smallConfig());
    c.recordEviction(7, 3);
    EXPECT_EQ(c.classifyMiss(7, 9), MissKind::InterConflict);
}

TEST(Cache, InvalidationHistoryWinsRegardlessOfThread)
{
    Cache c(smallConfig());
    install(c, 7, /*tid=*/2);
    int32_t resident = c.invalidate(7, /*writerTid=*/5);
    EXPECT_EQ(resident, 2);
    EXPECT_FALSE(c.present(7));
    EXPECT_EQ(c.classifyMiss(7, 2), MissKind::Invalidation);
    EXPECT_EQ(c.classifyMiss(7, 9), MissKind::Invalidation);
    EXPECT_EQ(c.invalidatingWriter(7), 5);
}

TEST(Cache, InvalidateAbsentBlockReturnsMinusOne)
{
    Cache c(smallConfig());
    EXPECT_EQ(c.invalidate(9, 1), -1);
    EXPECT_EQ(c.invalidatingWriter(9), -1);
}

TEST(Cache, LaterEvictionOverwritesInvalidationHistory)
{
    Cache c(smallConfig());
    install(c, 4, /*tid=*/0);
    c.invalidate(4, 1);
    // Block comes back, then gets evicted by thread 0.
    c.recordEviction(4, 0);
    EXPECT_EQ(c.classifyMiss(4, 0), MissKind::IntraConflict);
    EXPECT_EQ(c.invalidatingWriter(4), -1);
}

TEST(Cache, DirtyFlagTracksModified)
{
    Cache::Frame f;
    EXPECT_FALSE(f.valid());
    f.state = CoherenceState::Modified;
    EXPECT_TRUE(f.dirty());
    f.state = CoherenceState::Exclusive;
    EXPECT_FALSE(f.dirty());
    EXPECT_TRUE(f.valid());
}

TEST(Cache, InvalidConfigIsFatal)
{
    SimConfig cfg = smallConfig();
    cfg.cacheBytes = 1000;  // not a power of two
    EXPECT_THROW(Cache c(cfg), util::FatalError);
}

TEST(MissKindNames, AllDistinct)
{
    EXPECT_EQ(missKindName(MissKind::Compulsory), "compulsory");
    EXPECT_EQ(missKindName(MissKind::IntraConflict),
              "intra-thread conflict");
    EXPECT_EQ(missKindName(MissKind::InterConflict),
              "inter-thread conflict");
    EXPECT_EQ(missKindName(MissKind::Invalidation), "invalidation");
}

} // namespace
} // namespace tsp::sim
