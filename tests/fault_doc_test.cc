/**
 * @file
 * Doc-sync guard (mirror of obs_doc_test): the fault-site catalog
 * table in docs/robustness.md must list exactly the sites compiled
 * into fault::Registry::catalog(), with matching owners and help
 * strings. Adding a site without its doc row — or leaving a stale row
 * behind — fails here.
 *
 * The table rows look like:
 *   | `checkpoint.rename` | `experiment::Checkpoint` | ... |
 */

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.h"

#ifndef TSP_SOURCE_DIR
#error "fault_doc_test needs TSP_SOURCE_DIR (set in tests/CMakeLists.txt)"
#endif

using namespace tsp;

namespace {

struct DocRow
{
    std::string owner;
    std::string help;
};

/** Split a markdown table line into trimmed cells. */
std::vector<std::string>
splitRow(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    // Skip the leading '|', split on the rest.
    for (size_t i = 1; i < line.size(); ++i) {
        if (line[i] == '|') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell.push_back(line[i]);
        }
    }
    for (std::string &c : cells) {
        size_t b = c.find_first_not_of(" \t");
        size_t e = c.find_last_not_of(" \t");
        c = (b == std::string::npos) ? "" : c.substr(b, e - b + 1);
    }
    return cells;
}

/** Strip surrounding backticks. */
std::string
stripCode(const std::string &s)
{
    if (s.size() >= 2 && s.front() == '`' && s.back() == '`')
        return s.substr(1, s.size() - 2);
    return s;
}

/** Parse every `| \`site.name\` | \`owner\` | help |` row. */
std::map<std::string, DocRow>
parseDocTable(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::map<std::string, DocRow> rows;
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("| `", 0) != 0)
            continue;
        auto cells = splitRow(line);
        if (cells.size() < 3)
            continue;
        std::string owner = stripCode(cells[1]);
        // Only fault-site rows (their owner column is a code-formatted
        // C++ scope); other tables in the doc don't match.
        if (owner.find("::") == std::string::npos)
            continue;
        std::string name = stripCode(cells[0]);
        EXPECT_EQ(rows.count(name), 0u)
            << "duplicate doc row for " << name;
        rows[name] = {owner, cells[2]};
    }
    return rows;
}

TEST(FaultDocSync, DocTableMatchesCompiledCatalogExactly)
{
    const std::string docPath =
        std::string(TSP_SOURCE_DIR) + "/docs/robustness.md";
    auto doc = parseDocTable(docPath);
    ASSERT_FALSE(doc.empty())
        << "no fault-site rows parsed from " << docPath;

    std::map<std::string, DocRow> catalog;
    for (const fault::SiteInfo &site : fault::Registry::catalog())
        catalog[site.name] = {site.owner, site.help};

    for (const auto &[name, row] : catalog) {
        auto it = doc.find(name);
        ASSERT_NE(it, doc.end())
            << "fault site '" << name
            << "' is cataloged but missing from the "
               "docs/robustness.md site table";
        EXPECT_EQ(it->second.owner, row.owner)
            << "owner mismatch for '" << name << "'";
        EXPECT_EQ(it->second.help, row.help)
            << "help mismatch for '" << name << "'";
    }
    for (const auto &[name, row] : doc) {
        EXPECT_EQ(catalog.count(name), 1u)
            << "docs/robustness.md documents '" << name
            << "' but the library does not catalog it (stale row?)";
    }
    EXPECT_EQ(doc.size(), catalog.size());
}

} // namespace
