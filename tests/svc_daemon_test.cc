/**
 * @file
 * The resident experiment daemon (svc::Daemon): admission control and
 * deterministic queue-full shedding, priority ordering, store-backed
 * dedup, queue-expiry and mid-run deadline cancellation (on a fake
 * clock), request-boundary fault containment, and graceful drain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "svc/daemon.h"
#include "util/error.h"

namespace tsp::svc {
namespace {

using experiment::MachinePoint;
using experiment::RunJob;
using namespace std::chrono_literals;

constexpr uint32_t kScale = 64;

RunJob
jobAt(placement::Algorithm alg, uint32_t processors = 4,
      bool infinite = false)
{
    return {workload::AppId::Water, alg,
            MachinePoint{processors, 4}, infinite};
}

StudyRequest
study(std::vector<RunJob> jobs, int priority = 0,
      std::chrono::milliseconds deadline = 0ms)
{
    StudyRequest request;
    request.jobs = std::move(jobs);
    request.priority = priority;
    request.deadline = deadline;
    return request;
}

Daemon::Config
smallConfig()
{
    Daemon::Config config;
    config.scale = kScale;
    config.workers = 1;
    config.queueCapacity = 2;
    return config;
}

TEST(Daemon, AnswersARequestAndDedupsWithinTheStudy)
{
    Daemon::Config config = smallConfig();
    Daemon daemon(config);

    RunJob job = jobAt(placement::Algorithm::LoadBal);
    SubmitResult submitted = daemon.submit(study({job, job}));
    ASSERT_TRUE(submitted.admitted()) << submitted.rejection;

    StudyResponse response = submitted.accepted->get();
    EXPECT_EQ(response.status, StudyStatus::Completed);
    ASSERT_EQ(response.outcomes.size(), 2u);
    for (const auto &outcome : response.outcomes) {
        ASSERT_TRUE(outcome.ok()) << outcome.error();
        EXPECT_GT(outcome.value().executionTime, 0u);
    }
    // Identical cells within one study answer identically.
    EXPECT_EQ(response.outcomes[0].value().executionTime,
              response.outcomes[1].value().executionTime);
    EXPECT_GE(response.totalMillis, response.queueMillis);

    Daemon::Counters counters = daemon.counters();
    EXPECT_EQ(counters.admitted, 1u);
    EXPECT_EQ(counters.shed, 0u);
    daemon.drain();
    EXPECT_EQ(daemon.counters().completed, 1u);
}

TEST(Daemon, EmptyStudyIsShedWithAReason)
{
    Daemon daemon(smallConfig());
    SubmitResult submitted = daemon.submit(study({}));
    EXPECT_FALSE(submitted.admitted());
    EXPECT_NE(submitted.rejection.find("empty study"),
              std::string::npos)
        << submitted.rejection;
    EXPECT_EQ(daemon.counters().shed, 1u);
}

TEST(Daemon, QueueFullShedsDeterministicallyAndResumeCompletes)
{
    Daemon::Config config = smallConfig();
    config.startPaused = true;  // fill the queue without racing workers
    Daemon daemon(config);

    RunJob job = jobAt(placement::Algorithm::LoadBal);
    std::vector<std::future<StudyResponse>> admitted;
    unsigned sheds = 0;
    for (int i = 0; i < 5; ++i) {
        SubmitResult submitted = daemon.submit(study({job}));
        if (submitted.admitted()) {
            admitted.push_back(std::move(*submitted.accepted));
        } else {
            ++sheds;
            EXPECT_NE(submitted.rejection.find("queue full"),
                      std::string::npos)
                << submitted.rejection;
        }
    }
    // Paused daemon, capacity 2: exactly the first two are admitted.
    EXPECT_EQ(admitted.size(), 2u);
    EXPECT_EQ(sheds, 3u);
    EXPECT_EQ(daemon.queueDepth(), 2u);
    EXPECT_EQ(daemon.counters().admitted, 2u);
    EXPECT_EQ(daemon.counters().shed, 3u);

    daemon.resume();
    for (auto &future : admitted)
        EXPECT_EQ(future.get().status, StudyStatus::Completed);
    daemon.drain();
    EXPECT_EQ(daemon.counters().completed, 2u);
}

TEST(Daemon, HigherPriorityRunsFirst)
{
    Daemon::Config config = smallConfig();
    config.queueCapacity = 8;
    config.startPaused = true;
    Daemon daemon(config);

    // Queue low priority first, then high; the single worker must
    // answer the high-priority request with the shorter queue wait
    // profile — observable via completion order of the futures.
    auto low = daemon.submit(
        study({jobAt(placement::Algorithm::LoadBal)}, 0));
    auto high = daemon.submit(
        study({jobAt(placement::Algorithm::ShareRefs)}, 2));
    ASSERT_TRUE(low.admitted());
    ASSERT_TRUE(high.admitted());

    daemon.resume();
    StudyResponse highResponse = high.accepted->get();
    EXPECT_EQ(highResponse.status, StudyStatus::Completed);
    // When the high-priority answer lands, the low one may still be
    // queued or in flight — but never answered before it started.
    StudyResponse lowResponse = low.accepted->get();
    EXPECT_EQ(lowResponse.status, StudyStatus::Completed);
    EXPECT_GE(lowResponse.queueMillis, highResponse.queueMillis);
    daemon.drain();
}

TEST(Daemon, StoreDedupServesRepeatStudiesAsCacheHits)
{
    std::string path = testing::TempDir() + "/daemon_store.tsps";
    std::remove(path.c_str());
    Daemon::Config config = smallConfig();
    config.storePath = path;
    Daemon daemon(config);

    StudyRequest request = study({jobAt(placement::Algorithm::LoadBal),
                                  jobAt(placement::Algorithm::ShareRefs)});
    auto first = daemon.submit(request);
    ASSERT_TRUE(first.admitted());
    StudyResponse firstResponse = first.accepted->get();
    EXPECT_EQ(firstResponse.status, StudyStatus::Completed);
    EXPECT_EQ(firstResponse.executed, 2u);
    EXPECT_EQ(firstResponse.cacheHits, 0u);

    auto second = daemon.submit(request);
    ASSERT_TRUE(second.admitted());
    StudyResponse secondResponse = second.accepted->get();
    EXPECT_EQ(secondResponse.status, StudyStatus::Completed);
    EXPECT_EQ(secondResponse.executed, 0u);
    EXPECT_EQ(secondResponse.cacheHits, 2u);

    // Bit-identical paper numbers either way.
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(secondResponse.outcomes[i].value().executionTime,
                  firstResponse.outcomes[i].value().executionTime);
    }
    ASSERT_NE(daemon.store(), nullptr);
    EXPECT_EQ(daemon.store()->size(), 2u);
    daemon.drain();
    std::remove(path.c_str());
}

TEST(Daemon, DeadlineExpiredWhileQueuedAnswersExpired)
{
    Daemon::Config config = smallConfig();
    config.startPaused = true;  // hold the request in the queue
    Daemon daemon(config);

    auto submitted = daemon.submit(
        study({jobAt(placement::Algorithm::LoadBal)}, 0, 1ms));
    ASSERT_TRUE(submitted.admitted());
    std::this_thread::sleep_for(20ms);
    daemon.resume();

    StudyResponse response = submitted.accepted->get();
    EXPECT_EQ(response.status, StudyStatus::Expired);
    EXPECT_NE(response.error.find("expired"), std::string::npos);
    ASSERT_EQ(response.outcomes.size(), 1u);
    EXPECT_FALSE(response.outcomes[0].ok());
    EXPECT_EQ(response.executed, 0u);
    EXPECT_EQ(daemon.counters().expired, 1u);
    daemon.drain();
}

TEST(Daemon, MidRunDeadlineCancelsTailCellsDeterministically)
{
    // Fake clock: admission and the first between-cell check read T0;
    // every later read is past the 10ms deadline. Cell 1 runs, cells
    // 2 and 3 are answered as cancelled — deterministically, with no
    // real-time dependence (the watchdog is skipped under fake clocks).
    Daemon::Config config = smallConfig();
    std::atomic<int> reads{0};
    const auto t0 = Daemon::Clock::time_point(0ms);
    config.clock = [&reads, t0]() {
        // Reads 1..3: admission stamp, execute() start, the expiry
        // gate before cell 1. From read 4 on (cell 2's gate), time
        // has jumped past the deadline.
        return (++reads <= 3) ? t0 : t0 + 20ms;
    };
    Daemon daemon(config);

    auto submitted = daemon.submit(
        study({jobAt(placement::Algorithm::LoadBal),
               jobAt(placement::Algorithm::ShareRefs),
               jobAt(placement::Algorithm::LoadBal, 8)},
              0, 10ms));
    ASSERT_TRUE(submitted.admitted());

    StudyResponse response = submitted.accepted->get();
    EXPECT_EQ(response.status, StudyStatus::DeadlineExceeded);
    ASSERT_EQ(response.outcomes.size(), 3u);
    EXPECT_TRUE(response.outcomes[0].ok());
    EXPECT_FALSE(response.outcomes[1].ok());
    EXPECT_FALSE(response.outcomes[2].ok());
    EXPECT_NE(response.outcomes[1].error().find("deadline"),
              std::string::npos)
        << response.outcomes[1].error();
    EXPECT_EQ(response.cancelledCells, 2u);
    EXPECT_EQ(response.executed, 1u);
    daemon.drain();
}

TEST(Daemon, DequeueFaultFailsOneRequestServiceContinues)
{
    Daemon daemon(smallConfig());
    RunJob job = jobAt(placement::Algorithm::LoadBal);

    fault::arm("svc.dequeue:1:error");
    auto first = daemon.submit(study({job}));
    ASSERT_TRUE(first.admitted());
    StudyResponse failed = first.accepted->get();
    fault::disarm();

    EXPECT_EQ(failed.status, StudyStatus::Failed);
    EXPECT_FALSE(failed.error.empty());
    ASSERT_EQ(failed.outcomes.size(), 1u);
    EXPECT_FALSE(failed.outcomes[0].ok());

    // The daemon survives and answers the next request normally.
    auto second = daemon.submit(study({job}));
    ASSERT_TRUE(second.admitted());
    EXPECT_EQ(second.accepted->get().status, StudyStatus::Completed);
    daemon.drain();
    EXPECT_EQ(daemon.counters().completed, 2u);
}

TEST(Daemon, AdmitFaultShedsTheSubmission)
{
    Daemon daemon(smallConfig());
    fault::arm("svc.admit:1:error");
    SubmitResult submitted =
        daemon.submit(study({jobAt(placement::Algorithm::LoadBal)}));
    fault::disarm();

    EXPECT_FALSE(submitted.admitted());
    EXPECT_NE(submitted.rejection.find("injected"), std::string::npos)
        << submitted.rejection;
    EXPECT_EQ(daemon.counters().shed, 1u);
    EXPECT_EQ(daemon.counters().admitted, 0u);
    daemon.drain();
}

TEST(Daemon, DrainingRejectsNewSubmissions)
{
    Daemon daemon(smallConfig());
    RunJob job = jobAt(placement::Algorithm::LoadBal);
    auto admitted = daemon.submit(study({job}));
    ASSERT_TRUE(admitted.admitted());

    daemon.beginDrain();
    EXPECT_TRUE(daemon.draining());
    SubmitResult rejected = daemon.submit(study({job}));
    EXPECT_FALSE(rejected.admitted());
    EXPECT_NE(rejected.rejection.find("draining"), std::string::npos)
        << rejected.rejection;

    // The in-flight request still finishes.
    EXPECT_EQ(admitted.accepted->get().status, StudyStatus::Completed);
    daemon.drain();  // idempotent
    daemon.drain();

    Daemon::Counters counters = daemon.counters();
    EXPECT_EQ(counters.admitted, 1u);
    EXPECT_EQ(counters.completed, 1u);
    EXPECT_EQ(counters.shed, 1u);
    EXPECT_EQ(daemon.queueDepth(), 0u);
}

} // namespace
} // namespace tsp::svc
