/**
 * @file
 * Tests for the CSV result-emission module.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "experiment/report.h"
#include "util/error.h"

namespace tsp::experiment {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

TEST(CsvQuote, PassesPlainCellsThrough)
{
    EXPECT_EQ(csvQuote("hello"), "hello");
    EXPECT_EQ(csvQuote("12.5"), "12.5");
    EXPECT_EQ(csvQuote(""), "");
}

TEST(CsvQuote, QuotesSpecialCharacters)
{
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows)
{
    std::string path = tmpPath("csv_basic.csv");
    {
        CsvWriter csv(path);
        csv.header({"a", "b"});
        csv.row({"1", "x,y"});
        csv.row({"2", "z"});
    }
    EXPECT_EQ(slurp(path), "a,b\n1,\"x,y\"\n2,z\n");
}

TEST(CsvWriter, EnforcesRowDiscipline)
{
    std::string path = tmpPath("csv_discipline.csv");
    CsvWriter csv(path);
    EXPECT_THROW(csv.row({"too", "early"}), util::FatalError);
    csv.header({"a", "b"});
    EXPECT_THROW(csv.header({"again"}), util::FatalError);
    EXPECT_THROW(csv.row({"wrong-width"}), util::FatalError);
}

TEST(CsvWriter, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"),
                 util::FatalError);
}

TEST(OutputDirectory, FollowsEnvironment)
{
    unsetenv("TSP_OUT");
    EXPECT_FALSE(outputDirectory().has_value());
    setenv("TSP_OUT", "/tmp/somewhere", 1);
    ASSERT_TRUE(outputDirectory().has_value());
    EXPECT_EQ(*outputDirectory(), "/tmp/somewhere");
    setenv("TSP_OUT", "", 1);
    EXPECT_FALSE(outputDirectory().has_value());
    unsetenv("TSP_OUT");
}

TEST(StudyCsv, ExecTimePointsRoundTrip)
{
    std::string path = tmpPath("exec.csv");
    std::vector<ExecTimePoint> points(1);
    points[0].alg = placement::Algorithm::LoadBal;
    points[0].point = {4, 2};
    points[0].cycles = 12345;
    points[0].normalizedToRandom = 0.75;
    points[0].loadImbalance = 1.125;
    writeExecTimeCsv(path, points);
    std::string text = slurp(path);
    EXPECT_NE(text.find("LOAD-BAL,4,2,12345,0.750000,1.125000"),
              std::string::npos);
}

TEST(StudyCsv, MissComponentsRoundTrip)
{
    std::string path = tmpPath("miss.csv");
    std::vector<MissComponentRow> rows(1);
    rows[0].alg = placement::Algorithm::Random;
    rows[0].point = {2, 8};
    rows[0].compulsory = 1;
    rows[0].intraConflict = 2;
    rows[0].interConflict = 3;
    rows[0].invalidation = 4;
    rows[0].refs = 100;
    writeMissComponentsCsv(path, rows);
    EXPECT_NE(slurp(path).find("RANDOM,2,8,1,2,3,4,100"),
              std::string::npos);
}

TEST(StudyCsv, Table4And5RoundTrip)
{
    std::string p4 = tmpPath("t4.csv");
    std::vector<Table4Row> t4(1);
    t4[0].app = "Water";
    t4[0].staticTotal = 1000;
    t4[0].dynamicTotal = 10;
    t4[0].staticOverDynamic = 100;
    writeTable4Csv(p4, t4);
    EXPECT_NE(slurp(p4).find("Water,"), std::string::npos);

    std::string p5 = tmpPath("t5.csv");
    std::vector<Table5Cell> t5(1);
    t5[0].app = "FFT";
    t5[0].processors = 8;
    t5[0].bestStatic = placement::Algorithm::MaxWritesLB;
    t5[0].bestStaticVsLoadBal = 1.02;
    t5[0].coherenceVsLoadBal = 1.5;
    writeTable5Csv(p5, t5);
    EXPECT_NE(slurp(p5).find("FFT,8,MAX-WRITES+LB,1.020000,1.500000"),
              std::string::npos);
}

TEST(StudyCsv, Table2RoundTrip)
{
    std::string path = tmpPath("t2.csv");
    std::vector<analysis::CharacteristicsRow> rows(1);
    rows[0].app = "Gauss";
    rows[0].sharedRefsPct = 95.0;
    writeTable2Csv(path, rows);
    std::string text = slurp(path);
    EXPECT_NE(text.find("Gauss,"), std::string::npos);
    EXPECT_NE(text.find("95.000000"), std::string::npos);
}

} // namespace
} // namespace tsp::experiment
