/**
 * @file
 * Additional workload tests: the validation module itself, the
 * false-sharing layout strides, the write-fraction knob, and
 * barrier-emission behaviour under budget exhaustion.
 */

#include <gtest/gtest.h>

#include "analysis/static_analysis.h"
#include "sim/coherence_probe.h"
#include "trace/address_space.h"
#include "workload/generator.h"
#include "workload/suite.h"
#include "workload/validate.h"

namespace tsp::workload {
namespace {

AppProfile
smallProfile()
{
    AppProfile p;
    p.name = "small";
    p.threads = 6;
    p.meanLength = 30000;
    p.sharedRefFrac = 0.5;
    p.refsPerSharedAddr = 15.0;
    p.globalFrac = 1.0;
    p.seed = 77;
    return p;
}

// ------------------------------------------------------------ validation

TEST(Validate, PassesOnItsOwnOutput)
{
    AppProfile p = smallProfile();
    auto traces = generateTraces(p, 1);
    auto report = validateTraces(p, traces, 1);
    EXPECT_TRUE(report.allOk()) << report.render();
    EXPECT_EQ(report.app, "small");
    EXPECT_GE(report.items.size(), 4u);
}

TEST(Validate, DetectsMismatchedProfile)
{
    AppProfile p = smallProfile();
    auto traces = generateTraces(p, 1);
    AppProfile wrong = p;
    wrong.sharedRefFrac = 0.05;  // traces were built at 0.5
    auto report = validateTraces(wrong, traces, 1);
    EXPECT_FALSE(report.allOk());
    std::string text = report.render();
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find("shared refs %"), std::string::npos);
}

TEST(Validate, RenderListsEveryItem)
{
    AppProfile p = smallProfile();
    auto traces = generateTraces(p, 1);
    auto report = validateTraces(p, traces, 1);
    std::string text = report.render();
    for (const auto &item : report.items)
        EXPECT_NE(text.find(item.metric), std::string::npos);
}

// --------------------------------------------------------------- layout

TEST(LayoutStrides, AlignedPoolsLandOnBlockBoundaries)
{
    AppProfile p = smallProfile();
    p.globalFrac = 0.4;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.2;
    p.sliceFrac = 0.2;
    p.alignSharedPools = true;
    auto layout = computeLayout(p, 1);
    EXPECT_EQ(layout.edgeStride % 8, 0u);
    EXPECT_EQ(layout.mailboxStride % 8, 0u);
    EXPECT_EQ(layout.sliceStride % 8, 0u);
    EXPECT_EQ(layout.edgesBase % 8, 0u);
    EXPECT_EQ(layout.mailboxBase % 8, 0u);
    EXPECT_EQ(layout.slicesBase % 8, 0u);
    EXPECT_GE(layout.edgeStride, layout.edgeWords);
}

TEST(LayoutStrides, PackedPoolsUseExactSizes)
{
    AppProfile p = smallProfile();
    p.globalFrac = 0.6;
    p.sliceFrac = 0.4;
    p.alignSharedPools = false;
    auto layout = computeLayout(p, 1);
    EXPECT_EQ(layout.sliceStride, layout.sliceWords);
}

TEST(LayoutStrides, AlignmentRemovesBoundaryInvalidations)
{
    // Slice-heavy profile: neighbors read each other's slices, so
    // word-packed slice boundaries create false sharing.
    AppProfile p;
    p.name = "fs";
    p.threads = 8;
    p.meanLength = 40000;
    p.sharedRefFrac = 0.6;
    p.refsPerSharedAddr = 12.0;
    p.globalFrac = 0.3;
    p.sliceFrac = 0.7;
    p.phases = 8;
    p.seed = 123;

    sim::SimConfig cfg;
    cfg.cacheBytes = 16 * 1024;

    p.alignSharedPools = true;
    auto aligned = sim::measureCoherenceTraffic(generateTraces(p, 1),
                                                cfg);
    p.alignSharedPools = false;
    auto packed = sim::measureCoherenceTraffic(generateTraces(p, 1),
                                               cfg);
    EXPECT_GE(packed.stats.totalInvalidationsSent(),
              aligned.stats.totalInvalidationsSent());
}

// ----------------------------------------------------------------- knobs

TEST(Knobs, WrittenFracZeroMakesGlobalPoolReadOnly)
{
    AppProfile p = smallProfile();
    p.globalWriteMode = GlobalWriteMode::Migratory;
    p.globalWrittenFrac = 0.0;
    auto traces = generateTraces(p, 1);
    for (const auto &t : traces.threads()) {
        for (const auto &e : t.events()) {
            if (e.isMemRef() && e.isStore()) {
                // Only private stores may exist.
                EXPECT_FALSE(trace::AddressSpace::isShared(e.address()))
                    << "shared store at " << std::hex << e.address();
            }
        }
    }
}

TEST(Knobs, HigherWrittenFracRaisesCoherenceTraffic)
{
    AppProfile p = smallProfile();
    p.globalWriteMode = GlobalWriteMode::Migratory;
    sim::SimConfig cfg;
    cfg.cacheBytes = 16 * 1024;

    p.globalWrittenFrac = 0.05;
    auto low = sim::measureCoherenceTraffic(generateTraces(p, 1), cfg);
    p.globalWrittenFrac = 0.8;
    auto high = sim::measureCoherenceTraffic(generateTraces(p, 1), cfg);
    EXPECT_GT(high.stats.totalInvalidationsSent(),
              low.stats.totalInvalidationsSent());
}

TEST(Knobs, OwnerWritesNeverCollideWithinAPhase)
{
    // With OwnerWrites, two threads never write the same address:
    // every shared address has at most one writing thread overall.
    AppProfile p = smallProfile();
    p.threads = 8;
    p.globalWriteMode = GlobalWriteMode::OwnerWrites;
    auto traces = generateTraces(p, 1);
    auto an = analysis::StaticAnalysis::analyze(traces);

    std::map<uint64_t, std::set<uint32_t>> writersPerAddr;
    for (const auto &t : traces.threads()) {
        for (const auto &e : t.events()) {
            if (e.isMemRef() && e.isStore() &&
                trace::AddressSpace::isShared(e.address())) {
                writersPerAddr[e.address()].insert(t.id());
            }
        }
    }
    for (const auto &[addr, writers] : writersPerAddr) {
        EXPECT_EQ(writers.size(), 1u)
            << "address " << std::hex << addr << " written by "
            << writers.size() << " threads";
    }
    EXPECT_GT(an.sharedRefs().total(), 0.0);
}

TEST(Knobs, BarrierCountUniformEvenWhenBudgetsDiffer)
{
    AppProfile p = smallProfile();
    p.lengthDevPct = 150.0;  // extreme skew: some budgets exhaust
    p.barriers = true;
    p.phases = 6;
    auto traces = generateTraces(p, 1);
    for (const auto &t : traces.threads())
        EXPECT_EQ(t.barrierCount(), 5u);
}

} // namespace
} // namespace tsp::workload
