/**
 * @file
 * Golden-digest pins for the paper's studies. Each test runs a full
 * study at the figure scale and CRCs its observable outputs (cycle
 * counts, miss-component counts) in row order. The pinned digests were
 * recorded from the pre-optimization simulator core, so these tests
 * prove the hot-path work (flat hash state, allocation-free
 * transactions, the merged event loop — see docs/performance.md)
 * changed nothing observable: any behavioural drift in the simulator,
 * workload generators or placement algorithms fails here first.
 *
 * If a digest changes INTENTIONALLY (a modelling fix, a new workload
 * default), re-record it and say why in the commit message; these
 * constants are the repo's bit-exactness contract.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "experiment/lab.h"
#include "experiment/studies.h"
#include "util/checksum.h"
#include "workload/suite.h"

namespace tsp::experiment {
namespace {

/** Feed one value into a running CRC as 8 little-endian bytes. */
void
feed64(uint32_t &crc, uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
    crc = util::crc32(b, 8, crc);
}

uint32_t
execTimeDigest(Lab &lab, workload::AppId app)
{
    uint32_t crc = 0;
    auto pts =
        execTimeStudy(lab, app, placement::figureAlgorithms(), 2u);
    EXPECT_FALSE(pts.empty());
    for (const auto &pt : pts) {
        feed64(crc, static_cast<uint64_t>(pt.alg));
        feed64(crc, pt.point.processors);
        feed64(crc, pt.point.contexts);
        feed64(crc, pt.cycles);
    }
    return crc;
}

uint32_t
missComponentDigest(Lab &lab, workload::AppId app)
{
    uint32_t crc = 0;
    auto rows =
        missComponentStudy(lab, app, placement::figureAlgorithms(), 2u);
    EXPECT_FALSE(rows.empty());
    for (const auto &row : rows) {
        feed64(crc, static_cast<uint64_t>(row.alg));
        feed64(crc, row.point.processors);
        feed64(crc, row.point.contexts);
        feed64(crc, row.compulsory);
        feed64(crc, row.intraConflict);
        feed64(crc, row.interConflict);
        feed64(crc, row.invalidation);
        feed64(crc, row.refs);
    }
    return crc;
}

TEST(GoldenDigest, ExecTimeWater)
{
    Lab lab(16);
    EXPECT_EQ(execTimeDigest(lab, workload::AppId::Water), 0x2ca477a7u);
}

TEST(GoldenDigest, MissComponentsWater)
{
    Lab lab(16);
    EXPECT_EQ(missComponentDigest(lab, workload::AppId::Water),
              0x8fedf0c7u);
}

TEST(GoldenDigest, ExecTimeFFT)
{
    Lab lab(16);
    EXPECT_EQ(execTimeDigest(lab, workload::AppId::FFT), 0xe080a6c9u);
}

} // namespace
} // namespace tsp::experiment
