/**
 * @file
 * Machine tests: hand-computed cycle-exact timelines for small traces,
 * coherence attribution scenarios, the threads-beyond-contexts queue,
 * and property tests (cycle identity, hit+miss conservation,
 * determinism, infinite-cache behaviour) over random workloads.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/error.h"
#include "util/rng.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

/** Base config: 1 KB cache, 32 B blocks, 50-cycle misses, 6-cycle switch. */
SimConfig
baseConfig(uint32_t procs, uint32_t ctxs)
{
    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = ctxs;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    return cfg;
}

/** Distinct shared-region block addresses. */
uint64_t
sharedBlockAddr(uint64_t i)
{
    return AddressSpace::sharedBase + i * 32;
}

// --------------------------------------------------- hand-computed runs

TEST(Machine, SingleThreadMissAndHitTimeline)
{
    // work 10, load X (miss), work 5, load X (hit):
    // busy 17, idle 50 (miss latency with nothing to switch to),
    // finish 67.
    TraceSet ts("one");
    ThreadTrace t0(0);
    t0.appendWork(10);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendWork(5);
    t0.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));

    SimStats s = simulate(baseConfig(1, 1), ts, PlacementMap(1, {0}));
    const auto &p = s.procs[0];
    EXPECT_EQ(p.busyCycles, 17u);
    EXPECT_EQ(p.switchCycles, 0u);
    EXPECT_EQ(p.idleCycles, 50u);
    EXPECT_EQ(p.finishTime, 67u);
    EXPECT_EQ(p.instructions, 17u);
    EXPECT_EQ(p.memRefs, 2u);
    EXPECT_EQ(p.hits, 1u);
    EXPECT_EQ(p.missCount(MissKind::Compulsory), 1u);
    EXPECT_EQ(s.executionTime(), 67u);
}

TEST(Machine, TwoContextsOverlapMissesWithSwitches)
{
    // Two threads on one processor, each: load (miss), work 20.
    // t=0 ctx0 misses (busy 1); switch 6; ctx1 misses at 8 (busy 1);
    // idle until 51; switch 6; ctx0 works 20 -> finish 77; switch 6;
    // ctx1 works 20 -> finish 103.
    TraceSet ts("two");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendWork(20);
    ThreadTrace t1(1);
    t1.appendLoad(sharedBlockAddr(1));
    t1.appendWork(20);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s = simulate(baseConfig(1, 2), ts, PlacementMap(1, {0, 0}));
    const auto &p = s.procs[0];
    EXPECT_EQ(p.busyCycles, 42u);
    EXPECT_EQ(p.switchCycles, 18u);
    EXPECT_EQ(p.idleCycles, 43u);
    EXPECT_EQ(p.finishTime, 103u);
    EXPECT_EQ(p.missCount(MissKind::Compulsory), 2u);
    EXPECT_EQ(p.busyCycles + p.switchCycles + p.idleCycles,
              p.finishTime);
}

TEST(Machine, ReadAfterRemoteWriteDowngradesAndAttributes)
{
    // P0/t0 stores X; P1/t1 (after 30 work) loads X twice. The load is
    // a sharing compulsory miss: the directory knew the block, t0
    // wrote it.
    TraceSet ts("rw");
    ThreadTrace t0(0);
    t0.appendStore(sharedBlockAddr(0));
    t0.appendWork(100);
    ThreadTrace t1(1);
    t1.appendWork(30);
    t1.appendLoad(sharedBlockAddr(0));
    t1.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s =
        simulate(baseConfig(2, 1), ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.sharingCompulsoryMisses, 1u);
    EXPECT_DOUBLE_EQ(s.coherencePairs.get(0, 1), 1.0);
    EXPECT_EQ(s.procs[0].writebacks, 1u);  // M -> S downgrade
    EXPECT_EQ(s.procs[1].hits, 1u);
    EXPECT_EQ(s.totalInvalidationsSent(), 0u);
}

TEST(Machine, RemoteWriteCausesInvalidationMiss)
{
    // t0 loads X, works, loads X again; t1 stores X in between.
    // Expect: one invalidation sent (t1 -> t0's copy), one
    // invalidation miss at t0's re-read, one sharing compulsory at
    // t1's store, attribution pairs totalling 3, exec time 261.
    TraceSet ts("inv");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendWork(100);
    t0.appendLoad(sharedBlockAddr(0));
    ThreadTrace t1(1);
    t1.appendWork(10);
    t1.appendStore(sharedBlockAddr(0));
    t1.appendWork(200);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s =
        simulate(baseConfig(2, 1), ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.totalMissCount(MissKind::Invalidation), 1u);
    EXPECT_EQ(s.totalInvalidationsSent(), 1u);
    EXPECT_EQ(s.procs[1].invalidationsSent, 1u);
    EXPECT_EQ(s.procs[0].invalidationsReceived, 1u);
    EXPECT_EQ(s.sharingCompulsoryMisses, 1u);
    EXPECT_DOUBLE_EQ(s.coherencePairs.get(0, 1), 3.0);
    EXPECT_EQ(s.procs[1].writebacks, 1u);  // downgrade at t0's re-read
    EXPECT_EQ(s.executionTime(), 261u);
    EXPECT_EQ(s.dynamicSharingTraffic(), 3u);
}

TEST(Machine, UpgradeOnSharedHitInvalidatesRemoteCopy)
{
    // t0 loads X (Exclusive), t1 loads X (both Shared), t0 stores X:
    // an upgrade, not a miss; t1's copy dies.
    TraceSet ts("upg");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendWork(100);
    t0.appendStore(sharedBlockAddr(0));
    ThreadTrace t1(1);
    t1.appendWork(10);
    t1.appendLoad(sharedBlockAddr(0));
    t1.appendWork(200);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s =
        simulate(baseConfig(2, 1), ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.totalUpgrades(), 1u);
    EXPECT_EQ(s.procs[0].upgrades, 1u);
    EXPECT_EQ(s.totalInvalidationsSent(), 1u);
    EXPECT_EQ(s.procs[1].invalidationsReceived, 1u);
    // The upgrade is a hit, not a miss.
    EXPECT_EQ(s.procs[0].hits, 1u);
    EXPECT_EQ(s.procs[0].totalMisses(), 1u);  // only the initial load
    EXPECT_EQ(s.procs[0].finishTime, 152u);
}

TEST(Machine, ConflictMissClassification)
{
    // Two addresses aliasing to the same frame (1 KB cache => blocks
    // 0 and 32 collide). Same thread evicts itself: intra-thread
    // conflict on the re-reference.
    TraceSet ts("conflict");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendLoad(sharedBlockAddr(32));  // evicts block 0
    t0.appendLoad(sharedBlockAddr(0));   // intra-thread conflict
    ts.addThread(std::move(t0));

    SimStats s = simulate(baseConfig(1, 1), ts, PlacementMap(1, {0}));
    EXPECT_EQ(s.totalMissCount(MissKind::Compulsory), 2u);
    EXPECT_EQ(s.totalMissCount(MissKind::IntraConflict), 1u);
}

TEST(Machine, InterThreadConflictOnSharedCache)
{
    // Co-located threads evict each other: inter-thread conflict.
    TraceSet ts("interconflict");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendWork(200);                 // let t1 run and evict
    t0.appendLoad(sharedBlockAddr(0));  // inter-thread conflict
    ThreadTrace t1(1);
    t1.appendLoad(sharedBlockAddr(32));  // evicts t0's block
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s = simulate(baseConfig(1, 2), ts, PlacementMap(1, {0, 0}));
    EXPECT_EQ(s.totalMissCount(MissKind::InterConflict), 1u);
}

TEST(Machine, PendingThreadsRunAfterContextFrees)
{
    // Two threads, one context: they run back to back.
    TraceSet ts("queue");
    ThreadTrace t0(0);
    t0.appendWork(10);
    ThreadTrace t1(1);
    t1.appendWork(20);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s = simulate(baseConfig(1, 1), ts, PlacementMap(1, {0, 0}));
    const auto &p = s.procs[0];
    EXPECT_EQ(p.busyCycles, 30u);
    EXPECT_EQ(p.finishTime, 30u);
    EXPECT_EQ(p.idleCycles, 0u);
}

TEST(Machine, EmptyProcessorFinishesAtZero)
{
    TraceSet ts("lop");
    ThreadTrace t0(0);
    t0.appendWork(5);
    ts.addThread(std::move(t0));
    SimStats s = simulate(baseConfig(2, 1), ts, PlacementMap(2, {0}));
    EXPECT_EQ(s.procs[1].finishTime, 0u);
    EXPECT_EQ(s.procs[1].instructions, 0u);
    EXPECT_EQ(s.executionTime(), 5u);
}

TEST(Machine, ConfigMismatchesAreFatal)
{
    TraceSet ts("bad");
    ThreadTrace t0(0);
    t0.appendWork(1);
    ts.addThread(std::move(t0));
    // Placement processor count != config processor count.
    EXPECT_THROW(simulate(baseConfig(2, 1), ts, PlacementMap(1, {0})),
                 util::FatalError);
    // Placement thread count != trace thread count.
    EXPECT_THROW(
        simulate(baseConfig(1, 1), ts, PlacementMap(1, {0, 0})),
        util::FatalError);
}

TEST(Machine, RunTwiceIsFatal)
{
    TraceSet ts("once");
    ThreadTrace t0(0);
    t0.appendWork(1);
    ts.addThread(std::move(t0));
    Machine m(baseConfig(1, 1), ts, PlacementMap(1, {0}));
    m.run();
    EXPECT_THROW(m.run(), util::FatalError);
}

// ----------------------------------------------------------- properties

/** Random trace set over a small shared pool + private pools. */
TraceSet
randomTraces(util::Rng &rng, uint32_t threads, uint32_t events)
{
    TraceSet ts("random");
    for (uint32_t tid = 0; tid < threads; ++tid) {
        ThreadTrace t(tid);
        for (uint32_t e = 0; e < events; ++e) {
            switch (rng.nextBelow(4)) {
              case 0:
                t.appendWork(1 + rng.nextBelow(30));
                break;
              case 1:
                t.appendLoad(AddressSpace::sharedWord(
                    rng.nextBelow(512)));
                break;
              case 2:
                t.appendStore(AddressSpace::sharedWord(
                    rng.nextBelow(512)));
                break;
              default:
                t.appendLoad(AddressSpace::privateWord(
                    tid, rng.nextBelow(256)));
                break;
            }
        }
        ts.addThread(std::move(t));
    }
    return ts;
}

class MachineProperty : public ::testing::TestWithParam<int>
{};

TEST_P(MachineProperty, InvariantsHoldOnRandomWorkloads)
{
    util::Rng rng(5000 + GetParam());
    uint32_t threads = 2 + static_cast<uint32_t>(rng.nextBelow(6));
    uint32_t procs = 1 + static_cast<uint32_t>(rng.nextBelow(threads));
    uint32_t ctxs = 1 + static_cast<uint32_t>(rng.nextBelow(4));
    TraceSet ts = randomTraces(rng, threads, 150);

    std::vector<uint32_t> procOf(threads);
    for (uint32_t i = 0; i < threads; ++i)
        procOf[i] = static_cast<uint32_t>(rng.nextBelow(procs));
    PlacementMap map(procs, procOf);

    SimStats s = simulate(baseConfig(procs, ctxs), ts, map);

    uint64_t totalInstr = 0, totalRefs = 0;
    for (uint32_t p = 0; p < procs; ++p) {
        const auto &ps = s.procs[p];
        // Cycle identity.
        EXPECT_EQ(ps.busyCycles + ps.switchCycles + ps.idleCycles,
                  ps.finishTime)
            << "proc " << p;
        // Reference conservation.
        EXPECT_EQ(ps.hits + ps.totalMisses(), ps.memRefs);
        EXPECT_EQ(ps.busyCycles, ps.instructions);  // hitLatency == 1
        totalInstr += ps.instructions;
        totalRefs += ps.memRefs;
    }
    EXPECT_EQ(totalInstr, ts.totalInstructions());
    EXPECT_EQ(totalRefs, ts.totalMemRefs());
    // Execution time can never beat the longest thread.
    uint64_t longest = 0;
    for (const auto &t : ts.threads())
        longest = std::max(longest, t.instructionCount());
    EXPECT_GE(s.executionTime(), longest);
}

TEST_P(MachineProperty, DeterministicAcrossRuns)
{
    util::Rng rng(9000 + GetParam());
    TraceSet ts = randomTraces(rng, 4, 100);
    PlacementMap map(2, {0, 1, 0, 1});
    SimStats a = simulate(baseConfig(2, 2), ts, map);
    SimStats b = simulate(baseConfig(2, 2), ts, map);
    EXPECT_EQ(a.executionTime(), b.executionTime());
    for (int k = 0; k < 4; ++k) {
        EXPECT_EQ(a.totalMissCount(static_cast<MissKind>(k)),
                  b.totalMissCount(static_cast<MissKind>(k)));
    }
    EXPECT_EQ(a.totalInvalidationsSent(), b.totalInvalidationsSent());
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, MachineProperty,
                         ::testing::Range(0, 15));

TEST(Machine, InfiniteCacheEliminatesConflictMisses)
{
    // With an 8 MB cache and a small footprint, only compulsory and
    // invalidation misses remain (Section 4.3).
    util::Rng rng(4242);
    TraceSet ts = randomTraces(rng, 4, 300);
    PlacementMap map(2, {0, 0, 1, 1});
    SimConfig cfg = baseConfig(2, 2).withInfiniteCache();
    SimStats s = simulate(cfg, ts, map);
    EXPECT_EQ(s.totalMissCount(MissKind::IntraConflict), 0u);
    EXPECT_EQ(s.totalMissCount(MissKind::InterConflict), 0u);
    EXPECT_GT(s.totalMissCount(MissKind::Compulsory), 0u);
}

TEST(Machine, AssociativityCuresInterThreadThrashing)
{
    // The paper's Patch anomaly (Section 4.1): two co-located threads
    // repeatedly conflict on the same cache set and thrash; the paper
    // notes set-associative caching would address it. Reproduce with
    // two threads alternating over aliasing blocks.
    TraceSet ts("thrash");
    ThreadTrace t0(0);
    ThreadTrace t1(1);
    for (int i = 0; i < 50; ++i) {
        t0.appendLoad(sharedBlockAddr(0));
        t0.appendWork(60);
        t1.appendLoad(sharedBlockAddr(32));  // same set, 32-set cache
        t1.appendWork(60);
    }
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    PlacementMap map(1, {0, 0});

    SimConfig direct = baseConfig(1, 2);
    SimStats dm = simulate(direct, ts, map);
    EXPECT_GT(dm.totalMissCount(MissKind::InterConflict), 40u);

    SimConfig twoWay = baseConfig(1, 2);
    twoWay.associativity = 2;
    SimStats sa = simulate(twoWay, ts, map);
    EXPECT_EQ(sa.totalMissCount(MissKind::InterConflict), 0u);
    EXPECT_EQ(sa.totalMissCount(MissKind::Compulsory), 2u);
    // Much of the thrash latency hides behind the other context, but
    // every thrash-induced miss still costs a pipeline drain;
    // associativity removes both.
    EXPECT_LT(sa.executionTime(), dm.executionTime());
    EXPECT_LT(sa.procs[0].switchCycles, dm.procs[0].switchCycles);
}

TEST(Machine, AssociativityPreservesInvariants)
{
    util::Rng rng(31415);
    TraceSet ts = randomTraces(rng, 4, 300);
    PlacementMap map(2, {0, 1, 0, 1});
    for (uint32_t assoc : {1u, 2u, 4u}) {
        SimConfig cfg = baseConfig(2, 2);
        cfg.associativity = assoc;
        SimStats s = simulate(cfg, ts, map);
        for (const auto &ps : s.procs) {
            EXPECT_EQ(ps.busyCycles + ps.switchCycles + ps.idleCycles,
                      ps.finishTime);
            EXPECT_EQ(ps.hits + ps.totalMisses(), ps.memRefs);
        }
    }
}

TEST(Machine, SmallerCacheNeverHasFewerMisses)
{
    util::Rng rng(777);
    TraceSet ts = randomTraces(rng, 4, 400);
    PlacementMap map(2, {0, 0, 1, 1});
    SimConfig small = baseConfig(2, 2);
    small.cacheBytes = 512;
    SimConfig big = baseConfig(2, 2);
    big.cacheBytes = 64 * 1024;
    uint64_t smallMisses = simulate(small, ts, map).totalMisses();
    uint64_t bigMisses = simulate(big, ts, map).totalMisses();
    EXPECT_GE(smallMisses, bigMisses);
}

} // namespace
} // namespace tsp::sim
