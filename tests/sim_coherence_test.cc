/**
 * @file
 * Tests for the coherence-traffic probe (Section 4.2): one thread per
 * processor, thread-pair attribution, and the static-vs-dynamic gap on
 * workloads with sequential sharing.
 */

#include <gtest/gtest.h>

#include "analysis/static_analysis.h"
#include "sim/coherence_probe.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/error.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

namespace tsp::sim {
namespace {

using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

SimConfig
probeBase()
{
    SimConfig cfg;
    cfg.cacheBytes = 8 * 1024;
    cfg.blockBytes = 32;
    return cfg;
}

TEST(CoherenceProbe, PingPongWritersAttributeToThePair)
{
    // Threads 0 and 1 alternately write one block, far apart in time;
    // thread 2 never touches it.
    TraceSet ts("pingpong");
    uint64_t X = AddressSpace::sharedWord(0);
    ThreadTrace t0(0);
    ThreadTrace t1(1);
    ThreadTrace t2(2);
    for (int round = 0; round < 4; ++round) {
        t0.appendStore(X);
        t0.appendWork(500);
        t1.appendWork(250);
        t1.appendStore(X);
        t1.appendWork(250);
    }
    t2.appendWork(100);
    t2.appendLoad(AddressSpace::privateWord(2, 0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    ts.addThread(std::move(t2));

    auto probe = measureCoherenceTraffic(ts, probeBase());
    EXPECT_GT(probe.pairs.get(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(probe.pairs.get(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(probe.pairs.get(1, 2), 0.0);
    // Every write after the first either invalidates the other's copy
    // or misses on an invalidated block.
    EXPECT_GT(probe.stats.totalInvalidationsSent(), 0u);
}

TEST(CoherenceProbe, OverridesProcessorsAndContexts)
{
    TraceSet ts("tiny");
    for (uint32_t i = 0; i < 5; ++i) {
        ThreadTrace t(i);
        t.appendWork(10);
        ts.addThread(std::move(t));
    }
    auto probe = measureCoherenceTraffic(ts, probeBase());
    EXPECT_EQ(probe.stats.procs.size(), 5u);
    EXPECT_EQ(probe.pairs.size(), 5u);
}

TEST(CoherenceProbe, EmptyOrHugeSetsAreFatal)
{
    TraceSet empty("none");
    EXPECT_THROW(measureCoherenceTraffic(empty, probeBase()),
                 util::FatalError);
}

TEST(CoherenceProbe, ReadOnlySharingProducesNoInvalidations)
{
    // All threads read the same blocks: compulsory sharing traffic
    // only, zero invalidations.
    TraceSet ts("readonly");
    for (uint32_t i = 0; i < 4; ++i) {
        ThreadTrace t(i);
        t.appendWork(10 * i);
        for (uint64_t w = 0; w < 64; ++w)
            t.appendLoad(AddressSpace::sharedWord(w));
        ts.addThread(std::move(t));
    }
    auto probe = measureCoherenceTraffic(ts, probeBase());
    EXPECT_EQ(probe.stats.totalInvalidationsSent(), 0u);
    EXPECT_EQ(probe.stats.totalMissCount(MissKind::Invalidation), 0u);
    EXPECT_GT(probe.stats.sharingCompulsoryMisses, 0u);
}

TEST(CoherenceProbe, DynamicTrafficOrdersOfMagnitudeBelowStatic)
{
    // The paper's central measurement (Table 4): on a generated
    // workload with sequential sharing, runtime coherence traffic is
    // far below the static shared-reference count.
    workload::AppProfile p;
    p.name = "seqshare";
    p.threads = 8;
    p.meanLength = 40000;
    p.sharedRefFrac = 0.7;
    p.refsPerSharedAddr = 30.0;
    p.globalFrac = 1.0;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 11;
    auto traces = workload::generateTraces(p, 1);

    auto an = analysis::StaticAnalysis::analyze(traces);
    auto probe = measureCoherenceTraffic(traces, probeBase());

    double staticTotal = an.sharedRefs().total();
    double dynamicTotal =
        static_cast<double>(probe.stats.dynamicSharingTraffic());
    ASSERT_GT(dynamicTotal, 0.0);
    EXPECT_GT(staticTotal / dynamicTotal, 10.0)
        << "static " << staticTotal << " dynamic " << dynamicTotal;
}

TEST(CoherenceProbe, PairsFeedTotalConsistently)
{
    // Pair attribution never exceeds the total coherence events that
    // could be attributed (each event adds at most 1 to one pair).
    workload::AppProfile p;
    p.name = "attr";
    p.threads = 6;
    p.meanLength = 20000;
    p.sharedRefFrac = 0.5;
    p.refsPerSharedAddr = 10.0;
    p.globalFrac = 1.0;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 12;
    auto traces = workload::generateTraces(p, 1);
    auto probe = measureCoherenceTraffic(traces, probeBase());
    EXPECT_LE(probe.pairs.total(),
              static_cast<double>(
                  probe.stats.dynamicSharingTraffic()));
}

} // namespace
} // namespace tsp::sim
