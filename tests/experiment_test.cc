/**
 * @file
 * Tests of the experiment harness: machine-point sweeps, Lab
 * memoization and determinism, and the per-figure/table drivers at
 * small workload scale.
 */

#include <gtest/gtest.h>

#include "experiment/configs.h"
#include "experiment/lab.h"
#include "experiment/outcome.h"
#include "experiment/studies.h"

namespace tsp::experiment {
namespace {

using placement::Algorithm;
using workload::AppId;

// --------------------------------------------------------------- outcome

TEST(Outcome, DefaultStateIsADescriptivePoison)
{
    // A defaulted Outcome is the "cell never ran" poison: it must
    // explain itself instead of carrying an empty error string, so a
    // crash/cancellation hole in a sweep is actionable from the report.
    Outcome<int> poisoned;
    EXPECT_FALSE(poisoned.ok());
    EXPECT_NE(poisoned.error().find("job never ran"),
              std::string::npos);
    EXPECT_NE(poisoned.error().find("sweep ended"), std::string::npos);
}

TEST(Outcome, SuccessAndFailureArmsAreExclusive)
{
    auto good = Outcome<int>::success(42);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_THROW(good.error(), util::PanicError);

    auto bad = Outcome<int>::failure("disk on fire");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), "disk on fire");
    EXPECT_THROW(bad.value(), util::PanicError);
}

// ----------------------------------------------------------------- sweep

TEST(Configs, SweepCoversPaperProcessorCounts)
{
    auto points = standardSweep(32);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].processors, 2u);
    EXPECT_EQ(points[0].contexts, 16u);
    EXPECT_EQ(points[3].processors, 16u);
    EXPECT_EQ(points[3].contexts, 2u);
}

TEST(Configs, SweepStopsAtThreadCount)
{
    auto points = standardSweep(8);
    ASSERT_EQ(points.size(), 3u);  // 2, 4, 8
    EXPECT_EQ(points.back().processors, 8u);
    EXPECT_EQ(points.back().contexts, 1u);
}

TEST(Configs, ContextsAlwaysHoldAllThreads)
{
    for (uint32_t t : {5u, 10u, 127u}) {
        for (const auto &pt : standardSweep(t))
            EXPECT_GE(pt.processors * pt.contexts, t);
    }
}

TEST(Configs, LabelIsHumanReadable)
{
    MachinePoint pt{4, 3};
    EXPECT_EQ(pt.label(), "4p x 3c");
}

// ------------------------------------------------------------------- lab

TEST(Lab, MemoizesAnalysesAndTraces)
{
    Lab lab(64);
    const auto &t1 = lab.traces(AppId::Water);
    const auto &t2 = lab.traces(AppId::Water);
    EXPECT_EQ(&t1, &t2);
    const auto &a1 = lab.analysis(AppId::Water);
    const auto &a2 = lab.analysis(AppId::Water);
    EXPECT_EQ(&a1, &a2);
}

TEST(Lab, ConfigUsesPaperCacheSizes)
{
    Lab lab(1);
    MachinePoint pt{2, 4};
    auto cfg = lab.configFor(AppId::Water, pt);
    EXPECT_EQ(cfg.cacheBytes, 32u * 1024);
    EXPECT_EQ(cfg.processors, 2u);
    EXPECT_EQ(cfg.contexts, 4u);
    auto inf = lab.configFor(AppId::Water, pt, true);
    EXPECT_EQ(inf.cacheBytes, 8ull * 1024 * 1024);
}

TEST(Lab, RunsAreDeterministic)
{
    Lab lab(64);
    MachinePoint pt{2, 4};
    auto a = lab.run(AppId::Water, Algorithm::Random, pt);
    auto b = lab.run(AppId::Water, Algorithm::Random, pt);
    EXPECT_EQ(a.executionTime, b.executionTime);
    EXPECT_EQ(a.placement.assignment(), b.placement.assignment());
}

TEST(Lab, PlacementsCoverAllThreads)
{
    Lab lab(64);
    auto map = lab.placementFor(AppId::BarnesHut, Algorithm::ShareRefs,
                                4);
    EXPECT_EQ(map.threadCount(), 8u);
    EXPECT_TRUE(map.isThreadBalanced());
}

TEST(Lab, CoherenceMatrixHasThreadDimension)
{
    Lab lab(64);
    const auto &m = lab.coherenceMatrix(AppId::Water);
    EXPECT_EQ(m.size(), 8u);
}

// --------------------------------------------------------------- studies

TEST(Studies, ExecTimeStudyNormalizesRandomToOne)
{
    Lab lab(64);
    auto points = execTimeStudy(lab, AppId::Water,
                                {Algorithm::Random, Algorithm::LoadBal});
    ASSERT_FALSE(points.empty());
    for (const auto &pt : points) {
        EXPECT_GT(pt.cycles, 0u);
        if (pt.alg == Algorithm::Random)
            EXPECT_DOUBLE_EQ(pt.normalizedToRandom, 1.0);
        else
            EXPECT_GT(pt.normalizedToRandom, 0.0);
    }
}

TEST(Studies, MissComponentsAddUp)
{
    Lab lab(64);
    auto rows = missComponentStudy(
        lab, AppId::Water, {Algorithm::Random, Algorithm::ShareRefs});
    ASSERT_FALSE(rows.empty());
    for (const auto &row : rows) {
        EXPECT_GT(row.refs, 0u);
        EXPECT_LE(row.totalMisses(), row.refs);
    }
}

TEST(Studies, Table4RowHasTheRightShape)
{
    Lab lab(32);
    auto row = table4Row(lab, AppId::Water);
    EXPECT_EQ(row.app, "Water");
    EXPECT_GT(row.staticTotal, 0.0);
    EXPECT_GT(row.staticPctOfRefs, 0.0);
    EXPECT_GE(row.dynamicTotal, 0.0);
    // The headline result: static >> dynamic.
    EXPECT_GT(row.staticOverDynamic, 1.0);
    EXPECT_LT(row.dynamicPctOfRefs, row.staticPctOfRefs);
}

TEST(Studies, Table5CellsCoverSweep)
{
    Lab lab(64);
    auto cells = table5Study(lab, AppId::Water);
    ASSERT_EQ(cells.size(), standardSweep(8).size());
    for (const auto &cell : cells) {
        EXPECT_GT(cell.bestStaticVsLoadBal, 0.0);
        EXPECT_GT(cell.coherenceVsLoadBal, 0.0);
        // Sanity: nothing is an order of magnitude off LOAD-BAL.
        EXPECT_LT(cell.bestStaticVsLoadBal, 5.0);
        EXPECT_LT(cell.coherenceVsLoadBal, 5.0);
    }
}

TEST(Studies, Table5BestStaticComesFromTheFullPool)
{
    // The "best static sharing algorithm" pool must include the +LB
    // variants (twelve algorithms).
    EXPECT_EQ(placement::staticSharingAlgorithmsWithLB().size(), 12u);
    for (Algorithm alg : placement::staticSharingAlgorithms()) {
        auto &pool = placement::staticSharingAlgorithmsWithLB();
        EXPECT_NE(std::find(pool.begin(), pool.end(), alg),
                  pool.end());
    }
}

TEST(Studies, FigureAlgorithmsIncludeBaselines)
{
    const auto &algs = placement::figureAlgorithms();
    EXPECT_NE(std::find(algs.begin(), algs.end(), Algorithm::Random),
              algs.end());
    EXPECT_NE(std::find(algs.begin(), algs.end(), Algorithm::LoadBal),
              algs.end());
}

TEST(Lab, SeparateLabsAgreeOnPlacements)
{
    Lab a(64), b(64);
    auto pa = a.placementFor(AppId::Water, Algorithm::Random, 4);
    auto pb = b.placementFor(AppId::Water, Algorithm::Random, 4);
    EXPECT_EQ(pa.assignment(), pb.assignment());
}

TEST(Lab, ScaledCacheShrinksWithWorkload)
{
    Lab small(64);
    MachinePoint pt{2, 4};
    EXPECT_EQ(small.configFor(AppId::Water, pt).cacheBytes, 4096u);
    Lab full(1);
    EXPECT_EQ(full.configFor(AppId::Water, pt).cacheBytes,
              32u * 1024);
}

TEST(Studies, Table2RowUsesAppName)
{
    Lab lab(64);
    auto row = table2Row(lab, AppId::FFT);
    EXPECT_EQ(row.app, "FFT");
    EXPECT_GT(row.lengthMean, 0.0);
    EXPECT_GT(row.sharedRefsPct, 0.0);
}

} // namespace
} // namespace tsp::experiment
