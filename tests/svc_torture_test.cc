/**
 * @file
 * Crash-recovery torture: a forked child runs the experiment daemon
 * against an on-disk result store (with the `store.put` site armed to
 * delay, widening the persist window) and is SIGKILLed mid-publish,
 * repeatedly. After every kill the parent reopens the store and
 * asserts the recovery contract — every surviving record is intact
 * and bit-identical to an independently computed result, i.e. kill -9
 * loses at most the record being published. A final daemon over the
 * tortured store answers the whole study from cache, bit-identically.
 *
 * The parent holds no Daemon (no threads) until forking is done;
 * the child never returns into gtest (SIGKILL or _exit).
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "svc/daemon.h"
#include "svc/loadgen.h"

namespace tsp::svc {
namespace {

using experiment::RunJob;
using experiment::RunResult;
using namespace std::chrono_literals;

constexpr uint32_t kScale = 64;
constexpr int kKillRounds = 3;

std::string
bytesOf(const RunResult &result)
{
    experiment::codec::ByteWriter w;
    experiment::codec::writeRunResult(w, result);
    return w.bytes();
}

long long
fileSize(const std::string &path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<long long>(st.st_size);
}

/**
 * Child body: serve the whole @p palette through a store-backed
 * daemon, one cell per study, then idle until killed. Never returns
 * to the caller's stack normally.
 */
[[noreturn]] void
childServe(const std::string &storePath,
           const std::vector<RunJob> &palette)
{
    // Stretch every persist so the parent's SIGKILL reliably lands
    // inside the put window.
    fault::arm("store.put:1+:delay");
    {
        Daemon::Config config;
        config.scale = kScale;
        config.workers = 1;
        config.queueCapacity = palette.size() + 1;
        config.storePath = storePath;
        Daemon daemon(config);
        for (const RunJob &job : palette) {
            StudyRequest request;
            request.jobs = {job};
            SubmitResult submitted = daemon.submit(request);
            if (!submitted.admitted())
                break;
            submitted.accepted->get();
        }
        daemon.drain();
    }
    // Store complete; idle here until the parent's kill arrives.
    for (;;)
        std::this_thread::sleep_for(50ms);
}

TEST(SvcTorture, SigkillMidPutNeverLosesMoreThanTheInFlightRecord)
{
    std::string path =
        testing::TempDir() + "/torture_store.tsps";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    // The study under torture and its expected answers, computed
    // independently of any store or daemon.
    experiment::Lab lab(kScale);
    std::vector<RunJob> palette =
        defaultPalette(lab, workload::AppId::Water);
    ASSERT_GE(palette.size(), 4u);
    std::vector<std::string> expected;
    expected.reserve(palette.size());
    for (const RunJob &job : palette) {
        expected.push_back(bytesOf(
            lab.run(job.app, job.alg, job.point, job.infiniteCache)));
    }

    size_t survivorsBefore = 0;
    for (int round = 0; round < kKillRounds; ++round) {
        long long baseline = fileSize(path);
        pid_t child = fork();
        ASSERT_GE(child, 0) << "fork failed";
        if (child == 0) {
            childServe(path, palette);  // never returns
        }

        // Kill as soon as the store advances past this round's
        // baseline; after a bounded wait, kill regardless (the store
        // may already be complete).
        auto giveUp =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        while (fileSize(path) <= baseline &&
               std::chrono::steady_clock::now() < giveUp)
            std::this_thread::sleep_for(1ms);
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status));

        // Recovery contract: the store reopens cleanly, every
        // surviving record is a palette cell, and each one is
        // bit-identical to the independently computed result.
        ResultStore recovered(path, kScale);
        EXPECT_EQ(recovered.droppedBytes(), 0u)
            << "atomic tmp+rename must never publish a torn image";
        size_t found = 0;
        for (size_t i = 0; i < palette.size(); ++i) {
            auto cached = recovered.lookup(palette[i]);
            if (!cached.has_value())
                continue;
            ++found;
            EXPECT_EQ(bytesOf(*cached), expected[i])
                << "record " << i << " corrupted by kill round "
                << round;
        }
        // Nothing in the store but palette cells, and no regression
        // of previously persisted records.
        EXPECT_EQ(found, recovered.size());
        EXPECT_GE(found, survivorsBefore);
        survivorsBefore = found;
        if (found == palette.size())
            break;  // the store is complete; further kills are no-ops
    }

    // Final leg: a fresh daemon over the tortured store answers the
    // full study; previously persisted cells are cache hits and every
    // outcome is bit-identical to the expected results.
    {
        Daemon::Config config;
        config.scale = kScale;
        config.workers = 2;
        config.queueCapacity = palette.size() + 1;
        config.storePath = path;
        Daemon daemon(config);
        StudyRequest request;
        request.jobs = palette;
        SubmitResult submitted = daemon.submit(request);
        ASSERT_TRUE(submitted.admitted()) << submitted.rejection;
        StudyResponse response = submitted.accepted->get();
        EXPECT_EQ(response.status, StudyStatus::Completed);
        EXPECT_EQ(response.cacheHits, survivorsBefore);
        EXPECT_EQ(response.executed,
                  palette.size() - survivorsBefore);
        ASSERT_EQ(response.outcomes.size(), palette.size());
        for (size_t i = 0; i < palette.size(); ++i) {
            ASSERT_TRUE(response.outcomes[i].ok())
                << response.outcomes[i].error();
            EXPECT_EQ(bytesOf(response.outcomes[i].value()),
                      expected[i]);
        }
        daemon.drain();
        ASSERT_NE(daemon.store(), nullptr);
        EXPECT_EQ(daemon.store()->size(), palette.size());
    }

    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

} // namespace
} // namespace tsp::svc
