/**
 * @file
 * Tests of the robustness utilities: the deadline watchdog (flags
 * overdue tasks exactly once, leaves fast tasks alone) and bounded
 * retry with backoff (transient failures heal, exhaustion rethrows
 * the original error, PanicError is never retried).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/retry.h"
#include "util/watchdog.h"

namespace tsp::util {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- watchdog

TEST(Watchdog, FlagsOverdueTaskOnce)
{
    std::mutex mutex;
    std::vector<std::string> flagged;
    Watchdog dog(
        20ms,
        [&](const std::string &label, std::chrono::milliseconds) {
            std::lock_guard<std::mutex> lock(mutex);
            flagged.push_back(label);
        },
        5ms);
    {
        auto guard = dog.watch("slow-cell");
        std::this_thread::sleep_for(120ms);
    }
    EXPECT_EQ(dog.overdueCount(), 1u);
    ASSERT_EQ(dog.overdueLabels().size(), 1u);
    EXPECT_EQ(dog.overdueLabels()[0], "slow-cell");
    std::lock_guard<std::mutex> lock(mutex);
    // Flagged exactly once despite many poll cycles past the deadline.
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], "slow-cell");
}

TEST(Watchdog, FastTasksAreNeverFlagged)
{
    Watchdog dog(250ms, [](const std::string &,
                           std::chrono::milliseconds) {}, 5ms);
    for (int i = 0; i < 5; ++i) {
        auto guard = dog.watch("fast-cell");
    }
    std::this_thread::sleep_for(40ms);
    EXPECT_EQ(dog.overdueCount(), 0u);
    EXPECT_TRUE(dog.overdueLabels().empty());
}

TEST(Watchdog, TracksConcurrentTasksIndependently)
{
    Watchdog dog(20ms, [](const std::string &,
                          std::chrono::milliseconds) {}, 5ms);
    std::thread slow([&] {
        auto guard = dog.watch("slow");
        std::this_thread::sleep_for(100ms);
    });
    std::thread fast([&] {
        auto guard = dog.watch("fast");
    });
    slow.join();
    fast.join();
    EXPECT_EQ(dog.overdueCount(), 1u);
    ASSERT_EQ(dog.overdueLabels().size(), 1u);
    EXPECT_EQ(dog.overdueLabels()[0], "slow");
}

TEST(Watchdog, DefaultCallbackWarnsWithoutCrashing)
{
    Watchdog dog(10ms);
    auto guard = dog.watch("warn-path");
    std::this_thread::sleep_for(60ms);
    EXPECT_EQ(dog.overdueCount(), 1u);
}

// ------------------------------------------------------------------- retry

TEST(Retry, SucceedsFirstTry)
{
    unsigned calls = 0;
    int result = retry([&] { ++calls; return 42; }, RetryPolicy{},
                       "test op");
    EXPECT_EQ(result, 42);
    EXPECT_EQ(calls, 1u);
}

TEST(Retry, TransientFailureHeals)
{
    unsigned calls = 0;
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialBackoff = 1ms;
    int result = retry(
        [&]() -> int {
            if (++calls < 3)
                fatal("transient filesystem hiccup");
            return 7;
        },
        policy, "healing op");
    EXPECT_EQ(result, 7);
    EXPECT_EQ(calls, 3u);
}

TEST(Retry, ExhaustionRethrowsTheOriginalError)
{
    unsigned calls = 0;
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialBackoff = 1ms;
    try {
        retry([&]() -> int { ++calls;
                             fatal("disk on fire"); },
              policy, "doomed op");
        FAIL() << "retry returned despite every attempt failing";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("disk on fire"),
                  std::string::npos);
    }
    EXPECT_EQ(calls, 3u);
}

TEST(Retry, PanicErrorIsNeverRetried)
{
    unsigned calls = 0;
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoff = 1ms;
    EXPECT_THROW(retry([&]() -> int { ++calls;
                                      panic("invariant broken"); },
                       policy, "buggy op"),
                 PanicError);
    EXPECT_EQ(calls, 1u);
}

TEST(Retry, ZeroAttemptPolicyIsAPanic)
{
    RetryPolicy policy;
    policy.maxAttempts = 0;
    EXPECT_THROW(retry([] { return 1; }, policy, "bad policy"),
                 PanicError);
}

} // namespace
} // namespace tsp::util
