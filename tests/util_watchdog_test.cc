/**
 * @file
 * Tests of the robustness utilities: the deadline watchdog (flags
 * overdue tasks exactly once, leaves fast tasks alone) and bounded
 * retry with backoff (transient failures heal, exhaustion rethrows
 * the original error, PanicError is never retried).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/error.h"
#include "util/retry.h"
#include "util/watchdog.h"

namespace tsp::util {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- watchdog

TEST(Watchdog, FlagsOverdueTaskOnce)
{
    std::mutex mutex;
    std::vector<std::string> flagged;
    Watchdog dog(
        20ms,
        [&](const std::string &label, std::chrono::milliseconds) {
            std::lock_guard<std::mutex> lock(mutex);
            flagged.push_back(label);
        },
        5ms);
    {
        auto guard = dog.watch("slow-cell");
        std::this_thread::sleep_for(120ms);
    }
    EXPECT_EQ(dog.overdueCount(), 1u);
    ASSERT_EQ(dog.overdueLabels().size(), 1u);
    EXPECT_EQ(dog.overdueLabels()[0], "slow-cell");
    std::lock_guard<std::mutex> lock(mutex);
    // Flagged exactly once despite many poll cycles past the deadline.
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], "slow-cell");
}

TEST(Watchdog, FastTasksAreNeverFlagged)
{
    Watchdog dog(250ms, [](const std::string &,
                           std::chrono::milliseconds) {}, 5ms);
    for (int i = 0; i < 5; ++i) {
        auto guard = dog.watch("fast-cell");
    }
    std::this_thread::sleep_for(40ms);
    EXPECT_EQ(dog.overdueCount(), 0u);
    EXPECT_TRUE(dog.overdueLabels().empty());
}

TEST(Watchdog, TracksConcurrentTasksIndependently)
{
    Watchdog dog(20ms, [](const std::string &,
                          std::chrono::milliseconds) {}, 5ms);
    std::thread slow([&] {
        auto guard = dog.watch("slow");
        std::this_thread::sleep_for(100ms);
    });
    std::thread fast([&] {
        auto guard = dog.watch("fast");
    });
    slow.join();
    fast.join();
    EXPECT_EQ(dog.overdueCount(), 1u);
    ASSERT_EQ(dog.overdueLabels().size(), 1u);
    EXPECT_EQ(dog.overdueLabels()[0], "slow");
}

TEST(Watchdog, DefaultCallbackWarnsWithoutCrashing)
{
    Watchdog dog(10ms);
    auto guard = dog.watch("warn-path");
    std::this_thread::sleep_for(60ms);
    EXPECT_EQ(dog.overdueCount(), 1u);
}

// ------------------------------------------------------------------- retry

TEST(Retry, SucceedsFirstTry)
{
    unsigned calls = 0;
    int result = retry([&] { ++calls; return 42; }, RetryPolicy{},
                       "test op");
    EXPECT_EQ(result, 42);
    EXPECT_EQ(calls, 1u);
}

TEST(Retry, TransientFailureHeals)
{
    unsigned calls = 0;
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialBackoff = 1ms;
    int result = retry(
        [&]() -> int {
            if (++calls < 3)
                fatal("transient filesystem hiccup");
            return 7;
        },
        policy, "healing op");
    EXPECT_EQ(result, 7);
    EXPECT_EQ(calls, 3u);
}

TEST(Retry, ExhaustionRethrowsTheOriginalError)
{
    unsigned calls = 0;
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialBackoff = 1ms;
    try {
        retry([&]() -> int { ++calls;
                             fatal("disk on fire"); },
              policy, "doomed op");
        FAIL() << "retry returned despite every attempt failing";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("disk on fire"),
                  std::string::npos);
    }
    EXPECT_EQ(calls, 3u);
}

TEST(Retry, PanicErrorIsNeverRetried)
{
    unsigned calls = 0;
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoff = 1ms;
    EXPECT_THROW(retry([&]() -> int { ++calls;
                                      panic("invariant broken"); },
                       policy, "buggy op"),
                 PanicError);
    EXPECT_EQ(calls, 1u);
}

TEST(Retry, ZeroAttemptPolicyIsAPanic)
{
    RetryPolicy policy;
    policy.maxAttempts = 0;
    EXPECT_THROW(retry([] { return 1; }, policy, "bad policy"),
                 PanicError);
}

// ----------------------------------------------------------------- backoff

TEST(Backoff, SeedZeroIsCappedExponential)
{
    RetryPolicy policy;
    policy.initialBackoff = 10ms;
    policy.multiplier = 2.0;
    policy.maxBackoff = 100ms;
    policy.jitterSeed = 0;
    BackoffSchedule schedule(policy);
    EXPECT_EQ(schedule.next(), 10ms);
    EXPECT_EQ(schedule.next(), 20ms);
    EXPECT_EQ(schedule.next(), 40ms);
    EXPECT_EQ(schedule.next(), 80ms);
    EXPECT_EQ(schedule.next(), 100ms);  // ceiling
    EXPECT_EQ(schedule.next(), 100ms);
}

TEST(Backoff, JitterIsDeterministicPerSeed)
{
    RetryPolicy policy;
    policy.initialBackoff = 5ms;
    policy.maxBackoff = 500ms;
    policy.jitterSeed = 0xDEADBEEFull;

    std::vector<long long> a, b;
    BackoffSchedule first(policy), second(policy);
    for (int i = 0; i < 32; ++i) {
        a.push_back(first.next().count());
        b.push_back(second.next().count());
    }
    EXPECT_EQ(a, b) << "same seed must replay the same delays";
}

TEST(Backoff, JitterStaysWithinTheDecorrelatedBounds)
{
    RetryPolicy policy;
    policy.initialBackoff = 5ms;
    policy.maxBackoff = 200ms;
    policy.jitterSeed = 42;
    BackoffSchedule schedule(policy);
    long long previous = policy.initialBackoff.count();
    for (int i = 0; i < 200; ++i) {
        long long delay = schedule.next().count();
        EXPECT_GE(delay, policy.initialBackoff.count());
        EXPECT_LE(delay, policy.maxBackoff.count());
        // Decorrelated jitter: each delay is drawn from
        // [initial, 3 x previous], then capped.
        EXPECT_LE(delay, std::min<long long>(
                             3 * previous, policy.maxBackoff.count()));
        previous = delay;
    }
}

TEST(Backoff, DistinctSeedsProduceDistinctSchedules)
{
    RetryPolicy a, b;
    a.initialBackoff = b.initialBackoff = 5ms;
    a.maxBackoff = b.maxBackoff = 10000ms;
    a.jitterSeed = 1;
    b.jitterSeed = 2;
    BackoffSchedule sa(a), sb(b);
    bool diverged = false;
    for (int i = 0; i < 32 && !diverged; ++i)
        diverged = sa.next() != sb.next();
    EXPECT_TRUE(diverged);
}

TEST(Backoff, JitteredPolicyDerivesANonZeroSeedFromIdentity)
{
    RetryPolicy a = jitteredRetryPolicy("/tmp/journal-a.tspc");
    RetryPolicy b = jitteredRetryPolicy("/tmp/journal-b.tspc");
    EXPECT_NE(a.jitterSeed, 0u);
    EXPECT_NE(b.jitterSeed, 0u);
    EXPECT_NE(a.jitterSeed, b.jitterSeed);
    // Deterministic: the same identity always yields the same seed.
    EXPECT_EQ(jitteredRetryPolicy("/tmp/journal-a.tspc").jitterSeed,
              a.jitterSeed);
}

// ------------------------------------------------------------ cancellation

TEST(CancelToken, IsAOneWayLatch)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throwIfCancelled("op"));
    token.requestCancel();
    EXPECT_TRUE(token.cancelled());
    token.requestCancel();  // idempotent
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.throwIfCancelled("op"), FatalError);
}

TEST(Watchdog, OverdueTaskTripsTheCancelToken)
{
    CancelToken token;
    Watchdog dog(20ms, [](const std::string &,
                          std::chrono::milliseconds) {}, 5ms);
    dog.cancelOnOverdue(&token);
    {
        auto guard = dog.watch("runaway-cell");
        for (int i = 0; i < 2000 && !token.cancelled(); ++i)
            std::this_thread::sleep_for(1ms);
    }
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(dog.overdueCount(), 1u);
}

TEST(Watchdog, FastTasksNeverTripTheCancelToken)
{
    CancelToken token;
    Watchdog dog(250ms, [](const std::string &,
                           std::chrono::milliseconds) {}, 5ms);
    dog.cancelOnOverdue(&token);
    for (int i = 0; i < 5; ++i) {
        auto guard = dog.watch("quick-cell");
    }
    std::this_thread::sleep_for(40ms);
    EXPECT_FALSE(token.cancelled());
}

} // namespace
} // namespace tsp::util
