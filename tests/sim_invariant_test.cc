/**
 * @file
 * Tests of paranoid mode: the coherence InvariantChecker accepts
 * consistent directory/cache/counter state and — the non-vacuous
 * half — panics on every class of deliberately corrupted state
 * (directory-cache disagreement on ownership, untracked cache lines,
 * broken counter identities, counters moving backwards). Also pins
 * the paranoid plumbing: a fully checked simulation produces results
 * bit-identical to an unchecked one, and the TSP_PARANOID /
 * setDefaultParanoidEvery default wiring.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/placement_map.h"
#include "sim/cache.h"
#include "sim/directory.h"
#include "sim/invariant_checker.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/error.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

constexpr uint64_t kBlock = 0x1000;

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 1;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    cfg.paranoidEvery = 0;  // the checker under test is explicit
    return cfg;
}

/** Directory + caches + stats a checker can be pointed at. */
struct World
{
    explicit World(const SimConfig &cfg = smallConfig())
        : directory(cfg.processors),
          caches(cfg.processors, Cache(cfg))
    {
        stats.procs.resize(cfg.processors);
    }

    /** Install @p block in @p proc's cache in @p state. */
    Cache::Frame &
    fill(uint32_t proc, uint64_t block, CoherenceState state)
    {
        Cache::Frame &f = caches[proc].victimFor(block);
        f.tag = block;
        f.threadId = proc;
        f.state = state;
        caches[proc].touch(f);
        return f;
    }

    Directory directory;
    std::vector<Cache> caches;
    SimStats stats;
};

// ------------------------------------------------- consistent states

TEST(InvariantChecker, AcceptsAnEmptyWorld)
{
    World w;
    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_NO_THROW(checker.check(0));
    EXPECT_EQ(checker.checksRun(), 1u);
}

TEST(InvariantChecker, AcceptsConsistentOwnedAndSharedBlocks)
{
    World w;
    // Proc 0 reads block A alone: directory grants Exclusive.
    Directory::Txn txn = w.directory.read(0, 0, kBlock);
    EXPECT_TRUE(txn.grantedExclusive);
    w.fill(0, kBlock, CoherenceState::Exclusive);
    // Both procs read block B: Shared in both caches.
    w.directory.read(0, 0, kBlock + 1);
    w.directory.read(1, 1, kBlock + 1);
    w.fill(0, kBlock + 1, CoherenceState::Shared);
    w.fill(1, kBlock + 1, CoherenceState::Shared);

    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_NO_THROW(checker.check(1));
}

// ------------------------------------------------- corrupted states

TEST(InvariantChecker, CatchesOwnedBlockMissingFromItsCache)
{
    World w;
    // Directory believes proc 0 owns the block; its cache is empty.
    w.directory.write(0, 0, kBlock);
    InvariantChecker checker(w.directory, w.caches, w.stats);
    try {
        checker.check(7);
        FAIL() << "checker accepted a corrupt directory";
    } catch (const util::PanicError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("coherence invariant violated at ref 7"),
                  std::string::npos);
        EXPECT_NE(what.find("owning cache does not hold the block"),
                  std::string::npos);
        // The dump names the block so the violation is debuggable.
        EXPECT_NE(what.find("0x1000"), std::string::npos);
    }
}

TEST(InvariantChecker, CatchesOwnedBlockHeldWithoutOwnership)
{
    World w;
    w.directory.write(0, 0, kBlock);
    // The cache holds it, but only Shared: ownership was lost.
    w.fill(0, kBlock, CoherenceState::Shared);
    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_THROW(checker.check(1), util::PanicError);
}

TEST(InvariantChecker, CatchesSharerCacheMissingTheBlock)
{
    World w;
    w.directory.read(0, 0, kBlock);
    w.directory.read(1, 1, kBlock);  // both are sharers now
    w.fill(0, kBlock, CoherenceState::Shared);
    // Proc 1 never filled its frame: its sharer bit is a lie.
    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_THROW(checker.check(1), util::PanicError);
}

TEST(InvariantChecker, CatchesCacheLineTheDirectoryNeverGranted)
{
    World w;
    // A valid frame appears with no directory entry at all.
    w.fill(1, kBlock, CoherenceState::Modified);
    InvariantChecker checker(w.directory, w.caches, w.stats);
    try {
        checker.check(3);
        FAIL() << "checker accepted an untracked cache line";
    } catch (const util::PanicError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "the directory does not attribute"),
                  std::string::npos);
    }
}

TEST(InvariantChecker, CatchesHitMissIdentityViolation)
{
    World w;
    ProcessorStats &p = w.stats.procs[0];
    p.instructions = 10;
    p.memRefs = 5;
    p.hits = 2;
    p.misses[0] = 2;  // 2 + 2 != 5
    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_THROW(checker.check(1), util::PanicError);
    p.misses[0] = 3;  // identity restored
    EXPECT_NO_THROW(checker.check(2));
}

TEST(InvariantChecker, CatchesMoreMemRefsThanInstructions)
{
    World w;
    ProcessorStats &p = w.stats.procs[0];
    p.instructions = 3;
    p.memRefs = 5;
    p.hits = 5;
    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_THROW(checker.check(1), util::PanicError);
}

TEST(InvariantChecker, CatchesCountersMovingBackwards)
{
    World w;
    ProcessorStats &p = w.stats.procs[0];
    p.instructions = 100;
    p.busyCycles = 100;
    InvariantChecker checker(w.directory, w.caches, w.stats);
    EXPECT_NO_THROW(checker.check(1));
    p.busyCycles = 50;  // time ran backwards
    EXPECT_THROW(checker.check(2), util::PanicError);
}

// ------------------------------------------------- paranoid plumbing

TEST(ParanoidMode, CheckedRunMatchesUncheckedRunExactly)
{
    TraceSet ts("pair");
    for (uint32_t tid = 0; tid < 2; ++tid) {
        ThreadTrace t(tid);
        for (uint64_t i = 0; i < 200; ++i) {
            t.appendWork(3);
            t.appendLoad(AddressSpace::sharedBase + (i % 16) * 32);
            t.appendStore(AddressSpace::sharedBase + (i % 8) * 32);
        }
        ts.addThread(std::move(t));
    }
    PlacementMap placement(2, {0, 1});

    SimConfig plain = smallConfig();
    SimStats unchecked = simulate(plain, ts, placement);

    SimConfig paranoid = smallConfig();
    paranoid.paranoidEvery = 1;  // check at every single reference
    SimStats checked = simulate(paranoid, ts, placement);

    ASSERT_EQ(unchecked.procs.size(), checked.procs.size());
    for (size_t p = 0; p < unchecked.procs.size(); ++p) {
        EXPECT_EQ(unchecked.procs[p].finishTime,
                  checked.procs[p].finishTime);
        EXPECT_EQ(unchecked.procs[p].hits, checked.procs[p].hits);
        EXPECT_EQ(unchecked.procs[p].totalMisses(),
                  checked.procs[p].totalMisses());
        EXPECT_EQ(unchecked.procs[p].memRefs,
                  checked.procs[p].memRefs);
    }
    EXPECT_EQ(unchecked.executionTime(), checked.executionTime());
}

TEST(ParanoidMode, DefaultComesFromEnvironmentAndOverride)
{
    // The test harness exports TSP_PARANOID (tests/CMakeLists.txt), so
    // every simulation in this suite is invariant-checked by default.
    uint64_t original = defaultParanoidEvery();
    EXPECT_GT(original, 0u)
        << "test suite must run with TSP_PARANOID set";
    EXPECT_EQ(SimConfig{}.paranoidEvery, original);

    setDefaultParanoidEvery(7);  // the CLI --paranoid path
    EXPECT_EQ(defaultParanoidEvery(), 7u);
    EXPECT_EQ(SimConfig{}.paranoidEvery, 7u);
    setDefaultParanoidEvery(original);
    EXPECT_EQ(defaultParanoidEvery(), original);
}

TEST(ParanoidMode, DescribeMentionsParanoidOnlyWhenOn)
{
    SimConfig cfg = smallConfig();
    EXPECT_EQ(cfg.describe().find("paranoid"), std::string::npos);
    cfg.paranoidEvery = 4096;
    EXPECT_NE(cfg.describe().find("paranoid every 4096 refs"),
              std::string::npos);
}

} // namespace
} // namespace tsp::sim
