/**
 * @file
 * The chaos matrix as a test: every cataloged fault site x failure
 * kind is armed against the representative end-to-end scenario
 * (checkpointed parallel sweep + trace roundtrip + CSV report) and
 * each cell must satisfy the trifecta — no crash, clean degradation
 * or a resumable checkpoint, and bit-identical recovery on a
 * fault-free re-run. A cell whose armed site never fires also fails:
 * that is catalog/wiring drift.
 */

#include <gtest/gtest.h>

#include <string>

#include "experiment/chaos.h"
#include "fault/fault.h"
#include "svc/chaos_leg.h"

namespace tsp::experiment::chaos {
namespace {

TEST(Chaos, EveryCellOfTheMatrixPassesTheTrifecta)
{
    Options options;
    options.scale = 64;
    // 4 jobs over a 4-wide pool: the pool.dispatch cells then run
    // with several shards in flight, the configuration that once
    // unwound parallelFor's shard state under running tasks.
    options.jobs = 4;
    options.workDir = testing::TempDir();
    options.verbose = false;
    // The svc daemon/store leg makes the four service fault sites
    // (svc.admit, svc.dequeue, store.put, store.load) reachable.
    options.extension = svc::chaosLeg(options.app, options.scale);

    MatrixResult matrix = runMatrix(options);

    // One cell per (site, kind) pair, none silently skipped.
    EXPECT_EQ(matrix.cells.size(), fault::Registry::catalog().size() *
                                       fault::allKinds().size());
    ASSERT_FALSE(matrix.baseline.empty());

    for (const CellResult &cell : matrix.cells) {
        EXPECT_TRUE(cell.passed()) << cell.describe();
        EXPECT_TRUE(cell.fired) << cell.spec.describe()
                                << ": armed site never fired";
    }
    EXPECT_EQ(matrix.passedCount(), matrix.cells.size());
    EXPECT_TRUE(matrix.allPassed());

    // The matrix must leave the process disarmed.
    EXPECT_FALSE(fault::armed());
}

TEST(Chaos, BaselineFingerprintIsDeterministic)
{
    Options options;
    options.scale = 64;
    options.jobs = 2;
    options.workDir = testing::TempDir();
    options.extension = svc::chaosLeg(options.app, options.scale);
    EXPECT_EQ(baselineFingerprint(options),
              baselineFingerprint(options));
}

} // namespace
} // namespace tsp::experiment::chaos
