/**
 * @file
 * FlatMap tests: randomized operation-sequence parity against
 * std::unordered_map, backward-shift deletion edge cases driven
 * through a degenerate hash (erase in the middle of a probe chain,
 * chains wrapping the table end), reserve/rehash behaviour, and
 * iteration.
 */

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_map.h"
#include "util/rng.h"

namespace tsp::util {
namespace {

TEST(FlatMap, StartsEmpty)
{
    FlatMap<uint64_t, int> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_FALSE(m.erase(42));
    EXPECT_TRUE(m.begin() == m.end());
}

TEST(FlatMap, TryEmplaceInsertsValueInitializedAndFindsBack)
{
    FlatMap<uint64_t, int> m;
    auto [v, inserted] = m.tryEmplace(5);
    ASSERT_TRUE(inserted);
    EXPECT_EQ(*v, 0);  // value-initialized
    *v = 77;

    auto [v2, inserted2] = m.tryEmplace(5);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(*v2, 77);  // existing entry, not reset
    EXPECT_EQ(m.size(), 1u);

    int *found = m.find(5);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, 77);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<uint64_t, uint64_t> m;
    m.reserve(1000);
    const size_t cap = m.capacity();
    for (uint64_t k = 0; k < 1000; ++k)
        *m.tryEmplace(k * 0x9e3779b97f4a7c15ull).first = k;
    EXPECT_EQ(m.capacity(), cap)
        << "inserting within the reserved count must not rehash";
    EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatMap, GrowsAndKeepsEveryEntry)
{
    FlatMap<uint64_t, uint64_t> m;  // no reserve: forces rehashes
    for (uint64_t k = 0; k < 5000; ++k)
        *m.tryEmplace(k).first = k * 3;
    EXPECT_EQ(m.size(), 5000u);
    for (uint64_t k = 0; k < 5000; ++k) {
        const uint64_t *v = m.find(k);
        ASSERT_NE(v, nullptr) << "key " << k << " lost in a rehash";
        EXPECT_EQ(*v, k * 3);
    }
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<uint64_t, int> m;
    for (uint64_t k = 0; k < 100; ++k)
        m.tryEmplace(k);
    const size_t cap = m.capacity();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(1), nullptr);
    // Reusable after clear.
    m.tryEmplace(1);
    EXPECT_EQ(m.size(), 1u);
}

// ----------------------------------------------------- erase edge cases
//
// An identity hash makes slot placement fully predictable: key k lands
// at slot k & mask, so probe chains (and the backward-shift deletion's
// cyclic-distance logic) can be staged deliberately.

struct IdentityHash
{
    uint64_t operator()(uint64_t x) const { return x; }
};

using PlannedMap = FlatMap<uint64_t, int, IdentityHash>;

TEST(FlatMap, EraseHeadOfProbeChainShiftsFollowersBack)
{
    PlannedMap m;
    m.reserve(8);  // capacity 16 (minimum), mask 15
    const size_t cap = m.capacity();
    // Three keys with the same home slot 3: a chain 3 -> 4 -> 5.
    for (uint64_t k : {uint64_t{3}, 3 + cap, 3 + 2 * cap})
        *m.tryEmplace(k).first = static_cast<int>(k);
    // Erase the chain head; the followers must remain reachable.
    EXPECT_TRUE(m.erase(3));
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(3 + cap), nullptr);
    ASSERT_NE(m.find(3 + 2 * cap), nullptr);
    EXPECT_EQ(*m.find(3 + cap), static_cast<int>(3 + cap));
    EXPECT_EQ(m.find(3), nullptr);
}

TEST(FlatMap, EraseMiddleOfMixedChainPreservesForeignKeys)
{
    PlannedMap m;
    m.reserve(8);
    const size_t cap = m.capacity();
    // Slot 3: two residents (3, 3+cap); key 4 is displaced to slot 5.
    m.tryEmplace(3);
    m.tryEmplace(3 + cap);
    m.tryEmplace(4);
    // Erasing a middle element must not pull key 4 before its home.
    EXPECT_TRUE(m.erase(3 + cap));
    ASSERT_NE(m.find(3), nullptr);
    ASSERT_NE(m.find(4), nullptr);
    EXPECT_EQ(m.find(3 + cap), nullptr);
}

TEST(FlatMap, EraseInChainWrappingTheTableEnd)
{
    PlannedMap m;
    m.reserve(8);
    const size_t cap = m.capacity();
    const uint64_t last = cap - 1;
    // Home slot = last slot; the chain wraps to slots 0 and 1.
    for (uint64_t k : {last, last + cap, last + 2 * cap})
        m.tryEmplace(k);
    EXPECT_TRUE(m.erase(last));
    ASSERT_NE(m.find(last + cap), nullptr);
    ASSERT_NE(m.find(last + 2 * cap), nullptr);
    EXPECT_TRUE(m.erase(last + 2 * cap));
    ASSERT_NE(m.find(last + cap), nullptr);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseEveryElementInRandomOrder)
{
    PlannedMap m;
    util::Rng rng(11);
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 200; ++k)
        keys.push_back(k * 7);  // overlapping homes after masking
    for (uint64_t k : keys)
        m.tryEmplace(k);
    rng.shuffle(keys);
    for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_TRUE(m.erase(keys[i]));
        // Every not-yet-erased key must still be reachable.
        for (size_t j = i + 1; j < keys.size(); ++j)
            ASSERT_NE(m.find(keys[j]), nullptr)
                << "erasing " << keys[i] << " lost " << keys[j];
    }
    EXPECT_TRUE(m.empty());
}

// ------------------------------------------------------ randomized parity

TEST(FlatMap, RandomizedOpSequenceMatchesUnorderedMap)
{
    FlatMap<uint64_t, uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    util::Rng rng(99);

    for (int op = 0; op < 50000; ++op) {
        // A small key universe keeps hit rates high for every op kind.
        uint64_t key = static_cast<uint64_t>(rng.uniformInt(0, 799));
        switch (rng.uniformInt(0, 3)) {
          case 0:
          case 1: {  // insert-or-update
            uint64_t val = static_cast<uint64_t>(op);
            auto [v, inserted] = flat.tryEmplace(key);
            auto [it, refInserted] = ref.try_emplace(key);
            EXPECT_EQ(inserted, refInserted);
            *v = val;
            it->second = val;
            break;
          }
          case 2: {  // erase
            EXPECT_EQ(flat.erase(key), ref.erase(key) == 1);
            break;
          }
          case 3: {  // lookup
            const uint64_t *v = flat.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
            break;
          }
        }
        EXPECT_EQ(flat.size(), ref.size());
    }

    // Full-content parity, via both iteration styles.
    std::map<uint64_t, uint64_t> fromForEach;
    flat.forEach([&](uint64_t k, const uint64_t &v) {
        EXPECT_TRUE(fromForEach.emplace(k, v).second)
            << "duplicate key in forEach";
    });
    std::map<uint64_t, uint64_t> fromIter;
    for (const auto &slot : flat)
        EXPECT_TRUE(fromIter.emplace(slot.key, slot.value).second);
    std::map<uint64_t, uint64_t> expected(ref.begin(), ref.end());
    EXPECT_EQ(fromForEach, expected);
    EXPECT_EQ(fromIter, expected);
}

} // namespace
} // namespace tsp::util
