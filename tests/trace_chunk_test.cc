/**
 * @file
 * Chunk-boundary torture tests for the streaming trace pipeline: a
 * TraceCursor over a ChunkFeed must yield exactly the chunk sequence
 * of the materialized trace no matter how the producer cuts its spans
 * (split work runs, empty spans, single-event spans), and
 * SharedTraceStream's windows must serve every lane the full sequence
 * while trimming chunks all lanes have passed.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/address_space.h"
#include "trace/chunk_source.h"
#include "trace/thread_trace.h"
#include "trace/trace_set.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace tsp::trace {
namespace {

using workload::AppProfile;

/** ChunkFeed over a fixed list of spans (including empty ones). */
class SpanFeed : public ChunkFeed
{
  public:
    explicit SpanFeed(std::vector<std::vector<TraceEvent>> spans)
        : spans_(std::move(spans))
    {
    }

    bool
    next(const TraceEvent **begin, const TraceEvent **end) override
    {
        if (idx_ == spans_.size())
            return false;
        const std::vector<TraceEvent> &span = spans_[idx_++];
        *begin = span.data();
        *end = span.data() + span.size();
        return true;
    }

  private:
    std::vector<std::vector<TraceEvent>> spans_;
    size_t idx_ = 0;
};

/** Drain both cursors and require identical chunk sequences. */
void
expectSameChunks(TraceCursor streamed, TraceCursor reference)
{
    size_t n = 0;
    while (!streamed.done() && !reference.done()) {
        TraceCursor::Chunk a = streamed.next();
        TraceCursor::Chunk b = reference.next();
        ASSERT_EQ(a.work, b.work) << "chunk " << n;
        ASSERT_EQ(a.hasRef, b.hasRef) << "chunk " << n;
        ASSERT_EQ(a.isStore, b.isStore) << "chunk " << n;
        ASSERT_EQ(a.isBarrier, b.isBarrier) << "chunk " << n;
        ASSERT_EQ(a.addr, b.addr) << "chunk " << n;
        ++n;
    }
    EXPECT_TRUE(streamed.done());
    EXPECT_TRUE(reference.done());
    EXPECT_GT(n, 0u);
}

/** A profile small enough that full parity sweeps stay fast. */
AppProfile
tinyProfile()
{
    AppProfile p;
    p.name = "chunk-test";
    p.threads = 4;
    p.meanLength = 6'000;
    p.lengthDevPct = 20.0;
    p.phases = 3;
    p.barriers = true;
    p.globalFrac = 0.4;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.2;
    p.sliceFrac = 0.2;
    p.seed = 99;
    return p;
}

// ----------------------------------------------------- span torture

TEST(TraceChunk, SplitWorkRunsMergeAcrossSpans)
{
    // Emit through one trace, draining mid-work-run so runs split
    // across span boundaries (drained runs cannot merge with later
    // appendWork calls).
    uint64_t a = AddressSpace::sharedWord(0);
    uint64_t b = AddressSpace::sharedWord(8);

    ThreadTrace src(0);
    std::vector<std::vector<TraceEvent>> spans;
    src.appendWork(5);
    spans.emplace_back();
    src.drainEventsTo(spans.back());
    src.appendWork(3);  // continues the run in a new span
    src.appendLoad(a);
    spans.emplace_back();
    src.drainEventsTo(spans.back());
    spans.emplace_back();  // empty span mid-stream
    src.appendStore(b);
    src.appendBarrier();
    src.appendWork(7);
    spans.emplace_back();
    src.drainEventsTo(spans.back());
    src.appendWork(2);  // trailing run split again
    spans.emplace_back();
    src.drainEventsTo(spans.back());

    // The drained stream really is cut differently: 2 work events for
    // what the merged trace stores as one.
    size_t streamedEvents = 0;
    for (const auto &span : spans)
        streamedEvents += span.size();

    ThreadTrace merged(0);
    merged.appendWork(8);
    merged.appendLoad(a);
    merged.appendStore(b);
    merged.appendBarrier();
    merged.appendWork(9);
    EXPECT_GT(streamedEvents, merged.events().size());

    // Counters describe the emission, drained or not.
    EXPECT_EQ(src.instructionCount(), merged.instructionCount());
    EXPECT_EQ(src.memRefCount(), merged.memRefCount());
    EXPECT_EQ(src.barrierCount(), merged.barrierCount());

    SpanFeed feed(spans);
    expectSameChunks(TraceCursor(feed), TraceCursor(merged));
}

TEST(TraceChunk, SingleEventAndEmptySpans)
{
    ThreadTrace merged(0);
    merged.appendLoad(AddressSpace::sharedWord(1));
    merged.appendWork(4);
    merged.appendStore(AddressSpace::sharedWord(2));
    merged.appendBarrier();

    // Every event in its own span, empty spans interleaved throughout
    // (including leading and trailing).
    std::vector<std::vector<TraceEvent>> spans;
    spans.emplace_back();
    for (const TraceEvent &e : merged.events()) {
        spans.push_back({e});
        spans.emplace_back();
    }

    SpanFeed feed(spans);
    expectSameChunks(TraceCursor(feed), TraceCursor(merged));
}

TEST(TraceChunk, AllSpansEmptyIsAnEmptyTrace)
{
    SpanFeed feed({{}, {}, {}});
    TraceCursor cursor(feed);
    EXPECT_TRUE(cursor.done());
}

// ------------------------------------------- shared stream parity

TEST(TraceChunk, StreamedChunksMatchMaterializedPerThread)
{
    AppProfile p = tinyProfile();
    TraceSet set = workload::generateTraces(p, 1);

    // Deliberately awkward granularities: tiny chunks, odd producer
    // batch size, so chunk boundaries land everywhere.
    workload::AppStreamFactory factory(p, 1, /*stepsPerBatch=*/7);
    SharedTraceStream stream(factory, 1, /*chunkEvents=*/64);
    TraceSource &lane = stream.lane(0);

    ASSERT_EQ(lane.threadCount(), set.threadCount());
    for (ThreadId tid = 0; tid < lane.threadCount(); ++tid) {
        SCOPED_TRACE("tid " + std::to_string(tid));
        expectSameChunks(TraceCursor(lane.openThread(tid)),
                         TraceCursor(set.thread(tid)));
    }
    EXPECT_GT(stream.refillCount(), 0u);
}

TEST(TraceChunk, SingleEventChunksStillMatch)
{
    AppProfile p = tinyProfile();
    p.threads = 2;
    p.meanLength = 1'500;
    TraceSet set = workload::generateTraces(p, 1);

    workload::AppStreamFactory factory(p, 1, /*stepsPerBatch=*/3);
    SharedTraceStream stream(factory, 1, /*chunkEvents=*/1);
    for (ThreadId tid = 0; tid < set.threadCount(); ++tid) {
        SCOPED_TRACE("tid " + std::to_string(tid));
        expectSameChunks(TraceCursor(stream.lane(0).openThread(tid)),
                         TraceCursor(set.thread(tid)));
    }
}

TEST(TraceChunk, CensusMatchesMaterialized)
{
    AppProfile p = tinyProfile();
    TraceSet set = workload::generateTraces(p, 1);

    workload::AppStreamFactory factory(p, 1);
    SharedTraceStream stream(factory, 2, 128);
    for (unsigned shift : {5u, 6u}) {
        const TraceSet::TouchedBlocks &streamed =
            stream.touchedBlocks(shift);
        const TraceSet::TouchedBlocks &materialized =
            set.touchedBlocks(shift);
        EXPECT_EQ(streamed.total, materialized.total);
        EXPECT_EQ(streamed.perThread, materialized.perThread);
    }
}

TEST(TraceChunk, RetiringTheLaggardReleasesTheWindow)
{
    AppProfile p = tinyProfile();
    p.threads = 2;

    // Small producer batches so chunks stay near the configured size
    // (the stream rounds a chunk up to whole producer batches).
    workload::AppStreamFactory factory(p, 1, /*stepsPerBatch=*/16);
    SharedTraceStream stream(factory, 2, /*chunkEvents=*/64);

    // Lane 0 drains thread 0 completely while lane 1 never moves:
    // every chunk of thread 0 stays resident, pinned by the laggard.
    ChunkFeed &feed = stream.lane(0).openThread(0);
    const TraceEvent *begin = nullptr;
    const TraceEvent *end = nullptr;
    uint64_t events = 0;
    while (feed.next(&begin, &end))
        events += static_cast<uint64_t>(end - begin);
    EXPECT_GT(events, 0u);
    EXPECT_GE(stream.windowEventsNow(), events);

    // Retiring the laggard trims everything it was holding.
    stream.retireLane(1);
    stream.retireLane(0);
    EXPECT_EQ(stream.windowEventsNow(), 0u);
    EXPECT_GE(stream.windowEventsHighWater(), events);
    // Chunks are ~64 events plus at most one 16-step producer batch.
    EXPECT_GE(stream.refillCount(), events / 256);
    EXPECT_GT(stream.refillCount(), 1u);
}

} // namespace
} // namespace tsp::trace
