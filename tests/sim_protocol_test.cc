/**
 * @file
 * Protocol-axis tests (MSI / MESI / MOESI): hand-built sharing worlds
 * with per-state assertions, run with the coherence InvariantChecker
 * at every reference, plus parity properties on generated workloads
 * (MESI and MOESI are cycle-identical in this model; MSI pays extra
 * upgrades; MOESI defers migratory writebacks).
 */

#include <gtest/gtest.h>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

/** Distinct shared-region block addresses (32 B blocks). */
uint64_t
sharedBlockAddr(uint64_t i)
{
    return AddressSpace::sharedBase + i * 32;
}

/** Base config: every reference invariant-checked. */
SimConfig
protoConfig(uint32_t procs, Protocol protocol)
{
    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = 1;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    cfg.protocol = protocol;
    cfg.paranoidEvery = 1;
    return cfg;
}

uint64_t
totalWritebacks(const SimStats &s)
{
    uint64_t wb = 0;
    for (const auto &p : s.procs)
        wb += p.writebacks;
    return wb;
}

// ------------------------------------------------------- MSI vs MESI

TEST(Protocol, MsiPaysAnUpgradeOnPrivateDataMesiDoesNot)
{
    // One thread: load X then store X. MESI grants Exclusive on the
    // sole read, so the store upgrades silently; MSI grants Shared,
    // so the same store is an upgrade transaction.
    TraceSet ts("private");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendWork(5);
    t0.appendStore(sharedBlockAddr(0));
    ts.addThread(std::move(t0));
    PlacementMap map(1, {0});

    SimStats mesi = simulate(protoConfig(1, Protocol::Mesi), ts, map);
    SimStats msi = simulate(protoConfig(1, Protocol::Msi), ts, map);

    EXPECT_EQ(mesi.totalUpgrades(), 0u);
    EXPECT_EQ(msi.totalUpgrades(), 1u);
    // No remote copies exist, so the MSI upgrade invalidates nothing.
    EXPECT_EQ(msi.totalInvalidationsSent(), 0u);
    // Upgrades do not stall by default: cycle-identical runs.
    EXPECT_EQ(msi.executionTime(), mesi.executionTime());
}

// -------------------------------------------------- MOESI migration

TEST(Protocol, MoesiKeepsDirtyDataInPlaceOnAReadMesiWritesBack)
{
    // t0 writes X; later t1 reads it. MESI downgrades the owner M->S
    // with a writeback; MOESI downgrades M->O and the dirty block
    // stays put.
    TraceSet ts("migrate");
    ThreadTrace t0(0);
    t0.appendStore(sharedBlockAddr(0));
    t0.appendWork(300);
    ThreadTrace t1(1);
    t1.appendWork(100);
    t1.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    PlacementMap map(2, {0, 1});

    SimStats mesi = simulate(protoConfig(2, Protocol::Mesi), ts, map);
    SimStats moesi =
        simulate(protoConfig(2, Protocol::Moesi), ts, map);

    EXPECT_EQ(totalWritebacks(mesi), 1u);
    EXPECT_EQ(totalWritebacks(moesi), 0u);
    // The writeback is off the critical path in both protocols.
    EXPECT_EQ(moesi.executionTime(), mesi.executionTime());
    // Both serve t1's read as a sharing miss, not silent reuse.
    EXPECT_EQ(moesi.procs[1].hits, mesi.procs[1].hits);
}

TEST(Protocol, MoesiOwnedCopyPaysItsWritebackOnEviction)
{
    // After M->O, t0 evicts the Owned copy with a conflicting load
    // (same set, 1 KB direct-mapped): the deferred writeback happens
    // then, so MOESI ends at the same writeback count as MESI.
    TraceSet ts("deferred");
    ThreadTrace t0(0);
    t0.appendStore(sharedBlockAddr(0));
    t0.appendWork(300);
    t0.appendLoad(sharedBlockAddr(0) + 1024);  // same set as X
    ThreadTrace t1(1);
    t1.appendWork(100);
    t1.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    PlacementMap map(2, {0, 1});

    SimStats moesi =
        simulate(protoConfig(2, Protocol::Moesi), ts, map);
    EXPECT_EQ(totalWritebacks(moesi), 1u);
    EXPECT_EQ(moesi.procs[0].writebacks, 1u);
}

TEST(Protocol, MoesiWriteToSharedOwnedInvalidatesTheOwner)
{
    // t0 writes X (M); t1 reads it (t0: M->O, t1: S); t1 writes it.
    // The upgrade must invalidate t0's Owned copy — ownership moves,
    // no writeback to memory.
    TraceSet ts("steal");
    ThreadTrace t0(0);
    t0.appendStore(sharedBlockAddr(0));
    t0.appendWork(400);
    ThreadTrace t1(1);
    t1.appendWork(100);
    t1.appendLoad(sharedBlockAddr(0));
    t1.appendWork(100);
    t1.appendStore(sharedBlockAddr(0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    PlacementMap map(2, {0, 1});

    SimStats s = simulate(protoConfig(2, Protocol::Moesi), ts, map);
    EXPECT_EQ(s.procs[1].upgrades, 1u);
    EXPECT_EQ(s.procs[1].invalidationsSent, 1u);
    EXPECT_EQ(s.procs[0].invalidationsReceived, 1u);
    // Ownership migrated cache-to-cache: no memory writeback at all.
    EXPECT_EQ(totalWritebacks(s), 0u);
}

// ------------------------------------------------- parity properties

workload::AppProfile
parityProfile()
{
    workload::AppProfile p;
    p.name = "parity";
    p.threads = 8;
    p.meanLength = 20000;
    p.sharedRefFrac = 0.5;
    p.refsPerSharedAddr = 12.0;
    p.globalFrac = 1.0;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 21;
    return p;
}

TEST(Protocol, GeneratedWorkloadParityAcrossProtocols)
{
    auto traces = workload::generateTraces(parityProfile(), 1);
    PlacementMap map(4, {0, 1, 2, 3, 0, 1, 2, 3});

    SimStats msi = simulate(protoConfig(4, Protocol::Msi), traces, map);
    SimStats mesi =
        simulate(protoConfig(4, Protocol::Mesi), traces, map);
    SimStats moesi =
        simulate(protoConfig(4, Protocol::Moesi), traces, map);

    // MESI and MOESI differ only in where dirty data lives; with
    // writebacks off the critical path they are cycle-identical, and
    // MOESI never writes back more.
    EXPECT_EQ(moesi.executionTime(), mesi.executionTime());
    EXPECT_EQ(moesi.totalMemRefs(), mesi.totalMemRefs());
    EXPECT_EQ(moesi.totalHits(), mesi.totalHits());
    EXPECT_LE(totalWritebacks(moesi), totalWritebacks(mesi));

    // MSI lacks the E state: strictly more upgrade transactions on
    // this store-heavy workload, same reference stream.
    EXPECT_GT(msi.totalUpgrades(), mesi.totalUpgrades());
    EXPECT_EQ(msi.totalMemRefs(), mesi.totalMemRefs());

    // Conservation holds under every protocol.
    for (const SimStats *s : {&msi, &mesi, &moesi}) {
        uint64_t misses = 0;
        for (const auto &p : s->procs)
            for (uint64_t m : p.misses)
                misses += m;
        EXPECT_EQ(s->totalHits() + misses, s->totalMemRefs());
    }
}

} // namespace
} // namespace tsp::sim
