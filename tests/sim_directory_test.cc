/**
 * @file
 * Unit tests for the directory protocol state machine: reads, writes,
 * upgrades, evictions, sharer bookkeeping and writer/toucher tracking.
 */

#include <gtest/gtest.h>

#include "sim/directory.h"
#include "util/error.h"

namespace tsp::sim {
namespace {

TEST(Directory, FirstReadGrantsExclusive)
{
    Directory d(4);
    auto txn = d.read(/*proc=*/1, /*tid=*/10, /*block=*/100);
    EXPECT_FALSE(txn.blockSeenBefore);
    EXPECT_TRUE(txn.grantedExclusive);
    EXPECT_FALSE(txn.anyInvalidate());
    const auto *e = d.find(100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, Directory::State::Owned);
    EXPECT_EQ(e->owner, 1u);
    EXPECT_EQ(e->lastToucher, 10);
    EXPECT_EQ(e->lastWriter, -1);
}

TEST(Directory, SecondReadDowngradesOwner)
{
    Directory d(4);
    d.read(0, 5, 100);
    auto txn = d.read(2, 7, 100);
    EXPECT_TRUE(txn.blockSeenBefore);
    EXPECT_TRUE(txn.downgradeOwner);
    EXPECT_EQ(txn.prevOwner, 0u);
    EXPECT_EQ(txn.prevLastToucher, 5);
    EXPECT_FALSE(txn.grantedExclusive);
    const auto *e = d.find(100);
    EXPECT_EQ(e->state, Directory::State::Shared);
    EXPECT_EQ(e->sharerCount(), 2u);
    EXPECT_TRUE(e->isSharer(0));
    EXPECT_TRUE(e->isSharer(2));
}

TEST(Directory, ThirdReadJustAddsSharer)
{
    Directory d(4);
    d.read(0, 1, 100);
    d.read(1, 2, 100);
    auto txn = d.read(2, 3, 100);
    EXPECT_FALSE(txn.downgradeOwner);
    EXPECT_EQ(d.find(100)->sharerCount(), 3u);
}

TEST(Directory, WriteMissInvalidatesAllOtherSharers)
{
    Directory d(4);
    d.read(0, 1, 100);
    d.read(1, 2, 100);
    d.read(2, 3, 100);
    auto txn = d.write(3, 9, 100);
    EXPECT_EQ(txn.invalidateCount(), 3u);
    EXPECT_EQ(txn.invalidateList(),
              (std::vector<uint32_t>{0, 1, 2}));
    const auto *e = d.find(100);
    EXPECT_EQ(e->state, Directory::State::Owned);
    EXPECT_EQ(e->owner, 3u);
    EXPECT_EQ(e->sharerCount(), 1u);
    EXPECT_EQ(e->lastWriter, 9);
}

TEST(Directory, WriteToOwnedInvalidatesOwnerOnly)
{
    Directory d(4);
    d.write(0, 1, 100);
    auto txn = d.write(2, 5, 100);
    EXPECT_EQ(txn.invalidateList(), std::vector<uint32_t>{0});
    EXPECT_EQ(txn.prevLastWriter, 1);
}

TEST(Directory, UpgradeFromSharedSkipsSelf)
{
    Directory d(4);
    d.read(0, 1, 100);
    d.read(1, 2, 100);  // Shared {0, 1}
    auto txn = d.write(0, 1, 100);  // proc 0 upgrades
    EXPECT_EQ(txn.invalidateList(), std::vector<uint32_t>{1});
    EXPECT_EQ(d.find(100)->owner, 0u);
}

TEST(Directory, WriteToUncachedIsQuiet)
{
    Directory d(2);
    auto txn = d.write(1, 4, 50);
    EXPECT_FALSE(txn.blockSeenBefore);
    EXPECT_FALSE(txn.anyInvalidate());
    EXPECT_EQ(txn.invalidateCount(), 0u);
    EXPECT_EQ(d.find(50)->lastWriter, 4);
}

TEST(Directory, EvictionRemovesSharerAndEmptiesEntry)
{
    Directory d(2);
    d.read(0, 1, 7);
    d.read(1, 2, 7);
    d.evict(0, 7);
    const auto *e = d.find(7);
    EXPECT_EQ(e->sharerCount(), 1u);
    EXPECT_FALSE(e->isSharer(0));
    d.evict(1, 7);
    EXPECT_EQ(d.find(7)->state, Directory::State::Uncached);
}

TEST(Directory, OwnerEvictionClearsOwnership)
{
    Directory d(2);
    d.write(0, 1, 7);
    d.evict(0, 7);
    EXPECT_EQ(d.find(7)->state, Directory::State::Uncached);
    // A later read must be granted Exclusive again.
    auto txn = d.read(1, 2, 7);
    EXPECT_TRUE(txn.grantedExclusive);
    EXPECT_TRUE(txn.blockSeenBefore);
}

TEST(Directory, ProtocolErrorsPanic)
{
    Directory d(2);
    d.read(0, 1, 7);
    EXPECT_THROW(d.read(0, 1, 7), util::PanicError);     // re-read owned
    EXPECT_THROW(d.evict(1, 7), util::PanicError);       // non-sharer
    EXPECT_THROW(d.evict(0, 999), util::PanicError);     // unknown block
    EXPECT_THROW(d.write(0, 1, 7), util::PanicError);    // owner rewrite
}

TEST(Directory, SharerBitsAboveSixtyFour)
{
    Directory d(128);
    d.read(100, 1, 7);
    d.read(127, 2, 7);
    const auto *e = d.find(7);
    EXPECT_TRUE(e->isSharer(100));
    EXPECT_TRUE(e->isSharer(127));
    EXPECT_FALSE(e->isSharer(64));
    EXPECT_EQ(e->sharerCount(), 2u);

    auto txn = d.write(100, 1, 7);
    EXPECT_TRUE(txn.anyInvalidate());
    EXPECT_EQ(txn.invalidateList(), std::vector<uint32_t>{127});
}

TEST(Directory, TooManyProcessorsIsFatal)
{
    EXPECT_THROW(Directory d(sim::kMaxProcessors + 1),
                 util::FatalError);
    EXPECT_THROW(Directory d(0), util::FatalError);
}

// Above the 128-proc inline width the sharer sets spill to the heap;
// membership, invalidation order and eviction must be unchanged.
TEST(Directory, SharerBitsAboveOneTwentyEight)
{
    Directory d(sim::kMaxProcessors);
    d.read(5, 1, 7);
    d.read(130, 2, 7);
    d.read(sim::kMaxProcessors - 1, 3, 7);
    const auto *e = d.find(7);
    EXPECT_TRUE(e->isSharer(5));
    EXPECT_TRUE(e->isSharer(130));
    EXPECT_TRUE(e->isSharer(sim::kMaxProcessors - 1));
    EXPECT_FALSE(e->isSharer(129));
    EXPECT_EQ(e->sharerCount(), 3u);

    auto txn = d.write(130, 2, 7);
    EXPECT_TRUE(txn.anyInvalidate());
    EXPECT_EQ(txn.invalidateList(),
              (std::vector<uint32_t>{5, sim::kMaxProcessors - 1}));

    d.evict(130, 7);
    EXPECT_EQ(d.find(7)->sharerCount(), 0u);
}

TEST(Directory, FindUnknownBlockIsNull)
{
    Directory d(2);
    EXPECT_EQ(d.find(1234), nullptr);
    EXPECT_EQ(d.entryCount(), 0u);
}

TEST(Directory, LastWriterSurvivesEviction)
{
    // Departure of all sharers must not erase attribution history: a
    // later compulsory miss still learns who wrote the data.
    Directory d(2);
    d.write(0, 3, 7);
    d.evict(0, 7);
    auto txn = d.read(1, 4, 7);
    EXPECT_EQ(txn.prevLastWriter, 3);
    EXPECT_EQ(txn.prevLastToucher, 3);
}

} // namespace
} // namespace tsp::sim
