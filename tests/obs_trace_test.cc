/**
 * @file
 * Tests of the trace sink: a multi-threaded emission session must
 * produce (a) a strictly valid Chrome trace-event JSON document and
 * (b) a JSONL stream whose every event line parses standalone, with
 * the schema documented in docs/observability.md.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace_sink.h"
#include "util/thread_pool.h"

using namespace tsp;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

TEST(ObsTrace, MultiThreadedSessionIsValidChromeTrace)
{
    const std::string path = tempPath("obs_trace_multithread.json");
    constexpr size_t kEvents = 32;
    {
        obs::TraceSink sink(path, "obs_trace_test");
        obs::TraceSink::installGlobal(&sink);
        util::ThreadPool pool(4);
        pool.parallelFor(kEvents, [&](size_t i) {
            obs::TraceSink *global = obs::TraceSink::global();
            ASSERT_NE(global, nullptr);
            global->complete(
                "cell " + std::to_string(i), "test", 1.25,
                {obs::TraceArg::num("index",
                                    static_cast<uint64_t>(i)),
                 obs::TraceArg::str("kind", "unit")});
        });
        sink.instant("sweep done", "test");
        EXPECT_EQ(sink.events(), kEvents + 1);
        obs::TraceSink::installGlobal(nullptr);
        sink.close();
        sink.close();  // idempotent
    }

    obs::JsonValue root = obs::parseJson(slurp(path));
    ASSERT_TRUE(root.isArray());

    // process_name metadata + 32 complete + instant + trace_end.
    ASSERT_EQ(root.array.size(), kEvents + 3);
    const obs::JsonValue &meta = root.array.front();
    EXPECT_EQ(meta.at("ph").string, "M");
    EXPECT_EQ(meta.at("name").string, "process_name");
    EXPECT_EQ(meta.at("args").at("name").string, "obs_trace_test");

    size_t complete = 0, instants = 0;
    std::set<std::string> names;
    for (const obs::JsonValue &event : root.array) {
        ASSERT_TRUE(event.isObject());
        EXPECT_TRUE(event.has("name"));
        EXPECT_TRUE(event.has("ph"));
        EXPECT_TRUE(event.has("pid"));
        EXPECT_TRUE(event.has("tid"));
        const std::string &ph = event.at("ph").string;
        if (ph != "M")
            EXPECT_TRUE(event.has("ts"));  // metadata carries no ts
        if (ph == "X") {
            ++complete;
            EXPECT_TRUE(event.has("dur"));
            EXPECT_GE(event.at("ts").number, 0.0);
            EXPECT_NEAR(event.at("dur").number, 1250.0, 0.5);
            names.insert(event.at("name").string);
        } else if (ph == "i") {
            ++instants;
        }
    }
    EXPECT_EQ(complete, kEvents);
    EXPECT_EQ(instants, 2u);  // "sweep done" + close()'s trace_end
    EXPECT_EQ(names.size(), kEvents) << "every cell event survived";
}

TEST(ObsTrace, EveryEventLineIsStandaloneJson)
{
    const std::string path = tempPath("obs_trace_jsonl.json");
    {
        obs::TraceSink sink(path, "jsonl");
        sink.complete("a", "test", 2.0);
        sink.instant("b", "test",
                     {obs::TraceArg::str("note", "quo\"ted")});
        sink.close();
    }

    std::istringstream lines(slurp(path));
    std::string line;
    size_t eventLines = 0;
    while (std::getline(lines, line)) {
        if (line == "[" || line == "]")
            continue;
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        obs::JsonValue event = obs::parseJson(line);
        EXPECT_TRUE(event.isObject()) << line;
        ++eventLines;
    }
    // process_name + a + b + trace_end.
    EXPECT_EQ(eventLines, 4u);
}

TEST(ObsTrace, UnclosedFileStillParsesLineByLine)
{
    // A crash-shaped file: header + events, no trailing "]". The
    // Chrome format accepts it; the JSONL property must too.
    const std::string path = tempPath("obs_trace_unclosed.json");
    {
        obs::TraceSink sink(path, "crashy");
        sink.complete("only", "test", 1.0);
        // no close(); destructor closes, so snapshot the file first
        std::string partial = slurp(path);
        std::istringstream lines(partial);
        std::string line;
        size_t parsed = 0;
        while (std::getline(lines, line)) {
            if (line == "[" || line.empty())
                continue;
            if (line.back() == ',')
                line.pop_back();
            obs::JsonValue event = obs::parseJson(line);
            EXPECT_TRUE(event.isObject());
            ++parsed;
        }
        EXPECT_EQ(parsed, 2u);  // process_name + "only"
    }
}

TEST(ObsTrace, ThreadIdsAreSmallAndStablePerThread)
{
    const std::string path = tempPath("obs_trace_tids.json");
    {
        obs::TraceSink sink(path, "tids");
        sink.complete("main-1", "test", 1.0);
        sink.complete("main-2", "test", 1.0);
        sink.close();
    }
    obs::JsonValue root = obs::parseJson(slurp(path));
    ASSERT_TRUE(root.isArray());
    double tid1 = -1, tid2 = -2;
    for (const obs::JsonValue &event : root.array) {
        if (event.at("name").string == "main-1")
            tid1 = event.at("tid").number;
        if (event.at("name").string == "main-2")
            tid2 = event.at("tid").number;
    }
    EXPECT_EQ(tid1, tid2) << "same OS thread, same tid";
    EXPECT_GE(tid1, 0.0);
    EXPECT_LT(tid1, 1000.0) << "tids are small per-process integers";
}

TEST(ObsTrace, GlobalSinkIsNullByDefaultAndEmissionIsSafe)
{
    // With no sink installed the instrumented layers see nullptr and
    // skip emission; this must hold before/after install cycles.
    EXPECT_EQ(obs::TraceSink::global(), nullptr);
    const std::string path = tempPath("obs_trace_global.json");
    {
        obs::TraceSink sink(path, "global");
        obs::TraceSink::installGlobal(&sink);
        EXPECT_EQ(obs::TraceSink::global(), &sink);
    }
    // Destructor uninstalled it.
    EXPECT_EQ(obs::TraceSink::global(), nullptr);
}

} // namespace
