/**
 * @file
 * Doc-sync guard: the metrics reference table in
 * docs/observability.md must list exactly the metrics the library
 * registers (obs::allMetrics()), with matching kinds. Adding a metric
 * without its doc row — or leaving a stale row behind — fails here.
 *
 * The table rows look like:
 *   | `pool.tasks_executed` | counter | `util::ThreadPool` | ... |
 */

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metric_defs.h"

#ifndef TSP_SOURCE_DIR
#error "obs_doc_test needs TSP_SOURCE_DIR (set in tests/CMakeLists.txt)"
#endif

using namespace tsp;

namespace {

struct DocRow
{
    std::string kind;
    std::string owner;
};

/** Split a markdown table line into trimmed cells. */
std::vector<std::string>
splitRow(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    // Skip the leading '|', split on the rest.
    for (size_t i = 1; i < line.size(); ++i) {
        if (line[i] == '|') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell.push_back(line[i]);
        }
    }
    for (std::string &c : cells) {
        size_t b = c.find_first_not_of(" \t");
        size_t e = c.find_last_not_of(" \t");
        c = (b == std::string::npos) ? "" : c.substr(b, e - b + 1);
    }
    return cells;
}

/** Strip surrounding backticks. */
std::string
stripCode(const std::string &s)
{
    if (s.size() >= 2 && s.front() == '`' && s.back() == '`')
        return s.substr(1, s.size() - 2);
    return s;
}

/** Parse every `| \`metric.name\` | kind | owner | ... |` row. */
std::map<std::string, DocRow>
parseDocTable(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::map<std::string, DocRow> rows;
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("| `", 0) != 0)
            continue;
        auto cells = splitRow(line);
        if (cells.size() < 4)
            continue;
        std::string name = stripCode(cells[0]);
        std::string kind = cells[1];
        // Only metric rows (dotted lowercase names with a known kind);
        // other tables in the doc (env vars, event fields) don't match.
        if (kind != "counter" && kind != "gauge" && kind != "histogram")
            continue;
        EXPECT_EQ(rows.count(name), 0u)
            << "duplicate doc row for " << name;
        rows[name] = {kind, stripCode(cells[2])};
    }
    return rows;
}

TEST(ObsDocSync, DocTableMatchesRegisteredCatalogExactly)
{
    const std::string docPath =
        std::string(TSP_SOURCE_DIR) + "/docs/observability.md";
    auto doc = parseDocTable(docPath);
    ASSERT_FALSE(doc.empty()) << "no metric rows parsed from "
                              << docPath;

    auto registered = obs::allMetrics();
    std::map<std::string, DocRow> catalog;
    for (const auto &info : registered) {
        // Test binaries may register ad-hoc test.* metrics; only the
        // library catalog is documented.
        if (info.name.rfind("test.", 0) == 0)
            continue;
        catalog[info.name] = {info.kind, info.owner};
    }

    for (const auto &[name, row] : catalog) {
        auto it = doc.find(name);
        ASSERT_NE(it, doc.end())
            << "metric '" << name
            << "' is registered but missing from the "
               "docs/observability.md reference table";
        EXPECT_EQ(it->second.kind, row.kind)
            << "kind mismatch for '" << name << "'";
        EXPECT_EQ(it->second.owner, row.owner)
            << "owner mismatch for '" << name << "'";
    }
    for (const auto &[name, row] : doc) {
        EXPECT_EQ(catalog.count(name), 1u)
            << "docs/observability.md documents '" << name
            << "' but the library does not register it (stale row?)";
    }
    EXPECT_EQ(doc.size(), catalog.size());
}

} // namespace
