/**
 * @file
 * Streaming workload generation tests: AppStreamFactory producers must
 * replay the exact event sequence of the eager generateTraces() path
 * (same implementation, pinned here end to end), replay
 * deterministically across re-opens, report barrier counts
 * analytically, and the eager path must shrink its traces and publish
 * their resident footprint.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/metric_defs.h"
#include "obs/metrics.h"
#include "trace/chunk_source.h"
#include "trace/trace_set.h"
#include "workload/generator.h"
#include "workload/stream.h"
#include "workload/suite.h"

namespace tsp::workload {
namespace {

using trace::ThreadTrace;
using trace::TraceEvent;
using trace::TraceSet;

/** Restores the metrics-enabled flag on scope exit. */
class MetricsEnabledScope
{
  public:
    explicit MetricsEnabledScope(bool enabled)
        : previous_(obs::metricsEnabled())
    {
        obs::setMetricsEnabled(enabled);
    }
    ~MetricsEnabledScope() { obs::setMetricsEnabled(previous_); }

  private:
    bool previous_;
};

AppProfile
streamProfile()
{
    AppProfile p;
    p.name = "stream-test";
    p.threads = 5;
    p.meanLength = 8'000;
    p.lengthDevPct = 30.0;
    p.phases = 4;
    p.barriers = true;
    p.globalFrac = 0.3;
    p.neighborFrac = 0.3;
    p.mailboxFrac = 0.2;
    p.sliceFrac = 0.2;
    p.globalWriteMode = GlobalWriteMode::Migratory;
    p.seed = 7;
    return p;
}

/** Pull a producer dry and return the raw (possibly split) events. */
std::vector<TraceEvent>
drainProducer(trace::ChunkProducer &producer)
{
    std::vector<TraceEvent> events;
    while (producer.produce(events)) {
    }
    return events;
}

/**
 * Re-merge a raw streamed event sequence through ThreadTrace::append
 * (which merges adjacent work runs) so it is comparable to a
 * materialized trace event for event.
 */
ThreadTrace
remerge(trace::ThreadId tid, const std::vector<TraceEvent> &events)
{
    ThreadTrace tt(tid);
    for (const TraceEvent &e : events)
        tt.append(e);
    return tt;
}

TEST(WorkloadStream, ProducersReplayTheEagerEmission)
{
    AppProfile p = streamProfile();
    TraceSet set = generateTraces(p, 1);

    AppStreamFactory factory(p, 1, /*stepsPerBatch=*/19);
    ASSERT_EQ(factory.threadCount(), set.threadCount());
    for (trace::ThreadId tid = 0; tid < p.threads; ++tid) {
        SCOPED_TRACE("tid " + std::to_string(tid));
        auto producer = factory.openProducer(tid);
        ThreadTrace streamed = remerge(tid, drainProducer(*producer));
        // Event-for-event identical once split work runs re-merge —
        // streaming and eager generation are one implementation.
        EXPECT_TRUE(streamed == set.thread(tid));
    }
}

TEST(WorkloadStream, ReopeningAProducerReplaysIdentically)
{
    AppProfile p = streamProfile();
    AppStreamFactory factory(p, 1, /*stepsPerBatch=*/64);

    // Open out of tid order and twice for the same tid: the factory's
    // precomputed per-thread RNG streams make order irrelevant.
    std::vector<TraceEvent> second =
        drainProducer(*factory.openProducer(2));
    std::vector<TraceEvent> zero =
        drainProducer(*factory.openProducer(0));
    std::vector<TraceEvent> secondAgain =
        drainProducer(*factory.openProducer(2));

    EXPECT_EQ(second, secondAgain);
    EXPECT_FALSE(second == zero);  // distinct threads differ
}

TEST(WorkloadStream, BarrierCountIsAnalytic)
{
    AppProfile p = streamProfile();
    TraceSet set = generateTraces(p, 1);
    AppStreamFactory factory(p, 1);
    for (trace::ThreadId tid = 0; tid < p.threads; ++tid) {
        EXPECT_EQ(factory.barrierCount(tid),
                  set.thread(tid).barrierCount());
    }

    AppProfile noBarriers = streamProfile();
    noBarriers.barriers = false;
    AppStreamFactory flat(noBarriers, 1);
    EXPECT_EQ(flat.barrierCount(0), 0u);
}

TEST(WorkloadStream, SuiteProfilesStreamIdentically)
{
    // The real suite apps exercise every sharing component and write
    // mode; spot-check one at a reduced scale.
    const AppProfile &p = profile(AppId::Water);
    uint32_t scale = 64;
    TraceSet set = generateTraces(p, scale);
    AppStreamFactory factory(p, scale);
    for (trace::ThreadId tid = 0; tid < factory.threadCount(); ++tid) {
        SCOPED_TRACE("tid " + std::to_string(tid));
        auto producer = factory.openProducer(tid);
        ThreadTrace streamed = remerge(tid, drainProducer(*producer));
        EXPECT_TRUE(streamed == set.thread(tid));
    }
}

TEST(WorkloadStream, GenerateTracesShrinksAndReportsResidentBytes)
{
    MetricsEnabledScope metrics(true);
    AppProfile p = streamProfile();
    TraceSet set = generateTraces(p, 1);

    size_t resident = 0;
    for (trace::ThreadId tid = 0; tid < p.threads; ++tid) {
        const ThreadTrace &tt = set.thread(tid);
        // shrinkToFit ran: no append-path slack left.
        EXPECT_EQ(tt.residentBytes(),
                  tt.events().size() * sizeof(TraceEvent));
        resident += tt.residentBytes();
    }
    EXPECT_EQ(obs::traceResidentBytes().value(),
              static_cast<int64_t>(resident));
}

} // namespace
} // namespace tsp::workload
