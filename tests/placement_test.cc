/**
 * @file
 * Tests for the paper's core contribution: the placement algorithms.
 * Includes a reproduction of the Section 2.1.1 worked example, the
 * sharing-metric normalization (the "4.5" calculation), balance
 * constraints with the exact feasibility oracle, backtracking,
 * LOAD-BAL quality bounds and the algorithm registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "analysis/static_analysis.h"
#include "core/algorithms.h"
#include "core/balance.h"
#include "core/cluster_set.h"
#include "core/clusterer.h"
#include "core/load_balance.h"
#include "core/metrics.h"
#include "core/placement_map.h"
#include "core/random_placement.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

namespace tsp::placement {
namespace {

// ---------------------------------------------------------- placement map

TEST(PlacementMap, ClustersGroupByProcessor)
{
    PlacementMap map(3, {0, 1, 0, 2, 1});
    auto groups = map.clusters();
    EXPECT_EQ(groups[0], (std::vector<uint32_t>{0, 2}));
    EXPECT_EQ(groups[1], (std::vector<uint32_t>{1, 4}));
    EXPECT_EQ(groups[2], (std::vector<uint32_t>{3}));
    EXPECT_EQ(map.threadsPerProcessor(),
              (std::vector<uint32_t>{2, 2, 1}));
}

TEST(PlacementMap, ThreadBalanceDetection)
{
    EXPECT_TRUE(PlacementMap(2, {0, 1, 0, 1}).isThreadBalanced());
    EXPECT_TRUE(PlacementMap(2, {0, 1, 0, 1, 0}).isThreadBalanced());
    EXPECT_FALSE(PlacementMap(2, {0, 0, 0, 1}).isThreadBalanced());
    // More processors than threads: idle processors allowed.
    EXPECT_TRUE(PlacementMap(4, {0, 1}).isThreadBalanced());
}

TEST(PlacementMap, LoadsAndImbalance)
{
    PlacementMap map(2, {0, 0, 1});
    std::vector<uint64_t> lengths{10, 20, 30};
    EXPECT_EQ(map.processorLoads(lengths),
              (std::vector<uint64_t>{30, 30}));
    EXPECT_DOUBLE_EQ(map.loadImbalance(lengths), 1.0);

    PlacementMap skew(2, {0, 0, 0});
    EXPECT_DOUBLE_EQ(skew.loadImbalance(lengths), 2.0);
}

TEST(PlacementMap, InvalidProcessorIsFatal)
{
    EXPECT_THROW(PlacementMap(2, {0, 2}), util::FatalError);
    EXPECT_THROW(PlacementMap(0, {}), util::FatalError);
}

TEST(PlacementMap, DescribeMentionsEveryThread)
{
    PlacementMap map(2, {0, 1, 1});
    std::string d = map.describe();
    EXPECT_NE(d.find("P0"), std::string::npos);
    EXPECT_NE(d.find("P1"), std::string::npos);
}

// ------------------------------------------------------------ cluster set

TEST(ClusterSet, StartsAsSingletons)
{
    ClusterSet cs(4);
    EXPECT_EQ(cs.clusterCount(), 4u);
    for (size_t c = 0; c < 4; ++c)
        EXPECT_EQ(cs.members(c), std::vector<uint32_t>{uint32_t(c)});
}

TEST(ClusterSet, MergeAndUndoRestoreState)
{
    ClusterSet cs(4);
    cs.merge(1, 3);
    EXPECT_EQ(cs.clusterCount(), 3u);
    EXPECT_EQ(cs.members(1), (std::vector<uint32_t>{1, 3}));
    EXPECT_EQ(cs.mergeDepth(), 1u);

    EXPECT_TRUE(cs.undo());
    EXPECT_EQ(cs.clusterCount(), 4u);
    EXPECT_EQ(cs.members(1), std::vector<uint32_t>{1});
    EXPECT_EQ(cs.members(3), std::vector<uint32_t>{3});
    EXPECT_FALSE(cs.undo());
}

TEST(ClusterSet, LastMergePairIdentifiesHalves)
{
    ClusterSet cs(5);
    cs.merge(1, 3);  // {1,3}
    cs.merge(1, 2);  // {1,3,2} merged with {2}: halves min 1 and 2
    auto [a, b] = cs.lastMergePair();
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
}

TEST(ClusterSet, ToPlacementMapsMembers)
{
    ClusterSet cs(4);
    cs.merge(0, 2);
    cs.merge(1, 2);  // index 2 is now the old {3}... merge {1} with {3}
    auto map = cs.toPlacement(2);
    EXPECT_EQ(map.processors(), 2u);
    EXPECT_EQ(map.processorOf(0), map.processorOf(2));
    EXPECT_EQ(map.processorOf(1), map.processorOf(3));
    EXPECT_NE(map.processorOf(0), map.processorOf(1));
}

TEST(ClusterSet, IncompleteClusteringIsFatal)
{
    ClusterSet cs(4);
    EXPECT_THROW(cs.toPlacement(2), util::FatalError);
}

// ------------------------------------------------------------ feasibility

TEST(Feasibility, ExactPartitionCases)
{
    using V = std::vector<uint32_t>;
    EXPECT_TRUE(threadBalanceFeasible(V{1, 1, 1, 1}, 2));
    EXPECT_TRUE(threadBalanceFeasible(V{2, 2}, 2));
    EXPECT_FALSE(threadBalanceFeasible(V{3, 1}, 2));
    EXPECT_TRUE(threadBalanceFeasible(V{2, 1, 1}, 2));
    EXPECT_TRUE(threadBalanceFeasible(V{3, 2}, 2));   // t=5: 3 and 2
    EXPECT_FALSE(threadBalanceFeasible(V{4, 1}, 2));  // t=5 needs 3+2
    EXPECT_TRUE(threadBalanceFeasible(V{2, 2, 1}, 2));
    EXPECT_FALSE(threadBalanceFeasible(V{2, 2, 2}, 4));  // t=6: 2,2,1,1
}

TEST(Feasibility, FewerThreadsThanProcessors)
{
    using V = std::vector<uint32_t>;
    EXPECT_TRUE(threadBalanceFeasible(V{1, 1}, 3));
    EXPECT_FALSE(threadBalanceFeasible(V{2}, 3));
    EXPECT_TRUE(threadBalanceFeasible(V{}, 3));
}

TEST(Feasibility, SingleProcessorAlwaysFeasible)
{
    EXPECT_TRUE(threadBalanceFeasible({5, 3, 1}, 1));
}

TEST(Feasibility, RandomInstancesAgreeWithGreedyCompletion)
{
    // Property: starting from singletons, any sequence of merges the
    // oracle permits can always be completed to a thread-balanced
    // partition.
    util::Rng rng(99);
    for (int iter = 0; iter < 50; ++iter) {
        uint32_t t = 3 + static_cast<uint32_t>(rng.nextBelow(12));
        uint32_t p = 2 + static_cast<uint32_t>(rng.nextBelow(4));
        if (p > t)
            continue;
        ClusterSet cs(t);
        ThreadBalanceConstraint constraint(t, p);
        while (cs.clusterCount() > p) {
            // Pick any permitted merge at random.
            std::vector<std::pair<size_t, size_t>> options;
            for (size_t a = 0; a < cs.clusterCount(); ++a)
                for (size_t b = a + 1; b < cs.clusterCount(); ++b)
                    if (constraint.canMerge(cs, a, b))
                        options.emplace_back(a, b);
            ASSERT_FALSE(options.empty())
                << "oracle permitted a dead-end state";
            auto [a, b] = options[rng.pickIndex(options)];
            cs.merge(a, b);
        }
        EXPECT_TRUE(cs.toPlacement(p).isThreadBalanced());
    }
}

// -------------------------------------------------------------- metrics

/** Build the Section 2.1.1-style matrix (threads 0..4 = paper 1..5). */
stats::PairMatrix
figure1Matrix()
{
    stats::PairMatrix m(5);
    m.set(1, 2, 10.0);  // paper's threads 2,3: highest
    m.set(0, 4, 8.0);   // paper's 1,5
    m.set(3, 4, 3.0);
    m.set(0, 3, 2.0);
    m.set(0, 1, 1.0);
    m.set(0, 2, 1.0);
    m.set(1, 3, 1.0);
    m.set(2, 3, 1.0);
    m.set(1, 4, 0.5);
    m.set(2, 4, 0.5);
    return m;
}

TEST(Metrics, PairAverageMatchesPaperCalculation)
{
    // Section 2.1.1: sharing-metric({2,3},{4}) =
    // (shared-refs(2,4) + shared-refs(3,4)) / (2*1) = (5+4)/2 = 4.5.
    stats::PairMatrix m(5);
    m.set(1, 3, 5.0);  // paper thread 2 with 4
    m.set(2, 3, 4.0);  // paper thread 3 with 4
    ClusterSet cs(5);
    cs.merge(1, 2);  // cluster {2,3} in paper numbering
    double value = pairAverage(m, cs, 1, 2);  // vs cluster {4} (tid 3)
    EXPECT_DOUBLE_EQ(value, 4.5);
}

TEST(Metrics, PairSumIsUnnormalized)
{
    stats::PairMatrix m(5);
    m.set(1, 3, 5.0);
    m.set(2, 3, 4.0);
    ClusterSet cs(5);
    cs.merge(1, 2);
    EXPECT_DOUBLE_EQ(pairSum(m, cs, 1, 2), 9.0);
}

TEST(Metrics, CoherenceTrafficMetricUsesGivenMatrix)
{
    CoherenceTrafficMetric metric(figure1Matrix());
    ClusterSet cs(5);
    auto s = metric.score(cs, 1, 2);
    EXPECT_DOUBLE_EQ(s.primary, 10.0);
    EXPECT_EQ(metric.name(), "COHERENCE-TRAFFIC");
}

/**
 * Crafted four-thread application distinguishing the metric variants:
 *  - t0/t1 share ONE address A (6 refs total, A written by t0);
 *  - t2/t3 share TWO addresses B, C (also 6 refs total, read-only);
 *  - t0/t1 own one private address each, t2/t3 own three each.
 */
analysis::StaticAnalysis
metricFixture()
{
    trace::TraceSet set("metric-fixture");
    uint64_t A = 0x1000, B = 0x2000, C = 0x3000;

    trace::ThreadTrace t0(0);
    t0.appendStore(A);
    t0.appendLoad(A);
    t0.appendLoad(A);
    t0.appendLoad(0x10000);  // private
    trace::ThreadTrace t1(1);
    t1.appendLoad(A);
    t1.appendLoad(A);
    t1.appendLoad(A);
    t1.appendLoad(0x20000);  // private
    trace::ThreadTrace t2(2);
    t2.appendLoad(B);
    t2.appendLoad(C);
    t2.appendLoad(C);
    for (uint64_t i = 0; i < 3; ++i)
        t2.appendLoad(0x30000 + 4 * i);  // three privates
    trace::ThreadTrace t3(3);
    t3.appendLoad(B);
    t3.appendLoad(B);
    t3.appendLoad(C);
    for (uint64_t i = 0; i < 3; ++i)
        t3.appendLoad(0x40000 + 4 * i);  // three privates
    set.addThread(std::move(t0));
    set.addThread(std::move(t1));
    set.addThread(std::move(t2));
    set.addThread(std::move(t3));
    return analysis::StaticAnalysis::analyze(set);
}

TEST(Metrics, ShareRefsSeesEqualPrimaries)
{
    auto an = metricFixture();
    ClusterSet cs(4);
    ShareRefsMetric metric(an);
    EXPECT_DOUBLE_EQ(metric.score(cs, 0, 1).primary, 6.0);
    EXPECT_DOUBLE_EQ(metric.score(cs, 2, 3).primary, 6.0);
}

TEST(Metrics, ShareAddrPrefersDenserWorkingSet)
{
    auto an = metricFixture();
    ClusterSet cs(4);
    ShareAddrMetric metric(an);
    auto a = metric.score(cs, 0, 1);  // 1 shared address
    auto b = metric.score(cs, 2, 3);  // 2 shared addresses
    EXPECT_DOUBLE_EQ(a.primary, b.primary);
    EXPECT_GT(a.tiebreak, b.tiebreak);
    EXPECT_TRUE(b < a);  // the tiebreak decides the ordering
}

TEST(Metrics, MinPrivPrefersFewerPrivateAddresses)
{
    auto an = metricFixture();
    ClusterSet cs(4);
    MinPrivMetric metric(an);
    auto a = metric.score(cs, 0, 1);  // 2 private addresses combined
    auto b = metric.score(cs, 2, 3);  // 6 private addresses combined
    EXPECT_DOUBLE_EQ(a.primary, b.primary);
    EXPECT_GT(a.tiebreak, b.tiebreak);
}

TEST(Metrics, MaxWritesOnlyCountsWriteSharedData)
{
    auto an = metricFixture();
    ClusterSet cs(4);
    MaxWritesMetric metric(an);
    EXPECT_DOUBLE_EQ(metric.score(cs, 0, 1).primary, 6.0);  // A written
    EXPECT_DOUBLE_EQ(metric.score(cs, 2, 3).primary, 0.0);  // read-only
}

TEST(Metrics, MinInvsUsesRawSums)
{
    auto an = metricFixture();
    ClusterSet cs(4);
    cs.merge(0, 1);  // cluster sizes 2 and 1
    MinInvsMetric raw(an);
    ShareRefsMetric averaged(an);
    // Cross sharing between {0,1} and {2} is zero in the fixture; add
    // a synthetic comparison instead on singleton clusters.
    ClusterSet fresh(4);
    EXPECT_DOUBLE_EQ(raw.score(fresh, 0, 1).primary,
                     averaged.score(fresh, 0, 1).primary);
}

TEST(Metrics, NamesAreDistinct)
{
    auto an = metricFixture();
    EXPECT_EQ(ShareRefsMetric(an).name(), "SHARE-REFS");
    EXPECT_EQ(ShareAddrMetric(an).name(), "SHARE-ADDR");
    EXPECT_EQ(MinPrivMetric(an).name(), "MIN-PRIV");
    EXPECT_EQ(MinInvsMetric(an).name(), "MIN-INVS");
    EXPECT_EQ(MaxWritesMetric(an).name(), "MAX-WRITES");
    EXPECT_EQ(MinShareMetric(an).name(), "MIN-SHARE");
}

TEST(Clusterer, ObserverSeesEveryAcceptedMerge)
{
    stats::PairMatrix m(6);
    for (uint32_t a = 0; a < 6; ++a)
        for (uint32_t b = a + 1; b < 6; ++b)
            m.set(a, b, static_cast<double>(a + b));
    CoherenceTrafficMetric metric(m);
    ThreadBalanceConstraint constraint(6, 2);
    GreedyClusterer engine(metric, constraint);
    int merges = 0;
    size_t lastClusterCount = 6;
    engine.onMerge([&](const ClusterSet &cs, size_t, size_t,
                       MergeScore) {
        ++merges;
        EXPECT_EQ(cs.clusterCount(), lastClusterCount - 1);
        lastClusterCount = cs.clusterCount();
    });
    engine.run(6, 2);
    EXPECT_EQ(merges, 4);  // 6 clusters -> 2 clusters
}

TEST(Metrics, MergeScoreOrdering)
{
    MergeScore lowPrimary{1.0, 100.0};
    MergeScore highPrimary{2.0, 0.0};
    EXPECT_LT(lowPrimary, highPrimary);
    MergeScore tieA{2.0, 1.0}, tieB{2.0, 5.0};
    EXPECT_LT(tieA, tieB);
}

// -------------------------------------------------------------- clusterer

TEST(Clusterer, ReproducesFigure1Example)
{
    // 5 threads onto 2 processors; the metric drives merges
    // {2,3} (it. 1), {1,5} (it. 2), then {1,5}+{4} because {2,3}+{1,5}
    // would violate thread balance (Section 2.1.1).
    CoherenceTrafficMetric metric(figure1Matrix());
    ThreadBalanceConstraint constraint(5, 2);
    GreedyClusterer engine(metric, constraint);
    PlacementMap map = engine.run(5, 2);

    EXPECT_TRUE(map.isThreadBalanced());
    EXPECT_EQ(map.processorOf(1), map.processorOf(2));
    EXPECT_EQ(map.processorOf(0), map.processorOf(4));
    EXPECT_EQ(map.processorOf(0), map.processorOf(3));
    EXPECT_NE(map.processorOf(0), map.processorOf(1));
}

TEST(Clusterer, SkipsInfeasibleTopCandidate)
{
    // sr(0,1) dominates; after {0,1} forms, the top metric pairs are
    // {0,1}+{2} and {0,1}+{3}, both infeasible for p=2 with t=4; the
    // engine must fall through to {2,3}.
    stats::PairMatrix m(4);
    m.set(0, 1, 100.0);
    m.set(0, 2, 50.0);
    m.set(0, 3, 40.0);
    m.set(1, 2, 30.0);
    m.set(1, 3, 20.0);
    m.set(2, 3, 1.0);
    CoherenceTrafficMetric metric(m);
    ThreadBalanceConstraint constraint(4, 2);
    GreedyClusterer engine(metric, constraint);
    PlacementMap map = engine.run(4, 2);
    EXPECT_EQ(map.processorOf(0), map.processorOf(1));
    EXPECT_EQ(map.processorOf(2), map.processorOf(3));
}

TEST(Clusterer, TrivialWhenThreadsFitProcessors)
{
    stats::PairMatrix m(3);
    CoherenceTrafficMetric metric(m);
    ThreadBalanceConstraint constraint(3, 4);
    GreedyClusterer engine(metric, constraint);
    PlacementMap map = engine.run(3, 4);
    EXPECT_EQ(map.threadCount(), 3u);
    std::set<uint32_t> procs(map.assignment().begin(),
                             map.assignment().end());
    EXPECT_EQ(procs.size(), 3u);  // one thread per processor
}

/** Constraint that forbids one specific cluster composition. */
class VetoConstraint : public BalanceConstraint
{
  public:
    bool
    canMerge(const ClusterSet &cs, size_t a, size_t b) const override
    {
        // Forbid merging the exact cluster {0,1} with anything.
        auto is01 = [&](size_t c) {
            return cs.members(c) == std::vector<uint32_t>{0, 1};
        };
        return !is01(a) && !is01(b);
    }
};

TEST(Clusterer, BacktracksOutOfDeadEnd)
{
    // Metric prefers {0,1} first, but the constraint forbids growing
    // that cluster; the engine must undo and take another path to
    // reach a single cluster.
    stats::PairMatrix m(3);
    m.set(0, 1, 10.0);
    m.set(0, 2, 5.0);
    m.set(1, 2, 1.0);
    CoherenceTrafficMetric metric(m);
    VetoConstraint constraint;
    GreedyClusterer engine(metric, constraint);
    PlacementMap map = engine.run(3, 1);
    EXPECT_EQ(map.processors(), 1u);
    for (uint32_t tid = 0; tid < 3; ++tid)
        EXPECT_EQ(map.processorOf(tid), 0u);
}

TEST(Clusterer, LoadBalanceConstraintRelaxesWhenStuck)
{
    // Three equal threads onto two processors: any merge yields 133%
    // of the ideal load, so the 10% slack is impossible and the
    // constraint must relax rather than deadlock.
    stats::PairMatrix m(3);
    m.set(0, 1, 5.0);
    m.set(1, 2, 4.0);
    CoherenceTrafficMetric metric(m);
    std::vector<uint64_t> lengths{40000, 40000, 40000};
    LoadBalanceConstraint constraint(lengths, 2);
    GreedyClusterer engine(metric, constraint);
    PlacementMap map = engine.run(3, 2);
    EXPECT_EQ(map.processors(), 2u);
    EXPECT_GT(constraint.slack(), 0.10);
}

// ------------------------------------------------------------- LOAD-BAL

TEST(LoadBalance, KnownInstanceReachesOptimum)
{
    std::vector<uint64_t> lengths{7, 6, 5, 4, 3};
    PlacementMap map = loadBalancedPlacement(lengths, 2);
    auto loads = map.processorLoads(lengths);
    uint64_t peak = std::max(loads[0], loads[1]);
    EXPECT_EQ(peak, 13u);  // optimum: {7,6} vs {5,4,3}
}

TEST(LoadBalance, LowerBoundHolds)
{
    std::vector<uint64_t> lengths{10, 1, 1, 1};
    EXPECT_EQ(loadBalanceLowerBound(lengths, 2), 10u);
    EXPECT_EQ(loadBalanceLowerBound(lengths, 13), 10u);
    std::vector<uint64_t> even{3, 3, 3, 3};
    EXPECT_EQ(loadBalanceLowerBound(even, 2), 6u);
}

TEST(LoadBalance, EmptyAndSingleThread)
{
    EXPECT_EQ(loadBalancedPlacement({}, 3).threadCount(), 0u);
    PlacementMap one = loadBalancedPlacement({42}, 3);
    EXPECT_EQ(one.threadCount(), 1u);
}

class LoadBalanceProperty : public ::testing::TestWithParam<int>
{};

TEST_P(LoadBalanceProperty, WithinLPTBoundOfLowerBound)
{
    util::Rng rng(1000 + GetParam());
    uint32_t t = 4 + static_cast<uint32_t>(rng.nextBelow(40));
    uint32_t p = 2 + static_cast<uint32_t>(rng.nextBelow(15));
    std::vector<uint64_t> lengths(t);
    for (auto &l : lengths)
        l = 1 + rng.nextBelow(100000);

    PlacementMap map = loadBalancedPlacement(lengths, p);
    auto loads = map.processorLoads(lengths);
    uint64_t peak = *std::max_element(loads.begin(), loads.end());
    uint64_t lb = loadBalanceLowerBound(lengths, p);
    // LPT guarantee: 4/3 - 1/(3p); the refinement only improves it.
    EXPECT_LE(static_cast<double>(peak),
              static_cast<double>(lb) * (4.0 / 3.0) + 1.0);
    // Conservation: loads sum to the total work.
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), uint64_t{0}),
              std::accumulate(lengths.begin(), lengths.end(),
                              uint64_t{0}));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LoadBalanceProperty,
                         ::testing::Range(0, 25));

// --------------------------------------------------------------- RANDOM

class RandomPlacementProperty
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{};

TEST_P(RandomPlacementProperty, AlwaysThreadBalanced)
{
    auto [t, p] = GetParam();
    util::Rng rng(7 * t + p);
    for (int i = 0; i < 10; ++i) {
        PlacementMap map = randomPlacement(t, p, rng);
        EXPECT_TRUE(map.isThreadBalanced()) << "t=" << t << " p=" << p;
        EXPECT_EQ(map.threadCount(), t);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomPlacementProperty,
    ::testing::Values(std::make_pair(4u, 2u), std::make_pair(5u, 2u),
                      std::make_pair(9u, 4u), std::make_pair(16u, 16u),
                      std::make_pair(127u, 16u),
                      std::make_pair(3u, 8u)));

TEST(RandomPlacement, DifferentSeedsGiveDifferentMaps)
{
    util::Rng a(1), b(2);
    auto m1 = randomPlacement(16, 4, a);
    auto m2 = randomPlacement(16, 4, b);
    EXPECT_NE(m1.assignment(), m2.assignment());
}

// -------------------------------------------------------------- registry

TEST(Algorithms, NamesRoundTripAndAreUnique)
{
    std::set<std::string> names;
    for (Algorithm alg : allAlgorithms()) {
        std::string name = algorithmName(alg);
        EXPECT_TRUE(names.insert(name).second) << name;
        auto back = algorithmFromName(name);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, alg);
    }
    EXPECT_FALSE(algorithmFromName("NOT-AN-ALGORITHM").has_value());
}

TEST(Algorithms, ClassificationFlags)
{
    EXPECT_FALSE(isSharingBased(Algorithm::LoadBal));
    EXPECT_FALSE(isSharingBased(Algorithm::Random));
    EXPECT_TRUE(isSharingBased(Algorithm::ShareRefs));
    EXPECT_TRUE(isSharingBased(Algorithm::CoherenceTraffic));
    EXPECT_TRUE(hasLoadBalanceCriterion(Algorithm::ShareRefsLB));
    EXPECT_TRUE(hasLoadBalanceCriterion(Algorithm::LoadBal));
    EXPECT_FALSE(hasLoadBalanceCriterion(Algorithm::ShareRefs));
    EXPECT_TRUE(needsCoherenceMatrix(Algorithm::CoherenceTraffic));
    EXPECT_FALSE(needsCoherenceMatrix(Algorithm::MaxWrites));
    EXPECT_EQ(staticSharingAlgorithms().size(), 6u);
}

/** A small generated application for end-to-end placement checks. */
const analysis::StaticAnalysis &
smallAppAnalysis()
{
    static const analysis::StaticAnalysis an = [] {
        workload::AppProfile p;
        p.name = "small";
        p.threads = 8;
        p.meanLength = 20000;
        p.lengthDevPct = 40.0;
        p.sharedRefFrac = 0.6;
        p.refsPerSharedAddr = 12.0;
        p.globalFrac = 0.7;
        p.neighborFrac = 0.3;
        p.seed = 5;
        auto traces = workload::generateTraces(p, 1);
        return analysis::StaticAnalysis::analyze(traces);
    }();
    return an;
}

class AllAlgorithmsPlace
    : public ::testing::TestWithParam<Algorithm>
{};

TEST_P(AllAlgorithmsPlace, ProducesValidCompletePlacement)
{
    Algorithm alg = GetParam();
    const auto &an = smallAppAnalysis();
    util::Rng rng(123);

    stats::PairMatrix coherence(an.threadCount());
    // A synthetic coherence matrix is fine for placement validity.
    for (size_t i = 0; i < an.threadCount(); ++i)
        for (size_t j = i + 1; j < an.threadCount(); ++j)
            coherence.set(i, j, static_cast<double>(i + j));

    for (uint32_t p : {2u, 4u, 8u}) {
        PlacementMap map = place(alg, an, p, rng, &coherence);
        EXPECT_EQ(map.threadCount(), an.threadCount());
        EXPECT_EQ(map.processors(), p);
        if (!hasLoadBalanceCriterion(alg)) {
            EXPECT_TRUE(map.isThreadBalanced())
                << algorithmName(alg) << " p=" << p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllAlgorithmsPlace,
                         ::testing::ValuesIn(allAlgorithms()),
                         [](const auto &info) {
                             std::string n = algorithmName(info.param);
                             std::string out;
                             for (char c : n)
                                 if (std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     out.push_back(c);
                             return out;
                         });

TEST(Algorithms, CoherenceWithoutMatrixIsFatal)
{
    const auto &an = smallAppAnalysis();
    util::Rng rng(1);
    EXPECT_THROW(place(Algorithm::CoherenceTraffic, an, 2, rng, nullptr),
                 util::FatalError);
}

TEST(Algorithms, LoadBalBeatsRandomOnImbalance)
{
    const auto &an = smallAppAnalysis();
    util::Rng rng(77);
    PlacementMap lb = place(Algorithm::LoadBal, an, 4, rng);
    PlacementMap random = place(Algorithm::Random, an, 4, rng);
    EXPECT_LE(lb.loadImbalance(an.threadLength()),
              random.loadImbalance(an.threadLength()) + 1e-9);
}

TEST(Algorithms, MinShareInvertsShareRefsPreference)
{
    // On a matrix with one dominant pair, SHARE-REFS co-locates it and
    // MIN-SHARE separates it.
    stats::PairMatrix m(4);
    m.set(0, 1, 100.0);
    m.set(0, 2, 1.0);
    m.set(0, 3, 2.0);
    m.set(1, 2, 2.0);
    m.set(1, 3, 1.0);
    m.set(2, 3, 3.0);

    ClusterSet cs(4);
    CoherenceTrafficMetric share(m);
    EXPECT_GT(share.score(cs, 0, 1).primary,
              share.score(cs, 2, 3).primary);
}

} // namespace
} // namespace tsp::placement
