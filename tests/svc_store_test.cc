/**
 * @file
 * The crash-safe content-addressed result store (svc::ResultStore):
 * bit-identical roundtrips through the TSPS format, idempotent puts,
 * restart recovery, truncated/corrupt-tail dropping, scale binding,
 * and the store.put fault site healing under bounded retry.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "svc/result_store.h"
#include "util/error.h"

namespace tsp::svc {
namespace {

using experiment::MachinePoint;
using experiment::RunJob;
using experiment::RunResult;

constexpr uint32_t kScale = 64;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

RunJob
jobAt(placement::Algorithm alg, uint32_t processors,
      bool infinite = false)
{
    return {workload::AppId::Water, alg,
            MachinePoint{processors, 4}, infinite};
}

/** Compute a real result once; cells are cheap at scale 64. */
RunResult
computedResult(const RunJob &job)
{
    static experiment::Lab lab(kScale);
    return lab.run(job.app, job.alg, job.point, job.infiniteCache);
}

/** Canonical bytes of a result, for bit-identity assertions. */
std::string
bytesOf(const RunResult &result)
{
    experiment::codec::ByteWriter w;
    experiment::codec::writeRunResult(w, result);
    return w.bytes();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

TEST(ResultStore, PutLookupRoundtripIsBitIdentical)
{
    std::string path = tempPath("store_roundtrip.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);

    RunJob job = jobAt(placement::Algorithm::LoadBal, 4);
    RunResult result = computedResult(job);
    EXPECT_TRUE(store.put(job, result));
    EXPECT_EQ(store.size(), 1u);

    auto cached = store.lookup(job);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(bytesOf(*cached), bytesOf(result));
    std::remove(path.c_str());
}

TEST(ResultStore, DuplicatePutIsIdempotent)
{
    std::string path = tempPath("store_dup.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);

    RunJob job = jobAt(placement::Algorithm::ShareRefs, 4);
    RunResult result = computedResult(job);
    EXPECT_TRUE(store.put(job, result));
    size_t fileSize = readFile(path).size();
    EXPECT_FALSE(store.put(job, result));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(readFile(path).size(), fileSize);
    std::remove(path.c_str());
}

TEST(ResultStore, MissIsEmptyAndDistinctKeysCoexist)
{
    std::string path = tempPath("store_keys.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);

    RunJob a = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob b = jobAt(placement::Algorithm::LoadBal, 4, true);
    EXPECT_NE(ResultStore::digestOf(a, kScale),
              ResultStore::digestOf(b, kScale));
    EXPECT_NE(ResultStore::digestOf(a, kScale),
              ResultStore::digestOf(a, kScale / 2));

    EXPECT_FALSE(store.lookup(a).has_value());
    store.put(a, computedResult(a));
    EXPECT_TRUE(store.lookup(a).has_value());
    EXPECT_FALSE(store.lookup(b).has_value());
    std::remove(path.c_str());
}

TEST(ResultStore, RestartServesPersistedResultsBitIdentically)
{
    std::string path = tempPath("store_restart.tsps");
    std::remove(path.c_str());
    RunJob jobs[] = {jobAt(placement::Algorithm::LoadBal, 4),
                     jobAt(placement::Algorithm::ShareRefs, 4),
                     jobAt(placement::Algorithm::LoadBal, 8)};
    {
        ResultStore store(path, kScale);
        for (const RunJob &job : jobs)
            store.put(job, computedResult(job));
    }

    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 3u);
    EXPECT_EQ(reopened.droppedBytes(), 0u);
    for (const RunJob &job : jobs) {
        auto cached = reopened.lookup(job);
        ASSERT_TRUE(cached.has_value());
        EXPECT_EQ(bytesOf(*cached), bytesOf(computedResult(job)));
    }
    EXPECT_EQ(readFile(path).substr(0, 4), "TSPS");
    std::remove(path.c_str());
}

TEST(ResultStore, WrongScaleIsRejected)
{
    std::string path = tempPath("store_scale.tsps");
    std::remove(path.c_str());
    {
        ResultStore store(path, kScale);
        RunJob job = jobAt(placement::Algorithm::LoadBal, 4);
        store.put(job, computedResult(job));
    }
    EXPECT_THROW(ResultStore(path, kScale / 2), util::FatalError);
    std::remove(path.c_str());
}

TEST(ResultStore, ForeignFileIsRejected)
{
    std::string path = tempPath("store_foreign.tsps");
    writeFile(path, "definitely not a TSPS store");
    EXPECT_THROW(ResultStore(path, kScale), util::FatalError);
    std::remove(path.c_str());
}

TEST(ResultStore, TruncatedTailIsDroppedSurvivorsIntact)
{
    std::string path = tempPath("store_truncated.tsps");
    std::remove(path.c_str());
    RunJob first = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob second = jobAt(placement::Algorithm::ShareRefs, 4);
    {
        ResultStore store(path, kScale);
        store.put(first, computedResult(first));
        store.put(second, computedResult(second));
    }

    // Chop into the last record: a kill -9 mid-write shape.
    std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() - 7));

    // The image is serialized in key order (so concurrent daemons
    // build byte-identical files), so which record sits at the tail
    // is the codec's business — exactly one must survive, intact.
    ResultStore recovered(path, kScale);
    EXPECT_EQ(recovered.size(), 1u);
    EXPECT_GT(recovered.droppedBytes(), 0u);
    auto survivorFirst = recovered.lookup(first);
    auto survivorSecond = recovered.lookup(second);
    ASSERT_NE(survivorFirst.has_value(), survivorSecond.has_value());
    if (survivorFirst.has_value())
        EXPECT_EQ(bytesOf(*survivorFirst),
                  bytesOf(computedResult(first)));
    else
        EXPECT_EQ(bytesOf(*survivorSecond),
                  bytesOf(computedResult(second)));

    // The recovered store keeps accepting new records: re-putting
    // both restores the full pair (the survivor dedups).
    recovered.put(first, computedResult(first));
    recovered.put(second, computedResult(second));
    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.droppedBytes(), 0u);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(ResultStore, CorruptTailCrcIsDropped)
{
    std::string path = tempPath("store_corrupt.tsps");
    std::remove(path.c_str());
    RunJob first = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob second = jobAt(placement::Algorithm::ShareRefs, 4);
    {
        ResultStore store(path, kScale);
        store.put(first, computedResult(first));
        store.put(second, computedResult(second));
    }

    std::string bytes = readFile(path);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
    writeFile(path, bytes);

    // Exactly one record survives the flipped tail CRC (key-ordered
    // image: which one is at the tail is the codec's business).
    ResultStore recovered(path, kScale);
    EXPECT_EQ(recovered.size(), 1u);
    EXPECT_GT(recovered.droppedBytes(), 0u);
    EXPECT_NE(recovered.lookup(first).has_value(),
              recovered.lookup(second).has_value());
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(ResultStore, TransientPutFaultHealsUnderRetry)
{
    std::string path = tempPath("store_fault.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);
    RunJob job = jobAt(placement::Algorithm::LoadBal, 4);

    fault::arm("store.put:1:error");
    EXPECT_TRUE(store.put(job, computedResult(job)));  // retry heals
    fault::disarm();

    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 1u);
    std::remove(path.c_str());
}

TEST(ResultStore, PersistentPutFaultThrowsButRecordStaysServable)
{
    std::string path = tempPath("store_fault2.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);
    RunJob first = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob second = jobAt(placement::Algorithm::ShareRefs, 4);

    fault::arm("store.put:1+:error");
    EXPECT_THROW(store.put(first, computedResult(first)),
                 std::runtime_error);
    fault::disarm();

    // Failed to persist, but stays resident and served...
    EXPECT_TRUE(store.lookup(first).has_value());
    // ...and the next successful put re-publishes the whole image.
    EXPECT_TRUE(store.put(second, computedResult(second)));
    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 2u);
    std::remove(path.c_str());
}

TEST(ResultStore, LoadFaultSiteFires)
{
    std::string path = tempPath("store_loadfault.tsps");
    std::remove(path.c_str());
    fault::arm("store.load:1:error");
    EXPECT_THROW(ResultStore(path, kScale), std::runtime_error);
    fault::disarm();
    EXPECT_NO_THROW(ResultStore(path, kScale));
}

// --------------------------------------------- multi-process safety

TEST(ResultStore, LockFaultHealsUnderRetry)
{
    std::string path = tempPath("store_lockfault.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);
    RunJob job = jobAt(placement::Algorithm::LoadBal, 4);

    fault::arm("store.lock:1:error");
    EXPECT_TRUE(store.put(job, computedResult(job)));  // retry heals
    fault::disarm();
    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 1u);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(ResultStore, ForkedWritersBothLandEveryRecord)
{
    std::string path = tempPath("store_forked.tsps");
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());

    // Two disjoint record sets, computed in the parent BEFORE the
    // fork so the children only exercise store I/O, not simulation.
    std::vector<std::pair<RunJob, RunResult>> mine, theirs;
    for (uint32_t p : {2u, 4u, 8u}) {
        RunJob a = jobAt(placement::Algorithm::LoadBal, p);
        RunJob b = jobAt(placement::Algorithm::ShareRefs, p);
        mine.emplace_back(a, computedResult(a));
        theirs.emplace_back(b, computedResult(b));
    }

    auto writeAll =
        [&](const std::vector<std::pair<RunJob, RunResult>> &set) {
            // Each process opens its own store handle — two daemons
            // sharing one TSPS file — and publishes its set. The
            // read-merge-publish cycle under the exclusive flock must
            // adopt whatever the sibling already landed.
            ResultStore store(path, kScale);
            for (const auto &[job, result] : set)
                store.put(job, result);
        };

    pid_t left = fork();
    ASSERT_GE(left, 0);
    if (left == 0) {
        writeAll(mine);
        _exit(0);
    }
    pid_t right = fork();
    ASSERT_GE(right, 0);
    if (right == 0) {
        writeAll(theirs);
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(left, &status, 0), left);
    ASSERT_EQ(status, 0);
    ASSERT_EQ(waitpid(right, &status, 0), right);
    ASSERT_EQ(status, 0);

    // A fresh reader sees a valid image holding BOTH processes' sets,
    // bit-identically — no lost update, no torn file.
    ResultStore merged(path, kScale);
    EXPECT_EQ(merged.droppedBytes(), 0u);
    EXPECT_EQ(merged.size(), mine.size() + theirs.size());
    for (const auto &[job, result] : mine) {
        auto got = merged.lookup(job);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(bytesOf(*got), bytesOf(result));
    }
    for (const auto &[job, result] : theirs) {
        auto got = merged.lookup(job);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(bytesOf(*got), bytesOf(result));
    }
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(ResultStore, SharedLockReaderNeverSeesATornImage)
{
    std::string path = tempPath("store_reader.tsps");
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());

    std::vector<std::pair<RunJob, RunResult>> records;
    for (uint32_t p : {2u, 4u, 8u, 16u}) {
        RunJob job = jobAt(placement::Algorithm::LoadBal, p);
        records.emplace_back(job, computedResult(job));
    }

    pid_t writer = fork();
    ASSERT_GE(writer, 0);
    if (writer == 0) {
        ResultStore store(path, kScale);
        for (const auto &[job, result] : records)
            store.put(job, result);
        _exit(0);
    }

    // Race the writer with shared-lock loads: every snapshot a reader
    // takes must be a valid prefix of the growing store — a complete
    // header, zero dropped bytes, monotonically growing record count.
    size_t lastSize = 0;
    for (int probe = 0; probe < 50; ++probe) {
        try {
            ResultStore reader(path, kScale);
            EXPECT_EQ(reader.droppedBytes(), 0u);
            EXPECT_GE(reader.size(), lastSize);
            EXPECT_LE(reader.size(), records.size());
            lastSize = reader.size();
        } catch (const util::FatalError &) {
            // Only acceptable before the writer's first publish: the
            // file does not exist yet. Never after records landed.
            EXPECT_EQ(lastSize, 0u);
        }
    }
    int status = 0;
    ASSERT_EQ(waitpid(writer, &status, 0), writer);
    ASSERT_EQ(status, 0);

    ResultStore settled(path, kScale);
    EXPECT_EQ(settled.size(), records.size());
    EXPECT_EQ(settled.droppedBytes(), 0u);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

} // namespace
} // namespace tsp::svc
