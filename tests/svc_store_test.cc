/**
 * @file
 * The crash-safe content-addressed result store (svc::ResultStore):
 * bit-identical roundtrips through the TSPS format, idempotent puts,
 * restart recovery, truncated/corrupt-tail dropping, scale binding,
 * and the store.put fault site healing under bounded retry.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "svc/result_store.h"
#include "util/error.h"

namespace tsp::svc {
namespace {

using experiment::MachinePoint;
using experiment::RunJob;
using experiment::RunResult;

constexpr uint32_t kScale = 64;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

RunJob
jobAt(placement::Algorithm alg, uint32_t processors,
      bool infinite = false)
{
    return {workload::AppId::Water, alg,
            MachinePoint{processors, 4}, infinite};
}

/** Compute a real result once; cells are cheap at scale 64. */
RunResult
computedResult(const RunJob &job)
{
    static experiment::Lab lab(kScale);
    return lab.run(job.app, job.alg, job.point, job.infiniteCache);
}

/** Canonical bytes of a result, for bit-identity assertions. */
std::string
bytesOf(const RunResult &result)
{
    experiment::codec::ByteWriter w;
    experiment::codec::writeRunResult(w, result);
    return w.bytes();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

TEST(ResultStore, PutLookupRoundtripIsBitIdentical)
{
    std::string path = tempPath("store_roundtrip.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);

    RunJob job = jobAt(placement::Algorithm::LoadBal, 4);
    RunResult result = computedResult(job);
    EXPECT_TRUE(store.put(job, result));
    EXPECT_EQ(store.size(), 1u);

    auto cached = store.lookup(job);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(bytesOf(*cached), bytesOf(result));
    std::remove(path.c_str());
}

TEST(ResultStore, DuplicatePutIsIdempotent)
{
    std::string path = tempPath("store_dup.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);

    RunJob job = jobAt(placement::Algorithm::ShareRefs, 4);
    RunResult result = computedResult(job);
    EXPECT_TRUE(store.put(job, result));
    size_t fileSize = readFile(path).size();
    EXPECT_FALSE(store.put(job, result));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(readFile(path).size(), fileSize);
    std::remove(path.c_str());
}

TEST(ResultStore, MissIsEmptyAndDistinctKeysCoexist)
{
    std::string path = tempPath("store_keys.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);

    RunJob a = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob b = jobAt(placement::Algorithm::LoadBal, 4, true);
    EXPECT_NE(ResultStore::digestOf(a, kScale),
              ResultStore::digestOf(b, kScale));
    EXPECT_NE(ResultStore::digestOf(a, kScale),
              ResultStore::digestOf(a, kScale / 2));

    EXPECT_FALSE(store.lookup(a).has_value());
    store.put(a, computedResult(a));
    EXPECT_TRUE(store.lookup(a).has_value());
    EXPECT_FALSE(store.lookup(b).has_value());
    std::remove(path.c_str());
}

TEST(ResultStore, RestartServesPersistedResultsBitIdentically)
{
    std::string path = tempPath("store_restart.tsps");
    std::remove(path.c_str());
    RunJob jobs[] = {jobAt(placement::Algorithm::LoadBal, 4),
                     jobAt(placement::Algorithm::ShareRefs, 4),
                     jobAt(placement::Algorithm::LoadBal, 8)};
    {
        ResultStore store(path, kScale);
        for (const RunJob &job : jobs)
            store.put(job, computedResult(job));
    }

    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 3u);
    EXPECT_EQ(reopened.droppedBytes(), 0u);
    for (const RunJob &job : jobs) {
        auto cached = reopened.lookup(job);
        ASSERT_TRUE(cached.has_value());
        EXPECT_EQ(bytesOf(*cached), bytesOf(computedResult(job)));
    }
    EXPECT_EQ(readFile(path).substr(0, 4), "TSPS");
    std::remove(path.c_str());
}

TEST(ResultStore, WrongScaleIsRejected)
{
    std::string path = tempPath("store_scale.tsps");
    std::remove(path.c_str());
    {
        ResultStore store(path, kScale);
        RunJob job = jobAt(placement::Algorithm::LoadBal, 4);
        store.put(job, computedResult(job));
    }
    EXPECT_THROW(ResultStore(path, kScale / 2), util::FatalError);
    std::remove(path.c_str());
}

TEST(ResultStore, ForeignFileIsRejected)
{
    std::string path = tempPath("store_foreign.tsps");
    writeFile(path, "definitely not a TSPS store");
    EXPECT_THROW(ResultStore(path, kScale), util::FatalError);
    std::remove(path.c_str());
}

TEST(ResultStore, TruncatedTailIsDroppedSurvivorsIntact)
{
    std::string path = tempPath("store_truncated.tsps");
    std::remove(path.c_str());
    RunJob first = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob second = jobAt(placement::Algorithm::ShareRefs, 4);
    {
        ResultStore store(path, kScale);
        store.put(first, computedResult(first));
        store.put(second, computedResult(second));
    }

    // Chop into the last record: a kill -9 mid-write shape.
    std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() - 7));

    ResultStore recovered(path, kScale);
    EXPECT_EQ(recovered.size(), 1u);
    EXPECT_GT(recovered.droppedBytes(), 0u);
    auto cached = recovered.lookup(first);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(bytesOf(*cached), bytesOf(computedResult(first)));
    EXPECT_FALSE(recovered.lookup(second).has_value());

    // The recovered store keeps accepting new records.
    EXPECT_TRUE(recovered.put(second, computedResult(second)));
    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.droppedBytes(), 0u);
    std::remove(path.c_str());
}

TEST(ResultStore, CorruptTailCrcIsDropped)
{
    std::string path = tempPath("store_corrupt.tsps");
    std::remove(path.c_str());
    RunJob first = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob second = jobAt(placement::Algorithm::ShareRefs, 4);
    {
        ResultStore store(path, kScale);
        store.put(first, computedResult(first));
        store.put(second, computedResult(second));
    }

    std::string bytes = readFile(path);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
    writeFile(path, bytes);

    ResultStore recovered(path, kScale);
    EXPECT_EQ(recovered.size(), 1u);
    EXPECT_GT(recovered.droppedBytes(), 0u);
    EXPECT_TRUE(recovered.lookup(first).has_value());
    std::remove(path.c_str());
}

TEST(ResultStore, TransientPutFaultHealsUnderRetry)
{
    std::string path = tempPath("store_fault.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);
    RunJob job = jobAt(placement::Algorithm::LoadBal, 4);

    fault::arm("store.put:1:error");
    EXPECT_TRUE(store.put(job, computedResult(job)));  // retry heals
    fault::disarm();

    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 1u);
    std::remove(path.c_str());
}

TEST(ResultStore, PersistentPutFaultThrowsButRecordStaysServable)
{
    std::string path = tempPath("store_fault2.tsps");
    std::remove(path.c_str());
    ResultStore store(path, kScale);
    RunJob first = jobAt(placement::Algorithm::LoadBal, 4);
    RunJob second = jobAt(placement::Algorithm::ShareRefs, 4);

    fault::arm("store.put:1+:error");
    EXPECT_THROW(store.put(first, computedResult(first)),
                 std::runtime_error);
    fault::disarm();

    // Failed to persist, but stays resident and served...
    EXPECT_TRUE(store.lookup(first).has_value());
    // ...and the next successful put re-publishes the whole image.
    EXPECT_TRUE(store.put(second, computedResult(second)));
    ResultStore reopened(path, kScale);
    EXPECT_EQ(reopened.size(), 2u);
    std::remove(path.c_str());
}

TEST(ResultStore, LoadFaultSiteFires)
{
    std::string path = tempPath("store_loadfault.tsps");
    std::remove(path.c_str());
    fault::arm("store.load:1:error");
    EXPECT_THROW(ResultStore(path, kScale), std::runtime_error);
    fault::disarm();
    EXPECT_NO_THROW(ResultStore(path, kScale));
}

} // namespace
} // namespace tsp::svc
