/**
 * @file
 * Machine-scale tests for the 64-1024 processor range (ISSUE 10).
 *
 * Two contracts: (1) above the 128-processor inline width of
 * sim::SharerSet the simulation must behave exactly as below it —
 * streaming and materialized runs stay bit-identical through the
 * spill; (2) a 1024-processor streaming run must keep
 * trace.resident_bytes bounded by the chunk windows, far below the
 * materialized trace footprint, which is what lets billion-reference
 * runs fit in RAM.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "sim/sharer_set.h"
#include "trace/chunk_source.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;

workload::AppProfile
scaleProfile(uint32_t threads, uint64_t meanLength)
{
    workload::AppProfile p;
    p.name = "scale-test";
    p.threads = threads;
    p.meanLength = meanLength;
    p.lengthDevPct = 20.0;
    p.phases = 4;
    p.globalFrac = 0.5;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.1;
    p.sliceFrac = 0.2;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 29;
    return p;
}

SimConfig
scaleConfig(uint32_t procs)
{
    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = 1;
    cfg.cacheBytes = 16 * 1024;
    cfg.blockBytes = 32;
    return cfg;
}

PlacementMap
identity(uint32_t threads)
{
    std::vector<uint32_t> assign(threads);
    for (uint32_t t = 0; t < threads; ++t)
        assign[t] = t;
    return PlacementMap(threads, assign);
}

void
expectIdenticalStats(const SimStats &a, const SimStats &b)
{
    ASSERT_EQ(a.procs.size(), b.procs.size());
    for (size_t p = 0; p < a.procs.size(); ++p) {
        const ProcessorStats &x = a.procs[p];
        const ProcessorStats &y = b.procs[p];
        EXPECT_EQ(x.busyCycles, y.busyCycles) << "proc " << p;
        EXPECT_EQ(x.switchCycles, y.switchCycles) << "proc " << p;
        EXPECT_EQ(x.idleCycles, y.idleCycles) << "proc " << p;
        EXPECT_EQ(x.finishTime, y.finishTime) << "proc " << p;
        EXPECT_EQ(x.instructions, y.instructions) << "proc " << p;
        EXPECT_EQ(x.memRefs, y.memRefs) << "proc " << p;
        EXPECT_EQ(x.hits, y.hits) << "proc " << p;
        EXPECT_EQ(x.misses, y.misses) << "proc " << p;
        EXPECT_EQ(x.upgrades, y.upgrades) << "proc " << p;
        EXPECT_EQ(x.invalidationsSent, y.invalidationsSent)
            << "proc " << p;
        EXPECT_EQ(x.writebacks, y.writebacks) << "proc " << p;
    }
    EXPECT_EQ(a.executionTime(), b.executionTime());
    EXPECT_EQ(a.sharingCompulsoryMisses, b.sharingCompulsoryMisses);
}

// 160 processors crosses the SharerSet inline/spill boundary mid-run:
// the materialized and streaming paths must agree bit-for-bit, and the
// sharing monitor must profile toucher ids above 128 correctly.
TEST(SimScale, SpillParityStreamingVsMaterialized)
{
    const uint32_t threads = 160;
    workload::AppProfile p = scaleProfile(threads, 6'000);
    SimConfig cfg = scaleConfig(threads);
    cfg.profileSharing = true;
    PlacementMap place = identity(threads);

    trace::TraceSet traces = workload::generateTraces(p, /*scale=*/1);
    SimStats eager = simulate(cfg, traces, place);

    workload::AppStreamFactory factory(p, /*scale=*/1);
    SimStats streamed = simulateStreaming(cfg, factory, place);

    expectIdenticalStats(eager, streamed);
    EXPECT_GT(eager.totalMemRefs(), 0u);
    ASSERT_TRUE(eager.profiledSharing);
    EXPECT_GT(eager.sharingProfile.sharedBlocks, 0u);
    EXPECT_EQ(eager.sharingProfile.sharedBlocks,
              streamed.sharingProfile.sharedBlocks);
    EXPECT_EQ(eager.sharingProfile.migratoryShared,
              streamed.sharingProfile.migratoryShared);
}

// The full 1024-processor machine: the run completes, and the
// streaming window keeps resident trace memory bounded — a fixed
// number of chunks per thread, several times smaller than the
// materialized trace would be (the gap widens with trace length).
TEST(SimScale, BoundedResidentBytesAt1024Procs)
{
    const uint32_t threads = sim::kMaxProcessors;  // 1024
    const size_t chunkEvents = 512;
    workload::AppProfile p = scaleProfile(threads, 20'000);
    SimConfig cfg = scaleConfig(threads);
    PlacementMap place = identity(threads);

    // Producer batches smaller than the chunk target: a refill cuts
    // chunks at chunkEvents plus at most one batch of overshoot.
    workload::AppStreamFactory factory(p, /*scale=*/1,
                                       /*stepsPerBatch=*/128);
    size_t residentBytes = 0;
    SimStats stats = simulateStreaming(cfg, factory, place,
                                       chunkEvents, &residentBytes);

    EXPECT_EQ(stats.procs.size(), threads);
    EXPECT_GT(stats.executionTime(), 0u);
    EXPECT_GT(stats.totalMemRefs(), 1'000'000u);
    for (const ProcessorStats &ps : stats.procs)
        EXPECT_GT(ps.instructions, 0u);

    // Hard bound: at most a few chunks resident per thread at the
    // high-water mark, independent of trace length. Each resident
    // chunk holds at most chunkEvents plus one producer batch of
    // overshoot, and a single lane keeps at most two chunks per
    // thread alive (the one being consumed and the one just pulled).
    EXPECT_GT(residentBytes, 0u);
    EXPECT_LE(residentBytes, static_cast<size_t>(threads) * 4 *
                                 chunkEvents *
                                 sizeof(trace::TraceEvent));

    // Relative bound: well below what materializing the traces would
    // take. Data references alone (one packed event each) are a lower
    // bound on the materialized footprint.
    size_t materializedFloor =
        stats.totalMemRefs() * sizeof(trace::TraceEvent);
    EXPECT_LT(residentBytes * 2, materializedFloor);
}

} // namespace
} // namespace tsp::sim
