/**
 * @file
 * Shared-L2 hierarchy tests: hand-computed fill latencies for
 * inclusive and exclusive (victim) L2s, back-invalidation on L2
 * eviction, the flat-1994 bit-identity contract of the memory-system
 * variants, and the cumulative variant configurations themselves.
 */

#include <gtest/gtest.h>

#include "core/placement_map.h"
#include "experiment/configs.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

/** Distinct shared-region block addresses (32 B blocks). */
uint64_t
sharedBlockAddr(uint64_t i)
{
    return AddressSpace::sharedBase + i * 32;
}

/** 1 KB direct-mapped L1, invariant-checked every reference. */
SimConfig
l2Config(uint32_t procs)
{
    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = 1;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    cfg.l2Bytes = 4096;
    cfg.l2Associativity = 8;
    cfg.l2HitLatency = 12;
    cfg.paranoidEvery = 1;
    return cfg;
}

// ------------------------------------------------ hand-computed fills

TEST(Hierarchy, InclusiveL2ServesConflictVictimsFaster)
{
    // load X (L1+L2 miss, 50cy), load Y = X+1024 (same L1 set: evicts
    // X from L1, X stays in the inclusive L2; 50cy), load X (L1 miss,
    // L2 hit: 12cy). Busy 3 + idle 112 = 115.
    TraceSet ts("incl");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendLoad(sharedBlockAddr(0) + 1024);
    t0.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));

    SimStats s = simulate(l2Config(1), ts, PlacementMap(1, {0}));
    EXPECT_EQ(s.l2Misses, 2u);
    EXPECT_EQ(s.l2Hits, 1u);
    EXPECT_EQ(s.executionTime(), 3u + 50u + 50u + 12u);
    EXPECT_EQ(s.procs[0].hits, 0u);
}

TEST(Hierarchy, ExclusiveL2IsAVictimCache)
{
    // Same reference stream, exclusive policy: X enters the L2 only
    // when its L1 copy is evicted by Y, and leaves on the re-fill.
    // Identical latencies, so the same 115-cycle run.
    TraceSet ts("excl");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendLoad(sharedBlockAddr(0) + 1024);
    t0.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));

    SimConfig cfg = l2Config(1);
    cfg.l2Inclusive = false;
    SimStats s = simulate(cfg, ts, PlacementMap(1, {0}));
    EXPECT_EQ(s.l2Misses, 2u);
    EXPECT_EQ(s.l2Hits, 1u);
    EXPECT_EQ(s.executionTime(), 3u + 50u + 50u + 12u);
    EXPECT_EQ(s.l2BackInvalidations, 0u);  // inclusive-only mechanism
}

TEST(Hierarchy, L2EvictionBackInvalidatesL1Copies)
{
    // A tiny 2-set direct-mapped L2 under a large L1: blocks 0, 2, 4
    // land in the same L2 set, so each insert evicts the previous
    // block from the L2 and must back-invalidate its L1 copy (the
    // dirty copy of block 0 writes back). Reloading block 0 misses.
    TraceSet ts("backinval");
    ThreadTrace t0(0);
    t0.appendStore(sharedBlockAddr(0));
    t0.appendLoad(sharedBlockAddr(2));
    t0.appendLoad(sharedBlockAddr(4));
    t0.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));

    SimConfig cfg = l2Config(1);
    cfg.cacheBytes = 4096;  // distinct L1 sets for all three blocks
    cfg.l2Bytes = 64;       // 2 sets x 1 way
    cfg.l2Associativity = 1;
    SimStats s = simulate(cfg, ts, PlacementMap(1, {0}));

    EXPECT_EQ(s.l2BackInvalidations, 3u);
    EXPECT_EQ(s.l2Hits, 0u);
    EXPECT_EQ(s.l2Misses, 4u);
    EXPECT_EQ(s.procs[0].hits, 0u);
    // The dirty copy of block 0 wrote back when its L2 frame left.
    EXPECT_EQ(s.procs[0].writebacks, 1u);
}

TEST(Hierarchy, SharedL2IsSharedAcrossProcessors)
{
    // p0 faults a block in (L2 miss); p1's later miss on the same
    // block — after p0's copy is evicted by a conflicting load —
    // still finds it in the shared L2.
    TraceSet ts("crossfeed");
    ThreadTrace t0(0);
    t0.appendLoad(sharedBlockAddr(0));
    t0.appendLoad(sharedBlockAddr(0) + 1024);  // evicts p0's L1 copy
    ThreadTrace t1(1);
    t1.appendWork(200);
    t1.appendLoad(sharedBlockAddr(0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s = simulate(l2Config(2), ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.l2Hits, 1u);  // p1's fill came from the shared L2
    EXPECT_EQ(s.l2Misses, 2u);
}

// ------------------------------------------- memory-system variants

workload::AppProfile
variantProfile()
{
    workload::AppProfile p;
    p.name = "variants";
    p.threads = 8;
    p.meanLength = 20000;
    p.sharedRefFrac = 0.4;
    p.refsPerSharedAddr = 10.0;
    p.globalFrac = 1.0;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 33;
    return p;
}

SimConfig
variantConfig(experiment::MemSystem ms)
{
    SimConfig cfg;
    cfg.processors = 4;
    cfg.contexts = 2;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    experiment::applyMemSystem(cfg, ms);
    cfg.validate();
    return cfg;
}

TEST(Hierarchy, Flat1994VariantIsBitIdenticalToTheDefault)
{
    auto traces = workload::generateTraces(variantProfile(), 1);
    PlacementMap map(4, {0, 1, 2, 3, 0, 1, 2, 3});

    SimConfig plain;
    plain.processors = 4;
    plain.contexts = 2;
    plain.cacheBytes = 1024;
    plain.blockBytes = 32;
    SimStats a = simulate(plain, traces, map);
    SimStats b =
        simulate(variantConfig(experiment::MemSystem::Flat1994),
                 traces, map);

    ASSERT_EQ(a.procs.size(), b.procs.size());
    EXPECT_EQ(a.executionTime(), b.executionTime());
    for (size_t p = 0; p < a.procs.size(); ++p) {
        EXPECT_EQ(a.procs[p].busyCycles, b.procs[p].busyCycles);
        EXPECT_EQ(a.procs[p].idleCycles, b.procs[p].idleCycles);
        EXPECT_EQ(a.procs[p].finishTime, b.procs[p].finishTime);
        EXPECT_EQ(a.procs[p].hits, b.procs[p].hits);
        EXPECT_EQ(a.procs[p].misses, b.procs[p].misses);
        EXPECT_EQ(a.procs[p].writebacks, b.procs[p].writebacks);
        EXPECT_EQ(a.procs[p].upgrades, b.procs[p].upgrades);
    }
    EXPECT_EQ(b.l2Hits + b.l2Misses, 0u);
    EXPECT_EQ(b.networkQueueingCycles, 0u);
}

TEST(Hierarchy, VariantsAreCumulative)
{
    using experiment::MemSystem;
    SimConfig flat = variantConfig(MemSystem::Flat1994);
    EXPECT_EQ(flat.l2Bytes, 0u);
    EXPECT_EQ(flat.protocol, Protocol::Mesi);
    EXPECT_EQ(flat.networkLinks, 0u);

    SimConfig l2 = variantConfig(MemSystem::SharedL2);
    EXPECT_EQ(l2.l2Bytes, 4 * l2.cacheBytes);
    EXPECT_TRUE(l2.l2Inclusive);
    EXPECT_EQ(l2.protocol, Protocol::Mesi);

    SimConfig moesi = variantConfig(MemSystem::Moesi);
    EXPECT_EQ(moesi.l2Bytes, 4 * moesi.cacheBytes);
    EXPECT_EQ(moesi.protocol, Protocol::Moesi);
    EXPECT_EQ(moesi.networkLinks, 0u);

    SimConfig cont = variantConfig(MemSystem::Contended);
    EXPECT_EQ(cont.protocol, Protocol::Moesi);
    EXPECT_EQ(cont.networkLinks, cont.processors);
    EXPECT_EQ(cont.linkOccupancy, 6u);
}

TEST(Hierarchy, ModernVariantsChangeTheObservedBehavior)
{
    auto traces = workload::generateTraces(variantProfile(), 1);
    PlacementMap map(4, {0, 1, 2, 3, 0, 1, 2, 3});
    using experiment::MemSystem;

    SimStats flat =
        simulate(variantConfig(MemSystem::Flat1994), traces, map);
    SimStats l2 =
        simulate(variantConfig(MemSystem::SharedL2), traces, map);
    SimStats moesi =
        simulate(variantConfig(MemSystem::Moesi), traces, map);
    SimStats cont =
        simulate(variantConfig(MemSystem::Contended), traces, map);

    // The L2 absorbs some misses: never slower than flat.
    EXPECT_GT(l2.l2Hits + l2.l2Misses, 0u);
    EXPECT_LE(l2.executionTime(), flat.executionTime());

    // MOESI only moves writebacks around: cycle-identical to MESI.
    EXPECT_EQ(moesi.executionTime(), l2.executionTime());

    // Contention makes transactions queue. (Execution time is not
    // monotone here: delaying one context's fill reshuffles the
    // round-robin interleaving, which can change the coherence
    // pattern either way — see Interconnect.ContentionNeverSpeeds-
    // Execution for the monotone single-context property.)
    EXPECT_GT(cont.networkQueueingCycles, 0u);
    EXPECT_GT(cont.networkTransactions, 0u);
}

} // namespace
} // namespace tsp::sim
