/**
 * @file
 * BBV phase-sampling tests: fingerprint/cluster determinism, segment
 * extraction correctness (the clipped stream is exactly the window's
 * slice of the full trace, barriers stripped), and the end-to-end
 * contract — the sampled estimate tracks the unsampled execution time
 * while simulating a small fraction of the references.
 *
 * Accuracy thresholds here are deliberately loose (CI-sized traces
 * have few windows); the calibrated error bounds come from the
 * `tsp-run sample` study over the Table 1/2 apps (EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/placement_map.h"
#include "experiment/sampling_study.h"
#include "sample/bbv.h"
#include "sample/sampler.h"
#include "sample/segment.h"
#include "sim/machine.h"
#include "workload/stream.h"

namespace tsp::sample {
namespace {

workload::AppProfile
phasedProfile(uint32_t threads = 8)
{
    // Distinct per-phase sharing structure so the windows actually
    // form phases worth clustering.
    workload::AppProfile p;
    p.name = "sample-test";
    p.threads = threads;
    p.meanLength = 120'000;
    p.lengthDevPct = 10.0;
    p.phases = 6;
    p.globalFrac = 0.4;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.2;
    p.sliceFrac = 0.2;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 77;
    return p;
}

sim::SimConfig
sampleConfig(uint32_t procs)
{
    sim::SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = 1;
    cfg.cacheBytes = 8 * 1024;
    cfg.blockBytes = 32;
    return cfg;
}

placement::PlacementMap
identity(uint32_t threads)
{
    std::vector<uint32_t> assign(threads);
    std::iota(assign.begin(), assign.end(), 0u);
    return placement::PlacementMap(threads, assign);
}

std::vector<trace::TraceEvent>
drainAll(trace::StreamFactory &f, uint32_t tid)
{
    std::vector<trace::TraceEvent> all, batch;
    auto producer = f.openProducer(tid);
    while (true) {
        batch.clear();
        if (!producer->produce(batch))
            break;
        all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
}

TEST(Bbv, FingerprintsAreDeterministicAndNormalized)
{
    workload::AppProfile p = phasedProfile();
    workload::AppStreamFactory f1(p, 1), f2(p, 1);
    BbvProfile a = bbvProfile(f1, 5'000, 16, 5);
    BbvProfile b = bbvProfile(f2, 5'000, 16, 5);

    ASSERT_GT(a.windows(), 2u);
    ASSERT_EQ(a.windows(), b.windows());
    EXPECT_EQ(a.totalRefs(), b.totalRefs());
    for (uint32_t w = 0; w < a.windows(); ++w) {
        EXPECT_EQ(a.fingerprints[w], b.fingerprints[w])
            << "window " << w;
        if (a.windowRefCounts[w] == 0)
            continue;
        double sum = 0;
        for (double v : a.fingerprints[w])
            sum += v;
        EXPECT_NEAR(sum, 1.0, 1e-9) << "window " << w;
    }

    uint64_t perThread = 0;
    for (uint64_t r : a.threadRefs)
        perThread += r;
    EXPECT_EQ(perThread, a.totalRefs());
}

TEST(Bbv, ClusteringIsDeterministicAndCoversAllWindows)
{
    workload::AppProfile p = phasedProfile();
    workload::AppStreamFactory f(p, 1);
    BbvProfile profile = bbvProfile(f, 5'000, 16, 5);

    Clustering c1 = clusterWindows(profile, 4, 30);
    Clustering c2 = clusterWindows(profile, 4, 30);
    EXPECT_EQ(c1.assignment, c2.assignment);
    EXPECT_EQ(c1.representative, c2.representative);
    EXPECT_EQ(c1.weightRefs, c2.weightRefs);

    ASSERT_GE(c1.clusters(), 1u);
    ASSERT_LE(c1.clusters(), 4u);
    uint64_t weight = 0;
    for (uint64_t wr : c1.weightRefs)
        weight += wr;
    EXPECT_EQ(weight, profile.totalRefs());
    for (uint32_t w = 0; w < profile.windows(); ++w)
        EXPECT_LT(c1.assignment[w], c1.clusters());
    for (uint32_t rep : c1.representative)
        EXPECT_LT(rep, profile.windows());

    // More clusters than windows clamps instead of failing.
    Clustering wide = clusterWindows(profile, 10'000, 5);
    EXPECT_LE(wide.clusters(), profile.windows());
}

TEST(Segment, ClipsToExactReferenceWindowAndStripsBarriers)
{
    workload::AppProfile p = phasedProfile(4);
    p.meanLength = 30'000;
    p.barriers = true;  // inner trace has barriers; segments must not
    workload::AppStreamFactory inner(p, 1);

    const uint64_t start = 1'000, end = 3'500;
    SegmentFactory seg(inner, start, end);
    EXPECT_EQ(seg.threadCount(), inner.threadCount());
    EXPECT_GT(inner.barrierCount(0), 0u);
    EXPECT_EQ(seg.barrierCount(0), 0u);

    for (uint32_t tid = 0; tid < seg.threadCount(); ++tid) {
        std::vector<trace::TraceEvent> full = drainAll(inner, tid);
        std::vector<trace::TraceEvent> clipped = drainAll(seg, tid);

        // Expected: refs [start, end) of the full trace plus the work
        // events between them, barriers dropped.
        std::vector<trace::TraceEvent> expected;
        uint64_t refs = 0;
        for (const trace::TraceEvent &e : full) {
            if (e.isMemRef()) {
                if (refs >= end)
                    break;
                if (refs >= start)
                    expected.push_back(e);
                ++refs;
            } else if (e.kind() == trace::EventKind::Work) {
                if (refs >= start && refs < end)
                    expected.push_back(e);
            }
        }
        EXPECT_EQ(clipped, expected) << "tid " << tid;

        uint64_t clippedRefs = 0;
        for (const trace::TraceEvent &e : clipped) {
            EXPECT_NE(e.kind(), trace::EventKind::Barrier);
            clippedRefs += e.isMemRef() ? 1 : 0;
        }
        EXPECT_LE(clippedRefs, end - start);
    }
}

// Seeking through producer snapshots must not change the extracted
// segment: a seeked clip equals a replayed-from-zero clip, event for
// event, including boundaries mid-batch and past the trace end.
TEST(Segment, SeekIndexParityWithFullReplay)
{
    workload::AppProfile p = phasedProfile(4);
    p.meanLength = 30'000;
    workload::AppStreamFactory inner(p, 1);

    const std::vector<std::pair<uint64_t, uint64_t>> windows = {
        {0, 2'000},         // no snapshot needed
        {1'000, 3'500},     // mid-batch start
        {9'000, 12'000},    // deep window
        {1'000'000, 1'001'000},  // past the trace end
    };
    std::vector<uint64_t> starts;
    for (const auto &[s, e] : windows)
        starts.push_back(s);
    SeekIndex seek(inner, starts);

    for (const auto &[s, e] : windows) {
        SegmentFactory plain(inner, s, e);
        SegmentFactory seeked(inner, s, e, &seek);
        for (uint32_t tid = 0; tid < inner.threadCount(); ++tid)
            EXPECT_EQ(drainAll(seeked, tid), drainAll(plain, tid))
                << "window [" << s << "," << e << ") tid " << tid;
    }
}

TEST(Segment, EmptyAndTailWindows)
{
    workload::AppProfile p = phasedProfile(2);
    p.meanLength = 10'000;
    workload::AppStreamFactory inner(p, 1);
    std::vector<trace::TraceEvent> full = drainAll(inner, 0);
    uint64_t totalRefs = 0;
    for (const trace::TraceEvent &e : full)
        totalRefs += e.isMemRef() ? 1 : 0;

    // A window starting past the end of the trace yields nothing.
    SegmentFactory past(inner, totalRefs + 100, totalRefs + 200);
    EXPECT_TRUE(drainAll(past, 0).empty());

    // A window covering the whole trace yields every ref.
    SegmentFactory all(inner, 0, totalRefs + 1);
    std::vector<trace::TraceEvent> everything = drainAll(all, 0);
    uint64_t refs = 0;
    for (const trace::TraceEvent &e : everything)
        refs += e.isMemRef() ? 1 : 0;
    EXPECT_EQ(refs, totalRefs);
}

// End to end: the estimate tracks the unsampled run within a loose
// bound while simulating a fraction of the references, and repeated
// runs are bit-identical.
TEST(Sampler, EstimateTracksActualAtFractionalCost)
{
    workload::AppProfile p = phasedProfile();
    p.meanLength = 400'000;  // many more windows than sampled segments
    sim::SimConfig cfg = sampleConfig(p.threads);
    placement::PlacementMap place = identity(p.threads);

    workload::AppStreamFactory fullFactory(p, 1);
    sim::SimStats actual =
        sim::simulateStreaming(cfg, fullFactory, place);

    SampleOptions so;
    so.windowRefs = 8'000;
    so.clusters = 5;
    workload::AppStreamFactory f1(p, 1);
    SampleEstimate est = sampleSimulate(cfg, f1, place, so);

    EXPECT_GT(est.windows, 5u);
    EXPECT_GE(est.clusters, 1u);
    EXPECT_GT(est.fullRefs, 0u);
    EXPECT_GT(est.sampledRefs, 0u);

    // Cost: well under half the trace simulated (CI-sized traces;
    // the ratio grows with trace length).
    EXPECT_LT(est.sampledFraction(), 0.5);

    // Accuracy: within 15% on this small phased workload.
    double a = static_cast<double>(actual.executionTime());
    double e = static_cast<double>(est.execTime);
    EXPECT_GT(e, 0.0);
    EXPECT_LT(std::abs(e - a) / a, 0.15)
        << "actual " << actual.executionTime() << " est "
        << est.execTime;

    // Determinism: same inputs, same estimate.
    workload::AppStreamFactory f2(p, 1);
    SampleEstimate again = sampleSimulate(cfg, f2, place, so);
    EXPECT_EQ(est.execTime, again.execTime);
    EXPECT_EQ(est.totalMisses, again.totalMisses);
    EXPECT_EQ(est.sampledRefs, again.sampledRefs);
}

TEST(SamplingStudy, ProducesCellsAndCsv)
{
    workload::AppProfile p = phasedProfile(4);
    p.meanLength = 40'000;

    experiment::SamplingStudyOptions opt;
    opt.windows = {1'500};
    opt.clusters = {3};
    experiment::SamplingStudy study =
        experiment::samplingStudy({p}, opt);

    ASSERT_EQ(study.cells.size(), 1u);
    const experiment::SamplingCell &cell = study.cells[0];
    EXPECT_EQ(cell.app, p.name);
    EXPECT_EQ(cell.processors, p.threads);
    EXPECT_GT(cell.actualExecTime, 0u);
    EXPECT_GT(cell.estExecTime, 0u);
    EXPECT_GT(cell.refsRatio, 1.0);
    EXPECT_LT(cell.errorPct, 25.0);

    std::string path = testing::TempDir() + "sampling_study.csv";
    experiment::writeSamplingCsv(path, study);
    FILE *f = fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char header[256] = {0};
    ASSERT_NE(fgets(header, sizeof header, f), nullptr);
    fclose(f);
    EXPECT_TRUE(std::string(header).find("error_pct") !=
                std::string::npos);
    EXPECT_TRUE(std::string(header).find("speedup") !=
                std::string::npos);
    // The build-once plan cost is reported apart from the per-run
    // sampled cost (a placement-study matrix amortizes the former).
    EXPECT_TRUE(std::string(header).find("plan_wall_ms") !=
                std::string::npos);
}

// The plan is the reusable half: building it once and running the
// estimate twice must give the one-shot answer both times.
TEST(SamplingStudy, PrebuiltPlanMatchesOneShot)
{
    workload::AppProfile p = phasedProfile(4);
    p.meanLength = 40'000;
    sim::SimConfig cfg = sampleConfig(4);
    placement::PlacementMap place = identity(4);

    SampleOptions so;
    so.windowRefs = 1'500;
    so.clusters = 3;
    workload::AppStreamFactory f1(p, 1);
    SampleEstimate oneShot = sampleSimulate(cfg, f1, place, so);

    workload::AppStreamFactory f2(p, 1);
    SamplePlan plan = buildSamplePlan(f2, so, cfg.blockBytes);
    SampleEstimate first = sampleSimulate(cfg, f2, place, plan);
    SampleEstimate second = sampleSimulate(cfg, f2, place, plan);
    EXPECT_EQ(first.execTime, oneShot.execTime);
    EXPECT_EQ(first.totalMisses, oneShot.totalMisses);
    EXPECT_EQ(first.sampledRefs, oneShot.sampledRefs);
    EXPECT_EQ(second.execTime, first.execTime);
    EXPECT_EQ(second.totalMisses, first.totalMisses);
}

// The synthetic scale profile drives machines wider than any suite
// app; make sure it samples at 256 threads/processors.
TEST(SamplingStudy, SyntheticProfileSamplesAt256Procs)
{
    workload::AppProfile p =
        experiment::syntheticScaleProfile(256, 12'000);
    sim::SimConfig cfg = sampleConfig(256);
    cfg.cacheBytes = 16 * 1024;
    placement::PlacementMap place = identity(256);

    SampleOptions so;
    so.windowRefs = 500;
    so.clusters = 3;
    workload::AppStreamFactory f(p, 1);
    SampleEstimate est = sampleSimulate(cfg, f, place, so);
    EXPECT_GT(est.execTime, 0u);
    EXPECT_GT(est.fullRefs, est.sampledRefs);
}

} // namespace
} // namespace tsp::sample
