/**
 * @file
 * Barrier synchronization tests: blocking semantics, release timing,
 * wait accounting, validation of malformed barrier structures, and an
 * end-to-end barrier-phased generated workload.
 */

#include <gtest/gtest.h>

#include "core/load_balance.h"
#include "core/placement_map.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/error.h"
#include "workload/generator.h"
#include "workload/suite.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

SimConfig
config(uint32_t procs, uint32_t ctxs)
{
    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = ctxs;
    cfg.cacheBytes = 4096;
    return cfg;
}

TEST(Barrier, FastThreadWaitsForSlowThread)
{
    // t0: work 10, barrier, work 5.  t1: work 30, barrier, work 5.
    // Release at cycle 30; both finish at 35.
    TraceSet ts("sync");
    ThreadTrace t0(0);
    t0.appendWork(10);
    t0.appendBarrier();
    t0.appendWork(5);
    ThreadTrace t1(1);
    t1.appendWork(30);
    t1.appendBarrier();
    t1.appendWork(5);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimStats s = simulate(config(2, 1), ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.procs[0].finishTime, 35u);
    EXPECT_EQ(s.procs[1].finishTime, 35u);
    EXPECT_EQ(s.procs[0].barrierCycles, 20u);  // waited 10..30
    EXPECT_EQ(s.procs[1].barrierCycles, 0u);   // last arriver
    EXPECT_EQ(s.procs[0].idleCycles, 20u);     // nothing else to run
    EXPECT_EQ(s.procs[0].busyCycles, 15u);
    // Cycle identity still holds with barriers.
    for (const auto &ps : s.procs)
        EXPECT_EQ(ps.busyCycles + ps.switchCycles + ps.idleCycles,
                  ps.finishTime);
}

TEST(Barrier, MultiplePhasesStayInLockstep)
{
    // Three threads, two barriers; phase lengths differ per thread.
    TraceSet ts("phases");
    uint64_t phase[3][3] = {{5, 20, 10}, {15, 5, 10}, {10, 10, 30}};
    for (uint32_t tid = 0; tid < 3; ++tid) {
        ThreadTrace t(tid);
        for (int k = 0; k < 3; ++k) {
            t.appendWork(phase[tid][k]);
            if (k < 2)
                t.appendBarrier();
        }
        ts.addThread(std::move(t));
    }
    SimStats s =
        simulate(config(3, 1), ts, PlacementMap(3, {0, 1, 2}));
    // Barrier 1 at max(5,15,10)=15; barrier 2 at 15+max(20,5,10)=35;
    // finishes at 35 + {10,10,30}.
    EXPECT_EQ(s.procs[0].finishTime, 45u);
    EXPECT_EQ(s.procs[1].finishTime, 45u);
    EXPECT_EQ(s.procs[2].finishTime, 65u);
    EXPECT_EQ(s.executionTime(), 65u);
}

TEST(Barrier, CoLocatedThreadsPassThroughOneProcessor)
{
    // Both threads on one processor with two contexts: the barrier
    // must not deadlock the processor against itself.
    TraceSet ts("colocated");
    for (uint32_t tid = 0; tid < 2; ++tid) {
        ThreadTrace t(tid);
        t.appendLoad(AddressSpace::sharedWord(tid * 64));
        t.appendBarrier();
        t.appendWork(10);
        ts.addThread(std::move(t));
    }
    SimStats s = simulate(config(1, 2), ts, PlacementMap(1, {0, 0}));
    EXPECT_GT(s.executionTime(), 0u);
    EXPECT_EQ(s.procs[0].instructions, 22u);
}

TEST(Barrier, TrailingBarrierFinishesAtRelease)
{
    // t0 ends with the barrier; its finish time is the release time.
    TraceSet ts("trailing");
    ThreadTrace t0(0);
    t0.appendWork(5);
    t0.appendBarrier();
    ThreadTrace t1(1);
    t1.appendWork(40);
    t1.appendBarrier();
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    SimStats s = simulate(config(2, 1), ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.procs[0].finishTime, 40u);
    EXPECT_EQ(s.procs[1].finishTime, 40u);
}

TEST(Barrier, MismatchedBarrierCountsAreFatal)
{
    TraceSet ts("bad");
    ThreadTrace t0(0);
    t0.appendBarrier();
    ThreadTrace t1(1);
    t1.appendWork(5);  // no barrier
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    EXPECT_THROW(simulate(config(2, 1), ts, PlacementMap(2, {0, 1})),
                 util::FatalError);
}

TEST(Barrier, PendingThreadsWithBarriersAreFatal)
{
    // Two threads, one context: the queued thread could never reach
    // the barrier while the loaded one blocks on it.
    TraceSet ts("overflow");
    for (uint32_t tid = 0; tid < 2; ++tid) {
        ThreadTrace t(tid);
        t.appendWork(5);
        t.appendBarrier();
        t.appendWork(5);
        ts.addThread(std::move(t));
    }
    EXPECT_THROW(simulate(config(1, 1), ts, PlacementMap(1, {0, 0})),
                 util::FatalError);
}

TEST(Barrier, BarrierFreeTracesUnaffected)
{
    TraceSet ts("plain");
    ThreadTrace t0(0);
    t0.appendWork(10);
    ts.addThread(std::move(t0));
    SimStats s = simulate(config(1, 1), ts, PlacementMap(1, {0}));
    EXPECT_EQ(s.executionTime(), 10u);
    EXPECT_EQ(s.procs[0].barrierCycles, 0u);
}

TEST(Barrier, GeneratedBarrierWorkloadRunsToCompletion)
{
    workload::AppProfile p = workload::profile(workload::AppId::Water);
    p.barriers = true;
    auto traces = workload::generateTraces(p, 32);
    for (const auto &t : traces.threads())
        EXPECT_EQ(t.barrierCount(), p.phases - 1);

    auto map =
        placement::loadBalancedPlacement(traces.threadLengths(), 2);
    SimConfig cfg = config(2, 4);
    cfg.cacheBytes = 8192;
    SimStats s = simulate(cfg, traces, map);
    EXPECT_EQ(s.totalInstructions(), traces.totalInstructions());
    for (const auto &ps : s.procs)
        EXPECT_EQ(ps.busyCycles + ps.switchCycles + ps.idleCycles,
                  ps.finishTime);
}

TEST(Barrier, MissLatencyOverlapsBarrierWait)
{
    // t0 misses right before the barrier; t1 arrives later than t0's
    // miss completes. The barrier releases when t1 arrives, not when
    // t0's miss returns.
    TraceSet ts("missbarrier");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::sharedWord(0));  // miss: ready at 51
    t0.appendBarrier();
    t0.appendWork(5);
    ThreadTrace t1(1);
    t1.appendWork(80);
    t1.appendBarrier();
    t1.appendWork(5);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    SimStats s = simulate(config(2, 1), ts, PlacementMap(2, {0, 1}));
    // t0: miss issued at 0, retires at 1, context stalls to 51,
    // arrives at barrier at 51. t1 arrives at 80 -> release at 80;
    // both finish at 85.
    EXPECT_EQ(s.procs[0].finishTime, 85u);
    EXPECT_EQ(s.procs[1].finishTime, 85u);
    EXPECT_EQ(s.procs[0].barrierCycles, 80u - 51u);
}

TEST(Barrier, WaiterKeepsRunningOtherContext)
{
    // One processor, two contexts: ctx0 blocks at a barrier while
    // ctx1 (a barrier-free co-runner cannot exist — barriers must be
    // uniform — so give both threads barriers but stagger them).
    TraceSet ts("overlap");
    ThreadTrace t0(0);
    t0.appendWork(5);
    t0.appendBarrier();
    t0.appendWork(10);
    ThreadTrace t1(1);
    t1.appendWork(40);
    t1.appendBarrier();
    t1.appendWork(10);
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    SimStats s = simulate(config(1, 2), ts, PlacementMap(1, {0, 0}));
    // t0 arrives at 5; processor switches to t1 (6 cycles), which
    // works 40 -> arrives at 51 -> release; both run their last 10.
    const auto &ps = s.procs[0];
    EXPECT_EQ(ps.busyCycles, 65u);
    EXPECT_EQ(ps.barrierCycles, 51u - 5u);
    EXPECT_EQ(ps.busyCycles + ps.switchCycles + ps.idleCycles,
              ps.finishTime);
}

TEST(Barrier, SynchronizedRunNotFasterThanFreeRun)
{
    // Barriers only add waiting; execution time must not drop.
    workload::AppProfile p = workload::profile(workload::AppId::Water);
    auto free = workload::generateTraces(p, 32);
    p.barriers = true;
    auto sync = workload::generateTraces(p, 32);

    auto map =
        placement::loadBalancedPlacement(free.threadLengths(), 4);
    SimConfig cfg = config(4, 2);
    uint64_t freeTime = simulate(cfg, free, map).executionTime();
    uint64_t syncTime = simulate(cfg, sync, map).executionTime();
    EXPECT_GE(syncTime, freeTime * 99 / 100);
}

} // namespace
} // namespace tsp::sim
