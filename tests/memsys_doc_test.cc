/**
 * @file
 * Doc-sync guard: the knob reference table in docs/memory_system.md
 * must list exactly the memory-system knobs the simulator exposes
 * (sim::memSystemKnobs()), with matching defaults and valid ranges.
 * The catalog is built from a default-constructed SimConfig, so this
 * test fails when a knob is added, a default changes, or a range
 * tightens without the doc row moving with it.
 *
 * The table rows look like:
 *   | `l2Bytes` | `0` | 0 (no L2) or a power of two ... | ... |
 */

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/config.h"

#ifndef TSP_SOURCE_DIR
#error "memsys_doc_test needs TSP_SOURCE_DIR (set in tests/CMakeLists.txt)"
#endif

using namespace tsp;

namespace {

struct DocKnob
{
    std::string def;
    std::string range;
};

/** Split a markdown table line into trimmed cells. */
std::vector<std::string>
splitRow(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    for (size_t i = 1; i < line.size(); ++i) {
        if (line[i] == '|') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell.push_back(line[i]);
        }
    }
    for (std::string &c : cells) {
        size_t b = c.find_first_not_of(" \t");
        size_t e = c.find_last_not_of(" \t");
        c = (b == std::string::npos) ? "" : c.substr(b, e - b + 1);
    }
    return cells;
}

/** Whether @p s is backtick-wrapped code. */
bool
isCode(const std::string &s)
{
    return s.size() >= 2 && s.front() == '`' && s.back() == '`';
}

/** Strip surrounding backticks. */
std::string
stripCode(const std::string &s)
{
    if (isCode(s))
        return s.substr(1, s.size() - 2);
    return s;
}

/**
 * Parse every `| \`knob\` | \`default\` | range | ... |` row. The
 * doc's other tables (the memory-system variants) have a backticked
 * first cell but a plain-text second cell, so requiring both first
 * cells to be code keeps them out.
 */
std::map<std::string, DocKnob>
parseDocTable(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::map<std::string, DocKnob> rows;
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("| `", 0) != 0)
            continue;
        auto cells = splitRow(line);
        if (cells.size() < 4 || !isCode(cells[0]) || !isCode(cells[1]))
            continue;
        std::string name = stripCode(cells[0]);
        EXPECT_EQ(rows.count(name), 0u)
            << "duplicate doc row for " << name;
        rows[name] = {stripCode(cells[1]), cells[2]};
    }
    return rows;
}

TEST(MemSysDocSync, DocTableMatchesKnobCatalogExactly)
{
    const std::string docPath =
        std::string(TSP_SOURCE_DIR) + "/docs/memory_system.md";
    auto doc = parseDocTable(docPath);
    ASSERT_FALSE(doc.empty())
        << "no knob rows parsed from " << docPath;

    auto knobs = sim::memSystemKnobs();
    std::map<std::string, DocKnob> catalog;
    for (const auto &k : knobs)
        catalog[k.name] = {k.def, k.range};
    ASSERT_EQ(catalog.size(), knobs.size())
        << "duplicate knob name in sim::memSystemKnobs()";

    for (const auto &[name, knob] : catalog) {
        auto it = doc.find(name);
        ASSERT_NE(it, doc.end())
            << "knob '" << name
            << "' is in sim::memSystemKnobs() but missing from the "
               "docs/memory_system.md reference table";
        EXPECT_EQ(it->second.def, knob.def)
            << "default mismatch for '" << name
            << "' (the doc must match the default-constructed "
               "SimConfig)";
        EXPECT_EQ(it->second.range, knob.range)
            << "valid-range mismatch for '" << name << "'";
    }
    for (const auto &[name, knob] : doc) {
        EXPECT_EQ(catalog.count(name), 1u)
            << "docs/memory_system.md documents '" << name
            << "' but sim::memSystemKnobs() does not list it "
               "(stale row?)";
    }
    EXPECT_EQ(doc.size(), catalog.size());
}

} // namespace
