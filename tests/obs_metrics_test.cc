/**
 * @file
 * Tests of the obs metrics registry: exactness under concurrent
 * mutation, histogram bucket boundary semantics, the disabled path's
 * zero-allocation guarantee, registry collision rules, and the JSON
 * snapshot round-tripped through the obs JSON parser.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metric_defs.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/thread_pool.h"

using namespace tsp;

// --------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps
// it, so a test can assert that a region of code allocates nothing.

namespace {
std::atomic<uint64_t> allocationCount{0};
}

// GCC pairs its builtin operator-new knowledge with the free() below
// and warns; the pairing is in fact consistent (new = malloc here).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** RAII: force the metrics flag and restore the previous state. */
class MetricsEnabledScope
{
  public:
    explicit MetricsEnabledScope(bool enabled)
        : previous_(obs::metricsEnabled())
    {
        obs::setMetricsEnabled(enabled);
    }
    ~MetricsEnabledScope() { obs::setMetricsEnabled(previous_); }

  private:
    bool previous_;
};

TEST(ObsMetrics, CountersAreExactUnderConcurrentIncrements)
{
    MetricsEnabledScope on(true);
    obs::Counter &c = obs::Registry::instance().counter(
        "test.concurrent_adds", "test", "concurrency test counter");
    const uint64_t before = c.value();

    constexpr size_t kTasks = 64;
    constexpr int kIncrementsPerTask = 10000;
    util::ThreadPool pool(8);
    pool.parallelFor(kTasks, [&](size_t) {
        for (int i = 0; i < kIncrementsPerTask; ++i)
            c.inc();
    });

    EXPECT_EQ(c.value() - before, kTasks * kIncrementsPerTask);
}

TEST(ObsMetrics, HistogramObservationsAreExactUnderConcurrency)
{
    MetricsEnabledScope on(true);
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.concurrent_observe", "test",
        "concurrency test histogram", {1.0, 10.0});
    const uint64_t before = h.count();

    constexpr size_t kTasks = 32;
    constexpr int kObservationsPerTask = 1000;
    util::ThreadPool pool(8);
    pool.parallelFor(kTasks, [&](size_t) {
        for (int i = 0; i < kObservationsPerTask; ++i)
            h.observe(0.5);
    });

    EXPECT_EQ(h.count() - before, kTasks * kObservationsPerTask);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 * h.count());
}

TEST(ObsMetrics, HistogramBucketBoundariesAreUpperInclusive)
{
    MetricsEnabledScope on(true);
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.bounds", "test", "boundary test", {1.0, 2.0, 5.0});
    ASSERT_EQ(h.bounds().size(), 3u);

    h.observe(0.5);   // bucket 0
    h.observe(1.0);   // bucket 0 (upper bound is inclusive)
    h.observe(1.001); // bucket 1
    h.observe(2.0);   // bucket 1
    h.observe(5.0);   // bucket 2
    h.observe(5.001); // overflow

    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_NEAR(h.sum(), 14.502, 1e-9);
}

TEST(ObsMetrics, GaugeTracksValueAndHighWater)
{
    MetricsEnabledScope on(true);
    obs::Gauge &g = obs::Registry::instance().gauge(
        "test.gauge", "test", "gauge test");

    g.add(5);
    g.add(-2);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.max(), 5);
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    EXPECT_EQ(g.max(), 10);
    g.set(1);
    EXPECT_EQ(g.max(), 10);
}

TEST(ObsMetrics, DisabledPathAllocatesNothingAndRecordsNothing)
{
    // Materialize the handles first: registration allocates, steady
    // state must not.
    obs::Counter &c = obs::simRuns();
    obs::Gauge &g = obs::poolQueueDepth();
    obs::Histogram &h = obs::sweepCellMillis();

    MetricsEnabledScope off(false);
    const uint64_t counterBefore = c.value();
    const int64_t gaugeBefore = g.value();
    const uint64_t histBefore = h.count();

    const uint64_t allocsBefore =
        allocationCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        c.add(3);
        g.add(1);
        h.observe(1.5);
    }
    const uint64_t allocsAfter =
        allocationCount.load(std::memory_order_relaxed);

    EXPECT_EQ(allocsAfter - allocsBefore, 0u)
        << "disabled metric mutations must not allocate";
    EXPECT_EQ(c.value(), counterBefore);
    EXPECT_EQ(g.value(), gaugeBefore);
    EXPECT_EQ(h.count(), histBefore);
}

TEST(ObsMetrics, EnabledSteadyStateMutationAllocatesNothing)
{
    obs::Counter &c = obs::simRuns();
    obs::Histogram &h = obs::sweepCellMillis();

    MetricsEnabledScope on(true);
    c.add(1);       // warm any first-use paths
    h.observe(1.0);

    const uint64_t allocsBefore =
        allocationCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        c.add(1);
        h.observe(2.5);
    }
    const uint64_t allocsAfter =
        allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(allocsAfter - allocsBefore, 0u)
        << "enabled steady-state mutation must not allocate";
}

TEST(ObsMetrics, RegisteringANameWithADifferentKindThrows)
{
    obs::Registry::instance().counter("test.kind_clash", "test",
                                      "first registration");
    EXPECT_THROW(obs::Registry::instance().gauge("test.kind_clash",
                                                 "test", "clash"),
                 util::FatalError);
    EXPECT_THROW(obs::Registry::instance().histogram(
                     "test.kind_clash", "test", "clash", {1.0}),
                 util::FatalError);
    // Same kind finds the same handle instead of throwing.
    obs::Counter &a = obs::Registry::instance().counter(
        "test.kind_clash", "test", "first registration");
    obs::Counter &b = obs::Registry::instance().counter(
        "test.kind_clash", "test", "ignored duplicate help");
    EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, HistogramBoundsAreValidated)
{
    EXPECT_THROW(obs::Registry::instance().histogram(
                     "test.empty_bounds", "test", "bad", {}),
                 util::FatalError);
    EXPECT_THROW(obs::Registry::instance().histogram(
                     "test.unsorted_bounds", "test", "bad",
                     {2.0, 1.0}),
                 util::FatalError);
}

TEST(ObsMetrics, JsonSnapshotRoundTripsThroughTheParser)
{
    MetricsEnabledScope on(true);
    obs::Counter &c = obs::Registry::instance().counter(
        "test.json_counter", "test", "json test");
    obs::Gauge &g = obs::Registry::instance().gauge(
        "test.json_gauge", "test", "json test");
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.json_hist", "test", "json test", {1.0, 2.0});
    const uint64_t cBefore = c.value();
    c.add(7);
    g.set(42);
    h.observe(1.5);

    obs::JsonValue root =
        obs::parseJson(obs::Registry::instance().toJson());
    const obs::JsonValue &metrics = root.at("metrics");
    ASSERT_TRUE(metrics.isObject());

    const obs::JsonValue &cj = metrics.at("test.json_counter");
    EXPECT_EQ(cj.at("kind").string, "counter");
    EXPECT_EQ(cj.at("owner").string, "test");
    EXPECT_EQ(static_cast<uint64_t>(cj.at("value").number),
              cBefore + 7);

    const obs::JsonValue &gj = metrics.at("test.json_gauge");
    EXPECT_EQ(gj.at("kind").string, "gauge");
    EXPECT_EQ(static_cast<int64_t>(gj.at("value").number), 42);
    EXPECT_GE(static_cast<int64_t>(gj.at("max").number), 42);

    const obs::JsonValue &hj = metrics.at("test.json_hist");
    EXPECT_EQ(hj.at("kind").string, "histogram");
    ASSERT_EQ(hj.at("bounds").array.size(), 2u);
    ASSERT_EQ(hj.at("buckets").array.size(), 3u);
    EXPECT_GE(static_cast<uint64_t>(hj.at("count").number), 1u);
}

TEST(ObsMetrics, ResetValuesZeroesEverythingButKeepsHandles)
{
    MetricsEnabledScope on(true);
    obs::Counter &c = obs::Registry::instance().counter(
        "test.reset", "test", "reset test");
    c.add(5);
    ASSERT_GT(c.value(), 0u);
    obs::Registry::instance().resetValues();
    EXPECT_EQ(c.value(), 0u);
    c.add(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(ObsMetrics, CatalogRegistersEveryDocumentedAccessor)
{
    auto all = obs::allMetrics();
    // The catalog in obs/metric_defs.cc (test.* registrations above
    // also live in the registry, so >=).
    size_t catalog = 0;
    for (const auto &info : all) {
        if (info.name.rfind("test.", 0) != 0)
            ++catalog;
    }
    EXPECT_EQ(catalog, 59u)
        << "metric added or removed: update obs/metric_defs.h, "
           "docs/observability.md and this count together";
}

} // namespace
