/**
 * @file
 * Differential verification: an independent, deliberately simple
 * reference model of the caches + invalidation protocol consumes the
 * Machine's access stream (via the access observer) in the exact
 * global order the Machine processed it, re-derives every hit/miss
 * decision and miss classification with naive data structures, and
 * must agree access-for-access. Any divergence in victim selection,
 * sharer tracking, invalidation delivery or history bookkeeping fails
 * loudly here.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>
#include <vector>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/rng.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

/**
 * Naive re-implementation: per-processor set-associative cache as a
 * recency-ordered std::list per set, directory as std::set<proc> per
 * block, departure history as std::map. No clever packing anywhere.
 */
class ReferenceModel
{
  public:
    ReferenceModel(const SimConfig &cfg) : cfg_(cfg)
    {
        caches_.resize(cfg.processors);
    }

    struct Outcome
    {
        bool hit;
        MissKind kind;  // valid when !hit
    };

    Outcome
    access(uint32_t proc, uint32_t tid, uint64_t block, bool isWrite)
    {
        auto &cache = caches_[proc];
        uint64_t set = block % cfg_.numSets();
        auto &ways = cache.sets[set];

        // Hit?
        for (auto it = ways.begin(); it != ways.end(); ++it) {
            if (it->block == block) {
                // Move to MRU position.
                Line line = *it;
                ways.erase(it);
                if (isWrite)
                    invalidateOthers(proc, tid, block);
                line.dirty |= isWrite;
                ways.push_front(line);
                dir_[block].insert(proc);
                return {true, MissKind::Compulsory};
            }
        }

        // Miss: classify.
        MissKind kind;
        auto hist = cache.history.find(block);
        if (hist == cache.history.end()) {
            kind = MissKind::Compulsory;
        } else if (hist->second.invalidated) {
            kind = MissKind::Invalidation;
        } else if (hist->second.departedBy == tid) {
            kind = MissKind::IntraConflict;
        } else {
            kind = MissKind::InterConflict;
        }

        // Evict LRU if the set is full.
        if (ways.size() == cfg_.associativity) {
            Line victim = ways.back();
            ways.pop_back();
            cache.history[victim.block] = {false, tid};
            dir_[victim.block].erase(proc);
        }

        // Install; a write invalidates all other copies.
        if (isWrite)
            invalidateOthers(proc, tid, block);
        ways.push_front({block, isWrite});
        dir_[block].insert(proc);
        return {false, kind};
    }

  private:
    struct Line
    {
        uint64_t block;
        bool dirty;
    };

    struct Departure
    {
        bool invalidated;
        uint32_t departedBy;  //!< evictor thread or invalidating writer
    };

    struct RefCache
    {
        std::map<uint64_t, std::list<Line>> sets;
        std::map<uint64_t, Departure> history;
    };

    void
    invalidateOthers(uint32_t proc, uint32_t tid, uint64_t block)
    {
        auto it = dir_.find(block);
        if (it == dir_.end())
            return;
        for (uint32_t other : std::set<uint32_t>(it->second)) {
            if (other == proc)
                continue;
            auto &cache = caches_[other];
            uint64_t set = block % cfg_.numSets();
            auto &ways = cache.sets[set];
            for (auto w = ways.begin(); w != ways.end(); ++w) {
                if (w->block == block) {
                    ways.erase(w);
                    break;
                }
            }
            cache.history[block] = {true, tid};
            it->second.erase(other);
        }
    }

    SimConfig cfg_;
    std::vector<RefCache> caches_;
    std::map<uint64_t, std::set<uint32_t>> dir_;
};

/** Random trace set mixing shared and private references. */
TraceSet
randomTraces(util::Rng &rng, uint32_t threads, uint32_t events,
             uint64_t sharedWords)
{
    TraceSet ts("diff");
    for (uint32_t tid = 0; tid < threads; ++tid) {
        ThreadTrace t(tid);
        for (uint32_t e = 0; e < events; ++e) {
            switch (rng.nextBelow(5)) {
              case 0:
                t.appendWork(1 + rng.nextBelow(40));
                break;
              case 1:
                t.appendStore(AddressSpace::sharedWord(
                    rng.nextBelow(sharedWords)));
                break;
              case 2:
              case 3:
                t.appendLoad(AddressSpace::sharedWord(
                    rng.nextBelow(sharedWords)));
                break;
              default:
                t.appendLoad(AddressSpace::privateWord(
                    tid, rng.nextBelow(128)));
                break;
            }
        }
        ts.addThread(std::move(t));
    }
    return ts;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>>
{};

TEST_P(DifferentialTest, MachineAgreesWithReferenceModel)
{
    auto [seed, assoc] = GetParam();
    util::Rng rng(88000 + seed);
    uint32_t threads = 3 + static_cast<uint32_t>(rng.nextBelow(4));
    uint32_t procs = 2 + static_cast<uint32_t>(rng.nextBelow(3));
    TraceSet ts = randomTraces(rng, threads, 250, 300);

    std::vector<uint32_t> procOf(threads);
    for (uint32_t i = 0; i < threads; ++i)
        procOf[i] = static_cast<uint32_t>(rng.nextBelow(procs));
    PlacementMap map(procs, procOf);

    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = 2;
    cfg.cacheBytes = 1024;  // small: lots of evictions
    cfg.associativity = assoc;

    ReferenceModel ref(cfg);
    uint64_t compared = 0, misses = 0;
    Machine machine(cfg, ts, map);
    machine.setAccessObserver([&](uint32_t proc, uint32_t tid,
                                  uint64_t block, bool isStore,
                                  bool hit, MissKind kind) {
        auto expected = ref.access(proc, tid, block, isStore);
        ASSERT_EQ(hit, expected.hit)
            << "access " << compared << " proc " << proc << " block "
            << block;
        if (!hit) {
            ASSERT_EQ(static_cast<int>(kind),
                      static_cast<int>(expected.kind))
                << "access " << compared << " proc " << proc
                << " block " << block;
            ++misses;
        }
        ++compared;
    });
    SimStats stats = machine.run();

    EXPECT_EQ(compared, stats.totalMemRefs());
    EXPECT_EQ(misses, stats.totalMisses());
    EXPECT_GT(misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, DifferentialTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               "_assoc" + std::to_string(std::get<1>(info.param));
    });

TEST(DifferentialTest, ObserverUnsetCostsNothing)
{
    util::Rng rng(123);
    TraceSet ts = randomTraces(rng, 3, 50, 64);
    PlacementMap map(2, {0, 1, 0});
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 2;
    cfg.cacheBytes = 1024;
    SimStats s = simulate(cfg, ts, map);
    EXPECT_EQ(s.totalMemRefs(), ts.totalMemRefs());
}

} // namespace
} // namespace tsp::sim
