/**
 * @file
 * Batched lockstep engine tests: every lane of a BatchMachine —
 * materialized or streaming, any lane count, any chain quantum — must
 * produce statistics bit-identical to a scalar simulate() over the
 * same inputs; a failing lane degrades alone while its siblings stay
 * exact; and a streaming batch's resident window stays O(chunk x
 * lanes) even when the trace is far larger (the memory bound the
 * pipeline exists for).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/placement_map.h"
#include "fault/fault.h"
#include "sim/batch_machine.h"
#include "sim/machine.h"
#include "trace/chunk_source.h"
#include "trace/trace_set.h"
#include "util/error.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;

/** Disarms on entry and exit so a failing test cannot leak a fault. */
class DisarmedScope
{
  public:
    DisarmedScope() { fault::disarm(); }
    ~DisarmedScope() { fault::disarm(); }
};

workload::AppProfile
batchProfile(uint32_t threads = 8)
{
    workload::AppProfile p;
    p.name = "batch-test";
    p.threads = threads;
    p.meanLength = 9'000;
    p.lengthDevPct = 25.0;
    p.phases = 3;
    p.barriers = true;
    p.globalFrac = 0.4;
    p.neighborFrac = 0.2;
    p.mailboxFrac = 0.2;
    p.sliceFrac = 0.2;
    p.globalWriteMode = workload::GlobalWriteMode::Migratory;
    p.seed = 17;
    return p;
}

SimConfig
laneConfig(uint32_t procs, uint32_t threads)
{
    SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = (threads + procs - 1) / procs;
    cfg.cacheBytes = 4096;
    cfg.blockBytes = 32;
    return cfg;
}

PlacementMap
roundRobin(uint32_t threads, uint32_t procs)
{
    std::vector<uint32_t> assign(threads);
    for (uint32_t t = 0; t < threads; ++t)
        assign[t] = t % procs;
    return PlacementMap(procs, assign);
}

PlacementMap
blocked(uint32_t threads, uint32_t procs)
{
    std::vector<uint32_t> assign(threads);
    uint32_t per = (threads + procs - 1) / procs;
    for (uint32_t t = 0; t < threads; ++t)
        assign[t] = t / per;
    return PlacementMap(procs, assign);
}

/**
 * Serialize every statistic a lane reports. SimStats has no
 * operator==; byte-identical fingerprints are the parity oracle.
 */
std::string
statsFingerprint(const SimStats &s)
{
    std::ostringstream os;
    os.precision(17);  // coherence-pair rates are doubles
    os << "t=" << s.executionTime() << '\n';
    for (size_t i = 0; i < s.procs.size(); ++i) {
        const ProcessorStats &p = s.procs[i];
        os << 'p' << i << ' ' << p.busyCycles << ' ' << p.switchCycles
           << ' ' << p.idleCycles << ' ' << p.finishTime << ' '
           << p.barrierCycles << ' ' << p.instructions << ' '
           << p.memRefs << ' ' << p.hits;
        for (uint64_t m : p.misses)
            os << ' ' << m;
        os << ' ' << p.upgrades << ' ' << p.invalidationsSent << ' '
           << p.invalidationsReceived << ' ' << p.writebacks << '\n';
    }
    os << "pairs";
    for (size_t i = 0; i < s.coherencePairs.size(); ++i) {
        for (size_t j = 0; j < s.coherencePairs.size(); ++j)
            os << ' ' << s.coherencePairs.get(i, j);
    }
    os << "\nshc=" << s.sharingCompulsoryMisses
       << " net=" << s.networkTransactions << '/'
       << s.networkQueueingCycles << '/' << s.networkMaxQueueing
       << '\n';
    return os.str();
}

/** The lane specs for an N-lane batch: varied machines + placements. */
std::vector<BatchLane>
makeLanes(size_t n, uint32_t threads)
{
    const uint32_t procChoices[] = {2, 4, 8, 3, 16, 6};
    std::vector<BatchLane> lanes;
    for (size_t i = 0; i < n; ++i) {
        uint32_t procs = procChoices[i % 6];
        SimConfig cfg = laneConfig(procs, threads);
        if (i % 4 == 2)
            cfg.stallOnUpgrade = true;  // vary the architecture too
        PlacementMap map = (i % 2 == 0) ? roundRobin(threads, procs)
                                        : blocked(threads, procs);
        lanes.push_back({cfg, std::move(map)});
    }
    return lanes;
}

/** Scalar oracle fingerprints for @p lanes over @p traces. */
std::vector<std::string>
scalarFingerprints(const std::vector<BatchLane> &lanes,
                   const trace::TraceSet &traces)
{
    std::vector<std::string> prints;
    for (const BatchLane &lane : lanes) {
        prints.push_back(statsFingerprint(
            simulate(lane.cfg, traces, lane.placement)));
    }
    return prints;
}

// ----------------------------------------------------------- parity

TEST(BatchMachine, MaterializedLanesMatchScalarAtEveryWidth)
{
    uint32_t threads = 8;
    trace::TraceSet traces =
        workload::generateTraces(batchProfile(threads), 1);

    for (size_t n : {1u, 2u, 3u, 8u, 16u}) {
        SCOPED_TRACE("lanes=" + std::to_string(n));
        std::vector<BatchLane> lanes = makeLanes(n, threads);
        std::vector<std::string> expected =
            scalarFingerprints(lanes, traces);

        BatchMachine machine(std::move(lanes), traces);
        std::vector<LaneResult> results = machine.run();
        ASSERT_EQ(results.size(), n);
        for (size_t i = 0; i < n; ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            ASSERT_TRUE(results[i].ok) << results[i].error;
            EXPECT_EQ(statsFingerprint(results[i].stats), expected[i]);
        }
    }
}

TEST(BatchMachine, StreamingLanesMatchScalar)
{
    workload::AppProfile p = batchProfile();
    trace::TraceSet traces = workload::generateTraces(p, 1);

    for (size_t n : {1u, 3u, 8u}) {
        SCOPED_TRACE("lanes=" + std::to_string(n));
        std::vector<BatchLane> lanes = makeLanes(n, p.threads);
        std::vector<std::string> expected =
            scalarFingerprints(lanes, traces);

        workload::AppStreamFactory factory(p, 1);
        trace::SharedTraceStream stream(
            factory, static_cast<uint32_t>(n), /*chunkEvents=*/512);
        BatchMachine machine(std::move(lanes), stream);
        std::vector<LaneResult> results = machine.run();
        ASSERT_EQ(results.size(), n);
        for (size_t i = 0; i < n; ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            ASSERT_TRUE(results[i].ok) << results[i].error;
            EXPECT_EQ(statsFingerprint(results[i].stats), expected[i]);
        }
        EXPECT_GT(stream.refillCount(), 0u);
    }
}

TEST(BatchMachine, ChainQuantumDoesNotChangeResults)
{
    uint32_t threads = 8;
    trace::TraceSet traces =
        workload::generateTraces(batchProfile(threads), 1);
    std::vector<BatchLane> lanes = makeLanes(4, threads);
    std::vector<std::string> expected =
        scalarFingerprints(lanes, traces);

    for (uint64_t quantum : {1ull, 37ull, 100'000'000ull}) {
        SCOPED_TRACE("quantum=" + std::to_string(quantum));
        BatchMachine machine(makeLanes(4, threads), traces);
        std::vector<LaneResult> results = machine.run(quantum);
        for (size_t i = 0; i < results.size(); ++i) {
            ASSERT_TRUE(results[i].ok) << results[i].error;
            EXPECT_EQ(statsFingerprint(results[i].stats), expected[i]);
        }
    }
}

// --------------------------------------------------- lane isolation

TEST(BatchMachine, FailedLaneDegradesAloneMaterialized)
{
    DisarmedScope scope;
    uint32_t threads = 8;
    trace::TraceSet traces =
        workload::generateTraces(batchProfile(threads), 1);
    std::vector<BatchLane> lanes = makeLanes(2, threads);
    std::string expected =
        statsFingerprint(simulate(lanes[1].cfg, traces,
                                  lanes[1].placement));

    // Lane 0 hits the batch.lane site first (lanes construct in
    // order); lane 1 must be untouched, bit for bit.
    fault::arm("batch.lane:1:error");
    BatchMachine machine(std::move(lanes), traces);
    std::vector<LaneResult> results = machine.run();
    fault::disarm();

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("injected fault"),
              std::string::npos);
    ASSERT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(statsFingerprint(results[1].stats), expected);
}

TEST(BatchMachine, ChunkRefillFaultDegradesOneStreamingLane)
{
    DisarmedScope scope;
    workload::AppProfile p = batchProfile();
    trace::TraceSet traces = workload::generateTraces(p, 1);
    std::vector<BatchLane> lanes = makeLanes(2, p.threads);
    std::string expected =
        statsFingerprint(simulate(lanes[1].cfg, traces,
                                  lanes[1].placement));

    // The first window refill happens while lane 0's machine primes
    // its cursors; the stream itself stays healthy (the fault fires
    // before any window state changes), so lane 1 still consumes the
    // complete trace.
    fault::arm("trace.chunk_refill:1:error");
    workload::AppStreamFactory factory(p, 1);
    trace::SharedTraceStream stream(factory, 2, /*chunkEvents=*/512);
    BatchMachine machine(std::move(lanes), stream);
    std::vector<LaneResult> results = machine.run();
    fault::disarm();

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("injected fault"),
              std::string::npos);
    ASSERT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(statsFingerprint(results[1].stats), expected);
}

// ----------------------------------------------------- memory bound

/** High-water window mark of one streamed batch run over @p p. */
uint64_t
streamedHighWater(const workload::AppProfile &p, size_t chunkEvents)
{
    std::vector<BatchLane> lanes = makeLanes(2, p.threads);
    // Producer batches well under the chunk budget, so resident
    // chunks stay near chunkEvents each.
    workload::AppStreamFactory factory(p, 1, /*stepsPerBatch=*/128);
    trace::SharedTraceStream stream(factory, 2, chunkEvents);
    BatchMachine machine(std::move(lanes), stream);
    std::vector<LaneResult> results = machine.run();
    for (const LaneResult &r : results) {
        if (!r.ok)
            ADD_FAILURE() << r.error;
    }
    EXPECT_GT(stream.refillCount(), 10u * p.threads);
    return stream.windowEventsHighWater();
}

TEST(BatchMachine, StreamingWindowStaysBoundedOnLongTraces)
{
    // A trace far larger than the chunk budget (>= 10x per thread)
    // must stream through a window bounded by O(chunk x lanes) — the
    // acceptance bound for the chunked pipeline's memory claim.
    workload::AppProfile p = batchProfile(4);
    p.meanLength = 120'000;
    constexpr size_t kChunk = 512;

    trace::TraceSet traces = workload::generateTraces(p, 1);
    for (uint32_t tid = 0; tid < p.threads; ++tid) {
        ASSERT_GE(traces.thread(tid).events().size(), 10 * kChunk)
            << "trace too small to exercise the streaming regime";
    }

    // Lockstep keeps the fast/slow spread to about a chain quantum of
    // references; 12 chunks per thread is a loose constant ceiling,
    // still far smaller than the materialized trace.
    uint64_t highWater = streamedHighWater(p, kChunk);
    EXPECT_LE(highWater, 12 * p.threads * kChunk);

    // The sharper half of the O(chunk x lanes) claim: the window does
    // not grow with trace length. Doubling the trace must leave the
    // high-water mark at the same scale (slack for the different
    // trace, not for growth — 2x would fail).
    workload::AppProfile doubled = p;
    doubled.meanLength = 240'000;
    uint64_t highWaterDoubled = streamedHighWater(doubled, kChunk);
    EXPECT_LE(highWaterDoubled,
              highWater + (highWater + 3) / 4)
        << "streaming window grew with trace length";
}

// ----------------------------------------------------------- misuse

TEST(BatchMachine, GuardsAgainstMisuse)
{
    uint32_t threads = 4;
    workload::AppProfile p = batchProfile(threads);
    trace::TraceSet traces = workload::generateTraces(p, 1);

    EXPECT_THROW(BatchMachine({}, traces), util::FatalError);

    // Stream built for a different lane count.
    workload::AppStreamFactory factory(p, 1);
    trace::SharedTraceStream stream(factory, 3);
    EXPECT_THROW(BatchMachine(makeLanes(2, threads), stream),
                 util::FatalError);

    // run() is single-shot.
    BatchMachine machine(makeLanes(1, threads), traces);
    machine.run();
    EXPECT_THROW(machine.run(), util::FatalError);

    BatchMachine zeroQuantum(makeLanes(1, threads), traces);
    EXPECT_THROW(zeroQuantum.run(0), util::FatalError);
}

} // namespace
} // namespace tsp::sim
