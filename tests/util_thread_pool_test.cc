/**
 * @file
 * Tests of util::ThreadPool: submit/parallelFor at 0/1/N workers,
 * exception propagation, deterministic error selection, and the
 * TSP_JOBS/default-jobs resolution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace tsp::util {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);
    auto future =
        pool.submit([] { return std::this_thread::get_id(); });
    // Inline mode: the task already ran, on this very thread.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get(), std::this_thread::get_id());
}

TEST(ThreadPool, WorkersRunTasksOffTheCallingThread)
{
    ThreadPool pool(1);
    auto future =
        pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(future.get(), std::this_thread::get_id());
}

TEST(ThreadPool, SubmitManyTasksAllComplete)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 100; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

class ThreadPoolParallelFor
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ThreadPoolParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(GetParam());
    constexpr size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(ThreadPoolParallelFor, ZeroIterationsIsANoOp)
{
    ThreadPool pool(GetParam());
    bool touched = false;
    pool.parallelFor(0, [&](size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST_P(ThreadPoolParallelFor, RethrowsLowestIndexException)
{
    ThreadPool pool(GetParam());
    // Two failing iterations: the lower index must win, at any pool
    // width, so error reporting is deterministic.
    try {
        pool.parallelFor(64, [&](size_t i) {
            if (i == 3)
                throw std::runtime_error("low");
            if (i == 57)
                throw std::runtime_error("high");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "low");
    }
}

TEST_P(ThreadPoolParallelFor, RunsEveryIterationDespiteFailures)
{
    ThreadPool pool(GetParam());
    constexpr size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(pool.parallelFor(n,
                                  [&](size_t i) {
                                      hits[i]++;
                                      if (i % 7 == 0)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolParallelFor,
                         ::testing::Values(0u, 1u, 4u));

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, SetDefaultJobsOverridesAndClears)
{
    unsigned before = ThreadPool::defaultJobs();
    ThreadPool::setDefaultJobs(3);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    ThreadPool::setDefaultJobs(0);  // clear the override
    EXPECT_EQ(ThreadPool::defaultJobs(), before);
}

TEST(ThreadPool, ParallelForUsesMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    // Enough iterations with a tiny stall that at least two threads
    // participate (the calling thread always does).
    pool.parallelFor(64, [&](size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GE(ids.size(), 2u);
}

} // namespace
} // namespace tsp::util
