/**
 * @file
 * Interconnect model tests: the paper's contention-free default, the
 * bounded-channel queueing behaviour, and end-to-end effects on the
 * machine.
 */

#include <gtest/gtest.h>

#include "core/placement_map.h"
#include "sim/interconnect.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/error.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

TEST(Interconnect, ContentionFreeIsFlat)
{
    Interconnect net(0, 50, 4);
    for (uint64_t t : {0ull, 1ull, 1ull, 2ull})
        EXPECT_EQ(net.transactionLatency(t), 50u);
    EXPECT_EQ(net.transactions(), 4u);
    EXPECT_EQ(net.queueingCycles(), 0u);
    EXPECT_EQ(net.maxQueueing(), 0u);
}

TEST(Interconnect, SingleChannelSerializes)
{
    Interconnect net(1, 50, 10);
    EXPECT_EQ(net.transactionLatency(100), 50u);  // channel free
    // Issued while the channel is busy until 110: waits 10 - 0 = ...
    EXPECT_EQ(net.transactionLatency(100), 10u + 50u);
    EXPECT_EQ(net.transactionLatency(100), 20u + 50u);
    EXPECT_EQ(net.queueingCycles(), 30u);
    EXPECT_EQ(net.maxQueueing(), 20u);
}

TEST(Interconnect, ChannelFreesOverTime)
{
    Interconnect net(1, 50, 10);
    net.transactionLatency(0);               // busy until 10
    EXPECT_EQ(net.transactionLatency(10), 50u);  // exactly free again
    EXPECT_EQ(net.transactionLatency(30), 50u);  // long idle
}

TEST(Interconnect, MultipleChannelsOverlap)
{
    Interconnect net(2, 50, 10);
    EXPECT_EQ(net.transactionLatency(0), 50u);
    EXPECT_EQ(net.transactionLatency(0), 50u);  // second channel
    EXPECT_EQ(net.transactionLatency(0), 60u);  // queues behind first
}

TEST(Interconnect, ImplausibleChannelCountIsFatal)
{
    EXPECT_THROW(Interconnect(5000, 50, 4), util::FatalError);
}

TEST(Interconnect, MachineReportsQueueingStats)
{
    // Two processors miss on distinct blocks at the same cycle; one
    // channel serializes them.
    TraceSet ts("contend");
    for (uint32_t tid = 0; tid < 2; ++tid) {
        ThreadTrace t(tid);
        t.appendLoad(AddressSpace::sharedWord(64 * tid));
        ts.addThread(std::move(t));
    }
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 1;
    cfg.cacheBytes = 4096;
    cfg.networkChannels = 1;
    cfg.channelOccupancy = 8;

    SimStats s = simulate(cfg, ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.networkTransactions, 2u);
    EXPECT_EQ(s.networkQueueingCycles, 8u);
    EXPECT_EQ(s.networkMaxQueueing, 8u);
    // One processor finishes 8 cycles later than the other.
    uint64_t f0 = s.procs[0].finishTime, f1 = s.procs[1].finishTime;
    EXPECT_EQ(std::max(f0, f1) - std::min(f0, f1), 8u);
}

TEST(Interconnect, ContentionNeverSpeedsExecution)
{
    TraceSet ts("more");
    for (uint32_t tid = 0; tid < 4; ++tid) {
        ThreadTrace t(tid);
        for (int i = 0; i < 20; ++i) {
            t.appendLoad(AddressSpace::sharedWord(64 * (tid * 20 + i)));
            t.appendWork(5);
        }
        ts.addThread(std::move(t));
    }
    PlacementMap map(4, {0, 1, 2, 3});
    SimConfig free;
    free.processors = 4;
    free.contexts = 1;
    free.cacheBytes = 64 * 1024;
    SimConfig tight = free;
    tight.networkChannels = 1;
    tight.channelOccupancy = 16;

    uint64_t freeTime = simulate(free, ts, map).executionTime();
    auto tightStats = simulate(tight, ts, map);
    EXPECT_GT(tightStats.executionTime(), freeTime);
    EXPECT_GT(tightStats.networkQueueingCycles, 0u);
}

TEST(Interconnect, QueuedLinksInterleaveByBlockAddress)
{
    SimConfig cfg;
    cfg.networkLinks = 2;
    cfg.linkOccupancy = 10;
    Interconnect net(cfg);

    EXPECT_EQ(net.queueDelay(0, 0), 0u);   // link 0, busy until 10
    EXPECT_EQ(net.queueDelay(0, 1), 0u);   // link 1, busy until 10
    EXPECT_EQ(net.queueDelay(0, 2), 10u);  // queues behind block 0
    EXPECT_EQ(net.queueDelay(0, 3), 10u);  // queues behind block 1
    EXPECT_EQ(net.queueDelay(25, 4), 0u);  // link 0 long free again
    EXPECT_EQ(net.transactions(), 5u);
    EXPECT_EQ(net.queueingCycles(), 20u);
    EXPECT_EQ(net.maxQueueing(), 10u);
}

TEST(Interconnect, HotBlockContendsWithItselfOnItsLink)
{
    // Three back-to-back transactions on the same block serialize on
    // one link even though the other link stays idle.
    SimConfig cfg;
    cfg.networkLinks = 2;
    cfg.linkOccupancy = 6;
    Interconnect net(cfg);
    EXPECT_EQ(net.queueDelay(0, 8), 0u);
    EXPECT_EQ(net.queueDelay(0, 8), 6u);
    EXPECT_EQ(net.queueDelay(0, 8), 12u);
}

TEST(Interconnect, ConfigCtorReproducesChannelsAndFreeModes)
{
    SimConfig free;
    Interconnect netFree(free);
    EXPECT_EQ(netFree.queueDelay(0, 0), 0u);
    EXPECT_EQ(netFree.queueDelay(0, 0), 0u);

    SimConfig chans;
    chans.networkChannels = 1;
    chans.channelOccupancy = 8;
    chans.memoryLatency = 50;
    Interconnect netChans(chans);
    EXPECT_EQ(netChans.transactionLatency(0), 50u);
    EXPECT_EQ(netChans.transactionLatency(0), 8u + 50u);
}

TEST(Interconnect, LinksAndChannelsAreMutuallyExclusive)
{
    SimConfig cfg;
    cfg.networkLinks = 2;
    cfg.networkChannels = 2;
    EXPECT_THROW(cfg.validate(), util::FatalError);
}

TEST(Interconnect, MachineSerializesMissesOnOneLink)
{
    // Two processors miss on distinct blocks at the same cycle; one
    // queued link serializes them, same shape as the channel test.
    TraceSet ts("linkcontend");
    for (uint32_t tid = 0; tid < 2; ++tid) {
        ThreadTrace t(tid);
        t.appendLoad(AddressSpace::sharedWord(64 * tid));
        ts.addThread(std::move(t));
    }
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 1;
    cfg.cacheBytes = 4096;
    cfg.networkLinks = 1;
    cfg.linkOccupancy = 8;

    SimStats s = simulate(cfg, ts, PlacementMap(2, {0, 1}));
    EXPECT_EQ(s.networkTransactions, 2u);
    EXPECT_EQ(s.networkQueueingCycles, 8u);
    EXPECT_EQ(s.networkMaxQueueing, 8u);
    uint64_t f0 = s.procs[0].finishTime, f1 = s.procs[1].finishTime;
    EXPECT_EQ(std::max(f0, f1) - std::min(f0, f1), 8u);
}

TEST(Interconnect, DefaultConfigHasNoContention)
{
    TraceSet ts("defaultnet");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::sharedWord(0));
    ts.addThread(std::move(t0));
    SimConfig cfg;
    cfg.processors = 1;
    cfg.contexts = 1;
    cfg.cacheBytes = 4096;
    SimStats s = simulate(cfg, ts, PlacementMap(1, {0}));
    EXPECT_EQ(s.networkTransactions, 1u);
    EXPECT_EQ(s.networkQueueingCycles, 0u);
}

} // namespace
} // namespace tsp::sim
