/**
 * @file
 * Pins the simulator's allocation-free steady state: once a Machine is
 * constructed (tables pre-reserved from the trace census), running the
 * simulation performs zero heap allocations — no directory or history
 * rehash, no per-transaction invalidation vector, no event-queue
 * growth. Style follows the obs/fault disabled-cost pins: a global
 * operator-new counter brackets the region under test.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "core/placement_map.h"
#include "core/random_placement.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/rng.h"

using namespace tsp;

// --------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps
// it, so a test can assert that a region of code allocates nothing.

namespace {
std::atomic<uint64_t> allocationCount{0};
}

// GCC pairs its builtin operator-new knowledge with the free() below
// and warns; the pairing is in fact consistent (new = malloc here).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

/**
 * A sharing-heavy workload: every thread mixes private and shared
 * blocks with stores, so the run exercises misses, evictions,
 * upgrades, invalidation fan-out, and cross-thread conflict misses —
 * each a path that used to allocate.
 */
TraceSet
contendedTraces(uint32_t threads, int refsPerThread, bool barriers)
{
    TraceSet ts("alloc-test");
    util::Rng rng(7);
    for (uint32_t tid = 0; tid < threads; ++tid) {
        ThreadTrace t(tid);
        for (int i = 0; i < refsPerThread; ++i) {
            t.appendWork(rng.uniformInt(1, 8));
            bool shared = rng.bernoulli(0.5);
            uint64_t addr = shared
                ? AddressSpace::sharedBase + rng.uniformInt(0, 63) * 32
                : AddressSpace::sharedBase + 0x10000 + tid * 0x1000 +
                      rng.uniformInt(0, 31) * 32;
            if (rng.bernoulli(0.3))
                t.appendStore(addr);
            else
                t.appendLoad(addr);
            if (barriers && i % 50 == 25)
                t.appendBarrier();
        }
        ts.addThread(std::move(t));
    }
    return ts;
}

/** Simulate and assert the run() region allocated nothing. */
void
expectAllocationFreeRun(const SimConfig &cfg, const TraceSet &ts,
                        const PlacementMap &map)
{
    Machine machine(cfg, ts, map);

    const uint64_t before =
        allocationCount.load(std::memory_order_relaxed);
    SimStats stats = machine.run();
    const uint64_t after =
        allocationCount.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "Machine::run() must not allocate: the directory, history "
           "and event state are pre-reserved at construction";
    EXPECT_GT(stats.totalMemRefs(), 0u);
    EXPECT_GT(stats.totalMisses(), 0u);
}

TEST(SimAllocation, SteadyStateRunAllocatesNothing)
{
    const uint64_t sanityBefore =
        allocationCount.load(std::memory_order_relaxed);
    TraceSet ts = contendedTraces(8, 400, /*barriers=*/false);
    ASSERT_GT(allocationCount.load(std::memory_order_relaxed),
              sanityBefore)
        << "the counting operator new is not installed";

    SimConfig cfg;
    cfg.processors = 4;
    cfg.contexts = 2;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    cfg.paranoidEvery = 0;  // the checker's scratch state is its own
    cfg.profileSharing = false;
    util::Rng rng(3);
    expectAllocationFreeRun(cfg, ts,
                            placement::randomPlacement(8, 4, rng));
}

TEST(SimAllocation, BarrierRunAllocatesNothing)
{
    // Barriers exercise the waiter list and release rescheduling;
    // the waiter list is reserved to the thread count up front.
    TraceSet ts = contendedTraces(4, 200, /*barriers=*/true);
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 2;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    cfg.paranoidEvery = 0;
    cfg.profileSharing = false;
    util::Rng rng(4);
    expectAllocationFreeRun(cfg, ts,
                            placement::randomPlacement(4, 2, rng));
}

TEST(SimAllocation, PendingThreadQueueRunAllocatesNothing)
{
    // More threads than hardware contexts: retired contexts reload
    // from the pending queue mid-run.
    TraceSet ts = contendedTraces(12, 150, /*barriers=*/false);
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 2;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    cfg.paranoidEvery = 0;
    cfg.profileSharing = false;
    util::Rng rng(5);
    expectAllocationFreeRun(cfg, ts,
                            placement::randomPlacement(12, 2, rng));
}

} // namespace
} // namespace tsp::sim
