/**
 * @file
 * Fuzz-style corruption tests of the service wire protocol
 * (svc::wire): roundtrips, byte-at-a-time delivery parity, truncated
 * frames, flipped CRCs, oversized declared lengths rejected before
 * buffering, garbage streams, and a mutation fuzz loop — a malformed
 * stream must always throw util::FatalError (or stay incomplete),
 * never crash, over-allocate, or decode garbage silently.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "experiment/configs.h"
#include "svc/daemon.h"
#include "svc/wire.h"
#include "util/error.h"

namespace tsp::svc::wire {
namespace {

using experiment::MachinePoint;
using experiment::RunJob;

/** splitmix64: deterministic mutation stream for the fuzz legs. */
uint64_t
nextRandom(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

StudyRequest
sampleRequest()
{
    StudyRequest request;
    request.priority = 2;
    request.deadline = std::chrono::milliseconds(1500);
    request.jobs.push_back({workload::AppId::Water,
                            placement::Algorithm::LoadBal,
                            MachinePoint{4, 2}, false});
    request.jobs.push_back({workload::AppId::BarnesHut,
                            placement::Algorithm::ShareRefs,
                            MachinePoint{8, 4}, true,
                            experiment::MemSystem::SharedL2});
    return request;
}

std::string
sampleFrame()
{
    return encodeFrame(FrameType::Submit,
                       encodeSubmit(sampleRequest()));
}

/** Feed a whole buffer; returns every completed frame. */
std::vector<Frame>
pump(Deframer &deframer, const std::string &bytes, size_t chunk)
{
    std::vector<Frame> frames;
    for (size_t off = 0; off < bytes.size(); off += chunk) {
        deframer.feed(bytes.data() + off,
                      std::min(chunk, bytes.size() - off));
        while (std::optional<Frame> frame = deframer.next())
            frames.push_back(std::move(*frame));
    }
    return frames;
}

// ------------------------------------------------------- roundtrips

TEST(WireRoundtrip, SubmitSurvivesEncodeDecode)
{
    StudyRequest request = sampleRequest();
    StudyRequest back = decodeSubmit(encodeSubmit(request));
    ASSERT_EQ(back.jobs.size(), request.jobs.size());
    for (size_t i = 0; i < request.jobs.size(); ++i) {
        EXPECT_EQ(back.jobs[i].app, request.jobs[i].app);
        EXPECT_EQ(back.jobs[i].alg, request.jobs[i].alg);
        EXPECT_EQ(back.jobs[i].point.processors,
                  request.jobs[i].point.processors);
        EXPECT_EQ(back.jobs[i].point.contexts,
                  request.jobs[i].point.contexts);
        EXPECT_EQ(back.jobs[i].infiniteCache,
                  request.jobs[i].infiniteCache);
        EXPECT_EQ(back.jobs[i].memSystem,
                  request.jobs[i].memSystem);
    }
    EXPECT_EQ(back.priority, request.priority);
    EXPECT_EQ(back.deadline, request.deadline);
    EXPECT_FALSE(back.onProgress);
    EXPECT_FALSE(back.onComplete);
}

TEST(WireRoundtrip, ProgressAndRejectSurvive)
{
    StudyProgress progress;
    progress.stage = StudyProgress::Stage::Running;
    progress.cellsDone = 3;
    progress.totalCells = 7;
    progress.lastCellMillis = 12.25;
    StudyProgress p = decodeProgress(encodeProgress(progress));
    EXPECT_EQ(p.stage, progress.stage);
    EXPECT_EQ(p.cellsDone, progress.cellsDone);
    EXPECT_EQ(p.totalCells, progress.totalCells);
    EXPECT_EQ(p.lastCellMillis, progress.lastCellMillis);

    Reject reject = decodeReject(
        encodeReject(RejectCode::Draining, "shutting down"));
    EXPECT_EQ(reject.code, RejectCode::Draining);
    EXPECT_EQ(reject.reason, "shutting down");
}

TEST(WireRoundtrip, RequestDigestIsStableAndConfigSensitive)
{
    StudyRequest request = sampleRequest();
    EXPECT_EQ(requestDigest(request), requestDigest(request));
    StudyRequest other = sampleRequest();
    other.jobs[0].point.processors = 16;
    EXPECT_NE(requestDigest(request), requestDigest(other));
}

// ------------------------------------------------ delivery framings

TEST(WireDeframer, ByteAtATimeMatchesOneShot)
{
    std::string bytes = sampleFrame() + sampleFrame();
    Deframer whole;
    std::vector<Frame> oneShot = pump(whole, bytes, bytes.size());
    Deframer dribble;
    std::vector<Frame> slow = pump(dribble, bytes, 1);
    ASSERT_EQ(oneShot.size(), 2u);
    ASSERT_EQ(slow.size(), 2u);
    for (size_t i = 0; i < oneShot.size(); ++i) {
        EXPECT_EQ(oneShot[i].type, slow[i].type);
        EXPECT_EQ(oneShot[i].payload, slow[i].payload);
    }
    EXPECT_EQ(whole.buffered(), 0u);
    EXPECT_EQ(dribble.buffered(), 0u);
}

TEST(WireDeframer, TruncatedFrameStaysIncompleteNotCorrupt)
{
    std::string frame = sampleFrame();
    for (size_t cut = 0; cut < frame.size(); ++cut) {
        Deframer deframer;
        deframer.feed(frame.data(), cut);
        EXPECT_FALSE(deframer.next().has_value()) << "cut=" << cut;
        if (cut > 0)
            EXPECT_TRUE(deframer.midFrame());
    }
}

// ------------------------------------------------- malformed frames

TEST(WireDeframer, BadMagicPoisonsTheStreamEagerly)
{
    std::string frame = sampleFrame();
    frame[0] = 'X';
    Deframer deframer;
    EXPECT_THROW(deframer.feed(frame.data(), frame.size()),
                 util::FatalError);
}

TEST(WireDeframer, WrongVersionAndTypeAreRejected)
{
    {
        std::string frame = sampleFrame();
        frame[4] = static_cast<char>(kVersion + 1);
        Deframer deframer;
        EXPECT_THROW(deframer.feed(frame.data(), frame.size()),
                     util::FatalError);
    }
    {
        std::string frame = sampleFrame();
        frame[5] = 0;  // no frame type 0
        Deframer deframer;
        EXPECT_THROW(deframer.feed(frame.data(), frame.size()),
                     util::FatalError);
    }
}

TEST(WireDeframer, OversizedDeclaredLengthRejectedBeforeBuffering)
{
    // A header declaring a huge payload must poison the stream the
    // moment the header is visible — a malicious length can never
    // drive an allocation or a long buffering wait.
    std::string frame = sampleFrame();
    uint32_t evil = kMaxPayloadBytes + 1;
    std::memcpy(&frame[8], &evil, sizeof(evil));
    Deframer deframer;
    EXPECT_THROW(deframer.feed(frame.data(), kHeaderBytes),
                 util::FatalError);
    EXPECT_LE(deframer.buffered(), kHeaderBytes);
}

TEST(WireDeframer, FlippedCrcFailsAtTheFrameBoundary)
{
    std::string frame = sampleFrame();
    frame[frame.size() - 1] ^= 0x01;  // payload bit rot
    Deframer deframer;
    deframer.feed(frame.data(), frame.size());
    EXPECT_THROW(deframer.next(), util::FatalError);
}

TEST(WireDeframer, GarbageAfterAGoodFrameStillDeliversTheGoodOne)
{
    std::string good = sampleFrame();
    std::string bytes = good + "interleaved garbage bytes!!";
    Deframer deframer;
    bool poisoned = false;
    std::vector<Frame> frames;
    try {
        frames = pump(deframer, bytes, 7);
    } catch (const util::FatalError &) {
        poisoned = true;
    }
    // The good frame may or may not have been extracted before the
    // garbage poisoned the stream, but the stream must end poisoned.
    EXPECT_TRUE(poisoned);
    for (const Frame &frame : frames)
        EXPECT_EQ(frame.payload, good.substr(kHeaderBytes));
}

TEST(WirePayloads, TruncatedSubmitPayloadAlwaysThrows)
{
    std::string payload = encodeSubmit(sampleRequest());
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        EXPECT_THROW(decodeSubmit(payload.substr(0, cut)),
                     util::FatalError)
            << "cut=" << cut;
    }
}

TEST(WirePayloads, SubmitEnumAndCountRangesAreEnforced)
{
    std::string payload = encodeSubmit(sampleRequest());
    {
        std::string evil = payload;
        uint32_t count = kMaxJobs + 1;
        std::memcpy(&evil[0], &count, sizeof(count));
        EXPECT_THROW(decodeSubmit(evil), util::FatalError);
    }
    {
        std::string evil = payload;
        uint32_t badApp = 255;  // AppId range check
        std::memcpy(&evil[4], &badApp, sizeof(badApp));
        EXPECT_THROW(decodeSubmit(evil), util::FatalError);
    }
    {
        std::string evil = payload;
        evil += "trailing";  // trailing bytes are an error
        EXPECT_THROW(decodeSubmit(evil), util::FatalError);
    }
}

TEST(WirePayloads, ProgressRangeChecksHold)
{
    StudyProgress progress;
    progress.stage = StudyProgress::Stage::Running;
    progress.cellsDone = 2;
    progress.totalCells = 4;
    std::string payload = encodeProgress(progress);
    {
        std::string evil = payload;
        evil[0] = 9;  // unknown stage
        EXPECT_THROW(decodeProgress(evil), util::FatalError);
    }
    {
        std::string evil = payload;
        uint32_t done = 5;  // cellsDone > totalCells
        std::memcpy(&evil[1], &done, sizeof(done));
        EXPECT_THROW(decodeProgress(evil), util::FatalError);
    }
}

// --------------------------------------------------- mutation fuzz

TEST(WireFuzz, MutatedFramesNeverCrashOrOverAllocate)
{
    const std::string pristine = sampleFrame();
    uint64_t rng = 0x77697265u;  // "wire"
    size_t delivered = 0, poisoned = 0, incomplete = 0;
    for (int iter = 0; iter < 500; ++iter) {
        std::string frame = pristine;
        unsigned flips = 1 + nextRandom(rng) % 5;
        for (unsigned f = 0; f < flips; ++f) {
            size_t pos = nextRandom(rng) % frame.size();
            frame[pos] ^= static_cast<char>(1 + nextRandom(rng) % 255);
        }
        // Occasionally truncate, duplicate, or prepend garbage too.
        switch (nextRandom(rng) % 4) {
        case 0:
            frame = frame.substr(0, nextRandom(rng) % frame.size());
            break;
        case 1:
            frame += pristine;
            break;
        case 2:
            frame.insert(0, 1 + nextRandom(rng) % 8, 'Z');
            break;
        default:
            break;
        }

        Deframer deframer;
        try {
            size_t chunk = 1 + nextRandom(rng) % 64;
            std::vector<Frame> frames = pump(deframer, frame, chunk);
            for (const Frame &got : frames) {
                // A frame that survives the CRC still has to survive
                // the payload codec's range checks — contained too.
                try {
                    if (got.type == FrameType::Submit)
                        decodeSubmit(got.payload);
                } catch (const util::FatalError &) {
                }
                ++delivered;
            }
            if (frames.empty())
                ++incomplete;
        } catch (const util::FatalError &) {
            ++poisoned;
        }
        // The deframer must never buffer more than one frame's worth
        // plus a header — the declared-length cap bounds it.
        EXPECT_LE(deframer.buffered(),
                  kHeaderBytes + kMaxPayloadBytes);
    }
    // The mix must actually exercise both rejection and survival.
    EXPECT_GT(poisoned, 100u);
    EXPECT_GT(delivered + incomplete, 50u);
}

} // namespace
} // namespace tsp::svc::wire
