/**
 * @file
 * Unit tests for the stats module: Summary (the paper's Dev% and
 * absolute-deviation definitions), PairMatrix and Histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.h"
#include "stats/pair_matrix.h"
#include "stats/summary.h"
#include "util/error.h"

namespace tsp::stats {
namespace {

// --------------------------------------------------------------- summary

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.devPercent(), 0.0);
}

TEST(Summary, SingleObservation)
{
    Summary s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, KnownPopulationStats)
{
    Summary s;
    s.addAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // classic textbook example
    EXPECT_NEAR(s.devPercent(), 40.0, 1e-9);
    EXPECT_NEAR(s.absoluteDeviation(), 2.0, 1e-12);
}

TEST(Summary, SumMatchesMeanTimesCount)
{
    Summary s;
    s.addAll({1.5, 2.5, 3.0});
    EXPECT_NEAR(s.sum(), 7.0, 1e-12);
}

TEST(Summary, DevPercentZeroMeanIsZero)
{
    Summary s;
    s.addAll({-1.0, 1.0});
    EXPECT_DOUBLE_EQ(s.devPercent(), 0.0);
}

TEST(Summary, MergeEqualsConcatenation)
{
    Summary a, b, whole;
    std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 100};
    for (size_t i = 0; i < xs.size(); ++i) {
        (i < 3 ? a : b).add(xs[i]);
        whole.add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmptySides)
{
    Summary a, empty;
    a.addAll({1.0, 2.0});
    Summary copy = a;
    a.merge(empty);
    EXPECT_NEAR(a.mean(), copy.mean(), 1e-12);
    empty.merge(a);
    EXPECT_NEAR(empty.mean(), copy.mean(), 1e-12);
}

TEST(Summary, PaperAbsoluteDeviationExample)
{
    // Section 6: "Vandermonde has a deviation of 386%, a mean of 0.01%
    // and the absolute deviation is only 0.04%": absolute deviation is
    // dev% * mean.
    Summary s;
    // Construct data with mean 0.01 and stddev ~0.0386.
    s.addAll({0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.08});
    EXPECT_NEAR(s.mean(), 0.01, 1e-12);
    EXPECT_NEAR(s.absoluteDeviation(),
                s.devPercent() / 100.0 * s.mean(), 1e-12);
}

// ----------------------------------------------------------- pair matrix

TEST(PairMatrix, GetSetAddSymmetric)
{
    PairMatrix m(4);
    m.set(0, 1, 5.0);
    m.add(1, 0, 2.0);
    EXPECT_DOUBLE_EQ(m.get(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(m.get(1, 0), 7.0);
    EXPECT_DOUBLE_EQ(m.get(2, 3), 0.0);
}

TEST(PairMatrix, DiagonalIsZeroAndUnsettable)
{
    PairMatrix m(3);
    EXPECT_DOUBLE_EQ(m.get(1, 1), 0.0);
    EXPECT_THROW(m.set(1, 1, 1.0), util::PanicError);
}

TEST(PairMatrix, OutOfRangePanics)
{
    PairMatrix m(3);
    EXPECT_THROW(m.get(0, 3), util::PanicError);
}

TEST(PairMatrix, TotalAndRowSum)
{
    PairMatrix m(3);
    m.set(0, 1, 1.0);
    m.set(0, 2, 2.0);
    m.set(1, 2, 4.0);
    EXPECT_DOUBLE_EQ(m.total(), 7.0);
    EXPECT_DOUBLE_EQ(m.rowSum(0), 3.0);
    EXPECT_DOUBLE_EQ(m.rowSum(1), 5.0);
    EXPECT_DOUBLE_EQ(m.rowSum(2), 6.0);
}

TEST(PairMatrix, CrossAndWithinSums)
{
    PairMatrix m(4);
    m.set(0, 1, 1.0);
    m.set(0, 2, 2.0);
    m.set(0, 3, 3.0);
    m.set(1, 2, 4.0);
    m.set(1, 3, 5.0);
    m.set(2, 3, 6.0);
    EXPECT_DOUBLE_EQ(m.crossSum({0, 1}, {2, 3}), 2.0 + 3.0 + 4.0 + 5.0);
    EXPECT_DOUBLE_EQ(m.withinSum({0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(m.withinSum({0, 2, 3}), 2.0 + 3.0 + 6.0);
    EXPECT_DOUBLE_EQ(m.withinSum({2}), 0.0);
}

TEST(PairMatrix, WithinPlusCrossEqualsTotal)
{
    PairMatrix m(5);
    double v = 1.0;
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = i + 1; j < 5; ++j)
            m.set(i, j, v++);
    std::vector<uint32_t> a{0, 2}, b{1, 3, 4};
    EXPECT_DOUBLE_EQ(m.withinSum(a) + m.withinSum(b) + m.crossSum(a, b),
                     m.total());
}

TEST(PairMatrix, PairSummaryCountsAllPairs)
{
    PairMatrix m(4);
    m.set(0, 1, 6.0);
    auto s = m.pairSummary();
    EXPECT_EQ(s.count(), 6u);  // C(4,2)
    EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(PairMatrix, MergeAddsElementwise)
{
    PairMatrix a(3), b(3);
    a.set(0, 1, 1.0);
    b.set(0, 1, 2.0);
    b.set(1, 2, 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(a.get(1, 2), 3.0);
}

TEST(PairMatrix, MergeSizeMismatchIsFatal)
{
    PairMatrix a(3), b(4);
    EXPECT_THROW(a.merge(b), util::FatalError);
}

TEST(PairMatrix, SizeZeroAndOneAreEmptyButValid)
{
    PairMatrix z(0), one(1);
    EXPECT_DOUBLE_EQ(z.total(), 0.0);
    EXPECT_DOUBLE_EQ(one.total(), 0.0);
    EXPECT_EQ(one.pairSummary().count(), 0u);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, CountsFallInRightBuckets)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClamps)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(Histogram, QuantileInterpolates)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, EmptyQuantileIsLo)
{
    Histogram h(5.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, BadConstructionIsFatal)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), util::FatalError);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), util::FatalError);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    std::string out = h.render(10);
    EXPECT_NE(out.find("1"), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
}

} // namespace
} // namespace tsp::stats
