/**
 * @file
 * The networked experiment service end to end (svc::Server +
 * svc::Client over svc::wire): socket answers bit-identical to direct
 * Daemon::submit, ordered progress streaming, capacity shedding at
 * accept, slow-loris and idle reaping, malformed-stream containment,
 * drain semantics, loadgen digest parity between socket and
 * in-process modes (including under injected net.read faults), and
 * graceful degradation to local runs when the transport stays dead.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "svc/client.h"
#include "svc/daemon.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace tsp::svc {
namespace {

using experiment::MachinePoint;
using experiment::RunJob;
using experiment::RunResult;
using namespace std::chrono_literals;

constexpr uint32_t kScale = 64;

/** RAII: leave every test with the fault framework disarmed. */
class DisarmedScope
{
  public:
    DisarmedScope() { fault::disarm(); }
    ~DisarmedScope() { fault::disarm(); }
};

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

RunJob
jobAt(placement::Algorithm alg, uint32_t processors = 4,
      bool infinite = false)
{
    return {workload::AppId::Water, alg,
            MachinePoint{processors, 4}, infinite};
}

StudyRequest
study(std::vector<RunJob> jobs)
{
    StudyRequest request;
    request.jobs = std::move(jobs);
    return request;
}

Daemon::Config
daemonConfig()
{
    Daemon::Config config;
    config.scale = kScale;
    config.workers = 1;
    config.queueCapacity = 8;
    return config;
}

Client::Config
clientFor(const Server &server)
{
    Client::Config config;
    config.port = server.port();
    config.retryBudget = 3;
    config.retryBackoff = 1ms;
    config.identity = "svc.test";
    return config;
}

/** Canonical bytes of a result, for bit-identity assertions. */
std::string
bytesOf(const RunResult &result)
{
    experiment::codec::ByteWriter w;
    experiment::codec::writeRunResult(w, result);
    return w.bytes();
}

/** A raw client socket, for shaping hostile byte streams. */
struct RawConn
{
    int fd = -1;

    explicit RawConn(uint16_t port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~RawConn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    sendAll(const std::string &bytes) const
    {
        size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return;
            off += static_cast<size_t>(n);
        }
    }

    /** Read until EOF (or ~2s of silence); returns what arrived. */
    std::string
    drain() const
    {
        std::string got;
        timeval tv{2, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        char buf[4096];
        for (;;) {
            ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            got.append(buf, static_cast<size_t>(n));
        }
        return got;
    }
};

// ------------------------------------------------------- roundtrips

TEST(SvcServer, SocketAnswerIsBitIdenticalToDirectSubmit)
{
    Daemon::Config config = daemonConfig();
    Daemon daemon(config);
    Server server(daemon, {});
    Client client(clientFor(server));

    std::vector<RunJob> jobs = {jobAt(placement::Algorithm::LoadBal),
                                jobAt(placement::Algorithm::ShareRefs)};
    Client::Result got = client.submit(study(jobs));
    ASSERT_TRUE(got.answered) << got.rejection;
    EXPECT_EQ(got.response.status, StudyStatus::Completed);
    ASSERT_EQ(got.response.outcomes.size(), jobs.size());

    // The same study through the in-process door must agree bit for
    // bit (no store is attached, so both simulate fresh).
    SubmitResult direct = daemon.submit(study(jobs));
    ASSERT_TRUE(direct.admitted());
    StudyResponse expected = direct.accepted->get();
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(got.response.outcomes[i].ok());
        ASSERT_TRUE(expected.outcomes[i].ok());
        EXPECT_EQ(bytesOf(got.response.outcomes[i].value()),
                  bytesOf(expected.outcomes[i].value()));
    }
    server.stop();
    daemon.drain();
}

TEST(SvcServer, ProgressStreamsInOrderQueuedRunningDone)
{
    Daemon::Config config = daemonConfig();
    Daemon daemon(config);
    Server server(daemon, {});
    Client client(clientFor(server));

    std::vector<RunJob> jobs = {jobAt(placement::Algorithm::LoadBal),
                                jobAt(placement::Algorithm::ShareRefs),
                                jobAt(placement::Algorithm::LoadBal, 8)};
    std::vector<StudyProgress> seen;
    Client::Result got = client.submit(
        study(jobs), [&seen](const StudyProgress &progress) {
            seen.push_back(progress);
        });
    ASSERT_TRUE(got.answered) << got.rejection;

    // Queued, then Running after each of the three cells, then Done —
    // in that exact order, even for cache-hit-fast studies.
    ASSERT_EQ(seen.size(), jobs.size() + 2);
    EXPECT_EQ(seen.front().stage, StudyProgress::Stage::Queued);
    EXPECT_EQ(seen.front().cellsDone, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(seen[1 + i].stage, StudyProgress::Stage::Running);
        EXPECT_EQ(seen[1 + i].cellsDone, i + 1);
        EXPECT_EQ(seen[1 + i].totalCells, jobs.size());
    }
    EXPECT_EQ(seen.back().stage, StudyProgress::Stage::Done);
    EXPECT_EQ(seen.back().cellsDone, jobs.size());
    server.stop();
    daemon.drain();
}

// --------------------------------------------- admission + reaping

TEST(SvcServer, CapacityShedsConnectionsBeyondTheLimit)
{
    Daemon::Config config = daemonConfig();
    Daemon daemon(config);
    Server::Config serverConfig;
    serverConfig.maxConnections = 1;
    Server server(daemon, serverConfig);

    RawConn occupant(server.port());
    ASSERT_GE(occupant.fd, 0);
    // Let the poll thread accept the occupant before piling on.
    std::this_thread::sleep_for(50ms);

    Client::Config clientConfig = clientFor(server);
    clientConfig.retryBudget = 1;
    Client client(clientConfig);
    Client::Result got =
        client.submit(study({jobAt(placement::Algorithm::LoadBal)}));
    // Reject(Capacity) is transport-shaped (retry later) — with the
    // slot still occupied the client comes back dead, not answered.
    EXPECT_FALSE(got.answered);
    EXPECT_FALSE(got.rejected);
    EXPECT_GE(got.attempts, 2u);
    EXPECT_GE(server.counters().rejected, 2u);
    server.stop();
    daemon.drain();
}

TEST(SvcServer, IdleAndSlowLorisConnectionsAreReaped)
{
    Daemon::Config config = daemonConfig();
    Daemon daemon(config);
    Server::Config serverConfig;
    serverConfig.readTimeout = 100ms;
    serverConfig.idleTimeout = 200ms;
    Server server(daemon, serverConfig);

    // Idle: connected, never sends a byte.
    RawConn idle(server.port());
    ASSERT_GE(idle.fd, 0);
    // Slow loris: dribbles half a header, then stalls mid-frame.
    RawConn loris(server.port());
    ASSERT_GE(loris.fd, 0);
    std::string frame = wire::encodeFrame(
        wire::FrameType::Submit,
        wire::encodeSubmit(
            study({jobAt(placement::Algorithm::LoadBal)})));
    loris.sendAll(frame.substr(0, wire::kHeaderBytes / 2));

    // Both must be reaped (EOF on our side) within the budgets.
    EXPECT_EQ(loris.drain(), "");
    EXPECT_EQ(idle.drain(), "");
    EXPECT_GE(server.counters().reaped, 2u);

    // The listener survived the reaping: a real request still lands.
    Client client(clientFor(server));
    Client::Result got =
        client.submit(study({jobAt(placement::Algorithm::LoadBal)}));
    EXPECT_TRUE(got.answered) << got.rejection;
    server.stop();
    daemon.drain();
}

TEST(SvcServer, MalformedStreamDrawsRejectAndOnlyKillsThatConn)
{
    Daemon::Config config = daemonConfig();
    Daemon daemon(config);
    Server server(daemon, {});

    RawConn hostile(server.port());
    ASSERT_GE(hostile.fd, 0);
    hostile.sendAll("this is definitely not a TSPW frame");
    std::string answer = hostile.drain();  // until server closes

    // Best-effort Reject(Malformed) frame, then EOF.
    wire::Deframer deframer;
    deframer.feed(answer.data(), answer.size());
    std::optional<wire::Frame> frame = deframer.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, wire::FrameType::Reject);
    EXPECT_EQ(wire::decodeReject(frame->payload).code,
              wire::RejectCode::Malformed);
    EXPECT_GE(server.counters().malformed, 1u);

    // Containment: the server keeps answering everyone else.
    Client client(clientFor(server));
    Client::Result got =
        client.submit(study({jobAt(placement::Algorithm::LoadBal)}));
    EXPECT_TRUE(got.answered) << got.rejection;
    server.stop();
    daemon.drain();
}

TEST(SvcServer, DrainingRejectsNewSubmitsDefinitively)
{
    Daemon::Config config = daemonConfig();
    Daemon daemon(config);
    Server server(daemon, {});
    server.beginDrain();

    Client client(clientFor(server));
    Client::Result got =
        client.submit(study({jobAt(placement::Algorithm::LoadBal)}));
    // Draining is a definitive no-retry answer: one attempt only.
    EXPECT_FALSE(got.answered);
    EXPECT_TRUE(got.rejected);
    EXPECT_EQ(got.attempts, 1u);
    server.stop();
    daemon.drain();
}

// ------------------------------------------------- loadgen parity

LoadGenOptions
parityOptions(Daemon &daemon)
{
    LoadGenOptions options;
    options.clients = 2;
    options.requestsPerClient = 4;
    options.jobsPerRequest = 2;
    options.seed = 7;
    options.palette =
        defaultPalette(daemon.lab(), workload::AppId::Water);
    return options;
}

TEST(SvcServer, LoadGenDigestMatchesBetweenSocketAndInProcess)
{
    Daemon::Config config = daemonConfig();
    config.workers = 2;

    std::string inProcessDigest;
    {
        Daemon daemon(config);
        LoadGenReport report =
            runLoadGen(daemon, parityOptions(daemon));
        inProcessDigest = report.resultDigest;
        EXPECT_EQ(report.abandoned, 0u);
        daemon.drain();
    }

    Daemon daemon(config);
    Server server(daemon, {});
    LoadGenOptions options = parityOptions(daemon);
    options.serverPort = server.port();
    LoadGenReport report = runLoadGen(daemon, options);
    EXPECT_EQ(report.abandoned, 0u);
    EXPECT_EQ(report.degradedLocal, 0u);
    EXPECT_EQ(report.resultDigest, inProcessDigest);
    server.stop();
    daemon.drain();
}

TEST(SvcServer, DigestSurvivesInjectedReadFaultsViaReconnect)
{
    DisarmedScope scope;
    Daemon::Config config = daemonConfig();
    config.workers = 2;

    std::string inProcessDigest;
    {
        Daemon daemon(config);
        LoadGenReport report =
            runLoadGen(daemon, parityOptions(daemon));
        inProcessDigest = report.resultDigest;
        daemon.drain();
    }

    Daemon daemon(config);
    Server server(daemon, {});
    LoadGenOptions options = parityOptions(daemon);
    options.serverPort = server.port();
    options.netRetryBudget = 8;

    // The first read of request bytes fails server-side (hit #1 is
    // always a live submit arriving — later ordinals can land on
    // harmless EOF events): one connection dies mid-conversation and
    // the client's reconnect-and-reissue must heal it without
    // changing a bit of the answers.
    fault::arm("net.read:1:error");
    LoadGenReport report = runLoadGen(daemon, options);
    fault::disarm();

    EXPECT_EQ(report.abandoned, 0u);
    EXPECT_GE(report.reconnects, 1u);
    EXPECT_EQ(report.resultDigest, inProcessDigest);
    server.stop();
    daemon.drain();
}

TEST(SvcServer, DeadTransportDegradesToLocalRunsWithSameDigest)
{
    Daemon::Config config = daemonConfig();
    config.workers = 2;

    std::string inProcessDigest;
    {
        Daemon daemon(config);
        LoadGenReport report =
            runLoadGen(daemon, parityOptions(daemon));
        inProcessDigest = report.resultDigest;
        daemon.drain();
    }

    // Nothing listens here: grab an ephemeral port and release it.
    uint16_t deadPort;
    {
        Daemon probe(config);
        Server server(probe, {});
        deadPort = server.port();
        server.stop();
    }

    Daemon daemon(config);
    LoadGenOptions options = parityOptions(daemon);
    options.serverPort = deadPort;
    options.netRetryBudget = 0;
    options.netTimeout = 500ms;
    LoadGenReport report = runLoadGen(daemon, options);

    // Every request degraded to a local run — none abandoned, and the
    // deterministic Lab keeps the digest bit-identical.
    EXPECT_EQ(report.abandoned, 0u);
    EXPECT_EQ(report.degradedLocal,
              static_cast<uint64_t>(options.clients) *
                  options.requestsPerClient);
    EXPECT_EQ(report.resultDigest, inProcessDigest);
    daemon.drain();
}

// ------------------------------------------------- store-backed dedup

TEST(SvcServer, ReissuedRequestLandsAsStoreCacheHits)
{
    std::string path = tempPath("svc_server_dedup.tsps");
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());

    Daemon::Config config = daemonConfig();
    config.storePath = path;
    Daemon daemon(config);
    Server server(daemon, {});
    Client client(clientFor(server));

    std::vector<RunJob> jobs = {jobAt(placement::Algorithm::LoadBal),
                                jobAt(placement::Algorithm::ShareRefs)};
    Client::Result first = client.submit(study(jobs));
    ASSERT_TRUE(first.answered);
    EXPECT_EQ(first.response.executed, jobs.size());

    // The byte-identical reissue — what a post-crash retry sends —
    // is answered entirely from the store, bit for bit.
    Client::Result again = client.submit(study(jobs));
    ASSERT_TRUE(again.answered);
    EXPECT_EQ(again.response.cacheHits, jobs.size());
    EXPECT_EQ(again.response.executed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(bytesOf(again.response.outcomes[i].value()),
                  bytesOf(first.response.outcomes[i].value()));
    }
    server.stop();
    daemon.drain();
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

} // namespace
} // namespace tsp::svc
