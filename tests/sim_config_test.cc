/**
 * @file
 * Architectural-parameter tests: SimConfig validation/description and
 * machine behaviour under non-default parameters (upgrade stalls,
 * multi-cycle hits, zero-cost switches, latency sweeps).
 */

#include <gtest/gtest.h>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"
#include "util/error.h"

namespace tsp::sim {
namespace {

using placement::PlacementMap;
using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

// ---------------------------------------------------------------- config

TEST(SimConfig, DefaultsMatchThePaper)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.hitLatency, 1u);
    EXPECT_EQ(cfg.memoryLatency, 50u);
    EXPECT_EQ(cfg.contextSwitchCycles, 6u);
    EXPECT_EQ(cfg.associativity, 1u);
    EXPECT_FALSE(cfg.stallOnUpgrade);
    EXPECT_FALSE(cfg.profileSharing);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, ValidationCatchesBadParameters)
{
    SimConfig cfg;
    cfg.processors = 0;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    // The directory/monitor sharer masks are sized for exactly
    // kMaxProcessors; the boundary must validate and one past it
    // must not.
    cfg.processors = kMaxProcessors;
    EXPECT_NO_THROW(cfg.validate());
    cfg.processors = kMaxProcessors + 1;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    cfg = SimConfig{};
    cfg.contexts = 0;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    cfg = SimConfig{};
    cfg.cacheBytes = 3000;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    cfg = SimConfig{};
    cfg.blockBytes = 2;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    cfg = SimConfig{};
    cfg.associativity = 3;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    cfg = SimConfig{};
    cfg.hitLatency = 0;
    EXPECT_THROW(cfg.validate(), util::FatalError);
    cfg = SimConfig{};
    cfg.cacheBytes = 32;
    cfg.blockBytes = 32;
    cfg.associativity = 2;  // cache smaller than one set
    EXPECT_THROW(cfg.validate(), util::FatalError);
}

TEST(SimConfig, NumSetsAccountsForAssociativity)
{
    SimConfig cfg;
    cfg.cacheBytes = 1024;
    cfg.blockBytes = 32;
    EXPECT_EQ(cfg.numSets(), 32u);
    cfg.associativity = 4;
    EXPECT_EQ(cfg.numSets(), 8u);
}

TEST(SimConfig, DescribeMentionsTheGeometry)
{
    SimConfig cfg;
    std::string d = cfg.describe();
    EXPECT_NE(d.find("direct-mapped"), std::string::npos);
    cfg.associativity = 4;
    EXPECT_NE(cfg.describe().find("4-way"), std::string::npos);
}

TEST(SimConfig, InfiniteCacheVariant)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.withInfiniteCache().cacheBytes,
              8ull * 1024 * 1024);
    EXPECT_EQ(cfg.withInfiniteCache().processors, cfg.processors);
}

// ------------------------------------------------------------- variants

SimConfig
base()
{
    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 1;
    cfg.cacheBytes = 4096;
    return cfg;
}

/** t0 reads X, t1 reads X, then t0 writes X (an upgrade). */
TraceSet
upgradeScenario()
{
    TraceSet ts("upgrade");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::sharedWord(0));
    t0.appendWork(100);
    t0.appendStore(AddressSpace::sharedWord(0));
    t0.appendWork(100);
    ThreadTrace t1(1);
    t1.appendWork(10);
    t1.appendLoad(AddressSpace::sharedWord(0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));
    return ts;
}

TEST(MachineVariants, StallOnUpgradeCostsLatency)
{
    TraceSet ts = upgradeScenario();
    PlacementMap map(2, {0, 1});

    SimConfig fast = base();
    uint64_t freeTime = simulate(fast, ts, map).procs[0].finishTime;

    SimConfig stall = base();
    stall.stallOnUpgrade = true;
    uint64_t stallTime = simulate(stall, ts, map).procs[0].finishTime;

    // The upgrade now stalls the context for the memory latency.
    EXPECT_EQ(stallTime, freeTime + stall.memoryLatency);
}

TEST(MachineVariants, MultiCycleHitsLengthenBusyTime)
{
    TraceSet ts("hits");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::sharedWord(0));  // miss
    for (int i = 0; i < 10; ++i)
        t0.appendLoad(AddressSpace::sharedWord(0));  // hits
    ts.addThread(std::move(t0));
    PlacementMap map(1, {0});

    SimConfig oneCycle = base();
    oneCycle.processors = 1;
    SimConfig threeCycle = oneCycle;
    threeCycle.hitLatency = 3;

    auto s1 = simulate(oneCycle, ts, map);
    auto s3 = simulate(threeCycle, ts, map);
    // 11 references, each charged hitLatency at retire.
    EXPECT_EQ(s3.procs[0].busyCycles - s1.procs[0].busyCycles,
              11u * 2u);
}

TEST(MachineVariants, ZeroSwitchCostStillSwitches)
{
    TraceSet ts("zswitch");
    for (uint32_t tid = 0; tid < 2; ++tid) {
        ThreadTrace t(tid);
        t.appendLoad(AddressSpace::sharedWord(64 * (tid + 1)));
        t.appendWork(20);
        ts.addThread(std::move(t));
    }
    PlacementMap map(1, {0, 0});
    SimConfig cfg = base();
    cfg.processors = 1;
    cfg.contexts = 2;
    cfg.contextSwitchCycles = 0;
    auto s = simulate(cfg, ts, map);
    EXPECT_EQ(s.procs[0].switchCycles, 0u);
    // Both misses overlap: second issues right after the first.
    EXPECT_LT(s.executionTime(), 2u * (1 + 50 + 20));
}

TEST(MachineVariants, LatencyScalesStallTime)
{
    TraceSet ts("lat");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::sharedWord(0));
    ts.addThread(std::move(t0));
    PlacementMap map(1, {0});
    for (uint32_t latency : {10u, 100u, 400u}) {
        SimConfig cfg = base();
        cfg.processors = 1;
        cfg.memoryLatency = latency;
        auto s = simulate(cfg, ts, map);
        EXPECT_EQ(s.procs[0].finishTime, 1u + latency);
    }
}

TEST(MachineVariants, UpgradeWithoutSharersNeverStalls)
{
    // Private read-then-write data: MESI Exclusive makes the write
    // silent even with stallOnUpgrade enabled.
    TraceSet ts("priv");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::privateWord(0, 0));
    t0.appendStore(AddressSpace::privateWord(0, 0));
    ts.addThread(std::move(t0));
    SimConfig cfg = base();
    cfg.processors = 1;
    cfg.stallOnUpgrade = true;
    auto s = simulate(cfg, ts, PlacementMap(1, {0}));
    EXPECT_EQ(s.totalUpgrades(), 0u);
    EXPECT_EQ(s.procs[0].finishTime, 1u + 50u + 1u);
}

} // namespace
} // namespace tsp::sim
