/**
 * @file
 * Tests for the write-run sharing monitor (Section 4.2's migratory /
 * read-shared taxonomy) and its integration with the Machine.
 */

#include <gtest/gtest.h>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "sim/sharing_monitor.h"
#include "trace/address_space.h"
#include "trace/trace_set.h"

namespace tsp::sim {
namespace {

using trace::AddressSpace;
using trace::ThreadTrace;
using trace::TraceSet;

TEST(SharingMonitor, SingleThreadBlockIsPrivate)
{
    SharingMonitor m;
    for (int i = 0; i < 10; ++i)
        m.onAccess(1, 0, i % 2 == 0);
    auto p = m.finalize();
    EXPECT_EQ(p.privateBlocks, 1u);
    EXPECT_EQ(p.sharedBlocks, 0u);
}

TEST(SharingMonitor, ReadOnlySharedBlock)
{
    SharingMonitor m;
    for (uint32_t tid = 0; tid < 4; ++tid)
        for (int i = 0; i < 5; ++i)
            m.onAccess(7, tid, false);
    auto p = m.finalize();
    EXPECT_EQ(p.sharedBlocks, 1u);
    EXPECT_EQ(p.readOnlyShared, 1u);
    EXPECT_EQ(p.migratoryShared, 0u);
    EXPECT_DOUBLE_EQ(p.readOnlyFraction(), 1.0);
    // Four read runs of length 5.
    EXPECT_DOUBLE_EQ(p.readRunLength.mean(), 5.0);
}

TEST(SharingMonitor, LongWriteRunsAreMigratory)
{
    SharingMonitor m;
    // Threads take turns making read-modify-write runs of length 8.
    for (int round = 0; round < 6; ++round) {
        uint32_t tid = round % 3;
        for (int i = 0; i < 8; ++i)
            m.onAccess(42, tid, i % 2 == 1);
    }
    auto p = m.finalize();
    EXPECT_EQ(p.sharedBlocks, 1u);
    EXPECT_EQ(p.migratoryShared, 1u);
    EXPECT_DOUBLE_EQ(p.migratoryFraction(), 1.0);
    EXPECT_DOUBLE_EQ(p.writeRunLength.mean(), 8.0);
}

TEST(SharingMonitor, WordPingPongIsOtherShared)
{
    SharingMonitor m;
    // Alternating single writes by two threads: write runs of length
    // 1, below the migratory threshold.
    for (int i = 0; i < 20; ++i)
        m.onAccess(9, i % 2, true);
    auto p = m.finalize();
    EXPECT_EQ(p.sharedBlocks, 1u);
    EXPECT_EQ(p.migratoryShared, 0u);
    EXPECT_EQ(p.otherShared, 1u);
    EXPECT_DOUBLE_EQ(p.writeRunLength.mean(), 1.0);
}

TEST(SharingMonitor, MostlyReadSharedWithRareWritesIsOther)
{
    SharingMonitor m;
    // 90% interleaved reads by two threads, occasional writes: write
    // runs exist but cover a small fraction of accesses.
    for (int i = 0; i < 100; ++i)
        m.onAccess(5, i % 2, false);
    m.onAccess(5, 0, true);
    m.onAccess(5, 1, false);
    auto p = m.finalize();
    EXPECT_EQ(p.sharedBlocks, 1u);
    EXPECT_EQ(p.migratoryShared, 0u);
    EXPECT_EQ(p.otherShared, 1u);
}

TEST(SharingMonitor, ThresholdsAreConfigurable)
{
    SharingMonitor::Options opts;
    opts.minWriteRunLength = 100.0;  // nothing qualifies
    SharingMonitor m(opts);
    for (int round = 0; round < 4; ++round)
        for (int i = 0; i < 8; ++i)
            m.onAccess(1, round % 2, true);
    auto p = m.finalize();
    EXPECT_EQ(p.migratoryShared, 0u);
    EXPECT_EQ(p.otherShared, 1u);
}

TEST(SharingMonitor, HighThreadIdsUseSecondMaskWord)
{
    SharingMonitor m;
    m.onAccess(3, 2, false);
    m.onAccess(3, 100, false);  // > 63: second bitmask word
    auto p = m.finalize();
    EXPECT_EQ(p.sharedBlocks, 1u);
}

TEST(SharingMonitor, MachineIntegration)
{
    TraceSet ts("profiled");
    ThreadTrace t0(0);
    ThreadTrace t1(1);
    // Shared block with migratory hand-off plus private data each.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 6; ++i)
            t0.appendStore(AddressSpace::sharedWord(0));
        t0.appendWork(400);
        t1.appendWork(200);
        for (int i = 0; i < 6; ++i)
            t1.appendStore(AddressSpace::sharedWord(0));
        t1.appendWork(200);
    }
    t0.appendLoad(AddressSpace::privateWord(0, 0));
    t1.appendLoad(AddressSpace::privateWord(1, 0));
    ts.addThread(std::move(t0));
    ts.addThread(std::move(t1));

    SimConfig cfg;
    cfg.processors = 2;
    cfg.contexts = 1;
    cfg.cacheBytes = 4096;
    cfg.profileSharing = true;
    SimStats s =
        simulate(cfg, ts, placement::PlacementMap(2, {0, 1}));
    ASSERT_TRUE(s.profiledSharing);
    EXPECT_EQ(s.sharingProfile.sharedBlocks, 1u);
    EXPECT_EQ(s.sharingProfile.migratoryShared, 1u);
    EXPECT_EQ(s.sharingProfile.privateBlocks, 2u);
}

TEST(SharingMonitor, MachineSkipsProfilingByDefault)
{
    TraceSet ts("plain");
    ThreadTrace t0(0);
    t0.appendLoad(AddressSpace::sharedWord(0));
    ts.addThread(std::move(t0));
    SimConfig cfg;
    cfg.processors = 1;
    cfg.contexts = 1;
    cfg.cacheBytes = 4096;
    SimStats s = simulate(cfg, ts, placement::PlacementMap(1, {0}));
    EXPECT_FALSE(s.profiledSharing);
    EXPECT_EQ(s.sharingProfile.sharedBlocks, 0u);
}

} // namespace
} // namespace tsp::sim
