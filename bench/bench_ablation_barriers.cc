/**
 * @file
 * Ablation — barrier synchronization. The paper's trace-driven
 * simulation free-runs the per-thread traces: no synchronization is
 * modeled, so the sequential sharing it measures partly relies on
 * threads drifting apart in time. This bench regenerates workloads
 * with explicit inter-phase barriers (the structure the real programs
 * had) and shows the conclusions are robust to the choice: coherence
 * traffic stays orders of magnitude below static sharing counts, and
 * LOAD-BAL still beats sharing-based placement.
 */

#include <cstdio>

#include "analysis/static_analysis.h"
#include "core/algorithms.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generator.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    using placement::Algorithm;
    const uint32_t scale = workload::defaultScale();

    std::printf("Ablation: free-running traces vs. barrier-phased "
                "traces (scale 1/%u)\n\n",
                scale);

    util::TextTable table;
    table.setHeader({"application", "sync", "exec LOAD-BAL",
                     "exec SHARE-REFS", "SHARE-REFS/LOAD-BAL",
                     "dyn traffic % refs", "barrier wait %"});
    for (workload::AppId app :
         {workload::AppId::Water, workload::AppId::MP3D,
          workload::AppId::Grav}) {
        for (bool barriers : {false, true}) {
            workload::AppProfile p = workload::profile(app);
            p.barriers = barriers;
            auto traces = workload::generateTraces(p, scale);
            auto an = analysis::StaticAnalysis::analyze(traces);

            // 4 processors, everything resident.
            uint32_t procs = 4;
            uint32_t ctxs = static_cast<uint32_t>(
                (p.threads + procs - 1) / procs);
            sim::SimConfig cfg;
            cfg.processors = procs;
            cfg.contexts = ctxs;
            cfg.cacheBytes = workload::scaledCacheBytes(app, scale);

            util::Rng rng(9);
            auto loadBal = placement::place(Algorithm::LoadBal, an,
                                            procs, rng);
            auto shareRefs = placement::place(Algorithm::ShareRefs,
                                              an, procs, rng);
            auto lbStats = sim::simulate(cfg, traces, loadBal);
            auto srStats = sim::simulate(cfg, traces, shareRefs);

            uint64_t barrierWait = 0, busy = 0;
            for (const auto &ps : lbStats.procs) {
                barrierWait += ps.barrierCycles;
                busy += ps.busyCycles;
            }
            table.addRow({
                workload::appName(app),
                barriers ? "barriers" : "free-run",
                util::fmtThousands(static_cast<int64_t>(
                    lbStats.executionTime())),
                util::fmtThousands(static_cast<int64_t>(
                    srStats.executionTime())),
                util::fmtFixed(
                    static_cast<double>(srStats.executionTime()) /
                        static_cast<double>(lbStats.executionTime()),
                    3),
                util::fmtPercent(
                    static_cast<double>(
                        lbStats.dynamicSharingTraffic()) /
                        static_cast<double>(lbStats.totalMemRefs()),
                    2),
                util::fmtPercent(busy ? static_cast<double>(
                                            barrierWait) /
                                            static_cast<double>(busy)
                                      : 0.0,
                                 1),
            });
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nexpected: with explicit barriers, runtime coherence "
                "traffic remains a sub-percent share of references, "
                "and SHARE-REFS vs LOAD-BAL stays within a few percent "
                "of its free-running ratio (no systematic sharing win "
                "appears) — the paper's free-running methodology did "
                "not bias its negative result. Barrier wait is summed "
                "per context, so it can exceed 100%% of busy time.\n");
    return 0;
}
