/**
 * @file
 * Figure 3 — execution time for FFT, all placement algorithms,
 * normalized to RANDOM, across the processors/contexts sweep.
 *
 * Paper's shape: FFT has the largest thread length deviation of any
 * application (187.6%); LOAD-BAL runs 13-56% faster than RANDOM.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace tsp;
    experiment::Lab lab(workload::defaultScale());
    workload::AppId app = workload::AppId::FFT;

    bench::banner("Figure 3: Execution time for FFT (normalized to "
                  "RANDOM)",
                  lab, app);
    bench::printExecTimeFigure("Figure 3", lab, app, "fig3_fft");
    std::printf("\npaper reports: LOAD-BAL 13%%-56%% faster than "
                "RANDOM; sharing-cum-load-balancing variants can lose "
                "to LOAD-BAL when the sharing criterion compromises "
                "the balance (e.g. sixteen processors).\n");
    return 0;
}
