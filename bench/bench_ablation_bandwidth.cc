/**
 * @file
 * Ablation — interconnect bandwidth. The paper "does not explicitly
 * model network contention" and Agarwal's analysis makes
 * multithreading's value contingent on sufficient bandwidth. This
 * bench bounds the multipath network's channels and asks whether the
 * placement conclusion survives: if sharing-based placement were ever
 * going to pay off, it would be when interconnect transactions are
 * expensive — yet its traffic reduction is too small to matter even
 * at one channel.
 */

#include <cstdio>

#include "experiment/lab.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    using placement::Algorithm;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);
    workload::AppId app = workload::AppId::MP3D;

    std::printf("Ablation: interconnect bandwidth (%s, 4 processors, "
                "scale 1/%u, channel occupancy 8 cycles)\n\n",
                workload::appName(app).c_str(), scale);

    const auto &an = lab.analysis(app);
    experiment::MachinePoint point{
        4, static_cast<uint32_t>((an.threadCount() + 3) / 4)};

    util::TextTable table;
    table.setHeader({"channels", "LOAD-BAL exec", "SHARE-REFS exec",
                     "SHARE-REFS/LOAD-BAL", "queueing cycles",
                     "max queue"});
    for (uint32_t channels : {0u, 8u, 4u, 2u, 1u}) {
        auto runWith = [&](Algorithm alg) {
            sim::SimConfig cfg = lab.configFor(app, point);
            cfg.networkChannels = channels;
            cfg.channelOccupancy = 8;
            auto placement =
                lab.placementFor(app, alg, point.processors);
            return sim::simulate(cfg, lab.traces(app), placement);
        };
        auto loadBal = runWith(Algorithm::LoadBal);
        auto shareRefs = runWith(Algorithm::ShareRefs);
        table.addRow({
            channels ? std::to_string(channels) : "unlimited",
            util::fmtThousands(static_cast<int64_t>(
                loadBal.executionTime())),
            util::fmtThousands(static_cast<int64_t>(
                shareRefs.executionTime())),
            util::fmtFixed(static_cast<double>(
                               shareRefs.executionTime()) /
                               static_cast<double>(
                                   loadBal.executionTime()),
                           3),
            util::fmtThousands(static_cast<int64_t>(
                loadBal.networkQueueingCycles)),
            std::to_string(loadBal.networkMaxQueueing),
        });
    }
    table.print();
    std::printf("\nexpected: tightening bandwidth slows everything, "
                "but SHARE-REFS never overtakes LOAD-BAL — coherence "
                "traffic is too small a share of transactions for "
                "placement to reclaim bandwidth (the paper's "
                "contention-free simplification was safe).\n");
    return 0;
}
