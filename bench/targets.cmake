# Benchmark harness targets. Included from the top-level CMakeLists
# (rather than added as a subdirectory) so that build/bench/ contains
# only the runnable benchmark binaries:
#
#   for b in build/bench/*; do $b; done
#
# regenerates every table and figure of the paper.

function(tsp_add_bench name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
    target_link_libraries(${name} PRIVATE
        tsp_experiment tsp_workload tsp_sim tsp_core tsp_analysis
        tsp_trace tsp_stats tsp_util)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# Paper tables and figures (one binary each).
tsp_add_bench(bench_table1_suite)
tsp_add_bench(bench_table2_characteristics)
tsp_add_bench(bench_table3_arch_params)
tsp_add_bench(bench_fig2_locusroute)
tsp_add_bench(bench_fig3_fft)
tsp_add_bench(bench_fig4_barneshut)
tsp_add_bench(bench_fig5_miss_components)
tsp_add_bench(bench_table4_static_vs_dynamic)
tsp_add_bench(bench_table5_infinite_cache)

# Companion studies and ablations.
tsp_add_bench(bench_write_runs)
tsp_add_bench(bench_ablation_associativity)
tsp_add_bench(bench_ablation_contexts)
tsp_add_bench(bench_ablation_switch_cost)
tsp_add_bench(bench_ablation_sharing_oracle)
tsp_add_bench(bench_ablation_barriers)
tsp_add_bench(bench_ablation_bandwidth)
tsp_add_bench(bench_ablation_false_sharing)
tsp_add_bench(bench_paper_summary)

# Micro-benchmarks (google-benchmark).
foreach(name bench_micro_simulator bench_micro_placement
        bench_batched_simulator)
    tsp_add_bench(${name})
    target_link_libraries(${name} PRIVATE
        benchmark::benchmark benchmark::benchmark_main)
endforeach()
