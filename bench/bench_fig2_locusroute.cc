/**
 * @file
 * Figure 2 — execution time for LocusRoute, all placement algorithms,
 * normalized to RANDOM, across the processors/contexts sweep.
 *
 * Paper's shape: LOAD-BAL runs 17-42% faster than RANDOM (thread
 * length deviation 14.6%); the sharing-based algorithms do not
 * reliably beat RANDOM and never beat LOAD-BAL.
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace tsp;
    experiment::Lab lab(workload::defaultScale());
    workload::AppId app = workload::AppId::LocusRoute;

    bench::banner("Figure 2: Execution time for LocusRoute "
                  "(normalized to RANDOM)",
                  lab, app);
    bench::printExecTimeFigure("Figure 2", lab, app, "fig2_locusroute");
    std::printf("\npaper reports: LOAD-BAL 17%%-42%% faster than "
                "RANDOM depending on configuration; sharing-based "
                "placement never better than LOAD-BAL.\n");
    return 0;
}
