/**
 * @file
 * Ablation — the sharing oracle. A stronger form of the paper's
 * negative result: even the *provably maximal* thread-balanced
 * sharing capture (exhaustive search, core/optimal.h) does not buy
 * execution time over LOAD-BAL, because the misses it can remove are
 * a negligible share of the reference stream.
 *
 * Runs on the 8-thread applications (the oracle is exponential).
 */

#include <cstdio>

#include "core/optimal.h"
#include "experiment/lab.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    using placement::Algorithm;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Ablation: exhaustively optimal sharing capture vs. "
                "LOAD-BAL (scale 1/%u)\n\n",
                scale);

    util::TextTable table;
    table.setHeader({"application", "procs", "greedy capture %",
                     "oracle capture %", "oracle exec / LOAD-BAL",
                     "greedy exec / LOAD-BAL"});
    for (workload::AppId app :
         {workload::AppId::Water, workload::AppId::MP3D,
          workload::AppId::BarnesHut, workload::AppId::Cholesky}) {
        const auto &an = lab.analysis(app);
        if (an.threadCount() > placement::maxOracleThreads)
            continue;
        double totalSharing = an.sharedRefs().total();

        for (uint32_t procs : {2u, 4u}) {
            auto oracle =
                placement::optimalSharingCapture(an.sharedRefs(),
                                                 procs);
            auto greedy = lab.placementFor(app, Algorithm::ShareRefs,
                                           procs);
            double greedyCapture = 0.0;
            for (const auto &cluster : greedy.clusters())
                greedyCapture += an.sharedRefs().withinSum(cluster);

            experiment::MachinePoint point{
                procs,
                static_cast<uint32_t>(
                    (an.threadCount() + procs - 1) / procs)};
            sim::SimConfig cfg = lab.configFor(app, point);
            uint64_t oracleExec =
                sim::simulate(cfg, lab.traces(app), oracle.map)
                    .executionTime();
            uint64_t greedyExec =
                sim::simulate(cfg, lab.traces(app), greedy)
                    .executionTime();
            uint64_t loadBalExec =
                lab.run(app, Algorithm::LoadBal, point).executionTime;

            table.addRow({
                workload::appName(app),
                std::to_string(procs),
                util::fmtPercent(greedyCapture / totalSharing, 1),
                util::fmtPercent(oracle.value / totalSharing, 1),
                util::fmtFixed(static_cast<double>(oracleExec) /
                                   static_cast<double>(loadBalExec),
                               3),
                util::fmtFixed(static_cast<double>(greedyExec) /
                                   static_cast<double>(loadBalExec),
                               3),
            });
        }
    }
    table.print();
    std::printf("\nexpected: the greedy engine captures nearly all the "
                "sharing the oracle can, yet execution times stay "
                "within a few percent of LOAD-BAL either way — maximal "
                "sharing capture does not purchase performance.\n");
    return 0;
}
