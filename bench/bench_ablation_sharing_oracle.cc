/**
 * @file
 * Ablation — the sharing oracle. A stronger form of the paper's
 * negative result: even the *provably maximal* thread-balanced
 * sharing capture (exhaustive search, core/optimal.h) does not buy
 * execution time over LOAD-BAL, because the misses it can remove are
 * a negligible share of the reference stream.
 *
 * Runs on the 8-thread applications (the oracle is exponential); the
 * (application x processors) cells are independent, so they fan out
 * over the worker pool and the rows print in deterministic order.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/optimal.h"
#include "experiment/lab.h"
#include "experiment/parallel.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/suite.h"

namespace {

using namespace tsp;
using placement::Algorithm;

struct OracleCell
{
    workload::AppId app{};
    uint32_t procs = 0;
    double greedyCapture = 0.0;
    double oracleCapture = 0.0;
    double totalSharing = 0.0;
    uint64_t oracleExec = 0;
    uint64_t greedyExec = 0;
    uint64_t loadBalExec = 0;
};

} // namespace

int
main()
{
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);
    const unsigned jobs = util::ThreadPool::defaultJobs();

    std::printf("Ablation: exhaustively optimal sharing capture vs. "
                "LOAD-BAL (scale 1/%u, %u jobs)\n\n",
                scale, jobs);

    const std::vector<workload::AppId> apps = {
        workload::AppId::Water, workload::AppId::MP3D,
        workload::AppId::BarnesHut, workload::AppId::Cholesky};
    experiment::ParallelRunner runner(lab, jobs);
    runner.warmup(apps);

    std::vector<OracleCell> cells;
    for (workload::AppId app : apps) {
        if (lab.analysis(app).threadCount() >
            placement::maxOracleThreads)
            continue;
        for (uint32_t procs : {2u, 4u})
            cells.push_back({app, procs, 0, 0, 0, 0, 0, 0});
    }

    bench::WallTimer timer;
    util::ThreadPool pool(jobs > 1 ? jobs - 1 : 0);
    pool.parallelFor(cells.size(), [&](size_t i) {
        OracleCell &cell = cells[i];
        const auto &an = lab.analysis(cell.app);
        cell.totalSharing = an.sharedRefs().total();

        auto oracle = placement::optimalSharingCapture(
            an.sharedRefs(), cell.procs);
        auto greedy = lab.placementFor(cell.app, Algorithm::ShareRefs,
                                       cell.procs);
        for (const auto &cluster : greedy.clusters())
            cell.greedyCapture += an.sharedRefs().withinSum(cluster);
        cell.oracleCapture = oracle.value;

        experiment::MachinePoint point{
            cell.procs,
            static_cast<uint32_t>(
                (an.threadCount() + cell.procs - 1) / cell.procs)};
        sim::SimConfig cfg = lab.configFor(cell.app, point);
        cell.oracleExec =
            sim::simulate(cfg, lab.traces(cell.app), oracle.map)
                .executionTime();
        cell.greedyExec =
            sim::simulate(cfg, lab.traces(cell.app), greedy)
                .executionTime();
        cell.loadBalExec =
            lab.run(cell.app, Algorithm::LoadBal, point).executionTime;
    });
    bench::printWallClock("oracle ablation cells", timer, jobs);

    util::TextTable table;
    table.setHeader({"application", "procs", "greedy capture %",
                     "oracle capture %", "oracle exec / LOAD-BAL",
                     "greedy exec / LOAD-BAL"});
    for (const OracleCell &cell : cells) {
        table.addRow({
            workload::appName(cell.app),
            std::to_string(cell.procs),
            util::fmtPercent(cell.greedyCapture / cell.totalSharing,
                             1),
            util::fmtPercent(cell.oracleCapture / cell.totalSharing,
                             1),
            util::fmtFixed(static_cast<double>(cell.oracleExec) /
                               static_cast<double>(cell.loadBalExec),
                           3),
            util::fmtFixed(static_cast<double>(cell.greedyExec) /
                               static_cast<double>(cell.loadBalExec),
                           3),
        });
    }
    table.print();
    std::printf("\nexpected: the greedy engine captures nearly all the "
                "sharing the oracle can, yet execution times stay "
                "within a few percent of LOAD-BAL either way — maximal "
                "sharing capture does not purchase performance.\n");
    return 0;
}
