/**
 * @file
 * Table 2 — measured characteristics: pairwise and N-way sharing
 * (mean, Dev%), references per shared address, percentage of shared
 * references, and simulated thread length (mean, Dev%), computed by
 * the same static analysis the placement algorithms consume.
 */

#include <cstdio>

#include "experiment/lab.h"
#include "experiment/report.h"
#include "experiment/studies.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"
#include "workload/validate.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Table 2: Measured characteristics (workload scale "
                "1/%u; sharing counts in refs)\n\n",
                scale);

    util::TextTable table;
    table.setHeader({"application", "pairwise mean", "dev%",
                     "n-way mean", "dev%", "refs/shared addr", "dev%",
                     "shared refs %", "length mean", "dev%"});
    bool separated = false;
    std::vector<analysis::CharacteristicsRow> rows;
    for (workload::AppId app : workload::allApps()) {
        const auto &p = workload::profile(app);
        if (p.grain == workload::Grain::Medium && !separated) {
            table.addSeparator();
            separated = true;
        }
        auto row = experiment::table2Row(lab, app);
        rows.push_back(row);
        table.addRow({
            row.app,
            util::fmtCompact(row.pairwiseMean),
            util::fmtFixed(row.pairwiseDevPct, 1),
            util::fmtCompact(row.nwayMean),
            util::fmtFixed(row.nwayDevPct, 1),
            util::fmtFixed(row.refsPerSharedAddrMean, 0),
            util::fmtFixed(row.refsPerSharedAddrDevPct, 1),
            util::fmtFixed(row.sharedRefsPct, 1),
            util::fmtCompact(row.lengthMean),
            util::fmtFixed(row.lengthDevPct, 1),
        });
    }
    table.print();
    if (auto dir = experiment::outputDirectory()) {
        std::string path = *dir + "/table2_characteristics.csv";
        experiment::writeTable2Csv(path, rows);
        std::printf("(wrote %s)\n", path.c_str());
    }

    // Self-check the generators against their calibration targets.
    std::printf("\ngenerator calibration check (against Table 2 "
                "targets):\n");
    int ok = 0, bad = 0;
    for (workload::AppId app : workload::allApps()) {
        auto report = workload::validateTraces(
            workload::profile(app), lab.traces(app), scale);
        if (report.allOk()) {
            ++ok;
        } else {
            ++bad;
            std::printf("%s", report.render().c_str());
        }
    }
    std::printf("%d/%d applications within tolerance\n", ok, ok + bad);
    return bad == 0 ? 0 : 1;
}
