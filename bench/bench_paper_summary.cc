/**
 * @file
 * Reproduction checklist: runs every headline claim of the paper and
 * prints PASS/WARN with the measured values — the one-command answer
 * to "does this reproduction still hold?". Exits non-zero if any
 * claim fails.
 *
 * Claims (see DESIGN.md's expected-shapes list):
 *  1. Load balancing drives execution time: LOAD-BAL never loses to
 *     RANDOM and wins >= 10% somewhere on the high-deviation app (FFT).
 *  2. Sharing-based placement never meaningfully beats LOAD-BAL.
 *  3. Compulsory + invalidation misses are invariant across placement
 *     algorithms (spread a negligible share of references).
 *  4. Dynamic coherence traffic is orders of magnitude below static
 *     sharing counts for every application.
 *  5. With an 8 MB cache, conflict misses vanish and the best
 *     sharing-based algorithm still only matches LOAD-BAL.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "experiment/lab.h"
#include "experiment/parallel.h"
#include "experiment/studies.h"
#include "sim/results.h"
#include "util/format.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/suite.h"

namespace {

using namespace tsp;
using placement::Algorithm;
using workload::AppId;

struct Claim
{
    std::string name;
    std::string measured;
    bool pass = false;
};

} // namespace

int
main()
{
    const uint32_t scale = workload::defaultScale();
    const unsigned jobs = tsp::util::ThreadPool::defaultJobs();
    experiment::Lab lab(scale);
    std::vector<Claim> claims;

    // Materialize every app's traces/analysis/probe across the pool
    // up front; each claim below then fans its runs out as well.
    bench::WallTimer total;
    experiment::ParallelRunner(lab, jobs)
        .warmup(workload::allApps(), /*coherence=*/true);
    bench::printWallClock("warmup (14 apps)", total, jobs);

    // ---- 1 & 2: execution-time ordering on FFT -----------------------
    {
        auto points = experiment::execTimeStudy(
            lab, AppId::FFT,
            {Algorithm::LoadBal, Algorithm::ShareRefs,
             Algorithm::MaxWrites});
        double loadBalWorst = 0.0, loadBalBest = 10.0;
        double sharingBest = 10.0;
        for (const auto &pt : points) {
            if (pt.alg == Algorithm::LoadBal) {
                loadBalWorst =
                    std::max(loadBalWorst, pt.normalizedToRandom);
                loadBalBest =
                    std::min(loadBalBest, pt.normalizedToRandom);
            } else {
                sharingBest =
                    std::min(sharingBest, pt.normalizedToRandom);
            }
        }
        claims.push_back(
            {"LOAD-BAL never loses to RANDOM (FFT)",
             "worst " + util::fmtFixed(loadBalWorst, 3),
             loadBalWorst < 1.05});
        claims.push_back(
            {"LOAD-BAL wins >=10% somewhere (FFT)",
             "best " + util::fmtFixed(loadBalBest, 3),
             loadBalBest < 0.90});
        claims.push_back(
            {"sharing-based never beats LOAD-BAL (FFT)",
             "sharing best " + util::fmtFixed(sharingBest, 3) +
                 " vs LOAD-BAL best " + util::fmtFixed(loadBalBest, 3),
             sharingBest >= loadBalBest - 0.02});
    }

    // ---- 3: miss-component invariance (Water) ------------------------
    {
        auto rows = experiment::missComponentStudy(
            lab, AppId::Water,
            {Algorithm::Random, Algorithm::ShareRefs,
             Algorithm::MinShare, Algorithm::LoadBal});
        double worstSpread = 0.0;
        std::map<std::string, std::pair<double, double>> band;
        for (const auto &row : rows) {
            auto &[lo, hi] = band
                                 .try_emplace(row.point.label(), 1e18,
                                              0.0)
                                 .first->second;
            double v =
                static_cast<double>(row.compulsory + row.invalidation);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        double refs = static_cast<double>(rows.front().refs);
        for (const auto &[label, range] : band) {
            (void)label;
            worstSpread = std::max(
                worstSpread, (range.second - range.first) / refs);
        }
        claims.push_back(
            {"compulsory+invalidation invariant across placements",
             "worst spread " + util::fmtPercent(worstSpread, 3) +
                 " of refs",
             worstSpread < 0.005});
    }

    // ---- 4: static >> dynamic for all fourteen apps ------------------
    {
        double worstRatio = 1e18, worstPct = 0.0;
        std::string worstApp;
        for (const auto &row :
             experiment::table4Study(lab, workload::allApps(), jobs)) {
            if (row.staticOverDynamic < worstRatio) {
                worstRatio = row.staticOverDynamic;
                worstApp = row.app;
            }
            worstPct = std::max(worstPct, row.dynamicPctOfRefs);
        }
        claims.push_back(
            {"dynamic coherence traffic >=10x below static (14 apps)",
             "worst " + util::fmtRatio(worstRatio, 0) + " (" +
                 worstApp + ")",
             worstRatio >= 10.0});
        claims.push_back(
            {"dynamic traffic small share of refs (14 apps)",
             "worst " + util::fmtFixed(worstPct, 2) + "%",
             worstPct < 5.0});
    }

    // ---- 5: the 8 MB cache study (Water) -----------------------------
    {
        experiment::MachinePoint pt{4, 2};
        auto inf =
            lab.run(AppId::Water, Algorithm::Random, pt, true).stats;
        bool noConflicts =
            inf.totalMissCount(sim::MissKind::IntraConflict) == 0 &&
            inf.totalMissCount(sim::MissKind::InterConflict) == 0;
        claims.push_back({"8 MB cache eliminates conflict misses",
                          noConflicts ? "0 conflicts" : "conflicts!",
                          noConflicts});

        auto cells = experiment::table5Study(lab, AppId::Water);
        double best = 10.0;
        for (const auto &cell : cells)
            best = std::min(best, cell.bestStaticVsLoadBal);
        claims.push_back(
            {"best sharing ~ LOAD-BAL at 8 MB (Water)",
             "best " + util::fmtFixed(best, 3) + "x LOAD-BAL",
             best > 0.90});
    }

    // ---- report -------------------------------------------------------
    bench::printWallClock("all claims", total, jobs);
    std::printf("Reproduction checklist (scale 1/%u, %u jobs)\n\n",
                scale, jobs);
    util::TextTable table;
    table.setHeader({"claim", "measured", "status"});
    bool allPass = true;
    for (const auto &claim : claims) {
        table.addRow({claim.name, claim.measured,
                      claim.pass ? "PASS" : "WARN"});
        allPass &= claim.pass;
    }
    table.print();
    std::printf("\n%s\n", allPass
                              ? "all headline claims reproduced"
                              : "SOME CLAIMS DID NOT REPRODUCE");
    return allPass ? 0 : 1;
}
