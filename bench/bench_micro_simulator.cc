/**
 * @file
 * Micro-benchmarks of the event-driven simulator: references per
 * second across processor counts, context counts and cache sizes,
 * plus the parallel experiment engine's scaling curve (speedup and
 * efficiency of the same sweep at jobs in {1, 2, 4, N}).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include <numeric>

#include "core/load_balance.h"
#include "core/random_placement.h"
#include "experiment/configs.h"
#include "experiment/parallel.h"
#include "experiment/sampling_study.h"
#include "experiment/studies.h"
#include "sample/sampler.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "util/format.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/generator.h"
#include "workload/stream.h"
#include "workload/suite.h"

namespace {

using namespace tsp;

/** A moderately sharing-heavy app reused across iterations. */
const trace::TraceSet &
benchTraces()
{
    static const trace::TraceSet set = [] {
        workload::AppProfile p;
        p.name = "microbench";
        p.threads = 16;
        p.meanLength = 60000;
        p.lengthDevPct = 30.0;
        p.sharedRefFrac = 0.6;
        p.refsPerSharedAddr = 25.0;
        p.globalFrac = 0.8;
        p.neighborFrac = 0.2;
        p.globalWriteMode = workload::GlobalWriteMode::Migratory;
        p.seed = 77;
        return workload::generateTraces(p, 1);
    }();
    return set;
}

/** Identity placement: thread i on processor i. */
placement::PlacementMap
identityMap(uint32_t threads)
{
    std::vector<uint32_t> assign(threads);
    std::iota(assign.begin(), assign.end(), 0u);
    return placement::PlacementMap(threads, assign);
}

/**
 * References per second across the whole machine-size range. Up to 16
 * processors this is the historical microbench shape (16-thread
 * materialized trace, random placement) so the recorded baselines
 * stay comparable. From 64 processors up it switches to one thread
 * per processor on the synthetic scalable workload through the
 * bounded-memory streaming path (a materialized 1024-thread TraceSet
 * would defeat the point); per-thread length shrinks with the machine
 * so total references stay roughly constant, isolating the
 * per-reference cost of wide sharer sets (SharerSet spill, broadcast
 * invalidations), which is what grows past 128 processors.
 */
void
BM_SimulateProcessors(benchmark::State &state)
{
    uint32_t procs = static_cast<uint32_t>(state.range(0));
    uint64_t refs = 0;
    if (procs >= 64) {
        workload::AppProfile p = experiment::syntheticScaleProfile(
            procs, /*meanLength=*/2'000'000 / procs);
        sim::SimConfig cfg;
        cfg.processors = procs;
        cfg.contexts = 1;
        cfg.cacheBytes = p.cacheBytes;
        auto map = identityMap(procs);
        for (auto _ : state) {
            workload::AppStreamFactory factory(p, /*scale=*/1);
            auto stats = sim::simulateStreaming(cfg, factory, map);
            refs += stats.totalMemRefs();
            benchmark::DoNotOptimize(stats.executionTime());
        }
    } else {
        const auto &traces = benchTraces();
        sim::SimConfig cfg;
        cfg.processors = procs;
        cfg.contexts = (16 + procs - 1) / procs;
        cfg.cacheBytes = 32 * 1024;
        util::Rng rng(1);
        auto map = placement::randomPlacement(16, procs, rng);
        for (auto _ : state) {
            auto stats = sim::simulate(cfg, traces, map);
            refs += stats.totalMemRefs();
            benchmark::DoNotOptimize(stats.executionTime());
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
    state.SetLabel("memory references/s");
}
BENCHMARK(BM_SimulateProcessors)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(64)->Arg(256)->Arg(1024);

/**
 * One phase-sampled run at 256 processors with the SamplePlan built
 * outside the timed region, matching how a placement study amortizes
 * the plan across its cells. Items are the *estimated-for* references
 * (the full trace), so items/s is the effective throughput sampling
 * buys; regressions here catch both the segment-seek machinery and
 * the reconstruction arithmetic.
 */
void
BM_SampledSimulate(benchmark::State &state)
{
    uint32_t procs = static_cast<uint32_t>(state.range(0));
    workload::AppProfile p =
        experiment::syntheticScaleProfile(procs, /*meanLength=*/60'000);
    sim::SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = 1;
    cfg.cacheBytes = p.cacheBytes;

    sample::SampleOptions so;
    so.windowRefs = 1'000;
    so.clusters = 4;
    so.warmupWindows = 1;

    workload::AppStreamFactory factory(p, /*scale=*/1);
    sample::SamplePlan plan =
        sample::buildSamplePlan(factory, so, cfg.blockBytes);
    auto map = identityMap(procs);

    uint64_t effectiveRefs = 0;
    for (auto _ : state) {
        sample::SampleEstimate est =
            sample::sampleSimulate(cfg, factory, map, plan);
        effectiveRefs += est.fullRefs;
        benchmark::DoNotOptimize(est.execTime);
    }
    state.SetItemsProcessed(static_cast<int64_t>(effectiveRefs));
    state.SetLabel("effective references/s");
}
BENCHMARK(BM_SampledSimulate)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/**
 * BM_SimulateProcessors with the full modern memory system (the
 * `contended` variant of docs/memory_system.md): shared inclusive L2,
 * MOESI, and one queued link per processor. Measures the overhead the
 * hierarchy adds to the per-reference hot path; the gap to
 * BM_SimulateProcessors at the same processor count is the price of
 * the L2 lookup + link queueing on every miss.
 */
void
BM_SimulateMemSystem(benchmark::State &state)
{
    const auto &traces = benchTraces();
    uint32_t procs = static_cast<uint32_t>(state.range(0));
    sim::SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = (16 + procs - 1) / procs;
    cfg.cacheBytes = 32 * 1024;
    experiment::applyMemSystem(cfg, experiment::MemSystem::Contended);

    util::Rng rng(1);
    auto map = placement::randomPlacement(16, procs, rng);
    uint64_t refs = 0;
    for (auto _ : state) {
        auto stats = sim::simulate(cfg, traces, map);
        refs += stats.totalMemRefs();
        benchmark::DoNotOptimize(stats.executionTime());
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
    state.SetLabel("memory references/s");
}
BENCHMARK(BM_SimulateMemSystem)->Arg(4)->Arg(16);

void
BM_SimulateCacheSize(benchmark::State &state)
{
    const auto &traces = benchTraces();
    sim::SimConfig cfg;
    cfg.processors = 4;
    cfg.contexts = 4;
    cfg.cacheBytes = static_cast<uint64_t>(state.range(0)) * 1024;

    util::Rng rng(2);
    auto map = placement::randomPlacement(16, 4, rng);
    uint64_t refs = 0;
    for (auto _ : state) {
        auto stats = sim::simulate(cfg, traces, map);
        refs += stats.totalMemRefs();
        benchmark::DoNotOptimize(stats.totalMisses());
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
}
BENCHMARK(BM_SimulateCacheSize)->Arg(8)->Arg(32)->Arg(64)->Arg(8192);

void
BM_LoadBalancedSimulation(benchmark::State &state)
{
    const auto &traces = benchTraces();
    sim::SimConfig cfg;
    cfg.processors = 8;
    cfg.contexts = 2;
    cfg.cacheBytes = 32 * 1024;
    auto map =
        placement::loadBalancedPlacement(traces.threadLengths(), 8);
    for (auto _ : state) {
        auto stats = sim::simulate(cfg, traces, map);
        benchmark::DoNotOptimize(stats.executionTime());
    }
}
BENCHMARK(BM_LoadBalancedSimulation);

/**
 * Scaling curve of the parallel experiment engine: one full
 * execution-time sweep (Figures 2-4 shape) at a fixed workload,
 * fanned over jobs worker threads. The label reports speedup over
 * the jobs=1 baseline and parallel efficiency (speedup / jobs);
 * results are bit-identical at every width, so only wall-clock moves.
 */
void
BM_ParallelSweepJobs(benchmark::State &state)
{
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    // Warm the Lab's caches outside the timed region so every width
    // measures pure fan-out over identical read-only inputs.
    experiment::Lab lab(workload::defaultScale());
    lab.warmup(workload::AppId::Water);

    uint64_t sims = 0;
    auto wallStart = std::chrono::steady_clock::now();
    for (auto _ : state) {
        auto points = experiment::execTimeStudy(
            lab, workload::AppId::Water,
            placement::figureAlgorithms(), jobs);
        sims += points.size();
        benchmark::DoNotOptimize(points.data());
    }
    double wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wallStart)
                        .count();
    double msPerSweep =
        state.iterations() ? wallMs / state.iterations() : 0.0;

    // Speedup/efficiency vs. the jobs=1 run (registered first, so the
    // baseline is always populated by the time wider runs report).
    static double baselineMsPerSweep = 0.0;
    if (jobs == 1 && msPerSweep > 0.0)
        baselineMsPerSweep = msPerSweep;
    double speedup = (baselineMsPerSweep > 0.0 && msPerSweep > 0.0)
        ? baselineMsPerSweep / msPerSweep
        : 1.0;

    state.SetItemsProcessed(static_cast<int64_t>(sims));
    state.counters["jobs"] = jobs;
    state.counters["speedup"] = speedup;
    state.counters["efficiency"] = speedup / jobs;
    state.SetLabel("speedup " + util::fmtFixed(speedup, 2) + "x, " +
                   util::fmtPercent(speedup / jobs, 0) +
                   " efficient");
}
BENCHMARK(BM_ParallelSweepJobs)
    ->Apply([](benchmark::internal::Benchmark *b) {
        std::vector<int> widths{1, 2, 4};
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw > 0 &&
            std::find(widths.begin(), widths.end(), hw) == widths.end())
            widths.push_back(hw);
        for (int w : widths)
            b->Arg(w);
        b->UseRealTime()->Unit(benchmark::kMillisecond);
    });

} // namespace
