/**
 * @file
 * Micro-benchmarks of the event-driven simulator: references per
 * second across processor counts, context counts and cache sizes.
 */

#include <benchmark/benchmark.h>

#include "core/load_balance.h"
#include "core/random_placement.h"
#include "sim/machine.h"
#include "trace/address_space.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

namespace {

using namespace tsp;

/** A moderately sharing-heavy app reused across iterations. */
const trace::TraceSet &
benchTraces()
{
    static const trace::TraceSet set = [] {
        workload::AppProfile p;
        p.name = "microbench";
        p.threads = 16;
        p.meanLength = 60000;
        p.lengthDevPct = 30.0;
        p.sharedRefFrac = 0.6;
        p.refsPerSharedAddr = 25.0;
        p.globalFrac = 0.8;
        p.neighborFrac = 0.2;
        p.globalWriteMode = workload::GlobalWriteMode::Migratory;
        p.seed = 77;
        return workload::generateTraces(p, 1);
    }();
    return set;
}

void
BM_SimulateProcessors(benchmark::State &state)
{
    const auto &traces = benchTraces();
    uint32_t procs = static_cast<uint32_t>(state.range(0));
    sim::SimConfig cfg;
    cfg.processors = procs;
    cfg.contexts = (16 + procs - 1) / procs;
    cfg.cacheBytes = 32 * 1024;

    util::Rng rng(1);
    auto map = placement::randomPlacement(16, procs, rng);
    uint64_t refs = 0;
    for (auto _ : state) {
        auto stats = sim::simulate(cfg, traces, map);
        refs += stats.totalMemRefs();
        benchmark::DoNotOptimize(stats.executionTime());
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
    state.SetLabel("memory references/s");
}
BENCHMARK(BM_SimulateProcessors)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_SimulateCacheSize(benchmark::State &state)
{
    const auto &traces = benchTraces();
    sim::SimConfig cfg;
    cfg.processors = 4;
    cfg.contexts = 4;
    cfg.cacheBytes = static_cast<uint64_t>(state.range(0)) * 1024;

    util::Rng rng(2);
    auto map = placement::randomPlacement(16, 4, rng);
    uint64_t refs = 0;
    for (auto _ : state) {
        auto stats = sim::simulate(cfg, traces, map);
        refs += stats.totalMemRefs();
        benchmark::DoNotOptimize(stats.totalMisses());
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
}
BENCHMARK(BM_SimulateCacheSize)->Arg(8)->Arg(32)->Arg(64)->Arg(8192);

void
BM_LoadBalancedSimulation(benchmark::State &state)
{
    const auto &traces = benchTraces();
    sim::SimConfig cfg;
    cfg.processors = 8;
    cfg.contexts = 2;
    cfg.cacheBytes = 32 * 1024;
    auto map =
        placement::loadBalancedPlacement(traces.threadLengths(), 8);
    for (auto _ : state) {
        auto stats = sim::simulate(cfg, traces, map);
        benchmark::DoNotOptimize(stats.executionTime());
    }
}
BENCHMARK(BM_LoadBalancedSimulation);

} // namespace
