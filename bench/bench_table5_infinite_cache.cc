/**
 * @file
 * Table 5 — the "infinite" (8 MB) cache study of Section 4.3: for the
 * six applications with the least-uniform measured sharing, execution
 * time of (a) the best static sharing-based algorithm and (b) the
 * dynamic coherence-traffic algorithm, normalized to LOAD-BAL.
 *
 * Paper's shape: even with conflict and capacity misses eliminated,
 * the best sharing-based placement matches LOAD-BAL (wins of at most
 * ~2%), and LOAD-BAL usually beats the coherence-traffic oracle.
 */

#include <cstdio>

#include "bench_common.h"
#include "experiment/lab.h"
#include "experiment/report.h"
#include "experiment/studies.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    using workload::AppId;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Table 5: Execution times normalized to LOAD-BAL with "
                "an 8 MB cache (no conflict misses), scale 1/%u, "
                "%u jobs\n\n",
                scale, util::ThreadPool::defaultJobs());

    // The paper's six apps: three coarse, three medium, chosen for
    // least-uniform sharing.
    const std::vector<AppId> apps = {
        AppId::Water, AppId::LocusRoute, AppId::Pverify,
        AppId::Grav,  AppId::FFT,        AppId::Health,
    };

    util::TextTable table;
    table.setHeader({"application", "processors",
                     "best static sharing alg", "best static / LOAD-BAL",
                     "coherence traffic / LOAD-BAL"});
    std::vector<experiment::Table5Cell> allCells;
    bench::WallTimer total;
    for (AppId app : apps) {
        auto cells = experiment::table5Study(lab, app);
        allCells.insert(allCells.end(), cells.begin(), cells.end());
        for (const auto &cell : cells) {
            table.addRow({
                cell.app,
                std::to_string(cell.processors),
                placement::algorithmName(cell.bestStatic),
                util::fmtFixed(cell.bestStaticVsLoadBal, 2),
                util::fmtFixed(cell.coherenceVsLoadBal, 2),
            });
        }
        table.addSeparator();
    }
    bench::printWallClock("Table 5 study (6 apps)", total);
    table.print();
    if (auto dir = experiment::outputDirectory()) {
        std::string path = *dir + "/table5_infinite_cache.csv";
        experiment::writeTable5Csv(path, allCells);
        std::printf("(wrote %s)\n", path.c_str());
    }
    std::printf("\npaper reports: best sharing-based within ~2%% of "
                "LOAD-BAL everywhere (values ~0.98-1.11); LOAD-BAL as "
                "good as or better than the coherence-traffic "
                "algorithm.\n");
    return 0;
}
