/**
 * @file
 * Micro-benchmarks of the placement machinery: static analysis and
 * the clustering engine across thread counts and algorithms.
 */

#include <benchmark/benchmark.h>

#include "analysis/static_analysis.h"
#include "core/algorithms.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/generator.h"

namespace {

using namespace tsp;

workload::AppProfile
profileWithThreads(uint32_t threads)
{
    workload::AppProfile p;
    p.name = "placebench";
    p.threads = threads;
    p.meanLength = 20000;
    p.lengthDevPct = 50.0;
    p.sharedRefFrac = 0.5;
    p.refsPerSharedAddr = 20.0;
    p.globalFrac = 0.7;
    p.neighborFrac = 0.3;
    p.seed = 99;
    return p;
}

const analysis::StaticAnalysis &
analysisWithThreads(uint32_t threads)
{
    static std::map<uint32_t, analysis::StaticAnalysis> cache;
    auto it = cache.find(threads);
    if (it == cache.end()) {
        auto traces =
            workload::generateTraces(profileWithThreads(threads), 1);
        it = cache
                 .emplace(threads,
                          analysis::StaticAnalysis::analyze(traces))
                 .first;
    }
    return it->second;
}

void
BM_StaticAnalysis(benchmark::State &state)
{
    uint32_t threads = static_cast<uint32_t>(state.range(0));
    auto traces =
        workload::generateTraces(profileWithThreads(threads), 1);
    for (auto _ : state) {
        auto an = analysis::StaticAnalysis::analyze(traces);
        benchmark::DoNotOptimize(an.sharedRefs().total());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(traces.totalMemRefs()));
}
BENCHMARK(BM_StaticAnalysis)->Arg(8)->Arg(32)->Arg(64);

void
BM_ClusterShareRefs(benchmark::State &state)
{
    uint32_t threads = static_cast<uint32_t>(state.range(0));
    const auto &an = analysisWithThreads(threads);
    util::Rng rng(5);
    for (auto _ : state) {
        auto map = placement::place(placement::Algorithm::ShareRefs,
                                    an, 4, rng);
        benchmark::DoNotOptimize(map.threadCount());
    }
}
BENCHMARK(BM_ClusterShareRefs)->Arg(8)->Arg(32)->Arg(64)->Arg(127);

void
BM_ClusterShareRefsLB(benchmark::State &state)
{
    uint32_t threads = static_cast<uint32_t>(state.range(0));
    const auto &an = analysisWithThreads(threads);
    util::Rng rng(6);
    for (auto _ : state) {
        auto map = placement::place(placement::Algorithm::ShareRefsLB,
                                    an, 4, rng);
        benchmark::DoNotOptimize(map.threadCount());
    }
}
BENCHMARK(BM_ClusterShareRefsLB)->Arg(8)->Arg(32)->Arg(64);

void
BM_LoadBal(benchmark::State &state)
{
    uint32_t threads = static_cast<uint32_t>(state.range(0));
    const auto &an = analysisWithThreads(threads);
    util::Rng rng(7);
    for (auto _ : state) {
        auto map = placement::place(placement::Algorithm::LoadBal, an,
                                    8, rng);
        benchmark::DoNotOptimize(map.threadCount());
    }
}
BENCHMARK(BM_LoadBal)->Arg(8)->Arg(64)->Arg(127);

} // namespace
