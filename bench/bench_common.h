/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: the
 * execution-time figure renderer (Figures 2-4), the scale/jobs
 * banner, and wall-clock timing lines (so the parallel experiment
 * engine's speedup is visible in BENCH_* output).
 */

#ifndef TSP_BENCH_BENCH_COMMON_H
#define TSP_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "experiment/lab.h"
#include "experiment/report.h"
#include "experiment/studies.h"
#include "obs/metric_defs.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "util/format.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/suite.h"

namespace tsp::bench {

/**
 * Monotonic stopwatch for the bench timing lines — the obs layer's
 * StopWatch, so every `[wall]` line uses the same clock as the
 * metrics registry's timers.
 */
using WallTimer = obs::StopWatch;

/**
 * Print the standard wall-clock line: `[wall] <what>: N ms (jobs=J)`.
 * The duration also lands in the `bench.wall_ms` histogram, so a run
 * with TSP_METRICS_OUT set exports every timing line as JSON.
 */
inline void
printWallClock(const std::string &what, const WallTimer &timer,
               unsigned jobs = util::ThreadPool::defaultJobs())
{
    double ms = timer.elapsedMs();
    obs::benchWallMillis().observe(ms);
    std::printf("[wall] %s: %.1f ms (jobs=%u)\n", what.c_str(), ms,
                jobs);
}

/** Print the standard banner: workload scale, app config, pool width. */
inline void
banner(const std::string &what, experiment::Lab &lab,
       workload::AppId app)
{
    // Honor TSP_METRICS / TSP_METRICS_OUT for every bench binary.
    obs::configureFromEnv();
    const auto &p = workload::profile(app);
    std::printf("%s\n", what.c_str());
    std::printf("workload: %s (%u threads, mean length %s, scale 1/%u,"
                " cache %s)\n",
                p.name.c_str(), p.threads,
                util::fmtCompact(static_cast<double>(p.meanLength))
                    .c_str(),
                lab.scale(),
                util::fmtBytes(workload::scaledCacheBytes(
                                   app, lab.scale()))
                    .c_str());
    std::printf("parallel: %u jobs (TSP_JOBS overrides; results are "
                "identical at any width)\n\n",
                util::ThreadPool::defaultJobs());
}

/**
 * Render an execution-time figure (the layout of Figures 2-4): one
 * row per placement algorithm, one column per (processors, contexts)
 * machine point, each cell the execution time normalized to RANDOM at
 * that point. Prints the sweep's wall-clock line. When TSP_OUT names
 * a directory, also writes <csvName>.csv there.
 *
 * Runs the sweep in degraded (fault-isolating) mode: a cell whose
 * simulation throws renders as FAILED and the failure summary prints
 * after the table instead of aborting the whole figure.
 */
inline void
printExecTimeFigure(const std::string &title, experiment::Lab &lab,
                    workload::AppId app,
                    const std::string &csvName = "")
{
    WallTimer timer;
    std::vector<experiment::JobFailure> failures;
    experiment::SweepOptions options;
    options.failures = &failures;
    auto points = experiment::execTimeStudy(
        lab, app, placement::figureAlgorithms(), options);
    printWallClock(title + " sweep", timer);

    if (!csvName.empty()) {
        if (auto dir = experiment::outputDirectory()) {
            std::string path = *dir + "/" + csvName + ".csv";
            experiment::writeExecTimeCsv(path, points);
            std::printf("(wrote %s)\n", path.c_str());
        }
    }

    // Column order: machine points in sweep order.
    std::vector<std::string> cols;
    std::map<std::string, size_t> colIndex;
    for (const auto &pt : points) {
        std::string label = pt.point.label();
        if (!colIndex.count(label)) {
            colIndex[label] = cols.size();
            cols.push_back(label);
        }
    }

    util::TextTable table(title);
    std::vector<std::string> header{"algorithm"};
    header.insert(header.end(), cols.begin(), cols.end());
    table.setHeader(header);

    for (placement::Algorithm alg : placement::figureAlgorithms()) {
        std::vector<std::string> row{placement::algorithmName(alg)};
        row.resize(1 + cols.size());
        for (const auto &pt : points) {
            if (pt.alg != alg)
                continue;
            row[1 + colIndex[pt.point.label()]] = pt.failed
                ? "FAILED"
                : util::fmtFixed(pt.normalizedToRandom, 3);
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n(execution time normalized to RANDOM; < 1.000 is "
                "faster than RANDOM)\n");
    std::string summary = experiment::renderFailureSummary(failures);
    if (!summary.empty())
        std::printf("\n%s", summary.c_str());
}

} // namespace tsp::bench

#endif // TSP_BENCH_BENCH_COMMON_H
