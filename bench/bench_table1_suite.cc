/**
 * @file
 * Table 1 — the application suite: grain, thread count and thread
 * length statistics of the fourteen applications, measured from the
 * generated traces (not just echoed from the profiles).
 */

#include <cstdio>

#include "analysis/static_analysis.h"
#include "experiment/lab.h"
#include "stats/summary.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Table 1: The application suite (workload scale 1/%u; "
                "lengths in instructions)\n\n",
                scale);

    util::TextTable table;
    table.setHeader({"application", "grain", "threads", "mean length",
                     "max length", "total instr", "data refs"});
    bool separated = false;
    for (workload::AppId app : workload::allApps()) {
        const auto &p = workload::profile(app);
        if (p.grain == workload::Grain::Medium && !separated) {
            table.addSeparator();
            separated = true;
        }
        const auto &an = lab.analysis(app);
        stats::Summary len;
        for (uint64_t l : an.threadLength())
            len.add(static_cast<double>(l));
        table.addRow({
            p.name,
            p.grain == workload::Grain::Coarse ? "coarse" : "medium",
            std::to_string(p.threads),
            util::fmtCompact(len.mean()),
            util::fmtCompact(len.max()),
            util::fmtCompact(static_cast<double>(
                an.totalInstructions())),
            util::fmtCompact(static_cast<double>(an.totalRefs())),
        });
    }
    table.print();
    std::printf("\npaper: coarse-grain threads average 6.4M "
                "instructions (up to 100M); medium-grain average "
                "0.8M. Scaled by 1/%u here.\n",
                scale);
    return 0;
}
