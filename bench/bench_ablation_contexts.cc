/**
 * @file
 * Ablation — hardware contexts vs. memory latency: the tension the
 * paper's introduction sets up. Context switching hides memory
 * latency (Weber & Gupta; Saavedra-Barrera), but interleaving more
 * threads through one cache inflates conflict misses from the
 * combined working sets — so the utilization gain can be offset, and
 * "the improved processor utilization could be offset by a rise in
 * interconnect traffic" (Section 1). This bench shows both sides: at
 * every latency, more contexts cut execution time (latency hidden)
 * while the miss rate climbs (interference paid).
 */

#include <cstdio>

#include "experiment/lab.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);
    // Water: high miss rate on its scaled cache, so there is real
    // latency to hide.
    workload::AppId app = workload::AppId::Water;

    std::printf("Ablation: hardware contexts vs. memory latency\n"
                "%s, 2 processors, LOAD-BAL, scale 1/%u\n\n",
                workload::appName(app).c_str(), scale);

    auto placement =
        lab.placementFor(app, placement::Algorithm::LoadBal, 2);
    for (uint32_t latency : {20u, 50u, 100u, 200u}) {
        util::TextTable table("memory latency " +
                              std::to_string(latency) + " cycles");
        table.setHeader({"contexts", "exec cycles", "vs 1 context",
                         "utilization", "miss rate"});
        uint64_t baseline = 0;
        for (uint32_t contexts : {1u, 2u, 4u}) {
            sim::SimConfig cfg = lab.configFor(app, {2, contexts});
            cfg.memoryLatency = latency;
            auto stats =
                sim::simulate(cfg, lab.traces(app), placement);
            if (contexts == 1)
                baseline = stats.executionTime();
            uint64_t busy = 0, finish = 0;
            for (const auto &ps : stats.procs) {
                busy += ps.busyCycles;
                finish += ps.finishTime;
            }
            table.addRow({
                std::to_string(contexts),
                util::fmtThousands(static_cast<int64_t>(
                    stats.executionTime())),
                util::fmtFixed(static_cast<double>(
                                   stats.executionTime()) /
                                   static_cast<double>(baseline),
                               3),
                util::fmtPercent(
                    finish ? static_cast<double>(busy) /
                                 static_cast<double>(finish)
                           : 0.0,
                    1),
                util::fmtPercent(stats.missRate(), 2),
            });
        }
        table.print();
        std::printf("\n");
    }
    std::printf("the paper's Section 1 tension, quantified: extra "
                "contexts overlap misses with useful work, but the "
                "interleaved working sets multiply the miss rate. "
                "Whether multithreading wins depends on the balance — "
                "here 4 contexts pay off at 50-100 cycle latencies and "
                "lose when the cache interference outweighs the hidden "
                "latency, exactly the offset the paper warns about.\n");
    return 0;
}
