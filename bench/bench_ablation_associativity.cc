/**
 * @file
 * Ablation — cache associativity. Section 4.1 reports that Patch (16
 * processors, LOAD-BAL) occasionally *thrashed*: two co-located
 * threads kept conflicting on the same cache block, giving the
 * thrashing processor an order of magnitude more inter-thread
 * conflict misses; "set associative caching would address this
 * problem." This bench sweeps associativity and reports exactly that
 * remedy.
 */

#include <cstdio>

#include "experiment/lab.h"
#include "sim/machine.h"
#include "stats/summary.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Ablation: cache associativity (LOAD-BAL placement, "
                "scale 1/%u)\n\n",
                scale);

    for (workload::AppId app :
         {workload::AppId::Patch, workload::AppId::Water}) {
        const auto &an = lab.analysis(app);
        auto sweep = experiment::standardSweep(
            static_cast<uint32_t>(an.threadCount()));
        const auto &point = sweep.back();  // most processors

        util::TextTable table(workload::appName(app) + " at " +
                              point.label());
        table.setHeader({"assoc", "exec cycles", "vs direct-mapped",
                         "inter-conflict misses", "total misses",
                         "max/mean per-proc conflicts"});
        uint64_t baseline = 0;
        for (uint32_t assoc : {1u, 2u, 4u}) {
            sim::SimConfig cfg = lab.configFor(app, point);
            cfg.associativity = assoc;
            auto placement = lab.placementFor(
                app, placement::Algorithm::LoadBal, point.processors);
            auto stats = sim::simulate(cfg, lab.traces(app), placement);
            if (assoc == 1)
                baseline = stats.executionTime();

            // Thrashing indicator: how concentrated inter-thread
            // conflicts are on the worst processor.
            stats::Summary perProc;
            for (const auto &ps : stats.procs)
                perProc.add(static_cast<double>(
                    ps.missCount(sim::MissKind::InterConflict)));
            double concentration = perProc.mean() > 0.0
                ? perProc.max() / perProc.mean()
                : 0.0;

            table.addRow({
                std::to_string(assoc),
                util::fmtThousands(static_cast<int64_t>(
                    stats.executionTime())),
                util::fmtFixed(static_cast<double>(
                                   stats.executionTime()) /
                                   static_cast<double>(baseline),
                               3),
                util::fmtThousands(static_cast<int64_t>(
                    stats.totalMissCount(
                        sim::MissKind::InterConflict))),
                util::fmtThousands(static_cast<int64_t>(
                    stats.totalMisses())),
                util::fmtFixed(concentration, 2),
            });
        }
        table.print();
        std::printf("\n");
    }
    std::printf("paper: the thrashing processor had an order of "
                "magnitude more inter-thread conflict misses; set "
                "associativity is the suggested remedy.\n");
    return 0;
}
