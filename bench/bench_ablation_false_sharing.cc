/**
 * @file
 * Ablation — false sharing. Footnote 1: the paper's static metrics
 * count distinct addresses, excluding false sharing, and its programs
 * had been written (or compiler-restructured, Pverify/Topopt [12]) so
 * that false-sharing misses were only ~0.2-5.8% of data misses. Our
 * generators block-align the per-thread shared pools by default,
 * reproducing that restructuring; this bench packs the pools at word
 * granularity instead and measures the coherence traffic the
 * restructuring saves.
 */

#include <cstdio>

#include "analysis/static_analysis.h"
#include "sim/coherence_probe.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/generator.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();

    std::printf("Ablation: false sharing — block-aligned (restructured)"
                " vs. word-packed shared pools, 1 thread/processor, "
                "scale 1/%u\n\n",
                scale);

    util::TextTable table;
    table.setHeader({"application", "layout", "invalidation misses",
                     "invalidations", "dynamic traffic",
                     "traffic % of refs"});
    for (workload::AppId app :
         {workload::AppId::Pverify, workload::AppId::Topopt,
          workload::AppId::Grav, workload::AppId::Patch}) {
        for (bool aligned : {true, false}) {
            workload::AppProfile p = workload::profile(app);
            p.alignSharedPools = aligned;
            auto traces = workload::generateTraces(p, scale);

            sim::SimConfig base;
            base.cacheBytes = workload::scaledCacheBytes(app, scale);
            auto probe = sim::measureCoherenceTraffic(traces, base);
            const auto &stats = probe.stats;

            table.addRow({
                workload::appName(app),
                aligned ? "block-aligned" : "word-packed",
                util::fmtThousands(static_cast<int64_t>(
                    stats.totalMissCount(sim::MissKind::Invalidation))),
                util::fmtThousands(static_cast<int64_t>(
                    stats.totalInvalidationsSent())),
                util::fmtThousands(static_cast<int64_t>(
                    stats.dynamicSharingTraffic())),
                util::fmtPercent(
                    static_cast<double>(stats.dynamicSharingTraffic()) /
                        static_cast<double>(stats.totalMemRefs()),
                    2),
            });
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nexpected: word-packed pools put unrelated threads' "
                "data in the same cache blocks, inflating invalidation "
                "traffic at pool boundaries; block alignment (the "
                "restructuring of [12]) removes it. The paper reports "
                "post-restructuring false sharing of only 1.5-1.7%% of "
                "data misses for Pverify/Topopt.\n");
    return 0;
}
