/**
 * @file
 * Figure 5 — cache miss components (compulsory, intra-thread
 * conflict, inter-thread conflict, invalidation) across placement
 * algorithms and machine configurations.
 *
 * Paper's shape: decreasing threads/processor (more processors)
 * reduces conflict misses (effectively larger cache) and shifts them
 * from inter-thread to intra-thread; compulsory and invalidation
 * misses stay essentially constant across ALL placement algorithms.
 */

#include <cstdio>

#include "bench_common.h"
#include "experiment/report.h"
#include "sim/results.h"

int
main()
{
    using namespace tsp;
    using placement::Algorithm;
    experiment::Lab lab(workload::defaultScale());
    workload::AppId app = workload::AppId::Water;

    bench::banner("Figure 5: Cache miss components for Water (typical "
                  "of all applications)",
                  lab, app);

    const std::vector<Algorithm> algs = {
        Algorithm::Random,   Algorithm::ShareRefs,
        Algorithm::ShareAddr, Algorithm::MinPriv,
        Algorithm::MinInvs,  Algorithm::MaxWrites,
        Algorithm::MinShare, Algorithm::LoadBal,
    };
    bench::WallTimer timer;
    auto rows = experiment::missComponentStudy(lab, app, algs);
    bench::printWallClock("Figure 5 sweep", timer);

    util::TextTable table("Figure 5 (miss counts; comp+inval is the "
                          "component sharing-based placement targets)");
    table.setHeader({"config", "algorithm", "compulsory",
                     "intra-conflict", "inter-conflict", "invalidation",
                     "comp+inval", "miss rate"});
    std::string lastLabel;
    for (const auto &row : rows) {
        std::string label = row.point.label();
        if (label != lastLabel && !lastLabel.empty())
            table.addSeparator();
        lastLabel = label;
        table.addRow({
            label,
            placement::algorithmName(row.alg),
            std::to_string(row.compulsory),
            std::to_string(row.intraConflict),
            std::to_string(row.interConflict),
            std::to_string(row.invalidation),
            std::to_string(row.compulsory + row.invalidation),
            util::fmtPercent(static_cast<double>(row.totalMisses()) /
                                 static_cast<double>(row.refs),
                             2),
        });
    }
    table.print();
    if (auto dir = experiment::outputDirectory()) {
        std::string path = *dir + "/fig5_miss_components.csv";
        experiment::writeMissComponentsCsv(path, rows);
        std::printf("(wrote %s)\n", path.c_str());
    }
    std::printf("\npaper reports: compulsory and invalidation misses "
                "remain fairly constant across all placement "
                "algorithms; conflict misses fall and shift "
                "inter->intra as threads/processor decreases.\n");
    return 0;
}
