/**
 * @file
 * Write-run / sharing-pattern profile of every suite application
 * (Section 4.2's explanation of sequential sharing): classify each
 * shared block as read-only, migratory (long write runs) or other,
 * and report run-length statistics.
 *
 * Paper's anchor points: 73% of FFT's shared elements are migratory,
 * accessed in long write runs; Barnes-Hut-style applications read
 * widely and write locally (read-only shared dominates); "other
 * Presto programs have similar sequential access patterns".
 */

#include <cstdio>

#include "core/placement_map.h"
#include "experiment/lab.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Sharing-pattern profile (write-run taxonomy), one "
                "thread per processor, scale 1/%u\n\n",
                scale);

    util::TextTable table;
    table.setHeader({"application", "shared blocks", "read-only %",
                     "migratory %", "other %", "mean write run",
                     "mean read run"});
    bool separated = false;
    for (workload::AppId app : workload::allApps()) {
        const auto &p = workload::profile(app);
        if (p.grain == workload::Grain::Medium && !separated) {
            table.addSeparator();
            separated = true;
        }
        const auto &traces = lab.traces(app);
        if (traces.threadCount() > sim::kMaxProcessors)
            continue;

        sim::SimConfig cfg;
        cfg.processors = static_cast<uint32_t>(traces.threadCount());
        cfg.contexts = 1;
        cfg.cacheBytes = workload::scaledCacheBytes(app, scale);
        cfg.profileSharing = true;

        std::vector<uint32_t> identity(traces.threadCount());
        for (uint32_t i = 0; i < identity.size(); ++i)
            identity[i] = i;
        auto stats = sim::simulate(
            cfg, traces,
            placement::PlacementMap(cfg.processors, identity));
        const auto &prof = stats.sharingProfile;

        double other = prof.sharedBlocks
            ? static_cast<double>(prof.otherShared) /
                  static_cast<double>(prof.sharedBlocks)
            : 0.0;
        table.addRow({
            p.name,
            std::to_string(prof.sharedBlocks),
            util::fmtPercent(prof.readOnlyFraction(), 1),
            util::fmtPercent(prof.migratoryFraction(), 1),
            util::fmtPercent(other, 1),
            util::fmtFixed(prof.writeRunLength.mean(), 1),
            util::fmtFixed(prof.readRunLength.mean(), 1),
        });
    }
    table.print();
    std::printf("\npaper anchor: 73%% of FFT's shared elements are "
                "migratory (long write runs); read-widely/write-locally "
                "applications are dominated by read-only sharing. Long "
                "runs are why runtime coherence traffic stays orders of "
                "magnitude below static sharing counts.\n");
    return 0;
}
