/**
 * @file
 * Table 4 — statically counted sharing vs. dynamically measured
 * coherence traffic, from the one-thread-per-processor measurement
 * runs of Section 4.2.
 *
 * Paper's shape: runtime coherence traffic + compulsory misses are
 * 0.01%-3.3% of references (coarse) and 0.01%-0.4% (medium) — one to
 * three orders of magnitude below the static shared-reference counts.
 */

#include <cstdio>

#include "bench_common.h"
#include "experiment/lab.h"
#include "experiment/report.h"
#include "experiment/studies.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);

    std::printf("Table 4: Static shared references vs. dynamic "
                "coherence traffic (1 thread/processor, scale 1/%u, "
                "%u jobs)\n\n",
                scale, util::ThreadPool::defaultJobs());

    // Materialize traces/analyses/probes one app per worker; the row
    // loop below then reads warm caches.
    bench::WallTimer timer;
    auto studyRows =
        experiment::table4Study(lab, workload::allApps());
    bench::printWallClock("Table 4 study (14 apps)", timer);

    util::TextTable table;
    table.setHeader({"application", "static pairwise total",
                     "static % of refs", "dynamic traffic",
                     "dynamic % of refs", "static/dynamic",
                     "dyn pair dev%", "dyn pair abs dev"});
    bool separated = false;
    bool shapeHolds = true;
    std::vector<experiment::Table4Row> rows;
    size_t appIndex = 0;
    for (workload::AppId app : workload::allApps()) {
        const auto &p = workload::profile(app);
        if (p.grain == workload::Grain::Medium && !separated) {
            table.addSeparator();
            separated = true;
        }
        const auto &row = studyRows[appIndex++];
        rows.push_back(row);
        table.addRow({
            row.app,
            util::fmtCompact(row.staticTotal),
            util::fmtFixed(row.staticPctOfRefs, 1),
            util::fmtCompact(row.dynamicTotal),
            util::fmtFixed(row.dynamicPctOfRefs, 2),
            util::fmtRatio(row.staticOverDynamic, 0),
            util::fmtFixed(row.dynamicPairDevPct, 1),
            util::fmtFixed(row.dynamicPairAbsDev, 2),
        });
        if (row.staticOverDynamic < 10.0)
            shapeHolds = false;
    }
    table.print();
    if (auto dir = experiment::outputDirectory()) {
        std::string path = *dir + "/table4_static_vs_dynamic.csv";
        experiment::writeTable4Csv(path, rows);
        std::printf("(wrote %s)\n", path.c_str());
    }
    std::printf("\npaper reports: dynamic measure 1-3 orders of "
                "magnitude below the static counts; %s here.\n",
                shapeHolds ? "every application is >=1 order below"
                           : "WARNING: some application fell below one "
                             "order of magnitude");
    return 0;
}
