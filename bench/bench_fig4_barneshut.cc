/**
 * @file
 * Figure 4 — execution time for Barnes-Hut, all placement algorithms,
 * normalized to RANDOM, across the processors/contexts sweep.
 *
 * Paper's shape: with a small thread length deviation (7%), no
 * placement algorithm does appreciably better than any other; the
 * largest LOAD-BAL vs RANDOM difference appears at 8 processors
 * (fewest threads per processor).
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace tsp;
    experiment::Lab lab(workload::defaultScale());
    workload::AppId app = workload::AppId::BarnesHut;

    bench::banner("Figure 4: Execution time for Barnes-Hut "
                  "(normalized to RANDOM)",
                  lab, app);
    bench::printExecTimeFigure("Figure 4", lab, app, "fig4_barneshut");
    std::printf("\npaper reports: all algorithms within a few percent "
                "of each other; low thread-length deviation means "
                "RANDOM is already nearly load balanced.\n");
    return 0;
}
