/**
 * @file
 * Ablation — context switch cost. The paper fixes the switch at 6
 * cycles (pipeline drain). Agarwal's model shows switch overhead
 * erodes multithreading's benefit; this bench sweeps the cost and
 * shows where cheap context switching stops mattering, and that the
 * paper's *placement* conclusion is insensitive to the choice.
 */

#include <cstdio>

#include "experiment/lab.h"
#include "sim/machine.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    using placement::Algorithm;
    const uint32_t scale = workload::defaultScale();
    experiment::Lab lab(scale);
    workload::AppId app = workload::AppId::MP3D;

    std::printf("Ablation: context switch cost (%s, 4 processors, "
                "scale 1/%u)\n\n",
                workload::appName(app).c_str(), scale);

    const auto &an = lab.analysis(app);
    experiment::MachinePoint point{
        4, static_cast<uint32_t>((an.threadCount() + 3) / 4)};

    util::TextTable table;
    table.setHeader({"switch cycles", "LOAD-BAL exec",
                     "SHARE-REFS exec", "RANDOM exec",
                     "LOAD-BAL/RANDOM", "SHARE-REFS/RANDOM"});
    for (uint32_t cost : {0u, 2u, 6u, 12u, 24u}) {
        auto runWith = [&](Algorithm alg) {
            sim::SimConfig cfg = lab.configFor(app, point);
            cfg.contextSwitchCycles = cost;
            auto placement =
                lab.placementFor(app, alg, point.processors);
            return sim::simulate(cfg, lab.traces(app), placement)
                .executionTime();
        };
        uint64_t loadBal = runWith(Algorithm::LoadBal);
        uint64_t shareRefs = runWith(Algorithm::ShareRefs);
        uint64_t random = runWith(Algorithm::Random);
        table.addRow({
            std::to_string(cost),
            util::fmtThousands(static_cast<int64_t>(loadBal)),
            util::fmtThousands(static_cast<int64_t>(shareRefs)),
            util::fmtThousands(static_cast<int64_t>(random)),
            util::fmtFixed(static_cast<double>(loadBal) /
                               static_cast<double>(random),
                           3),
            util::fmtFixed(static_cast<double>(shareRefs) /
                               static_cast<double>(random),
                           3),
        });
    }
    table.print();
    std::printf("\nexpected: execution time grows with switch cost, "
                "but the algorithm ranking (the paper's conclusion) is "
                "unchanged across the sweep.\n");
    return 0;
}
