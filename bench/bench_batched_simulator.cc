/**
 * @file
 * Micro-benchmarks of the batched lockstep engine over the streaming
 * chunked trace pipeline (google-benchmark, gated by
 * tools/compare_benches.py like the scalar simulator benches).
 *
 * The regime being measured is the streaming one — no materialized
 * trace is allowed to persist between cells, so every scalar cell
 * pays the full producer cost itself (census pass + generation pass +
 * simulation), which is exactly the per-cell decode the batched
 * engine amortizes: one census and one generation feed all N lanes.
 *
 *   scalar:  N x (census + generate + simulate)
 *   batched:     census + generate + N x simulate
 *
 * Both paths report aggregate memory references per second across all
 * lanes, so BM_BatchedSimulator/N vs BM_ScalarStreamingRuns/N is the
 * amortization factor directly: it rises with N toward the asymptote
 * (production cost fully amortized) and crosses 2x within the
 * measured batch range — see the model and the recorded numbers in
 * docs/performance.md.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/random_placement.h"
#include "sim/batch_machine.h"
#include "sim/machine.h"
#include "trace/chunk_source.h"
#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/stream.h"

namespace {

using namespace tsp;

/**
 * A mostly-private, read-share workload: low miss rates keep the
 * per-reference simulation cost down, which is the regime where
 * production cost matters and batching pays (see the amortization
 * model in docs/performance.md).
 */
workload::AppProfile
benchProfile()
{
    workload::AppProfile p;
    p.name = "batchbench";
    p.threads = 16;
    p.meanLength = 30000;
    p.lengthDevPct = 30.0;
    p.sharedRefFrac = 0.10;
    p.refsPerSharedAddr = 40.0;
    p.writeFrac = 0.05;
    p.globalFrac = 0.8;
    p.neighborFrac = 0.2;
    p.seed = 77;
    return p;
}

/**
 * N lanes across the paper's 2-16 processor sweep axis, each with its
 * own random placement — the shape of a sweep batch.
 */
std::vector<sim::BatchLane>
makeLanes(size_t n)
{
    const uint32_t procChoices[] = {2, 4, 8, 16};
    std::vector<sim::BatchLane> lanes;
    for (size_t i = 0; i < n; ++i) {
        uint32_t procs = procChoices[i % 4];
        sim::SimConfig cfg;
        cfg.processors = procs;
        cfg.contexts = (16 + procs - 1) / procs;
        cfg.cacheBytes = 128 * 1024;
        util::Rng rng(100 + static_cast<uint64_t>(i));
        lanes.push_back(
            {cfg, placement::randomPlacement(16, procs, rng)});
    }
    return lanes;
}

/** One batched lockstep run over a fresh shared stream. */
void
BM_BatchedSimulator(benchmark::State &state)
{
    workload::AppProfile p = benchProfile();
    size_t n = static_cast<size_t>(state.range(0));
    uint64_t refs = 0;
    for (auto _ : state) {
        workload::AppStreamFactory factory(p, 1);
        trace::SharedTraceStream stream(factory,
                                        static_cast<uint32_t>(n));
        sim::BatchMachine machine(makeLanes(n), stream);
        std::vector<sim::LaneResult> results = machine.run();
        for (const sim::LaneResult &r : results) {
            refs += r.stats.totalMemRefs();
            benchmark::DoNotOptimize(r.stats.executionTime());
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
    state.SetLabel("aggregate memory references/s");
}
BENCHMARK(BM_BatchedSimulator)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/** N independent streaming cells: the unbatched cost being amortized. */
void
BM_ScalarStreamingRuns(benchmark::State &state)
{
    workload::AppProfile p = benchProfile();
    size_t n = static_cast<size_t>(state.range(0));
    uint64_t refs = 0;
    for (auto _ : state) {
        std::vector<sim::BatchLane> lanes = makeLanes(n);
        for (sim::BatchLane &lane : lanes) {
            workload::AppStreamFactory factory(p, 1);
            trace::SharedTraceStream stream(factory, 1);
            sim::Machine machine(lane.cfg, stream.lane(0),
                                 lane.placement);
            sim::SimStats stats = machine.run();
            refs += stats.totalMemRefs();
            benchmark::DoNotOptimize(stats.executionTime());
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
    state.SetLabel("aggregate memory references/s");
}
BENCHMARK(BM_ScalarStreamingRuns)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/** Raw chunked-pipeline throughput: generate + stream, no simulation. */
void
BM_ChunkedTraceGeneration(benchmark::State &state)
{
    workload::AppProfile p = benchProfile();
    uint64_t events = 0;
    for (auto _ : state) {
        workload::AppStreamFactory factory(p, 1);
        trace::SharedTraceStream stream(factory, 1);
        trace::TraceSource &lane = stream.lane(0);
        for (uint32_t tid = 0; tid < lane.threadCount(); ++tid) {
            trace::ChunkFeed &feed = lane.openThread(tid);
            const trace::TraceEvent *begin = nullptr;
            const trace::TraceEvent *end = nullptr;
            while (feed.next(&begin, &end))
                events += static_cast<uint64_t>(end - begin);
        }
        benchmark::DoNotOptimize(stream.refillCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("trace events/s");
}
BENCHMARK(BM_ChunkedTraceGeneration)->Unit(benchmark::kMillisecond);

} // namespace
