/**
 * @file
 * Table 3 — architectural inputs to the simulator: the parameter set
 * and the ranges the experiments sweep, as configured in this
 * reproduction.
 */

#include <cstdio>

#include "experiment/configs.h"
#include "sim/config.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/suite.h"

int
main()
{
    using namespace tsp;
    sim::SimConfig def;

    std::printf("Table 3: Architectural inputs to the simulator\n\n");

    util::TextTable table;
    table.setHeader({"parameter", "value(s)", "source"});
    table.addRow({"processors", "2, 4, 8, 16", "paper (Section 3.2)"});
    table.addRow({"hardware contexts / processor",
                  "ceil(threads / processors)",
                  "paper (all threads resident)"});
    table.addRow({"context switch policy", "round-robin, on cache miss",
                  "paper"});
    table.addRow({"context switch time",
                  std::to_string(def.contextSwitchCycles) + " cycles",
                  "paper"});
    table.addRow({"cache organization", "direct-mapped, per-processor",
                  "paper"});
    table.addRow({"cache size",
                  "32 KB (coarse, Health, FFT) / 64 KB (other medium) "
                  "/ 8 MB (infinite-cache study)",
                  "paper"});
    table.addRow({"cache hit time",
                  std::to_string(def.hitLatency) + " cycle", "paper"});
    table.addRow({"cache block size",
                  std::to_string(def.blockBytes) + " bytes",
                  "assumption (Table 3 body lost; see DESIGN.md)"});
    table.addRow({"memory latency (all misses)",
                  std::to_string(def.memoryLatency) + " cycles",
                  "paper (Alewife-style average)"});
    table.addRow({"interconnect", "multipath, contention-free",
                  "paper"});
    table.addRow({"coherence protocol",
                  "distributed directory, write-invalidate (MESI-style)",
                  "paper [7] + DESIGN.md"});
    table.print();

    std::printf("\nper-application machine sweeps:\n\n");
    util::TextTable sweep;
    sweep.setHeader({"application", "threads", "machine points"});
    for (workload::AppId app : workload::allApps()) {
        const auto &p = workload::profile(app);
        std::string pts;
        for (const auto &pt : experiment::standardSweep(p.threads)) {
            if (!pts.empty())
                pts += ", ";
            pts += pt.label();
        }
        sweep.addRow({p.name, std::to_string(p.threads), pts});
    }
    sweep.print();
    return 0;
}
