#include "stats/pair_matrix.h"

#include <algorithm>

#include "util/error.h"

namespace tsp::stats {

PairMatrix::PairMatrix(size_t n) : n_(n), cells_(n * (n ? n - 1 : 0) / 2) {}

size_t
PairMatrix::index(size_t i, size_t j) const
{
    util::panicIf(i == j, "PairMatrix has no diagonal entries");
    util::panicIf(i >= n_ || j >= n_, "PairMatrix index out of range");
    if (i > j)
        std::swap(i, j);
    // Offset of row i within the packed upper triangle.
    size_t rowStart = i * n_ - i * (i + 1) / 2;
    return rowStart + (j - i - 1);
}

double
PairMatrix::get(size_t i, size_t j) const
{
    if (i == j)
        return 0.0;
    return cells_[index(i, j)];
}

void
PairMatrix::set(size_t i, size_t j, double v)
{
    cells_[index(i, j)] = v;
}

void
PairMatrix::add(size_t i, size_t j, double v)
{
    cells_[index(i, j)] += v;
}

double
PairMatrix::total() const
{
    double sum = 0.0;
    for (double c : cells_)
        sum += c;
    return sum;
}

double
PairMatrix::rowSum(size_t i) const
{
    double sum = 0.0;
    for (size_t j = 0; j < n_; ++j)
        if (j != i)
            sum += get(i, j);
    return sum;
}

double
PairMatrix::crossSum(const std::vector<uint32_t> &groupA,
                     const std::vector<uint32_t> &groupB) const
{
    double sum = 0.0;
    for (uint32_t a : groupA)
        for (uint32_t b : groupB)
            sum += get(a, b);
    return sum;
}

double
PairMatrix::withinSum(const std::vector<uint32_t> &group) const
{
    double sum = 0.0;
    for (size_t x = 0; x < group.size(); ++x)
        for (size_t y = x + 1; y < group.size(); ++y)
            sum += get(group[x], group[y]);
    return sum;
}

Summary
PairMatrix::pairSummary() const
{
    Summary s;
    for (double c : cells_)
        s.add(c);
    return s;
}

void
PairMatrix::merge(const PairMatrix &other)
{
    util::fatalIf(other.n_ != n_, "PairMatrix size mismatch in merge");
    for (size_t k = 0; k < cells_.size(); ++k)
        cells_[k] += other.cells_[k];
}

} // namespace tsp::stats
