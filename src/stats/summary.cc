#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace tsp::stats {

void
Summary::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Summary::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::devPercent() const
{
    if (count_ == 0 || mean_ == 0.0)
        return 0.0;
    return stddev() / std::fabs(mean_) * 100.0;
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Summary
Summary::fromState(uint64_t count, double mean, double m2, double min,
                   double max)
{
    Summary s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    s.addAll(xs);
    return s;
}

} // namespace tsp::stats
