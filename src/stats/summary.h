/**
 * @file
 * Running summary statistics with the exact deviation definitions the
 * paper uses in Tables 2 and 4:
 *
 *  - "Dev(%)" is the coefficient of variation, stddev / mean * 100;
 *  - "absolute deviation" is the standard deviation itself ("takes into
 *    account the size of the mean", Section 6).
 */

#ifndef TSP_STATS_SUMMARY_H
#define TSP_STATS_SUMMARY_H

#include <cstdint>
#include <limits>
#include <vector>

namespace tsp::stats {

/**
 * Single-pass (Welford) accumulator for count, mean, variance, min, max.
 */
class Summary
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Add every element of @p xs. */
    void addAll(const std::vector<double> &xs);

    /** Number of observations. */
    uint64_t count() const { return count_; }

    /** Sum of observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 observations). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /**
     * Coefficient of variation in percent (the paper's "Dev(%)").
     * Returns 0 when the mean is 0.
     */
    double devPercent() const;

    /** The paper's "absolute deviation": the standard deviation. */
    double absoluteDeviation() const { return stddev(); }

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Merge another summary into this one. */
    void merge(const Summary &other);

    /**
     * Raw second central moment of the Welford accumulator — with
     * count(), mean(), min() and max() this is the full serializable
     * state (used by the experiment checkpoint journal).
     */
    double rawM2() const { return m2_; }

    /** Reconstruct a summary from its raw accumulator state. */
    static Summary fromState(uint64_t count, double mean, double m2,
                             double min, double max);

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Convenience: summarize a whole vector. */
Summary summarize(const std::vector<double> &xs);

} // namespace tsp::stats

#endif // TSP_STATS_SUMMARY_H
