/**
 * @file
 * Symmetric matrix over thread pairs. The central data structure for both
 * static sharing metrics (shared-references(t_a, t_b), Section 2.1) and
 * dynamically measured coherence-traffic attribution (Section 4.2).
 */

#ifndef TSP_STATS_PAIR_MATRIX_H
#define TSP_STATS_PAIR_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/summary.h"

namespace tsp::stats {

/**
 * Dense symmetric n x n matrix of doubles with a zero diagonal,
 * storing only the upper triangle. Indices are thread ids.
 */
class PairMatrix
{
  public:
    /** Construct an n x n zero matrix. */
    explicit PairMatrix(size_t n = 0);

    /** Number of items (threads). */
    size_t size() const { return n_; }

    /** Value for the unordered pair (i, j); 0 when i == j. */
    double get(size_t i, size_t j) const;

    /** Set the value for the unordered pair (i, j); i != j required. */
    void set(size_t i, size_t j, double v);

    /** Add @p v to the unordered pair (i, j); i != j required. */
    void add(size_t i, size_t j, double v);

    /** Sum over all unordered pairs. */
    double total() const;

    /** Sum of row @p i (pairings of i with every other item). */
    double rowSum(size_t i) const;

    /**
     * Sum of values over all pairs (a, b) with a in @p groupA and
     * b in @p groupB. The groups must be disjoint.
     */
    double crossSum(const std::vector<uint32_t> &groupA,
                    const std::vector<uint32_t> &groupB) const;

    /** Sum over all unordered pairs drawn from within @p group. */
    double withinSum(const std::vector<uint32_t> &group) const;

    /** Summary over all unordered-pair values (mean, Dev%, etc.). */
    Summary pairSummary() const;

    /** Element-wise addition; other must have the same size. */
    void merge(const PairMatrix &other);

  private:
    size_t index(size_t i, size_t j) const;

    size_t n_ = 0;
    std::vector<double> cells_;  //!< upper triangle, row-major
};

} // namespace tsp::stats

#endif // TSP_STATS_PAIR_MATRIX_H
