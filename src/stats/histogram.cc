#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/format.h"

namespace tsp::stats {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    util::fatalIf(buckets == 0, "histogram needs at least one bucket");
    util::fatalIf(!(hi > lo), "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<int64_t>(
        std::floor(frac * static_cast<double>(counts_.size())));
    idx = std::clamp<int64_t>(idx, 0,
                              static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLo(size_t i) const
{
    double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(total_);
    double cum = 0.0;
    double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) {
        double next = cum + static_cast<double>(counts_[i]);
        if (next >= target) {
            double within = counts_[i]
                ? (target - cum) / static_cast<double>(counts_[i])
                : 0.0;
            return bucketLo(i) + within * w;
        }
        cum = next;
    }
    return hi_;
}

std::string
Histogram::render(size_t barWidth) const
{
    uint64_t peak = 0;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream os;
    for (size_t i = 0; i < counts_.size(); ++i) {
        size_t bar = peak
            ? static_cast<size_t>(static_cast<double>(counts_[i]) /
                                  static_cast<double>(peak) *
                                  static_cast<double>(barWidth))
            : 0;
        os << util::fmtFixed(bucketLo(i), 1) << " | "
           << std::string(bar, '#') << ' ' << counts_[i] << '\n';
    }
    return os.str();
}

} // namespace tsp::stats
