/**
 * @file
 * Fixed-width bucket histogram, used for run-length and locality
 * diagnostics of generated workloads.
 */

#ifndef TSP_STATS_HISTOGRAM_H
#define TSP_STATS_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tsp::stats {

/**
 * Histogram over [lo, hi) with a fixed number of equal-width buckets.
 * Values outside the range are clamped into the first/last bucket.
 */
class Histogram
{
  public:
    /** Construct with @p buckets equal-width bins over [lo, hi). */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one observation. */
    void add(double x);

    /** Total observations recorded. */
    uint64_t total() const { return total_; }

    /** Count in bucket @p i. */
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }

    /** Number of buckets. */
    size_t buckets() const { return counts_.size(); }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(size_t i) const;

    /**
     * Value below which @p q (in [0,1]) of the mass lies, interpolated
     * within the containing bucket. Returns lo when empty.
     */
    double quantile(double q) const;

    /** Render a compact one-line-per-bucket ASCII view. */
    std::string render(size_t barWidth = 40) const;

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace tsp::stats

#endif // TSP_STATS_HISTOGRAM_H
