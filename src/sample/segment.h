/**
 * @file
 * Reference-windowed trace segments: a StreamFactory view that clips
 * every thread to the data references [startRef, endRef), preserving
 * the interleaved work events inside the window (they carry the
 * timing) and dropping everything before and after.
 *
 * This is the extraction step of phase sampling: a representative
 * window plus its warmup prefix becomes a short segment the machine
 * can simulate from cold, and the warmup-only segment is simulated
 * separately so its cycles can be subtracted out (sample/sampler.h).
 *
 * Barrier markers are stripped: sampling free-runs segments, matching
 * the paper's trace-driven methodology (per-thread traces free-run;
 * AppProfile::barriers is off by default), and a clipped segment
 * could not satisfy a global barrier anyway — threads shorter than
 * startRef contribute no events at all.
 */

#ifndef TSP_SAMPLE_SEGMENT_H
#define TSP_SAMPLE_SEGMENT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/chunk_source.h"

namespace tsp::sample {

/**
 * Producer snapshots at known reference offsets, one bounded pass per
 * thread: while walking a thread's batches, the producer is cloned
 * (trace::ChunkProducer::clone) at the last batch boundary at or
 * before each requested reference boundary, and the walk stops at the
 * last boundary — nothing past it is generated. A seek then costs one
 * snapshot clone plus at most a batch-and-a-window of skimming,
 * instead of regenerating the whole prefix, which is what makes
 * phase-sampled runs cheaper than unsampled ones in wall-clock terms
 * and not just in simulated references.
 *
 * Producers without the clone capability degrade gracefully: open()
 * falls back to a fresh pass from reference 0.
 */
class SeekIndex
{
  public:
    /** Snapshot @p factory at each of @p boundaries (refs, sorted
     * internally; 0 and duplicates are dropped — a fresh producer
     * already sits at 0). */
    SeekIndex(trace::StreamFactory &factory,
              std::vector<uint64_t> boundaries);

    /**
     * A producer for @p tid positioned at the greatest snapshot at or
     * before @p startRef; its reference offset is stored in
     * @p refsAtOut. Falls back to a fresh producer at offset 0.
     */
    std::unique_ptr<trace::ChunkProducer>
    open(trace::ThreadId tid, uint64_t startRef,
         uint64_t *refsAtOut) const;

  private:
    struct Snapshot
    {
        uint64_t refs = 0;
        std::unique_ptr<trace::ChunkProducer> producer;
    };

    trace::StreamFactory *factory_;
    std::vector<std::vector<Snapshot>> perThread_;

    /**
     * Where each thread's trace ended, when the snapshot walk saw it
     * end (UINT64_MAX when it stopped at the last boundary first).
     * Threads shorter than a segment start would otherwise be skimmed
     * from their last snapshot to their end on *every* seek — with
     * length-skewed workloads (Gauss: 85% length deviation) that
     * silently re-generates most of the trace per segment.
     */
    std::vector<uint64_t> endRefs_;
};

/** StreamFactory clipping each thread to refs [startRef, endRef). */
class SegmentFactory : public trace::StreamFactory
{
  public:
    /**
     * @p inner must outlive this factory; so must @p seek when given
     * (it positions producers near startRef instead of replaying the
     * prefix).
     */
    SegmentFactory(trace::StreamFactory &inner, uint64_t startRef,
                   uint64_t endRef, const SeekIndex *seek = nullptr);

    uint32_t threadCount() const override;

    /** Always 0: segments free-run (barriers are stripped). */
    uint64_t barrierCount(trace::ThreadId tid) const override;

    std::unique_ptr<trace::ChunkProducer>
    openProducer(trace::ThreadId tid) override;

  private:
    trace::StreamFactory &inner_;
    uint64_t startRef_;
    uint64_t endRef_;
    const SeekIndex *seek_;
};

} // namespace tsp::sample

#endif // TSP_SAMPLE_SEGMENT_H
