#include "sample/segment.h"

#include <algorithm>

#include "util/error.h"

namespace tsp::sample {

namespace {

/** Clips one inner producer to the [start, end) reference window. */
class SegmentProducer : public trace::ChunkProducer
{
  public:
    /** @p refsAt: the inner producer's position, in references. */
    SegmentProducer(std::unique_ptr<trace::ChunkProducer> inner,
                    uint64_t start, uint64_t end, uint64_t refsAt)
        : inner_(std::move(inner)), start_(start), end_(end),
          refs_(refsAt)
    {
    }

    bool
    produce(std::vector<trace::TraceEvent> &out) override
    {
        if (done_)
            return false;
        size_t before = out.size();
        // Keep pulling inner batches until something lands inside the
        // window (the pre-window prefix is skimmed at generation
        // speed, no simulation) or the trace/window ends.
        while (out.size() == before && !done_) {
            scratch_.clear();
            if (!inner_->produce(scratch_)) {
                done_ = true;
                break;
            }
            for (const trace::TraceEvent &e : scratch_) {
                switch (e.kind()) {
                  case trace::EventKind::Load:
                  case trace::EventKind::Store:
                    if (refs_ >= end_) {
                        done_ = true;
                        break;
                    }
                    if (refs_ >= start_)
                        out.push_back(e);
                    ++refs_;
                    break;
                  case trace::EventKind::Work:
                    // Work between in-window references carries the
                    // segment's timing; pre/post-window work is
                    // skipped along with its references.
                    if (refs_ >= start_ && refs_ < end_)
                        out.push_back(e);
                    break;
                  case trace::EventKind::Barrier:
                    break;  // segments free-run
                }
                if (done_)
                    break;
            }
        }
        return out.size() != before;
    }

  private:
    std::unique_ptr<trace::ChunkProducer> inner_;
    std::vector<trace::TraceEvent> scratch_;
    uint64_t start_;
    uint64_t end_;
    uint64_t refs_ = 0;
    bool done_ = false;
};

/** A producer for a thread that ends before its segment starts. */
class EmptyProducer : public trace::ChunkProducer
{
  public:
    bool
    produce(std::vector<trace::TraceEvent> &) override
    {
        return false;
    }
};

} // namespace

SeekIndex::SeekIndex(trace::StreamFactory &factory,
                     std::vector<uint64_t> boundaries)
    : factory_(&factory)
{
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(
        std::unique(boundaries.begin(), boundaries.end()),
        boundaries.end());
    while (!boundaries.empty() && boundaries.front() == 0)
        boundaries.erase(boundaries.begin());
    perThread_.resize(factory.threadCount());
    endRefs_.assign(factory.threadCount(), UINT64_MAX);
    if (boundaries.empty())
        return;

    std::vector<trace::TraceEvent> batch;
    for (uint32_t tid = 0; tid < factory.threadCount(); ++tid) {
        auto producer = factory.openProducer(tid);
        size_t next = 0;
        uint64_t refs = 0;
        for (;;) {
            // The snapshot must sit at or before the boundary, so
            // clone before producing the batch that might cross it.
            std::unique_ptr<trace::ChunkProducer> here =
                producer->clone();
            if (here == nullptr)
                break;  // capability missing: open() falls back
            batch.clear();
            if (!producer->produce(batch)) {
                endRefs_[tid] = refs;
                break;
            }
            uint64_t batchRefs = 0;
            for (const trace::TraceEvent &e : batch)
                batchRefs += e.isMemRef() ? 1 : 0;
            if (refs + batchRefs > boundaries[next]) {
                perThread_[tid].push_back(
                    Snapshot{refs, std::move(here)});
                while (next < boundaries.size() &&
                       refs + batchRefs > boundaries[next])
                    ++next;
                if (next == boundaries.size())
                    break;  // nothing past the last boundary
            }
            refs += batchRefs;
        }
    }
}

std::unique_ptr<trace::ChunkProducer>
SeekIndex::open(trace::ThreadId tid, uint64_t startRef,
                uint64_t *refsAtOut) const
{
    *refsAtOut = 0;
    if (tid < perThread_.size()) {
        // A thread that ended before the segment starts contributes
        // nothing; skimming it from its last snapshot to its end on
        // every seek would re-generate most of a length-skewed trace.
        if (startRef >= endRefs_[tid]) {
            *refsAtOut = endRefs_[tid];
            return std::make_unique<EmptyProducer>();
        }
        const std::vector<Snapshot> &snaps = perThread_[tid];
        const Snapshot *best = nullptr;
        for (const Snapshot &s : snaps)
            if (s.refs <= startRef)
                best = &s;
        if (best != nullptr) {
            std::unique_ptr<trace::ChunkProducer> producer =
                best->producer->clone();
            if (producer != nullptr) {
                *refsAtOut = best->refs;
                return producer;
            }
        }
    }
    return factory_->openProducer(tid);
}

SegmentFactory::SegmentFactory(trace::StreamFactory &inner,
                               uint64_t startRef, uint64_t endRef,
                               const SeekIndex *seek)
    : inner_(inner), startRef_(startRef), endRef_(endRef), seek_(seek)
{
    util::fatalIf(startRef > endRef,
                  "segment window start exceeds its end");
}

uint32_t
SegmentFactory::threadCount() const
{
    return inner_.threadCount();
}

uint64_t
SegmentFactory::barrierCount(trace::ThreadId) const
{
    return 0;
}

std::unique_ptr<trace::ChunkProducer>
SegmentFactory::openProducer(trace::ThreadId tid)
{
    uint64_t refsAt = 0;
    std::unique_ptr<trace::ChunkProducer> inner =
        seek_ ? seek_->open(tid, startRef_, &refsAt)
              : inner_.openProducer(tid);
    return std::make_unique<SegmentProducer>(std::move(inner),
                                             startRef_, endRef_,
                                             refsAt);
}

} // namespace tsp::sample
