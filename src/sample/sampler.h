/**
 * @file
 * Phase-sampled simulation: reconstruct full-run statistics from one
 * simulated representative window per phase.
 *
 * Pipeline (all deterministic, see sample/bbv.h):
 *  1. fingerprint fixed-size reference windows (bbvProfile);
 *  2. cluster windows into phases (clusterWindows);
 *  3. for each phase, simulate its representative window preceded by
 *     a warmup prefix (SegmentFactory), and the warmup prefix alone;
 *     the difference isolates the representative's cycles with warmed
 *     caches and directory;
 *  4. scale each representative's per-processor cycles and misses by
 *     its cluster's reference weight, sum per processor across
 *     phases, and take the slowest processor: the estimate of the
 *     unsampled run's execution time.
 *
 * The win is the usual SimPoint trade: simulated references shrink to
 * (clusters x (1 + warmup)) windows out of the whole trace, so cost
 * falls as the trace grows while the estimate tracks execution time
 * within a few percent (docs/performance.md, "Sampling methodology";
 * the error-vs-speed study in EXPERIMENTS.md measures it).
 */

#ifndef TSP_SAMPLE_SAMPLER_H
#define TSP_SAMPLE_SAMPLER_H

#include <cstdint>

#include "core/placement_map.h"
#include "sample/bbv.h"
#include "sample/segment.h"
#include "sim/config.h"
#include "trace/chunk_source.h"

namespace tsp::sample {

/** Sampling knobs; the defaults suit the Table 1/2 workloads. */
struct SampleOptions
{
    /** Window size, in per-thread data references. */
    uint64_t windowRefs = 50'000;

    /** BBV fingerprint dimensionality (hashed block buckets). */
    uint32_t dims = 32;

    /** Phase count k (clamped to the window count). */
    uint32_t clusters = 6;

    /** Warmup windows simulated (and subtracted) before each rep. */
    uint32_t warmupWindows = 1;

    /** Lloyd iteration cap for k-means. */
    uint32_t kmeansIters = 30;
};

/** Reconstructed statistics plus the sampling cost accounting. */
struct SampleEstimate
{
    /** Estimated execution time of the unsampled run, in cycles. */
    uint64_t execTime = 0;

    /** Weighted miss / coherence estimates (same reconstruction). */
    uint64_t totalMisses = 0;
    uint64_t invalidationsSent = 0;

    /** References the full trace contains (all threads). */
    uint64_t fullRefs = 0;

    /** References actually simulated (reps + warmups). */
    uint64_t sampledRefs = 0;

    /** Windows fingerprinted / phases found. */
    uint32_t windows = 0;
    uint32_t clusters = 0;

    /** Fraction of the trace that was simulated (cost measure). */
    double
    sampledFraction() const
    {
        return fullRefs ? static_cast<double>(sampledRefs) /
                              static_cast<double>(fullRefs)
                        : 1.0;
    }
};

/**
 * The reusable (and expensive-to-build) half of phase sampling: the
 * fingerprint profile, the clustering, and producer snapshots at
 * every segment start. Building it costs one fingerprint pass plus
 * one bounded snapshot pass at generation speed; once built, each
 * sampled simulation costs only the segment simulations — which is
 * what makes sampling pay off across an experiment matrix (many
 * placement algorithms and machine configurations over one trace,
 * the paper's Table 1/2 shape). Valid only with the factory it was
 * built from.
 */
struct SamplePlan
{
    SampleOptions options;
    BbvProfile profile;
    Clustering clustering;
    SeekIndex seek;
};

/**
 * Build a SamplePlan for @p factory: fingerprint pass, k-means, and
 * the snapshot pass. @p blockBytes sets fingerprint granularity and
 * normally matches SimConfig::blockBytes of the runs to come (close
 * is fine: the fingerprint only drives clustering).
 */
SamplePlan buildSamplePlan(trace::StreamFactory &factory,
                           const SampleOptions &options,
                           uint64_t blockBytes = 32);

/**
 * Phase-sample the application @p factory streams, simulating under
 * @p cfg / @p placement with a prebuilt @p plan (which must have been
 * built from the same factory).
 */
SampleEstimate sampleSimulate(const sim::SimConfig &cfg,
                              trace::StreamFactory &factory,
                              const placement::PlacementMap &placement,
                              const SamplePlan &plan);

/**
 * One-shot convenience: buildSamplePlan + sampleSimulate. The factory
 * is replayed several times (fingerprint and snapshot passes plus two
 * short passes per phase); every simulation runs through the
 * bounded-memory streaming path.
 */
SampleEstimate sampleSimulate(const sim::SimConfig &cfg,
                              trace::StreamFactory &factory,
                              const placement::PlacementMap &placement,
                              const SampleOptions &options);

} // namespace tsp::sample

#endif // TSP_SAMPLE_SAMPLER_H
