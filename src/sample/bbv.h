/**
 * @file
 * Basic-block-vector-style phase fingerprinting (SimPoint methodology,
 * adapted to trace-driven memory simulation).
 *
 * SimPoint fingerprints fixed-size instruction intervals by the basic
 * blocks they execute; intervals with similar vectors belong to the
 * same program phase, and simulating one representative interval per
 * phase reconstructs whole-program behavior at a fraction of the
 * cost. Our traces carry no basic blocks, so the fingerprint is over
 * the *memory* behavior that actually drives this simulator: window k
 * covers every thread's data references [k*W, (k+1)*W), and its
 * vector counts references per hashed block-address bucket, L1
 * normalized. Two windows with close vectors touch the same blocks in
 * the same proportions — the property that makes their cache and
 * coherence behavior (and therefore their simulated cycles)
 * interchangeable.
 *
 * Everything here is deterministic: the fingerprint pass replays the
 * StreamFactory (replayable by contract), clustering seeds by
 * farthest-point from window 0, and ties break toward the lowest
 * index.
 */

#ifndef TSP_SAMPLE_BBV_H
#define TSP_SAMPLE_BBV_H

#include <cstdint>
#include <vector>

#include "trace/chunk_source.h"

namespace tsp::sample {

/** Per-window fingerprints of one application trace. */
struct BbvProfile
{
    uint64_t windowRefs = 0;  //!< window size, per-thread references
    uint32_t dims = 0;        //!< fingerprint dimensionality

    /** fingerprints[w][d]: L1-normalized block-bucket frequencies. */
    std::vector<std::vector<double>> fingerprints;

    /** Total references (all threads) falling in each window. */
    std::vector<uint64_t> windowRefCounts;

    /** Per-thread reference totals (window count = max / windowRefs). */
    std::vector<uint64_t> threadRefs;

    /** Number of windows. */
    uint32_t windows() const
    {
        return static_cast<uint32_t>(fingerprints.size());
    }

    /** Total references across the whole trace. */
    uint64_t totalRefs() const;
};

/**
 * One replay pass over @p factory: bucket every data reference by
 * hashed block address (at @p blockShift granularity) into its
 * window's fingerprint.
 */
BbvProfile bbvProfile(trace::StreamFactory &factory,
                      uint64_t windowRefs, uint32_t dims,
                      unsigned blockShift);

/** K-means result over a BbvProfile. */
struct Clustering
{
    std::vector<uint32_t> assignment;      //!< window -> cluster
    std::vector<uint32_t> representative;  //!< cluster -> window
    std::vector<uint64_t> weightRefs;      //!< cluster -> total refs

    uint32_t clusters() const
    {
        return static_cast<uint32_t>(representative.size());
    }
};

/**
 * Deterministic k-means over BBV (Euclidean) distance: farthest-point
 * initialization from window 0, Lloyd iterations until a fixed point
 * or @p maxIters, representative = the window nearest its cluster's
 * final centroid. @p k is clamped to the window count.
 *
 * Windows below @p preferRepAtLeast are only chosen as representative
 * when their cluster has no later member: the sampler simulates
 * warmupWindows of prefix before each representative, and a window
 * too early to have that prefix would charge its cold-start cost to
 * the whole phase.
 */
Clustering clusterWindows(const BbvProfile &profile, uint32_t k,
                          uint32_t maxIters,
                          uint32_t preferRepAtLeast = 0);

} // namespace tsp::sample

#endif // TSP_SAMPLE_BBV_H
