#include "sample/bbv.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace tsp::sample {

namespace {

/** splitmix64 finalizer: spreads sequential block ids over buckets. */
uint64_t
mixBlock(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

double
sqDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        double t = a[i] - b[i];
        d += t * t;
    }
    return d;
}

} // namespace

uint64_t
BbvProfile::totalRefs() const
{
    uint64_t total = 0;
    for (uint64_t c : windowRefCounts)
        total += c;
    return total;
}

BbvProfile
bbvProfile(trace::StreamFactory &factory, uint64_t windowRefs,
           uint32_t dims, unsigned blockShift)
{
    util::fatalIf(windowRefs == 0, "BBV window size must be positive");
    util::fatalIf(dims == 0, "BBV dimensionality must be positive");

    BbvProfile p;
    p.windowRefs = windowRefs;
    p.dims = dims;
    p.threadRefs.assign(factory.threadCount(), 0);

    // Raw bucket counts per window; normalized below.
    std::vector<std::vector<uint64_t>> counts;
    std::vector<trace::TraceEvent> batch;
    for (uint32_t tid = 0; tid < factory.threadCount(); ++tid) {
        auto producer = factory.openProducer(tid);
        uint64_t refs = 0;
        for (;;) {
            batch.clear();
            if (!producer->produce(batch))
                break;
            for (const trace::TraceEvent &e : batch) {
                if (!e.isMemRef())
                    continue;
                size_t w = static_cast<size_t>(refs / windowRefs);
                if (w >= counts.size())
                    counts.resize(w + 1,
                                  std::vector<uint64_t>(dims, 0));
                uint64_t block = e.address() >> blockShift;
                ++counts[w][mixBlock(block) % dims];
                ++refs;
            }
        }
        p.threadRefs[tid] = refs;
    }

    p.fingerprints.resize(counts.size());
    p.windowRefCounts.assign(counts.size(), 0);
    for (size_t w = 0; w < counts.size(); ++w) {
        uint64_t total = 0;
        for (uint64_t c : counts[w])
            total += c;
        p.windowRefCounts[w] = total;
        p.fingerprints[w].assign(p.dims, 0.0);
        if (total == 0)
            continue;
        for (uint32_t d = 0; d < p.dims; ++d)
            p.fingerprints[w][d] = static_cast<double>(counts[w][d]) /
                                   static_cast<double>(total);
    }
    return p;
}

Clustering
clusterWindows(const BbvProfile &profile, uint32_t k, uint32_t maxIters,
               uint32_t preferRepAtLeast)
{
    const uint32_t n = profile.windows();
    util::fatalIf(n == 0, "cannot cluster an empty BBV profile");
    if (k > n)
        k = n;
    util::fatalIf(k == 0, "cluster count must be positive");

    const auto &fp = profile.fingerprints;
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);

    // Farthest-point seeding from window 0: deterministic, spreads
    // the initial centroids across the phase space.
    centroids.push_back(fp[0]);
    std::vector<double> nearest(n,
                                std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        uint32_t far = 0;
        double farDist = -1.0;
        for (uint32_t w = 0; w < n; ++w) {
            double d = sqDistance(fp[w], centroids.back());
            if (d < nearest[w])
                nearest[w] = d;
            if (nearest[w] > farDist) {
                farDist = nearest[w];
                far = w;
            }
        }
        centroids.push_back(fp[far]);
    }

    Clustering out;
    out.assignment.assign(n, 0);
    for (uint32_t iter = 0; iter < maxIters; ++iter) {
        bool changed = false;
        for (uint32_t w = 0; w < n; ++w) {
            uint32_t best = 0;
            double bestDist = std::numeric_limits<double>::max();
            for (uint32_t c = 0; c < k; ++c) {
                double d = sqDistance(fp[w], centroids[c]);
                if (d < bestDist) {
                    bestDist = d;
                    best = c;
                }
            }
            if (out.assignment[w] != best) {
                out.assignment[w] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Recompute centroids; an emptied cluster reseeds to the
        // window farthest from its current centroid assignment.
        for (uint32_t c = 0; c < k; ++c) {
            std::vector<double> mean(profile.dims, 0.0);
            uint64_t members = 0;
            for (uint32_t w = 0; w < n; ++w) {
                if (out.assignment[w] != c)
                    continue;
                ++members;
                for (uint32_t d = 0; d < profile.dims; ++d)
                    mean[d] += fp[w][d];
            }
            if (members == 0) {
                uint32_t far = 0;
                double farDist = -1.0;
                for (uint32_t w = 0; w < n; ++w) {
                    double d = sqDistance(
                        fp[w], centroids[out.assignment[w]]);
                    if (d > farDist) {
                        farDist = d;
                        far = w;
                    }
                }
                centroids[c] = fp[far];
                continue;
            }
            for (uint32_t d = 0; d < profile.dims; ++d)
                mean[d] /= static_cast<double>(members);
            centroids[c] = std::move(mean);
        }
    }

    // Drop empty clusters and pick representatives: the member window
    // nearest the final centroid (ties -> lowest window index).
    // Members below preferRepAtLeast only represent a cluster when it
    // has no later member: a window with no room for its warmup
    // prefix would fold uncorrected cold-start cost into the whole
    // phase's weight.
    std::vector<uint32_t> remap(k, 0);
    for (uint32_t c = 0; c < k; ++c) {
        uint32_t rep = n, repEarly = n;
        double repDist = std::numeric_limits<double>::max();
        double repEarlyDist = std::numeric_limits<double>::max();
        uint64_t weight = 0;
        for (uint32_t w = 0; w < n; ++w) {
            if (out.assignment[w] != c)
                continue;
            weight += profile.windowRefCounts[w];
            double d = sqDistance(fp[w], centroids[c]);
            if (w >= preferRepAtLeast) {
                if (d < repDist) {
                    repDist = d;
                    rep = w;
                }
            } else if (d < repEarlyDist) {
                repEarlyDist = d;
                repEarly = w;
            }
        }
        if (rep == n)
            rep = repEarly;
        if (rep == n)
            continue;  // empty cluster after the final sweep
        remap[c] = static_cast<uint32_t>(out.representative.size());
        out.representative.push_back(rep);
        out.weightRefs.push_back(weight);
    }
    for (uint32_t w = 0; w < n; ++w)
        out.assignment[w] = remap[out.assignment[w]];
    return out;
}

} // namespace tsp::sample
