#include "sample/sampler.h"

#include <cmath>
#include <vector>

#include "sample/segment.h"
#include "sim/machine.h"
#include "util/bits.h"
#include "util/error.h"

namespace tsp::sample {

SamplePlan
buildSamplePlan(trace::StreamFactory &factory,
                const SampleOptions &options, uint64_t blockBytes)
{
    unsigned blockShift = util::log2Floor(blockBytes);

    BbvProfile profile = bbvProfile(factory, options.windowRefs,
                                    options.dims, blockShift);
    util::fatalIf(profile.windows() == 0,
                  "cannot sample an empty trace");

    Clustering clustering =
        clusterWindows(profile, options.clusters, options.kmeansIters,
                       options.warmupWindows);

    // Snapshot the producers at every segment start (one bounded
    // generation pass), so each segment resumes near its window
    // instead of regenerating the whole prefix — without this the
    // prefix replays cost O(clusters x trace) and eat the speedup.
    std::vector<uint64_t> boundaries;
    for (uint32_t c = 0; c < clustering.clusters(); ++c) {
        uint32_t rep = clustering.representative[c];
        uint32_t warm = options.warmupWindows < rep
            ? options.warmupWindows
            : rep;
        boundaries.push_back((rep - warm) * options.windowRefs);
    }
    SeekIndex seek(factory, std::move(boundaries));

    return SamplePlan{options, std::move(profile),
                      std::move(clustering), std::move(seek)};
}

SampleEstimate
sampleSimulate(const sim::SimConfig &cfg,
               trace::StreamFactory &factory,
               const placement::PlacementMap &placement,
               const SamplePlan &plan)
{
    cfg.validate();
    const BbvProfile &profile = plan.profile;
    const Clustering &clustering = plan.clustering;
    const SampleOptions &options = plan.options;
    const SeekIndex &seek = plan.seek;

    SampleEstimate est;
    est.fullRefs = profile.totalRefs();
    est.windows = profile.windows();
    est.clusters = clustering.clusters();

    // Execution time is the max over processors of their cycle
    // totals. Summing per-segment executionTime() values would sum
    // per-window maxima — a systematic overestimate whenever the
    // slowest processor differs across windows — so reconstruct each
    // processor's cycles separately and take the max at the end.
    std::vector<double> procCycles(cfg.processors, 0.0);
    double misses = 0, invals = 0;
    const uint64_t W = options.windowRefs;
    for (uint32_t c = 0; c < clustering.clusters(); ++c) {
        uint32_t rep = clustering.representative[c];
        uint64_t weight = clustering.weightRefs[c];
        uint64_t repRefs = profile.windowRefCounts[rep];
        if (weight == 0 || repRefs == 0)
            continue;

        uint32_t warm = options.warmupWindows < rep
            ? options.warmupWindows
            : rep;
        uint64_t segStart = (rep - warm) * W;

        // Representative window with its warmup prefix...
        SegmentFactory segFull(factory, segStart, (rep + 1) * W,
                               &seek);
        sim::SimStats full =
            sim::simulateStreaming(cfg, segFull, placement);
        est.sampledRefs += full.totalMemRefs();

        std::vector<uint64_t> repProcCycles(cfg.processors);
        for (uint32_t pr = 0; pr < cfg.processors; ++pr)
            repProcCycles[pr] = full.procs[pr].finishTime;
        uint64_t repMisses = full.totalMisses();
        uint64_t repInvals = full.totalInvalidationsSent();
        if (warm > 0) {
            // ...minus the warmup alone: what the prefix cost from
            // cold cancels out, leaving the representative's cycles
            // as if its caches had history.
            SegmentFactory segWarm(factory, segStart, rep * W, &seek);
            sim::SimStats warmStats =
                sim::simulateStreaming(cfg, segWarm, placement);
            est.sampledRefs += warmStats.totalMemRefs();
            for (uint32_t pr = 0; pr < cfg.processors; ++pr) {
                uint64_t wc = warmStats.procs[pr].finishTime;
                uint64_t &rc = repProcCycles[pr];
                rc = rc > wc ? rc - wc : 0;
            }
            uint64_t wm = warmStats.totalMisses();
            repMisses = repMisses > wm ? repMisses - wm : 0;
            uint64_t wi = warmStats.totalInvalidationsSent();
            repInvals = repInvals > wi ? repInvals - wi : 0;
        }

        // Scale by the phase's share of the trace, in references.
        double scale = static_cast<double>(weight) /
                       static_cast<double>(repRefs);
        for (uint32_t pr = 0; pr < cfg.processors; ++pr)
            procCycles[pr] +=
                static_cast<double>(repProcCycles[pr]) * scale;
        misses += static_cast<double>(repMisses) * scale;
        invals += static_cast<double>(repInvals) * scale;
    }

    double execTime = 0;
    for (double c : procCycles)
        execTime = c > execTime ? c : execTime;
    est.execTime = static_cast<uint64_t>(std::llround(execTime));
    est.totalMisses = static_cast<uint64_t>(std::llround(misses));
    est.invalidationsSent =
        static_cast<uint64_t>(std::llround(invals));
    return est;
}

SampleEstimate
sampleSimulate(const sim::SimConfig &cfg,
               trace::StreamFactory &factory,
               const placement::PlacementMap &placement,
               const SampleOptions &options)
{
    cfg.validate();
    SamplePlan plan =
        buildSamplePlan(factory, options, cfg.blockBytes);
    return sampleSimulate(cfg, factory, placement, plan);
}

} // namespace tsp::sample
