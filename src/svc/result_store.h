/**
 * @file
 * Crash-safe content-addressed result store (the TSPS format): every
 * completed (job, scale) cell is keyed by its canonical configuration
 * bytes, so a duplicate study is a disk cache hit and a daemon
 * restart serves previously computed results bit-identically.
 *
 * Durability model (shared with the TSPC checkpoint journal):
 *  - every record is framed `u32 len | u32 crc32(payload) | payload`,
 *    with the payload produced by experiment::codec;
 *  - persistence is a whole-image write to `<path>.tmp` followed by
 *    an atomic rename, wrapped in bounded jittered retry — a kill -9
 *    at any instant leaves either the old or the new store intact;
 *  - load() drops a truncated or corrupt tail (warning loudly) and
 *    keeps every CRC-valid record before it, so a killed daemon
 *    loses at most the record being published.
 *
 * Multi-process model: several daemons — or a daemon plus a CLI —
 * may share one TSPS file. An advisory flock on the sidecar
 * `<path>.lock` file coordinates them: load() holds it shared, and
 * put() holds it exclusive around a read-merge-publish cycle that
 * re-reads the file and adopts records another process published
 * before rewriting the whole image, so a racing writer never drops
 * the other's results. The lock is advisory (cooperating processes
 * only) and released by the kernel if the holder dies, so a kill -9
 * never wedges the store.
 *
 * Fault sites: `store.load` (open/replay), `store.lock` (advisory
 * lock acquisition) and `store.put` (persist), all in the chaos
 * matrix.
 */

#ifndef TSP_SVC_RESULT_STORE_H
#define TSP_SVC_RESULT_STORE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "experiment/lab.h"
#include "experiment/parallel.h"

namespace tsp::svc {

/**
 * Disk-backed map from canonical job configuration to RunResult.
 * Thread-safe: lookup() and put() may race from any number of daemon
 * workers.
 */
class ResultStore
{
  public:
    /**
     * Open (or create) the store at @p path, replaying every intact
     * record. Throws FatalError on a foreign or wrong-scale file.
     */
    ResultStore(std::string path, uint32_t scale);

    /** The workload scale every stored result was computed at. */
    uint32_t scale() const { return scale_; }

    /** Number of resident result records. */
    size_t size() const;

    /** Bytes of truncated/corrupt tail dropped by the last load. */
    size_t droppedBytes() const { return dropped_; }

    /** The backing file path. */
    const std::string &path() const { return path_; }

    /** The sidecar advisory-lock path (`<path>.lock`). */
    std::string lockPath() const { return path_ + ".lock"; }

    /**
     * FNV-1a digest of the canonical configuration bytes of
     * (@p job, @p scale) — the store's content address.
     */
    static uint64_t digestOf(const experiment::RunJob &job,
                             uint32_t scale);

    /**
     * The stored result of @p job, if present. Bumps the store.hits /
     * store.misses metrics.
     */
    std::optional<experiment::RunResult>
    lookup(const experiment::RunJob &job) const;

    /**
     * Persist @p result under @p job's content address. Returns false
     * (and writes nothing) when the key is already present. The
     * publish runs under the exclusive advisory lock as a
     * read-merge-publish cycle: records another process wrote since
     * our last look at the file are adopted before the whole image is
     * rewritten, so concurrent writers never drop each other's work.
     * On a persist failure that survives bounded retry the record
     * stays resident in memory — served to lookups, and re-published
     * by the next successful put — and the error propagates so the
     * caller can report it.
     */
    bool put(const experiment::RunJob &job,
             const experiment::RunResult &result);

  private:
    /** Canonical key bytes: scale, app, alg, point, cache mode. */
    static std::string keyBytes(const experiment::RunJob &job,
                                uint32_t scale);

    void load();

    /**
     * Adopt every intact record in the on-disk file that this process
     * has not seen (caller holds mutex_ and the exclusive flock).
     */
    void mergeFromDisk();

    /** Serialize header + every resident record, in key order. */
    std::string buildImage() const;

    /**
     * Validate @p bytes' TSPS header and replay every intact record
     * into results_ (first writer wins; resident records are never
     * overwritten). Returns the byte count of the valid prefix;
     * throws FatalError on a foreign, wrong-version or wrong-scale
     * header.
     */
    size_t replay(const std::string &bytes);

    void persist();

    std::string path_;
    uint32_t scale_;

    mutable std::mutex mutex_;
    std::map<std::string, experiment::RunResult> results_;
    size_t dropped_ = 0;
};

} // namespace tsp::svc

#endif // TSP_SVC_RESULT_STORE_H
