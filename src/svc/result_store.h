/**
 * @file
 * Crash-safe content-addressed result store (the TSPS format): every
 * completed (job, scale) cell is keyed by its canonical configuration
 * bytes, so a duplicate study is a disk cache hit and a daemon
 * restart serves previously computed results bit-identically.
 *
 * Durability model (shared with the TSPC checkpoint journal):
 *  - every record is framed `u32 len | u32 crc32(payload) | payload`,
 *    with the payload produced by experiment::codec;
 *  - persistence is a whole-image write to `<path>.tmp` followed by
 *    an atomic rename, wrapped in bounded jittered retry — a kill -9
 *    at any instant leaves either the old or the new store intact;
 *  - load() drops a truncated or corrupt tail (warning loudly) and
 *    keeps every CRC-valid record before it, so a killed daemon
 *    loses at most the record being published.
 *
 * Fault sites: `store.load` (open/replay) and `store.put` (persist),
 * both in the chaos matrix.
 */

#ifndef TSP_SVC_RESULT_STORE_H
#define TSP_SVC_RESULT_STORE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "experiment/lab.h"
#include "experiment/parallel.h"

namespace tsp::svc {

/**
 * Disk-backed map from canonical job configuration to RunResult.
 * Thread-safe: lookup() and put() may race from any number of daemon
 * workers.
 */
class ResultStore
{
  public:
    /**
     * Open (or create) the store at @p path, replaying every intact
     * record. Throws FatalError on a foreign or wrong-scale file.
     */
    ResultStore(std::string path, uint32_t scale);

    /** The workload scale every stored result was computed at. */
    uint32_t scale() const { return scale_; }

    /** Number of resident result records. */
    size_t size() const;

    /** Bytes of truncated/corrupt tail dropped by the last load. */
    size_t droppedBytes() const { return dropped_; }

    /** The backing file path. */
    const std::string &path() const { return path_; }

    /**
     * FNV-1a digest of the canonical configuration bytes of
     * (@p job, @p scale) — the store's content address.
     */
    static uint64_t digestOf(const experiment::RunJob &job,
                             uint32_t scale);

    /**
     * The stored result of @p job, if present. Bumps the store.hits /
     * store.misses metrics.
     */
    std::optional<experiment::RunResult>
    lookup(const experiment::RunJob &job) const;

    /**
     * Persist @p result under @p job's content address. Returns false
     * (and writes nothing) when the key is already present. On a
     * persist failure that survives bounded retry the record stays
     * resident in memory — served to lookups, and re-published by the
     * next successful put (the image is rewritten whole) — and the
     * error propagates so the caller can report it.
     */
    bool put(const experiment::RunJob &job,
             const experiment::RunResult &result);

  private:
    /** Canonical key bytes: scale, app, alg, point, cache mode. */
    static std::string keyBytes(const experiment::RunJob &job,
                                uint32_t scale);

    void load();
    void persist() const;

    std::string path_;
    uint32_t scale_;

    mutable std::mutex mutex_;
    std::map<std::string, experiment::RunResult> results_;
    std::string image_;  //!< serialized file image (header + records)
    size_t dropped_ = 0;
};

} // namespace tsp::svc

#endif // TSP_SVC_RESULT_STORE_H
