/**
 * @file
 * The resident experiment daemon: a bounded priority job queue in
 * front of the Lab/simulation engine, with admission control,
 * per-request deadlines and graceful drain.
 *
 * Service guarantees:
 *  - *admission control / load shedding* — submit() either admits a
 *    request into the bounded queue or rejects it immediately with a
 *    reason (queue full, draining, malformed); a rejected caller
 *    never blocks and never holds daemon resources;
 *  - *deadlines* — a request carries a deadline measured from
 *    admission. Expired while still queued, it is answered Expired
 *    without running anything; overdue mid-run, a per-request
 *    Watchdog trips the request's CancelToken (with deterministic
 *    inline clock checks between cells), the in-flight cell finishes,
 *    and the remaining cells are answered as cancelled;
 *  - *resilience* — any exception a request raises (including
 *    injected faults at the `svc.dequeue` site) is caught at the
 *    request boundary and reported as a Failed response; the daemon
 *    itself never dies serving a request;
 *  - *graceful drain* — beginDrain() stops admission while queued and
 *    in-flight requests finish normally; drain() additionally blocks
 *    until the service is idle and joins the workers (the SIGTERM
 *    path of tsp-serve);
 *  - *durable memoization* — with a store path configured, completed
 *    cells are published to a crash-safe ResultStore and duplicate
 *    cells (within or across process lifetimes) are disk cache hits,
 *    served bit-identically.
 */

#ifndef TSP_SVC_DAEMON_H
#define TSP_SVC_DAEMON_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "experiment/lab.h"
#include "experiment/outcome.h"
#include "experiment/parallel.h"
#include "svc/result_store.h"

namespace tsp::svc {

/** Final disposition of an admitted study request. */
enum class StudyStatus : uint8_t {
    Completed,         //!< every cell has an outcome (ok or failed)
    Expired,           //!< deadline passed while queued; nothing ran
    DeadlineExceeded,  //!< deadline hit mid-run; tail cells cancelled
    Failed,            //!< the request failed as a whole
};

/** Lowercase status name, e.g. "deadline-exceeded". */
std::string statusName(StudyStatus status);

/**
 * A point-in-time progress report for an admitted request. Streamed
 * to the request's onProgress hook as the study moves through the
 * queue and its cells, so a remote client can tell slow from dead.
 */
struct StudyProgress
{
    enum class Stage : uint8_t {
        Queued = 0,   //!< admitted; waiting for a worker
        Running = 1,  //!< a worker is executing cells
        Done = 2,     //!< the response is about to be delivered
    };

    Stage stage = Stage::Queued;
    uint32_t cellsDone = 0;    //!< cells with a disposition so far
    uint32_t totalCells = 0;   //!< jobs in the study
    double lastCellMillis = 0.0;  //!< wall time of the latest cell
};

/** Lowercase stage name, e.g. "running". */
std::string stageName(StudyProgress::Stage stage);

struct StudyResponse;

/** One study: a batch of simulation cells answered as a unit. */
struct StudyRequest
{
    std::vector<experiment::RunJob> jobs;

    /** Higher runs first; ties keep admission order. */
    int priority = 0;

    /** Answer-by budget from admission; 0 = the daemon's default. */
    std::chrono::milliseconds deadline{0};

    /**
     * Progress hook, invoked on daemon threads: once with Queued at
     * admission, after every cell disposition with Running, and with
     * Done just before the response future is fulfilled. Exceptions
     * it throws are swallowed — a broken observer cannot fail the
     * study. Empty = no streaming.
     */
    std::function<void(const StudyProgress &)> onProgress;

    /**
     * Completion hook, invoked on the answering worker thread just
     * before the future is fulfilled (same containment as
     * onProgress). Lets a transport deliver the response without
     * parking a thread on the future.
     */
    std::function<void(const StudyResponse &)> onComplete;
};

/** The daemon's answer to an admitted request. */
struct StudyResponse
{
    StudyStatus status = StudyStatus::Failed;

    /** Failure detail when status == Failed. */
    std::string error;

    /** Per-job outcomes, in input order (jobs.size() entries). */
    std::vector<experiment::Outcome<experiment::RunResult>> outcomes;

    size_t cacheHits = 0;        //!< cells served from the store
    size_t executed = 0;         //!< cells simulated fresh
    size_t cancelledCells = 0;   //!< cells cancelled by the deadline

    double queueMillis = 0.0;    //!< admission -> dequeue (or expiry)
    double totalMillis = 0.0;    //!< admission -> answer
};

/** submit()'s answer: an admitted future or a rejection reason. */
struct SubmitResult
{
    /** Engaged iff the request was admitted. */
    std::optional<std::future<StudyResponse>> accepted;

    /** Human-readable shed reason; non-empty iff rejected. */
    std::string rejection;

    bool admitted() const { return accepted.has_value(); }
};

/**
 * The resident experiment service. Construction starts the worker
 * pool (optionally paused); destruction drains and joins.
 */
class Daemon
{
  public:
    using Clock = std::chrono::steady_clock;

    struct Config
    {
        /** Workload scale the daemon's Lab (and store) is bound to. */
        uint32_t scale = 8;

        /** Worker threads executing requests (>= 1). */
        unsigned workers = 2;

        /** Bounded queue: admissions beyond this are shed (>= 1). */
        size_t queueCapacity = 64;

        /** Deadline for requests that do not carry one; 0 = none. */
        std::chrono::milliseconds defaultDeadline{0};

        /** Persist results here; empty = in-memory memoization only. */
        std::string storePath;

        /** Poll period of the per-request deadline watchdog. */
        std::chrono::milliseconds watchdogPoll{2};

        /**
         * Start with the workers paused: requests are admitted and
         * queued but nothing executes until resume(). Lets tests fill
         * the bounded queue deterministically.
         */
        bool startPaused = false;

        /**
         * Test-only clock override (admission stamps, expiry checks,
         * latency accounting); empty = steady_clock. Under a fake
         * clock the real-time watchdog is skipped — the inline
         * between-cell checks drive cancellation deterministically.
         */
        std::function<Clock::time_point()> clock;
    };

    /** Starts the workers; throws if the store cannot be opened. */
    explicit Daemon(const Config &config);

    /** Drains (finishing queued and in-flight work) and joins. */
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Admission control: enqueue @p request or reject it with a
     * reason. Never blocks on the queue. Rejections (queue full,
     * draining, empty study, injected `svc.admit` faults) bump the
     * svc.shed metric and the shed counter.
     */
    SubmitResult submit(StudyRequest request);

    /** Release workers started paused (idempotent). */
    void resume();

    /** Stop admitting; queued and in-flight requests still finish. */
    void beginDrain();

    /**
     * beginDrain(), then block until every admitted request is
     * answered and join the workers. Idempotent.
     */
    void drain();

    /** True once beginDrain()/drain() has been called. */
    bool draining() const;

    /** Requests admitted but not yet started. */
    size_t queueDepth() const;

    /** Service counters (monotonic over the daemon's lifetime). */
    struct Counters
    {
        uint64_t admitted = 0;   //!< requests accepted into the queue
        uint64_t shed = 0;       //!< submissions rejected
        uint64_t expired = 0;    //!< answered Expired from the queue
        uint64_t completed = 0;  //!< requests answered (any status)
    };
    Counters counters() const;

    /** The daemon's Lab (shared, thread-safe). */
    experiment::Lab &lab() { return lab_; }

    /** The result store, or nullptr when running without one. */
    ResultStore *store() { return store_.get(); }

    const Config &config() const { return config_; }

  private:
    struct Pending
    {
        StudyRequest request;
        std::promise<StudyResponse> promise;
        Clock::time_point admitted;
        Clock::time_point expiry;  //!< time_point::max() = no deadline
    };

    Clock::time_point now() const;
    void workerLoop();
    StudyResponse execute(Pending &pending);

    Config config_;
    experiment::Lab lab_;
    std::unique_ptr<ResultStore> store_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    /** Keyed (-priority, admission seq): begin() is next to run. */
    std::map<std::pair<int, uint64_t>, Pending> queue_;
    uint64_t nextSeq_ = 0;
    size_t inFlight_ = 0;
    bool paused_ = false;
    bool draining_ = false;
    bool stopping_ = false;
    Counters counters_;
    std::vector<std::thread> workers_;
};

} // namespace tsp::svc

#endif // TSP_SVC_DAEMON_H
