/**
 * @file
 * Wire-protocol client for the experiment service: connect / send /
 * receive with hard timeouts, streamed progress delivery, and
 * reconnect-and-reissue on transport failure.
 *
 * Retry safety: the study simulation is deterministic and the daemon
 * memoizes every completed cell in the content-addressed result
 * store, so re-issuing a request after a half-served connection (or
 * a server kill -9 and restart) is idempotent — the retry lands as
 * store cache hits and the answer is bit-identical. The retry jitter
 * is keyed by the request's config digest (`wire::requestDigest`), so
 * clients re-issuing distinct requests back off on distinct
 * schedules.
 *
 * Progress frames reset the receive deadline: a server that is alive
 * and heartbeating cell i/N is *slow*, and only a silent one is
 * *dead*. A server-side Reject(Shed/Draining) is a definitive answer
 * (the server is healthy and refusing), reported without burning
 * transport retries; everything else — refused connects, timeouts,
 * torn streams, malformed answers — is a transport failure and
 * retried. A client that exhausts its budget reports !alive() so the
 * caller can degrade to a local in-process run.
 */

#ifndef TSP_SVC_CLIENT_H
#define TSP_SVC_CLIENT_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "svc/daemon.h"
#include "svc/wire.h"

namespace tsp::svc {

/** One-request-at-a-time wire client (one connection per submit). */
class Client
{
  public:
    struct Config
    {
        std::string host = "127.0.0.1";
        uint16_t port = 0;

        std::chrono::milliseconds connectTimeout{2000};
        std::chrono::milliseconds sendTimeout{5000};

        /**
         * Silence budget: reset by every received frame, so a
         * heartbeating server never times out mid-study.
         */
        std::chrono::milliseconds recvTimeout{10000};

        /** Reconnect-and-reissue attempts beyond the first. */
        unsigned retryBudget = 3;

        /** Initial backoff of the jittered reconnect schedule. */
        std::chrono::milliseconds retryBackoff{10};

        /** Names this client in logs and seeds its retry jitter. */
        std::string identity = "svc.client";
    };

    /** What a submit() ended as. */
    struct Result
    {
        /** The server delivered a Response frame. */
        bool answered = false;

        /** The server answered Reject(Shed/Draining) — healthy but
         *  refusing; retrying immediately is pointless. */
        bool rejected = false;
        std::string rejection;

        /** Valid iff answered. */
        StudyResponse response;

        unsigned attempts = 0;    //!< connections tried
        unsigned reconnects = 0;  //!< transport failures retried

        /** False = transport dead after the full retry budget; the
         *  caller should degrade to a local in-process run. */
        bool alive() const { return answered || rejected; }
    };

    using ProgressFn = std::function<void(const StudyProgress &)>;

    explicit Client(const Config &config) : config_(config) {}

    /**
     * Submit @p request over a fresh connection, invoking
     * @p onProgress for every Progress frame, reconnecting and
     * re-issuing on transport failure until the retry budget is
     * spent. Never throws on transport trouble — that is the
     * Result's job.
     */
    Result submit(const StudyRequest &request,
                  const ProgressFn &onProgress = {});

    const Config &config() const { return config_; }

  private:
    /** One connect-send-receive attempt; throws on transport error. */
    Result attemptOnce(const std::string &submitFrame,
                       const ProgressFn &onProgress);

    Config config_;
};

} // namespace tsp::svc

#endif // TSP_SVC_CLIENT_H
