/**
 * @file
 * The network front of the experiment daemon: a poll-based TCP
 * listener speaking the `svc::wire` protocol in front of
 * `Daemon::submit`. One thread owns every socket; daemon worker
 * threads deliver progress and responses through per-connection
 * mailboxes and a self-pipe wakeup, so no socket is ever touched from
 * two threads.
 *
 * Robustness posture (each guarantee has a chaos-matrix fault site or
 * a dedicated test):
 *  - *admission control* — connections beyond maxConnections are
 *    answered with a `Reject(Capacity)` frame and closed; while
 *    draining, new submits get `Reject(Draining)`;
 *  - *slow-loris / idle reaping* — a connection stalled mid-frame
 *    past readTimeout, or idle with no in-flight study past
 *    idleTimeout, is reaped;
 *  - *malformed input* — a stream the Deframer rejects (bad magic,
 *    oversized declared length, CRC mismatch) draws a best-effort
 *    `Reject(Malformed)` and the connection is dropped — the server
 *    never crashes or over-allocates on attacker-shaped bytes;
 *  - *exception containment* — a failure while serving one connection
 *    (including injected `net.accept` / `net.read` / `net.write` /
 *    `net.frame` faults) closes that connection only; the listener
 *    and every other connection keep running;
 *  - *graceful drain* — beginDrain() stops admitting work, stop()
 *    flushes already-earned answers (bounded by drainTimeout) before
 *    closing sockets: the tsp-serve SIGTERM path.
 */

#ifndef TSP_SVC_SERVER_H
#define TSP_SVC_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "svc/daemon.h"
#include "svc/wire.h"

namespace tsp::svc {

/**
 * TCP listener serving wire-framed study requests against a Daemon.
 * Construction binds, listens and starts the poll thread; destruction
 * stops it. The Daemon must outlive the Server.
 */
class Server
{
  public:
    struct Config
    {
        /** Bind address (IPv4 dotted quad). */
        std::string host = "127.0.0.1";

        /** Listen port; 0 = ephemeral (read it back via port()). */
        uint16_t port = 0;

        /** Open connections beyond this are rejected at accept. */
        size_t maxConnections = 64;

        /** Budget for a connection stalled in the middle of a frame. */
        std::chrono::milliseconds readTimeout{5000};

        /** Budget for an idle connection with nothing in flight. */
        std::chrono::milliseconds idleTimeout{30000};

        /** stop()'s budget for flushing earned answers. */
        std::chrono::milliseconds drainTimeout{5000};
    };

    /** Service counters (monotonic over the server's lifetime). */
    struct Counters
    {
        uint64_t accepted = 0;   //!< connections admitted
        uint64_t rejected = 0;   //!< connections refused at accept
        uint64_t malformed = 0;  //!< streams dropped as malformed
        uint64_t reaped = 0;     //!< connections reaped on timeout
        uint64_t ioErrors = 0;   //!< connections dropped on I/O faults
        uint64_t framesIn = 0;   //!< frames received
        uint64_t framesOut = 0;  //!< frames sent
    };

    /** Bind + listen + start the poll thread; throws FatalError. */
    Server(Daemon &daemon, const Config &config);

    /** stop()s (flushing within drainTimeout) and joins. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (the ephemeral one when config.port was 0). */
    uint16_t port() const { return port_; }

    /** Refuse new submits with Reject(Draining); answers still flow. */
    void beginDrain();

    /**
     * beginDrain(), flush every already-earned answer (bounded by
     * drainTimeout), close all sockets and join. Idempotent.
     */
    void stop();

    Counters counters() const;

  private:
    struct Mailbox;
    struct Connection;

    void pollLoop();
    void acceptReady();
    bool serveConnection(Connection &conn, short revents);
    void handleFrame(Connection &conn, const wire::Frame &frame);
    void flushMailbox(Connection &conn);
    bool writeOut(Connection &conn);
    void rejectAndClose(int fd, wire::RejectCode code,
                        const std::string &reason);
    void closeConnection(int fd);
    void wake();

    Daemon &daemon_;
    Config config_;
    uint16_t port_ = 0;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;

    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> malformed_{0};
    std::atomic<uint64_t> reaped_{0};
    std::atomic<uint64_t> ioErrors_{0};
    std::atomic<uint64_t> framesIn_{0};
    std::atomic<uint64_t> framesOut_{0};

    /** Owned by the poll thread only. */
    std::map<int, std::unique_ptr<Connection>> connections_;

    std::thread thread_;
    std::mutex stopMutex_;  //!< serializes stop() callers
};

} // namespace tsp::svc

#endif // TSP_SVC_SERVER_H
