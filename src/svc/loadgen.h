/**
 * @file
 * Closed-loop load generator for the experiment daemon: N client
 * threads each submit a request drawn from a job palette, wait for
 * the answer, and repeat — the overload-survival harness behind
 * `tsp-serve` and the service CI smoke.
 *
 * A shed submission is retried on the client's deterministic
 * decorrelated-jitter backoff schedule (util::jitteredRetryPolicy,
 * seeded from the client's identity) up to a capped retry budget,
 * then abandoned. The report aggregates admission/shed/abandon
 * counts, per-status answers, store cache hits, latency percentiles,
 * and a scheduling-independent digest of every answered result for
 * bit-identity checks across restarts.
 */

#ifndef TSP_SVC_LOADGEN_H
#define TSP_SVC_LOADGEN_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "svc/daemon.h"
#include "util/cancel.h"
#include "util/retry.h"

namespace tsp::svc {

/** Knobs of one load-generation run. */
struct LoadGenOptions
{
    /** Concurrent closed-loop clients. */
    unsigned clients = 4;

    /** Requests each client issues (admitted or abandoned). */
    unsigned requestsPerClient = 16;

    /** Cells per request, drawn from the palette. */
    unsigned jobsPerRequest = 1;

    /** Jobs requests draw from; must not be empty. */
    std::vector<experiment::RunJob> palette;

    /** Root of every client's deterministic draw sequence. */
    uint64_t seed = 1;

    /** Per-request deadline; 0 = the daemon's default. */
    std::chrono::milliseconds deadline{0};

    /** Shed retries after the first attempt; 0 = give up at once. */
    unsigned retryBudget = 2;

    /** Initial backoff of the per-client retry schedule. */
    std::chrono::milliseconds retryBackoff{1};

    /** Stop issuing new requests once tripped (SIGTERM path). */
    const util::CancelToken *stop = nullptr;

    // ------------------------------------------------- socket mode

    /**
     * When serverPort != 0, clients submit over the wire to
     * serverHost:serverPort (one svc::Client per load thread)
     * instead of calling Daemon::submit directly. The daemon
     * argument is then only the degradation target. Socket and
     * in-process runs over the same options produce the same
     * resultDigest.
     */
    uint16_t serverPort = 0;
    std::string serverHost = "127.0.0.1";

    /** Per-frame silence budget of socket-mode clients. */
    std::chrono::milliseconds netTimeout{10000};

    /** Reconnect-and-reissue budget of socket-mode clients. */
    unsigned netRetryBudget = 4;

    /**
     * When the transport stays dead past the reconnect budget, run
     * the request's cells locally on the daemon's Lab (deterministic,
     * so the digest is unchanged) instead of abandoning it.
     */
    bool localFallback = true;
};

/** Aggregated outcome of a load-generation run. */
struct LoadGenReport
{
    uint64_t attempts = 0;   //!< submit() calls, retries included
    uint64_t admitted = 0;
    uint64_t shed = 0;       //!< rejections observed (pre-retry)
    uint64_t abandoned = 0;  //!< requests given up after the budget
    uint64_t skipped = 0;    //!< requests not issued (stop tripped)

    uint64_t completed = 0;
    uint64_t expired = 0;
    uint64_t deadlineExceeded = 0;
    uint64_t failed = 0;

    uint64_t cacheHits = 0;       //!< summed over responses
    uint64_t cellsExecuted = 0;   //!< summed over responses

    uint64_t reconnects = 0;      //!< socket-mode transport retries
    uint64_t degradedLocal = 0;   //!< requests served by local fallback

    /** Admit-to-answer latencies of answered requests, sorted. */
    std::vector<double> latenciesMs;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;

    /**
     * CRC-32 (hex) over every answered request's result lines in
     * (client, request) order — independent of worker scheduling, so
     * two runs with the same options against bit-identical daemons
     * produce the same digest.
     */
    std::string resultDigest;

    /** Multi-line human summary (shed rate, hit rate, p50/p99). */
    std::string summary() const;
};

/**
 * The retry policy of client @p client: jitteredRetryPolicy seeded
 * from the client's identity, with @p attempts total tries and
 * @p initial backoff. Exposed so tests can pin the schedule's
 * determinism and bounds.
 */
util::RetryPolicy loadGenRetryPolicy(unsigned client,
                                     unsigned attempts,
                                     std::chrono::milliseconds initial);

/**
 * A small standard palette for @p app on the daemon's Lab: every
 * (algorithm x standard machine point) cell, with and without the
 * infinite cache.
 */
std::vector<experiment::RunJob> defaultPalette(experiment::Lab &lab,
                                               workload::AppId app);

/**
 * Drive @p daemon with closed-loop clients until every client issued
 * its requests (or @p options.stop trips). Blocks; the daemon is
 * left running (callers decide when to drain).
 */
LoadGenReport runLoadGen(Daemon &daemon,
                         const LoadGenOptions &options);

} // namespace tsp::svc

#endif // TSP_SVC_LOADGEN_H
