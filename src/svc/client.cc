#include "svc/client.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metric_defs.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tsp::svc {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void
transport(const std::string &what)
{
    throw std::runtime_error(what);
}

/** RAII socket closer for the attempt path. */
struct Socket
{
    int fd = -1;
    ~Socket()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

int
remainingMillis(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/** Poll @p fd for @p events until @p deadline; throws on timeout. */
void
awaitReady(int fd, short events, Clock::time_point deadline,
           const std::string &what)
{
    for (;;) {
        int left = remainingMillis(deadline);
        if (left == 0)
            transport(what + " timed out");
        pollfd pfd{fd, events, 0};
        int ready = ::poll(&pfd, 1, left);
        if (ready > 0) {
            if (pfd.revents & (POLLERR | POLLNVAL | POLLHUP)) {
                // Readable HUP still delivers buffered bytes; only
                // bail when the event we wanted cannot happen.
                if (!(pfd.revents & events))
                    transport(what + " failed (connection error)");
            }
            return;
        }
        if (ready == 0)
            transport(what + " timed out");
        if (errno != EINTR)
            transport(what + " poll failed: " +
                      std::strerror(errno));
    }
}

} // namespace

Client::Result
Client::attemptOnce(const std::string &submitFrame,
                    const ProgressFn &onProgress)
{
    Socket sock;
    sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (sock.fd < 0)
        transport(std::string("cannot create socket: ") +
                  std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    util::fatalIf(::inet_pton(AF_INET, config_.host.c_str(),
                              &addr.sin_addr) != 1,
                  "client target is not an IPv4 dotted quad: " +
                      config_.host);

    int flags = ::fcntl(sock.fd, F_GETFL, 0);
    ::fcntl(sock.fd, F_SETFL, flags | O_NONBLOCK);
    int one = 1;
    ::setsockopt(sock.fd, IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));

    // Bounded connect.
    Clock::time_point connectBy = Clock::now() + config_.connectTimeout;
    if (::connect(sock.fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS)
            transport(std::string("connect failed: ") +
                      std::strerror(errno));
        awaitReady(sock.fd, POLLOUT, connectBy, "connect");
        int err = 0;
        socklen_t errLen = sizeof(err);
        ::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &err, &errLen);
        if (err != 0)
            transport(std::string("connect failed: ") +
                      std::strerror(err));
    }

    // Bounded send of the one submit frame.
    Clock::time_point sendBy = Clock::now() + config_.sendTimeout;
    size_t off = 0;
    while (off < submitFrame.size()) {
        ssize_t n = ::send(sock.fd, submitFrame.data() + off,
                           submitFrame.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            awaitReady(sock.fd, POLLOUT, sendBy, "send");
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        transport(std::string("send failed: ") +
                  std::strerror(errno));
    }

    // Receive until the definitive frame. Every received frame —
    // above all the Progress heartbeats — resets the silence budget,
    // distinguishing a slow server from a dead one.
    Result result;
    wire::Deframer deframer;
    Clock::time_point recvBy = Clock::now() + config_.recvTimeout;
    for (;;) {
        std::optional<wire::Frame> frame = deframer.next();
        if (!frame) {
            awaitReady(sock.fd, POLLIN, recvBy, "receive");
            char buf[64 * 1024];
            ssize_t n = ::recv(sock.fd, buf, sizeof(buf), 0);
            if (n == 0)
                transport("server closed the connection before "
                          "answering");
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    continue;
                transport(std::string("receive failed: ") +
                          std::strerror(errno));
            }
            deframer.feed(buf, static_cast<size_t>(n));
            recvBy = Clock::now() + config_.recvTimeout;
            continue;
        }

        if (frame->type == wire::FrameType::Progress) {
            if (onProgress) {
                try {
                    onProgress(wire::decodeProgress(frame->payload));
                } catch (const std::exception &) {
                    // Observer containment, same as the daemon's.
                }
            }
        } else if (frame->type == wire::FrameType::Response) {
            result.answered = true;
            result.response = wire::decodeResponse(frame->payload);
            return result;
        } else if (frame->type == wire::FrameType::Reject) {
            wire::Reject reject = wire::decodeReject(frame->payload);
            if (reject.code == wire::RejectCode::Shed ||
                reject.code == wire::RejectCode::Draining) {
                // A healthy server refusing: definitive, no retry.
                result.rejected = true;
                result.rejection = reject.reason;
                return result;
            }
            // Capacity / Malformed / Internal: transient transport
            // trouble from this client's perspective — retry.
            transport("server rejected the connection: " +
                      wire::rejectCodeName(reject.code) + " (" +
                      reject.reason + ")");
        } else {
            transport("server sent a client-to-server frame type");
        }
    }
}

Client::Result
Client::submit(const StudyRequest &request,
               const ProgressFn &onProgress)
{
    // The reissued frame is encoded once: every attempt sends
    // byte-identical content, which is what makes the store-side
    // dedup exact.
    std::string submitFrame = wire::encodeFrame(
        wire::FrameType::Submit, wire::encodeSubmit(request));

    util::RetryPolicy policy = util::jitteredRetryPolicy(
        config_.identity + "/" +
        util::concat(std::hex, wire::requestDigest(request)));
    policy.maxAttempts = config_.retryBudget + 1;
    policy.initialBackoff = config_.retryBackoff;
    policy.maxBackoff = std::chrono::milliseconds(250);
    util::BackoffSchedule schedule(policy);

    Result result;
    for (unsigned attempt = 1;; ++attempt) {
        ++result.attempts;
        try {
            Result got = attemptOnce(submitFrame, onProgress);
            got.attempts = result.attempts;
            got.reconnects = result.reconnects;
            return got;
        } catch (const util::PanicError &) {
            throw;  // a bug, not a transport condition
        } catch (const std::exception &e) {
            if (attempt >= policy.maxAttempts) {
                util::warn(util::concat(
                    config_.identity, ": transport dead after ",
                    result.attempts, " attempts: ", e.what()));
                return result;
            }
            ++result.reconnects;
            obs::netReconnects().inc();
            std::chrono::milliseconds backoff = schedule.next();
            util::warn(util::concat(
                config_.identity, ": transport failure (attempt ",
                attempt, "/", policy.maxAttempts, "): ", e.what(),
                "; reconnecting in ", backoff.count(), " ms"));
            std::this_thread::sleep_for(backoff);
        }
    }
}

} // namespace tsp::svc
