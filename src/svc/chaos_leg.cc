#include "svc/chaos_leg.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "experiment/configs.h"
#include "svc/daemon.h"

namespace tsp::svc {

using experiment::MachinePoint;
using experiment::RunJob;
using experiment::RunResult;

namespace {

std::string
storePath(const std::string &workDir)
{
    return workDir + "/chaos_store.tsps";
}

/** Exact bit pattern of a double, matching the harness's digests. */
std::string
hexBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

/**
 * Two fixed two-cell studies over the first standard machine point:
 * enough to hit svc.admit and svc.dequeue per request, store.put per
 * fresh cell, and the duplicate cell exercises the store dedup path.
 */
std::vector<StudyRequest>
legRequests(workload::AppId app, uint32_t threads)
{
    std::vector<MachinePoint> points =
        experiment::standardSweep(threads);
    const MachinePoint &pt = points.front();
    RunJob loadBal{app, placement::Algorithm::LoadBal, pt, false};
    RunJob shareRefs{app, placement::Algorithm::ShareRefs, pt, false};

    std::vector<StudyRequest> requests(2);
    requests[0].jobs = {loadBal, shareRefs};
    requests[1].jobs = {shareRefs, loadBal};  // pure duplicates
    return requests;
}

std::string
runLeg(workload::AppId app, uint32_t scale,
       const std::string &workDir)
{
    Daemon::Config config;
    config.scale = scale;
    config.workers = 1;
    config.queueCapacity = 8;
    config.storePath = storePath(workDir);
    Daemon daemon(config);  // store.load fires here

    uint32_t threads =
        static_cast<uint32_t>(daemon.lab().traces(app).threadCount());
    std::vector<StudyRequest> requests = legRequests(app, threads);

    std::ostringstream os;
    for (size_t r = 0; r < requests.size(); ++r) {
        std::vector<RunJob> jobs = requests[r].jobs;
        SubmitResult submitted =
            daemon.submit(std::move(requests[r]));
        os << "svc/req" << r << " => ";
        if (!submitted.admitted()) {
            // Only an injected svc.admit fault sheds here (the queue
            // is never full); the faulted fingerprint is discarded.
            os << "SHED(" << submitted.rejection << ")\n";
            continue;
        }
        StudyResponse response = submitted.accepted->get();
        os << statusName(response.status);
        for (size_t i = 0; i < response.outcomes.size(); ++i) {
            const auto &outcome = response.outcomes[i];
            os << ' ' << experiment::describeJob(jobs[i]) << "=>";
            if (!outcome.ok()) {
                os << "FAILED(" << outcome.error() << ')';
                continue;
            }
            const RunResult &result = outcome.value();
            os << "t=" << result.executionTime
               << ",imb=" << hexBits(result.loadImbalance)
               << ",refs=" << result.stats.totalMemRefs()
               << ",miss=" << result.missSummary().totalMisses();
        }
        os << '\n';
    }
    daemon.drain();
    return os.str();
}

} // namespace

experiment::chaos::ScenarioExtension
chaosLeg(workload::AppId app, uint32_t scale)
{
    experiment::chaos::ScenarioExtension extension;
    extension.run = [app, scale](const std::string &workDir) {
        return runLeg(app, scale, workDir);
    };
    extension.reset = [](const std::string &workDir) {
        std::remove(storePath(workDir).c_str());
        std::remove((storePath(workDir) + ".tmp").c_str());
    };
    return extension;
}

} // namespace tsp::svc
