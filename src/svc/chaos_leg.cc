#include "svc/chaos_leg.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "experiment/configs.h"
#include "svc/client.h"
#include "svc/daemon.h"
#include "svc/server.h"

namespace tsp::svc {

using experiment::MachinePoint;
using experiment::RunJob;
using experiment::RunResult;

namespace {

std::string
storePath(const std::string &workDir)
{
    return workDir + "/chaos_store.tsps";
}

/** Exact bit pattern of a double, matching the harness's digests. */
std::string
hexBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

/**
 * Two fixed two-cell studies over the first standard machine point:
 * enough to hit svc.admit and svc.dequeue per request, store.put per
 * fresh cell, and the duplicate cell exercises the store dedup path.
 */
std::vector<StudyRequest>
legRequests(workload::AppId app, uint32_t threads)
{
    std::vector<MachinePoint> points =
        experiment::standardSweep(threads);
    const MachinePoint &pt = points.front();
    RunJob loadBal{app, placement::Algorithm::LoadBal, pt, false};
    RunJob shareRefs{app, placement::Algorithm::ShareRefs, pt, false};

    std::vector<StudyRequest> requests(2);
    requests[0].jobs = {loadBal, shareRefs};
    requests[1].jobs = {shareRefs, loadBal};  // pure duplicates
    return requests;
}

std::string
runLeg(workload::AppId app, uint32_t scale,
       const std::string &workDir)
{
    Daemon::Config config;
    config.scale = scale;
    config.workers = 1;
    config.queueCapacity = 8;
    config.storePath = storePath(workDir);
    Daemon daemon(config);  // store.load fires here

    // The requests travel over the wire so every net.* fault site is
    // on the leg's path: accept, read, frame decode and write all
    // fire per request, and the client's reconnect-and-reissue is
    // the degradation under test.
    Server::Config serverConfig;
    serverConfig.port = 0;  // ephemeral
    serverConfig.maxConnections = 4;
    Server server(daemon, serverConfig);

    Client::Config clientConfig;
    clientConfig.port = server.port();
    clientConfig.retryBudget = 5;
    clientConfig.retryBackoff = std::chrono::milliseconds(1);
    clientConfig.identity = "svc.chaos";
    Client client(clientConfig);

    uint32_t threads =
        static_cast<uint32_t>(daemon.lab().traces(app).threadCount());
    std::vector<StudyRequest> requests = legRequests(app, threads);

    std::ostringstream os;
    for (size_t r = 0; r < requests.size(); ++r) {
        std::vector<RunJob> jobs = requests[r].jobs;
        Client::Result got = client.submit(requests[r]);
        os << "svc/req" << r << " => ";
        if (got.rejected) {
            // Only an injected svc.admit fault sheds here (the queue
            // is never full); the faulted fingerprint is discarded.
            os << "SHED(" << got.rejection << ")\n";
            continue;
        }
        if (!got.answered) {
            // Transport dead past the retry budget: survivable
            // degradation; this fingerprint is discarded too.
            os << "DEAD(transport)\n";
            continue;
        }
        const StudyResponse &response = got.response;
        os << statusName(response.status);
        for (size_t i = 0; i < response.outcomes.size(); ++i) {
            const auto &outcome = response.outcomes[i];
            os << ' ' << experiment::describeJob(jobs[i]) << "=>";
            if (!outcome.ok()) {
                os << "FAILED(" << outcome.error() << ')';
                continue;
            }
            const RunResult &result = outcome.value();
            os << "t=" << result.executionTime
               << ",imb=" << hexBits(result.loadImbalance)
               << ",refs=" << result.stats.totalMemRefs()
               << ",miss=" << result.missSummary().totalMisses();
        }
        os << '\n';
    }
    server.beginDrain();
    daemon.drain();
    server.stop();
    return os.str();
}

} // namespace

experiment::chaos::ScenarioExtension
chaosLeg(workload::AppId app, uint32_t scale)
{
    experiment::chaos::ScenarioExtension extension;
    extension.run = [app, scale](const std::string &workDir) {
        return runLeg(app, scale, workDir);
    };
    extension.reset = [](const std::string &workDir) {
        std::remove(storePath(workDir).c_str());
        std::remove((storePath(workDir) + ".tmp").c_str());
        std::remove((storePath(workDir) + ".lock").c_str());
    };
    return extension;
}

} // namespace tsp::svc
