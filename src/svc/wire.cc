#include "svc/wire.h"

#include <cstring>

#include "experiment/run_codec.h"
#include "util/checksum.h"
#include "util/error.h"

namespace tsp::svc::wire {

namespace codec = experiment::codec;
using experiment::Outcome;
using experiment::RunJob;
using experiment::RunResult;

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'W'};

constexpr uint32_t kAppCount = 14;        // workload::AppId
constexpr uint32_t kAlgorithmCount = 16;  // placement::Algorithm
constexpr uint32_t kMemSystemCount = 4;   // experiment::MemSystem
constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::Reject);
constexpr uint8_t kMaxRejectCode =
    static_cast<uint8_t>(RejectCode::Internal);
constexpr uint8_t kMaxStage =
    static_cast<uint8_t>(StudyProgress::Stage::Done);
constexpr uint8_t kMaxStatus =
    static_cast<uint8_t>(StudyStatus::Failed);

void
putString(codec::ByteWriter &w, std::string_view s)
{
    util::fatalIf(s.size() > kMaxStringBytes,
                  "wire string exceeds the protocol cap");
    w.u32(static_cast<uint32_t>(s.size()));
    w.raw(s.data(), s.size());
}

std::string
getString(codec::ByteReader &r)
{
    uint32_t len = r.u32();
    util::fatalIf(len > kMaxStringBytes,
                  "wire string length exceeds the protocol cap");
    std::string s(len, '\0');
    r.raw(s.data(), len);
    return s;
}

} // namespace

std::string
frameTypeName(FrameType type)
{
    switch (type) {
    case FrameType::Submit:
        return "submit";
    case FrameType::Progress:
        return "progress";
    case FrameType::Response:
        return "response";
    case FrameType::Reject:
        return "reject";
    }
    return "unknown";
}

std::string
rejectCodeName(RejectCode code)
{
    switch (code) {
    case RejectCode::Shed:
        return "shed";
    case RejectCode::Capacity:
        return "capacity";
    case RejectCode::Malformed:
        return "malformed";
    case RejectCode::Draining:
        return "draining";
    case RejectCode::Internal:
        return "internal";
    }
    return "unknown";
}

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    util::fatalIf(payload.size() > kMaxPayloadBytes,
                  "wire frame payload exceeds the protocol cap");
    codec::ByteWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u8(kVersion);
    w.u8(static_cast<uint8_t>(type));
    w.u8(0);
    w.u8(0);
    w.u32(static_cast<uint32_t>(payload.size()));
    w.u32(util::crc32(payload));
    std::string frame = w.bytes();
    frame.append(payload.data(), payload.size());
    return frame;
}

void
Deframer::validate() const
{
    // Eager checks over whatever header prefix is visible, so garbage
    // and oversized lengths poison the stream before any payload
    // byte is waited for (or buffered).
    size_t have = buffer_.size();
    size_t magicBytes = std::min(have, sizeof(kMagic));
    util::fatalIf(
        std::memcmp(buffer_.data(), kMagic, magicBytes) != 0,
        "wire stream is not TSPW-framed (bad magic)");
    if (have > sizeof(kMagic)) {
        util::fatalIf(
            static_cast<uint8_t>(buffer_[4]) != kVersion,
            "unsupported wire protocol version");
    }
    if (have > sizeof(kMagic) + 1) {
        uint8_t type = static_cast<uint8_t>(buffer_[5]);
        util::fatalIf(type == 0 || type > kMaxFrameType,
                      "unknown wire frame type");
    }
    if (have >= 12) {
        uint32_t len = 0;
        std::memcpy(&len, buffer_.data() + 8, sizeof(len));
        util::fatalIf(len > kMaxPayloadBytes,
                      "wire frame declares an oversized payload");
    }
}

void
Deframer::feed(const char *data, size_t len)
{
    buffer_.append(data, len);
    validate();
}

std::optional<Frame>
Deframer::next()
{
    validate();
    if (buffer_.size() < kHeaderBytes)
        return std::nullopt;
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, buffer_.data() + 8, sizeof(len));
    std::memcpy(&crc, buffer_.data() + 12, sizeof(crc));
    if (buffer_.size() < kHeaderBytes + len)
        return std::nullopt;

    std::string_view payload(buffer_.data() + kHeaderBytes, len);
    util::fatalIf(util::crc32(payload) != crc,
                  "wire frame CRC mismatch (corrupt or torn frame)");

    Frame frame;
    frame.type = static_cast<FrameType>(buffer_[5]);
    frame.payload.assign(payload.data(), payload.size());
    buffer_.erase(0, kHeaderBytes + len);
    return frame;
}

// --------------------------------------------------- payload codecs

std::string
encodeSubmit(const StudyRequest &request)
{
    util::fatalIf(request.jobs.size() > kMaxJobs,
                  "study request exceeds the wire job cap");
    codec::ByteWriter w;
    w.u32(static_cast<uint32_t>(request.jobs.size()));
    for (const RunJob &job : request.jobs) {
        w.u32(static_cast<uint32_t>(job.app));
        w.u32(static_cast<uint32_t>(job.alg));
        w.u32(job.point.processors);
        w.u32(job.point.contexts);
        w.u8(job.infiniteCache ? 1 : 0);
        w.u8(static_cast<uint8_t>(job.memSystem));
    }
    w.u32(static_cast<uint32_t>(request.priority));
    w.u64(static_cast<uint64_t>(request.deadline.count()));
    return w.bytes();
}

StudyRequest
decodeSubmit(std::string_view payload)
{
    codec::ByteReader r(payload);
    StudyRequest request;
    uint32_t count = r.u32();
    util::fatalIf(count == 0 || count > kMaxJobs,
                  "study request job count out of range");
    request.jobs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        RunJob job;
        uint32_t app = r.u32();
        uint32_t alg = r.u32();
        util::fatalIf(app >= kAppCount,
                      "study request names an unknown application");
        util::fatalIf(alg >= kAlgorithmCount,
                      "study request names an unknown algorithm");
        job.app = static_cast<workload::AppId>(app);
        job.alg = static_cast<placement::Algorithm>(alg);
        job.point.processors = r.u32();
        job.point.contexts = r.u32();
        util::fatalIf(job.point.processors == 0 ||
                          job.point.processors > 1024 ||
                          job.point.contexts == 0 ||
                          job.point.contexts > 1024,
                      "study request machine point out of range");
        job.infiniteCache = r.u8() != 0;
        uint8_t mem = r.u8();
        util::fatalIf(mem >= kMemSystemCount,
                      "study request names an unknown memory system");
        job.memSystem = static_cast<experiment::MemSystem>(mem);
        request.jobs.push_back(job);
    }
    request.priority = static_cast<int32_t>(r.u32());
    request.deadline = std::chrono::milliseconds(
        static_cast<int64_t>(r.u64()));
    util::fatalIf(!r.done(), "study request has trailing bytes");
    return request;
}

std::string
encodeProgress(const StudyProgress &progress)
{
    codec::ByteWriter w;
    w.u8(static_cast<uint8_t>(progress.stage));
    w.u32(progress.cellsDone);
    w.u32(progress.totalCells);
    w.f64(progress.lastCellMillis);
    return w.bytes();
}

StudyProgress
decodeProgress(std::string_view payload)
{
    codec::ByteReader r(payload);
    StudyProgress progress;
    uint8_t stage = r.u8();
    util::fatalIf(stage > kMaxStage,
                  "progress frame names an unknown stage");
    progress.stage = static_cast<StudyProgress::Stage>(stage);
    progress.cellsDone = r.u32();
    progress.totalCells = r.u32();
    util::fatalIf(progress.totalCells > kMaxJobs ||
                      progress.cellsDone > progress.totalCells,
                  "progress frame cell counts out of range");
    progress.lastCellMillis = r.f64();
    util::fatalIf(!r.done(), "progress frame has trailing bytes");
    return progress;
}

std::string
encodeResponse(const StudyResponse &response)
{
    util::fatalIf(response.outcomes.size() > kMaxJobs,
                  "study response exceeds the wire outcome cap");
    codec::ByteWriter w;
    w.u8(static_cast<uint8_t>(response.status));
    putString(w, response.error);
    w.u64(response.cacheHits);
    w.u64(response.executed);
    w.u64(response.cancelledCells);
    w.f64(response.queueMillis);
    w.f64(response.totalMillis);
    w.u32(static_cast<uint32_t>(response.outcomes.size()));
    for (const Outcome<RunResult> &outcome : response.outcomes) {
        w.u8(outcome.ok() ? 1 : 0);
        if (outcome.ok())
            codec::writeRunResult(w, outcome.value());
        else
            putString(w, outcome.error());
    }
    return w.bytes();
}

StudyResponse
decodeResponse(std::string_view payload)
{
    codec::ByteReader r(payload);
    StudyResponse response;
    uint8_t status = r.u8();
    util::fatalIf(status > kMaxStatus,
                  "study response names an unknown status");
    response.status = static_cast<StudyStatus>(status);
    response.error = getString(r);
    response.cacheHits = r.u64();
    response.executed = r.u64();
    response.cancelledCells = r.u64();
    response.queueMillis = r.f64();
    response.totalMillis = r.f64();
    uint32_t count = r.u32();
    util::fatalIf(count > kMaxJobs,
                  "study response outcome count out of range");
    response.outcomes.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        if (r.u8() != 0) {
            response.outcomes.push_back(
                Outcome<RunResult>::success(codec::readRunResult(r)));
        } else {
            response.outcomes.push_back(
                Outcome<RunResult>::failure(getString(r)));
        }
    }
    util::fatalIf(!r.done(), "study response has trailing bytes");
    return response;
}

std::string
encodeReject(RejectCode code, std::string_view reason)
{
    codec::ByteWriter w;
    w.u8(static_cast<uint8_t>(code));
    putString(w, reason);
    return w.bytes();
}

Reject
decodeReject(std::string_view payload)
{
    codec::ByteReader r(payload);
    Reject reject;
    uint8_t code = r.u8();
    util::fatalIf(code == 0 || code > kMaxRejectCode,
                  "reject frame names an unknown code");
    reject.code = static_cast<RejectCode>(code);
    reject.reason = getString(r);
    util::fatalIf(!r.done(), "reject frame has trailing bytes");
    return reject;
}

uint64_t
requestDigest(const StudyRequest &request)
{
    std::string bytes = encodeSubmit(request);
    uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : bytes)
        hash = (hash ^ c) * 1099511628211ull;
    return hash;
}

} // namespace tsp::svc::wire
