#include "svc/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "experiment/configs.h"
#include "svc/client.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/logging.h"

namespace tsp::svc {

using experiment::RunJob;
using experiment::RunResult;

namespace {

/** splitmix64: the repo's standard cheap deterministic stream. */
uint64_t
nextRandom(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Exact bit pattern of a double, for drift-proof digests. */
std::string
hexBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

/** Sorted-latency percentile (nearest-rank). */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

/** What one client accumulated; merged in client order at the end. */
struct ClientTally
{
    LoadGenReport counts;  //!< counter fields only
    std::vector<double> latencies;
    std::string digestLines;
};

/**
 * Graceful degradation: run the request's cells on the local Lab
 * (consulting and feeding the store when one is attached). The
 * simulation is deterministic, so the answer — and therefore the
 * loadgen digest — is bit-identical to what the server would have
 * returned.
 */
StudyResponse
runLocally(Daemon &daemon, const StudyRequest &request)
{
    StudyResponse response;
    response.outcomes.assign(request.jobs.size(),
                             experiment::Outcome<RunResult>{});
    for (size_t i = 0; i < request.jobs.size(); ++i) {
        const RunJob &job = request.jobs[i];
        try {
            if (ResultStore *store = daemon.store()) {
                if (std::optional<RunResult> cached =
                        store->lookup(job)) {
                    response.outcomes[i] =
                        experiment::Outcome<RunResult>::success(
                            std::move(*cached));
                    ++response.cacheHits;
                    continue;
                }
            }
            RunResult result =
                daemon.lab().run(job.app, job.alg, job.point,
                                 job.infiniteCache, job.memSystem);
            ++response.executed;
            if (ResultStore *store = daemon.store()) {
                try {
                    store->put(job, result);
                } catch (const std::exception &e) {
                    util::warn(util::concat(
                        "local-fallback store put failed (result "
                        "kept): ",
                        e.what()));
                }
            }
            response.outcomes[i] =
                experiment::Outcome<RunResult>::success(
                    std::move(result));
        } catch (const std::exception &e) {
            response.outcomes[i] =
                experiment::Outcome<RunResult>::failure(e.what());
        }
    }
    response.status = StudyStatus::Completed;
    return response;
}

} // namespace

util::RetryPolicy
loadGenRetryPolicy(unsigned client, unsigned attempts,
                   std::chrono::milliseconds initial)
{
    util::RetryPolicy policy = util::jitteredRetryPolicy(
        util::concat("svc.loadgen/client-", client));
    policy.maxAttempts = std::max(1u, attempts);
    policy.initialBackoff = initial;
    policy.maxBackoff = std::chrono::milliseconds(250);
    return policy;
}

std::vector<RunJob>
defaultPalette(experiment::Lab &lab, workload::AppId app)
{
    uint32_t threads =
        static_cast<uint32_t>(lab.traces(app).threadCount());
    std::vector<RunJob> palette;
    for (placement::Algorithm alg :
         {placement::Algorithm::LoadBal,
          placement::Algorithm::ShareRefs}) {
        for (const experiment::MachinePoint &point :
             experiment::standardSweep(threads)) {
            palette.push_back({app, alg, point, false});
            palette.push_back({app, alg, point, true});
        }
    }
    return palette;
}

std::string
LoadGenReport::summary() const
{
    uint64_t issued = admitted + abandoned;
    double shedRate =
        attempts > 0
            ? 100.0 * static_cast<double>(shed) /
                  static_cast<double>(attempts)
            : 0.0;
    uint64_t cells = cellsExecuted + cacheHits;
    double hitRate =
        cells > 0 ? 100.0 * static_cast<double>(cacheHits) /
                        static_cast<double>(cells)
                  : 0.0;
    std::ostringstream os;
    os << "requests: " << issued << " issued, " << admitted
       << " admitted, " << abandoned << " abandoned, " << skipped
       << " skipped\n";
    os << "attempts: " << attempts << " (" << shed
       << " shed, shed rate " << shedRate << "%)\n";
    os << "answers: " << completed << " completed, " << expired
       << " expired, " << deadlineExceeded << " deadline-exceeded, "
       << failed << " failed\n";
    os << "cells: " << cellsExecuted << " executed, " << cacheHits
       << " store hits (hit rate " << hitRate << "%)\n";
    if (reconnects > 0 || degradedLocal > 0) {
        os << "network: " << reconnects << " reconnects, "
           << degradedLocal << " requests degraded to local runs\n";
    }
    os << "latency ms: p50 " << p50Ms << ", p99 " << p99Ms << ", max "
       << maxMs << "\n";
    os << "result digest: " << resultDigest;
    return os.str();
}

LoadGenReport
runLoadGen(Daemon &daemon, const LoadGenOptions &options)
{
    util::fatalIf(options.palette.empty(),
                  "load generator needs a non-empty job palette");
    util::fatalIf(options.jobsPerRequest == 0,
                  "load generator needs >= 1 job per request");
    unsigned clients = std::max(1u, options.clients);
    std::vector<ClientTally> tallies(clients);

    auto runClient = [&](unsigned client) {
        ClientTally &tally = tallies[client];
        uint64_t rng =
            options.seed * 0x9e3779b97f4a7c15ull + client + 1;
        util::BackoffSchedule schedule(loadGenRetryPolicy(
            client, 1 + options.retryBudget, options.retryBackoff));

        std::optional<Client> netClient;
        if (options.serverPort != 0) {
            Client::Config net;
            net.host = options.serverHost;
            net.port = options.serverPort;
            net.recvTimeout = options.netTimeout;
            net.retryBudget = options.netRetryBudget;
            net.retryBackoff = options.retryBackoff;
            net.identity =
                util::concat("svc.loadgen/client-", client);
            netClient.emplace(net);
        }

        for (unsigned r = 0; r < options.requestsPerClient; ++r) {
            if (options.stop && options.stop->cancelled()) {
                tally.counts.skipped +=
                    options.requestsPerClient - r;
                return;
            }
            StudyRequest request;
            request.deadline = options.deadline;
            request.priority = static_cast<int>(nextRandom(rng) % 3);
            for (unsigned j = 0; j < options.jobsPerRequest; ++j) {
                request.jobs.push_back(
                    options.palette[nextRandom(rng) %
                                    options.palette.size()]);
            }

            // Closed loop with retry-after-shed: every rejection
            // backs off on the client's deterministic jitter
            // schedule, up to the capped budget. Socket-mode
            // transport failures are retried inside the wire client;
            // only a server that is alive-and-shedding reaches this
            // loop's backoff.
            std::optional<StudyResponse> answer;
            for (unsigned attempt = 0;
                 attempt <= options.retryBudget; ++attempt) {
                ++tally.counts.attempts;
                if (netClient) {
                    Client::Result got = netClient->submit(request);
                    tally.counts.reconnects += got.reconnects;
                    if (got.answered) {
                        answer = std::move(got.response);
                        break;
                    }
                    if (!got.alive()) {
                        if (options.localFallback) {
                            answer = runLocally(daemon, request);
                            ++tally.counts.degradedLocal;
                        }
                        break;
                    }
                    ++tally.counts.shed;
                } else {
                    SubmitResult submitted = daemon.submit(request);
                    if (submitted.admitted()) {
                        answer = submitted.accepted->get();
                        break;
                    }
                    ++tally.counts.shed;
                }
                if (attempt == options.retryBudget ||
                    (options.stop && options.stop->cancelled()))
                    break;
                std::this_thread::sleep_for(schedule.next());
            }
            if (!answer) {
                ++tally.counts.abandoned;
                continue;
            }

            StudyResponse response = std::move(*answer);
            ++tally.counts.admitted;
            tally.latencies.push_back(response.totalMillis);
            switch (response.status) {
            case StudyStatus::Completed:
                ++tally.counts.completed;
                break;
            case StudyStatus::Expired:
                ++tally.counts.expired;
                break;
            case StudyStatus::DeadlineExceeded:
                ++tally.counts.deadlineExceeded;
                break;
            case StudyStatus::Failed:
                ++tally.counts.failed;
                break;
            }
            tally.counts.cacheHits += response.cacheHits;
            tally.counts.cellsExecuted += response.executed;

            // Digest lines in (client, request) order: independent of
            // daemon scheduling, so shed-free runs against
            // bit-identical daemons digest identically.
            std::ostringstream line;
            line << 'c' << client << 'r' << r << ' '
                 << statusName(response.status);
            for (size_t i = 0; i < response.outcomes.size(); ++i) {
                const auto &outcome = response.outcomes[i];
                line << ' '
                     << experiment::describeJob(request.jobs[i])
                     << " => ";
                if (!outcome.ok()) {
                    line << "FAILED(" << outcome.error() << ')';
                    continue;
                }
                const RunResult &result = outcome.value();
                line << "t=" << result.executionTime
                     << " imb=" << hexBits(result.loadImbalance)
                     << " refs=" << result.stats.totalMemRefs()
                     << " miss=" << result.missSummary().totalMisses();
            }
            line << '\n';
            tally.digestLines += line.str();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c)
        threads.emplace_back(runClient, c);
    for (std::thread &t : threads)
        t.join();

    LoadGenReport report;
    std::string digestText;
    for (const ClientTally &tally : tallies) {
        report.attempts += tally.counts.attempts;
        report.admitted += tally.counts.admitted;
        report.shed += tally.counts.shed;
        report.abandoned += tally.counts.abandoned;
        report.skipped += tally.counts.skipped;
        report.completed += tally.counts.completed;
        report.expired += tally.counts.expired;
        report.deadlineExceeded += tally.counts.deadlineExceeded;
        report.failed += tally.counts.failed;
        report.cacheHits += tally.counts.cacheHits;
        report.cellsExecuted += tally.counts.cellsExecuted;
        report.reconnects += tally.counts.reconnects;
        report.degradedLocal += tally.counts.degradedLocal;
        report.latenciesMs.insert(report.latenciesMs.end(),
                                  tally.latencies.begin(),
                                  tally.latencies.end());
        digestText += tally.digestLines;
    }
    std::sort(report.latenciesMs.begin(), report.latenciesMs.end());
    report.p50Ms = percentile(report.latenciesMs, 0.50);
    report.p99Ms = percentile(report.latenciesMs, 0.99);
    report.maxMs = report.latenciesMs.empty()
                       ? 0.0
                       : report.latenciesMs.back();
    char digest[12];
    std::snprintf(digest, sizeof(digest), "%08x",
                  util::crc32(digestText));
    report.resultDigest = digest;
    return report;
}

} // namespace tsp::svc
