#include "svc/server.h"

#include <cerrno>
#include <cstring>
#include <deque>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "util/error.h"
#include "util/logging.h"

namespace tsp::svc {

namespace {

using Clock = std::chrono::steady_clock;

void
setNonBlocking(int fd)
{
    // Run the syscall before fatalIf: building the message evaluates
    // strerror(errno), and C++ argument evaluation order is
    // unspecified — inlining the call would sometimes report the
    // errno from *before* it ran ("Success").
    int flags = ::fcntl(fd, F_GETFL, 0);
    bool failed =
        flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0;
    util::fatalIf(failed,
                  std::string("cannot make socket non-blocking: ") +
                      std::strerror(errno));
}

/**
 * Best-effort blocking send of a small frame (a reject) on a socket
 * we are about to close; failures are ignored — the peer learns from
 * the close either way.
 */
void
sendBestEffort(int fd, const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

} // namespace

/**
 * The cross-thread seam: daemon workers post encoded frames here and
 * the poll thread drains them into the connection's output buffer.
 * Shared-ptr'd so a callback outliving its connection posts into a
 * harmlessly orphaned box instead of freed memory.
 */
struct Server::Mailbox
{
    std::mutex mutex;
    std::deque<std::string> frames;
    size_t inFlight = 0;  //!< submitted studies not yet answered
    bool open = true;     //!< false once the connection is gone

    /** Post a frame and report whether a wake is useful. */
    bool
    post(std::string frame)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!open)
            return false;
        frames.push_back(std::move(frame));
        return true;
    }
};

struct Server::Connection
{
    int fd = -1;
    std::shared_ptr<Mailbox> mailbox = std::make_shared<Mailbox>();
    wire::Deframer deframer;
    std::string out;  //!< encoded bytes awaiting the socket
    Clock::time_point lastActivity = Clock::now();
};

Server::Server(Daemon &daemon, const Config &config)
    : daemon_(daemon), config_(config)
{
    util::fatalIf(config_.maxConnections == 0,
                  "server needs maxConnections >= 1");

    int fds[2];
    bool pipeFailed = ::pipe(fds) != 0;
    util::fatalIf(pipeFailed, std::string("cannot create wake pipe: ") +
                                  std::strerror(errno));
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
    setNonBlocking(wakeRead_);
    setNonBlocking(wakeWrite_);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    util::fatalIf(listenFd_ < 0,
                  std::string("cannot create listen socket: ") +
                      std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    util::fatalIf(
        ::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
            1,
        "server bind address is not an IPv4 dotted quad: " +
            config_.host);
    bool bindFailed = ::bind(listenFd_,
                             reinterpret_cast<sockaddr *>(&addr),
                             sizeof(addr)) != 0;
    util::fatalIf(bindFailed,
                  util::concat("cannot bind ", config_.host, ":",
                               config_.port, ": ",
                               std::strerror(errno)));
    bool listenFailed = ::listen(listenFd_, 64) != 0;
    util::fatalIf(listenFailed, std::string("cannot listen: ") +
                                    std::strerror(errno));
    setNonBlocking(listenFd_);

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    util::fatalIf(::getsockname(listenFd_,
                                reinterpret_cast<sockaddr *>(&bound),
                                &boundLen) != 0,
                  "cannot read back the bound port");
    port_ = ntohs(bound.sin_port);

    thread_ = std::thread([this] { pollLoop(); });
}

Server::~Server()
{
    try {
        stop();
    } catch (...) {
        // A destructor must not throw; sockets are closed regardless.
    }
}

void
Server::beginDrain()
{
    draining_.store(true, std::memory_order_release);
    wake();
}

void
Server::stop()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (stopped_.load(std::memory_order_acquire)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    draining_.store(true, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    wake();
    if (thread_.joinable())
        thread_.join();
    stopped_.store(true, std::memory_order_release);
}

Server::Counters
Server::counters() const
{
    Counters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    c.malformed = malformed_.load(std::memory_order_relaxed);
    c.reaped = reaped_.load(std::memory_order_relaxed);
    c.ioErrors = ioErrors_.load(std::memory_order_relaxed);
    c.framesIn = framesIn_.load(std::memory_order_relaxed);
    c.framesOut = framesOut_.load(std::memory_order_relaxed);
    return c;
}

void
Server::wake()
{
    char byte = 1;
    // Full pipe = a wake is already pending; that is all we need.
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

void
Server::rejectAndClose(int fd, wire::RejectCode code,
                       const std::string &reason)
{
    sendBestEffort(fd, wire::encodeFrame(wire::FrameType::Reject,
                                         wire::encodeReject(code,
                                                            reason)));
    ::close(fd);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::netConnectionsRejected().inc();
}

void
Server::closeConnection(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    {
        std::lock_guard<std::mutex> lock(it->second->mailbox->mutex);
        it->second->mailbox->open = false;
    }
    ::close(fd);
    connections_.erase(it);
    obs::netConnectionsOpen().add(-1);
}

void
Server::acceptReady()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            util::warn(std::string("accept failed: ") +
                       std::strerror(errno));
            return;
        }
        try {
            TSP_FAULT_POINT("net.accept");
        } catch (const std::exception &e) {
            // Degradation: this client's connect is dropped (it will
            // retry); the listener itself survives.
            ::close(fd);
            rejected_.fetch_add(1, std::memory_order_relaxed);
            obs::netConnectionsRejected().inc();
            util::warn(std::string("accept fault contained: ") +
                       e.what());
            continue;
        }
        if (connections_.size() >= config_.maxConnections) {
            rejectAndClose(fd, wire::RejectCode::Capacity,
                           util::concat("connection limit reached (",
                                        config_.maxConnections,
                                        " open)"));
            continue;
        }
        if (draining_.load(std::memory_order_acquire)) {
            rejectAndClose(fd, wire::RejectCode::Draining,
                           "server is draining for shutdown");
            continue;
        }
        setNonBlocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        connections_[fd] = std::move(conn);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        obs::netConnectionsAccepted().inc();
        obs::netConnectionsOpen().add(1);
    }
}

void
Server::handleFrame(Connection &conn, const wire::Frame &frame)
{
    framesIn_.fetch_add(1, std::memory_order_relaxed);
    obs::netFramesIn().inc();
    TSP_FAULT_POINT("net.frame");
    util::fatalIf(frame.type != wire::FrameType::Submit,
                  "client sent a server-to-client frame type: " +
                      wire::frameTypeName(frame.type));

    StudyRequest request = wire::decodeSubmit(frame.payload);
    std::shared_ptr<Mailbox> mailbox = conn.mailbox;

    if (draining_.load(std::memory_order_acquire)) {
        mailbox->post(wire::encodeFrame(
            wire::FrameType::Reject,
            wire::encodeReject(wire::RejectCode::Draining,
                               "server is draining for shutdown")));
        return;
    }

    // The hooks run on daemon threads: encode there, post to the
    // mailbox, and poke the poll thread to flush. A dead mailbox
    // (connection already closed) swallows the frame harmlessly.
    request.onProgress = [this,
                          mailbox](const StudyProgress &progress) {
        if (mailbox->post(wire::encodeFrame(
                wire::FrameType::Progress,
                wire::encodeProgress(progress))))
            wake();
    };
    request.onComplete = [this,
                          mailbox](const StudyResponse &response) {
        bool posted = mailbox->post(wire::encodeFrame(
            wire::FrameType::Response,
            wire::encodeResponse(response)));
        {
            std::lock_guard<std::mutex> lock(mailbox->mutex);
            if (mailbox->inFlight > 0)
                --mailbox->inFlight;
        }
        if (posted)
            wake();
    };

    {
        std::lock_guard<std::mutex> lock(mailbox->mutex);
        ++mailbox->inFlight;
    }
    SubmitResult submitted = daemon_.submit(std::move(request));
    if (!submitted.admitted()) {
        {
            std::lock_guard<std::mutex> lock(mailbox->mutex);
            if (mailbox->inFlight > 0)
                --mailbox->inFlight;
        }
        mailbox->post(wire::encodeFrame(
            wire::FrameType::Reject,
            wire::encodeReject(wire::RejectCode::Shed,
                               submitted.rejection)));
    }
}

void
Server::flushMailbox(Connection &conn)
{
    std::deque<std::string> frames;
    {
        std::lock_guard<std::mutex> lock(conn.mailbox->mutex);
        frames.swap(conn.mailbox->frames);
    }
    for (std::string &frame : frames) {
        framesOut_.fetch_add(1, std::memory_order_relaxed);
        obs::netFramesOut().inc();
        conn.out += frame;
    }
}

bool
Server::writeOut(Connection &conn)
{
    TSP_FAULT_POINT("net.write");
    while (!conn.out.empty()) {
        ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            if (errno == EINTR)
                continue;
            util::fatal(std::string("socket write failed: ") +
                        std::strerror(errno));
        }
        conn.out.erase(0, static_cast<size_t>(n));
        conn.lastActivity = Clock::now();
    }
    return true;
}

/** Returns false when the connection should be closed. */
bool
Server::serveConnection(Connection &conn, short revents)
{
    if (revents & (POLLERR | POLLNVAL))
        util::fatal("socket error condition");

    if (revents & (POLLIN | POLLHUP)) {
        TSP_FAULT_POINT("net.read");
        char buf[64 * 1024];
        for (;;) {
            ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.lastActivity = Clock::now();
                conn.deframer.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n == 0)
                return false;  // peer closed; nothing left to deliver
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR)
                continue;
            util::fatal(std::string("socket read failed: ") +
                        std::strerror(errno));
        }
        while (std::optional<wire::Frame> frame = conn.deframer.next())
            handleFrame(conn, *frame);
    }

    flushMailbox(conn);
    return writeOut(conn);
}

void
Server::pollLoop()
{
    for (;;) {
        bool stopping = stopping_.load(std::memory_order_acquire);

        // Pull earned frames into output buffers before sleeping, so
        // a mailbox filled since the last pass is never forgotten.
        std::vector<int> broken;
        for (auto &[fd, conn] : connections_) {
            flushMailbox(*conn);
            if (!conn->out.empty()) {
                try {
                    if (!writeOut(*conn))
                        broken.push_back(fd);
                } catch (const std::exception &e) {
                    ioErrors_.fetch_add(1,
                                        std::memory_order_relaxed);
                    util::warn(
                        std::string(
                            "connection write fault contained: ") +
                        e.what());
                    broken.push_back(fd);
                }
            }
        }
        for (int fd : broken)
            closeConnection(fd);

        if (stopping) {
            // Drain phase: hold the sockets open until every earned
            // answer is flushed (bounded by drainTimeout), then bail.
            static thread_local Clock::time_point stopStart =
                Clock::now();
            bool busy = false;
            for (auto &[fd, conn] : connections_) {
                std::lock_guard<std::mutex> lock(
                    conn->mailbox->mutex);
                if (conn->mailbox->inFlight > 0 ||
                    !conn->mailbox->frames.empty() ||
                    !conn->out.empty())
                    busy = true;
            }
            if (!busy ||
                Clock::now() - stopStart >= config_.drainTimeout) {
                std::vector<int> fds;
                for (auto &[fd, conn] : connections_)
                    fds.push_back(fd);
                for (int fd : fds)
                    closeConnection(fd);
                ::close(listenFd_);
                ::close(wakeRead_);
                ::close(wakeWrite_);
                return;
            }
        }

        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        fds.push_back({wakeRead_, POLLIN, 0});
        std::vector<int> order;
        for (auto &[fd, conn] : connections_) {
            short events = POLLIN;
            if (!conn->out.empty())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
            order.push_back(fd);
        }

        int ready = ::poll(fds.data(), fds.size(), 50);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            util::warn(std::string("server poll failed: ") +
                       std::strerror(errno));
            continue;
        }

        if (fds[1].revents & POLLIN) {
            char sink[256];
            while (::read(wakeRead_, sink, sizeof(sink)) > 0) {
            }
        }

        if (fds[0].revents & POLLIN) {
            try {
                acceptReady();
            } catch (const std::exception &e) {
                util::warn(std::string("accept path contained: ") +
                           e.what());
            }
        }

        Clock::time_point now = Clock::now();
        for (size_t i = 0; i < order.size(); ++i) {
            int fd = order[i];
            auto it = connections_.find(fd);
            if (it == connections_.end())
                continue;
            Connection &conn = *it->second;
            try {
                if (!serveConnection(conn, fds[i + 2].revents)) {
                    closeConnection(fd);
                    continue;
                }
            } catch (const util::FatalError &e) {
                // Malformed wire bytes: answer with a reason, then
                // drop the stream — it cannot be re-synchronized.
                malformed_.fetch_add(1, std::memory_order_relaxed);
                obs::netMalformedFrames().inc();
                sendBestEffort(
                    conn.fd,
                    wire::encodeFrame(
                        wire::FrameType::Reject,
                        wire::encodeReject(
                            wire::RejectCode::Malformed, e.what())));
                closeConnection(fd);
                continue;
            } catch (const std::exception &e) {
                // Per-connection containment: injected I/O faults and
                // transport errors cost this connection only.
                ioErrors_.fetch_add(1, std::memory_order_relaxed);
                util::warn(
                    std::string("connection fault contained: ") +
                    e.what());
                closeConnection(fd);
                continue;
            }

            // Deadline sweep: reap a stream stalled mid-frame (slow
            // loris) or idle with nothing owed for too long.
            bool waiting;
            {
                std::lock_guard<std::mutex> lock(conn.mailbox->mutex);
                waiting = conn.mailbox->inFlight > 0 ||
                          !conn.mailbox->frames.empty();
            }
            if (waiting || !conn.out.empty())
                continue;
            auto age = now - conn.lastActivity;
            bool stalled =
                conn.deframer.midFrame() && age >= config_.readTimeout;
            bool idle = !conn.deframer.midFrame() &&
                        age >= config_.idleTimeout;
            if (stalled || idle) {
                reaped_.fetch_add(1, std::memory_order_relaxed);
                obs::netConnectionsReaped().inc();
                util::warn(util::concat(
                    "reaping ", stalled ? "stalled" : "idle",
                    " connection after ",
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(age)
                        .count(),
                    " ms"));
                closeConnection(fd);
            }
        }
    }
}

} // namespace tsp::svc
