/**
 * @file
 * The svc leg of the chaos matrix: a small daemon-with-store run that
 * deterministically reaches all four service fault sites (svc.admit,
 * svc.dequeue, store.put, store.load), plugged into
 * experiment::chaos::Options::extension. Lives in svc — not in the
 * chaos harness itself — because experiment cannot depend on the
 * layer above it.
 */

#ifndef TSP_SVC_CHAOS_LEG_H
#define TSP_SVC_CHAOS_LEG_H

#include "experiment/chaos.h"

namespace tsp::svc {

/**
 * The extension the chaos harness runs per cell: a daemon bound to
 * (@p app, @p scale) with a result store under the harness's work
 * directory serves a fixed pair of two-cell studies. run() returns a
 * fingerprint of every answered result (bit-stable across fresh and
 * store-resumed executions); reset() deletes the store file.
 */
experiment::chaos::ScenarioExtension chaosLeg(workload::AppId app,
                                              uint32_t scale);

} // namespace tsp::svc

#endif // TSP_SVC_CHAOS_LEG_H
