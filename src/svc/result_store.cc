#include "svc/result_store.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tsp::svc {

using experiment::RunJob;
using experiment::RunResult;
namespace codec = experiment::codec;

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'S'};
// v2: job keys carry the memory-system variant; RunResult payloads
// carry the shared-L2 counters.
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t);
constexpr size_t kFrameBytes = 2 * sizeof(uint32_t);

/** Keys are tiny fixed-layout configuration tuples. */
constexpr uint32_t kMaxKeyBytes = 256;

} // namespace

ResultStore::ResultStore(std::string path, uint32_t scale)
    : path_(std::move(path)), scale_(scale)
{
    codec::ByteWriter header;
    header.raw(kMagic, sizeof(kMagic));
    header.u32(kVersion);
    header.u32(scale_);
    image_ = header.bytes();
    load();
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

std::string
ResultStore::keyBytes(const RunJob &job, uint32_t scale)
{
    codec::ByteWriter key;
    key.u32(scale);
    key.u32(static_cast<uint32_t>(job.app));
    key.u32(static_cast<uint32_t>(job.alg));
    key.u32(job.point.processors);
    key.u32(job.point.contexts);
    key.u8(job.infiniteCache ? 1 : 0);
    key.u8(static_cast<uint8_t>(job.memSystem));
    return key.bytes();
}

uint64_t
ResultStore::digestOf(const RunJob &job, uint32_t scale)
{
    // FNV-1a over the canonical key bytes: stable across runs and
    // processes, which is all a content address needs here.
    std::string key = keyBytes(job, scale);
    uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : key)
        hash = (hash ^ c) * 1099511628211ull;
    return hash;
}

void
ResultStore::load()
{
    TSP_FAULT_POINT("store.load");
    std::ifstream is(path_, std::ios::binary);
    if (!is)
        return;  // no store yet: start fresh
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = buf.str();

    util::fatalIf(bytes.size() < kHeaderBytes ||
                      std::memcmp(bytes.data(), kMagic,
                                  sizeof(kMagic)) != 0,
                  "not a TSPS result store: " + path_);
    uint32_t version = 0, scale = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    std::memcpy(&scale, bytes.data() + sizeof(kMagic) + sizeof(version),
                sizeof(scale));
    util::fatalIf(version != kVersion,
                  util::concat("unsupported result store version ",
                               version, " in ", path_));
    util::fatalIf(scale != scale_,
                  util::concat("result store ", path_,
                               " was written at workload scale ",
                               scale, ", this daemon runs at scale ",
                               scale_));

    size_t pos = kHeaderBytes;
    size_t good = pos;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kFrameBytes)
            break;  // torn frame header
        uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, sizeof(len));
        std::memcpy(&crc, bytes.data() + pos + sizeof(len),
                    sizeof(crc));
        if (len > bytes.size() - pos - kFrameBytes)
            break;  // record truncated mid-payload
        std::string_view payload(bytes.data() + pos + kFrameBytes,
                                 len);
        if (util::crc32(payload) != crc)
            break;  // torn or bit-rotted record
        try {
            codec::ByteReader r(payload);
            uint64_t digest = r.u64();
            uint32_t keyLen = r.u32();
            util::fatalIf(keyLen > kMaxKeyBytes,
                          "result store key unreasonably large");
            std::string key(keyLen, '\0');
            r.raw(key.data(), keyLen);
            RunResult result = codec::readRunResult(r);
            util::fatalIf(!r.done(),
                          "result store record has trailing bytes");
            // Content-address self-check: a record whose digest does
            // not match its own key bytes is corrupt despite the CRC.
            uint64_t expect = 1469598103934665603ull;
            for (unsigned char c : key)
                expect = (expect ^ c) * 1099511628211ull;
            util::fatalIf(digest != expect,
                          "result store record digest mismatch");
            results_[std::move(key)] = std::move(result);
        } catch (const util::FatalError &) {
            break;  // malformed payload despite a valid CRC frame
        }
        pos += kFrameBytes + len;
        good = pos;
    }

    dropped_ = bytes.size() - good;
    if (dropped_ > 0) {
        util::warn(util::concat(
            "result store ", path_, ": dropping ", dropped_,
            " trailing bytes (truncated or corrupt record, likely a "
            "killed daemon); ", results_.size(),
            " intact results recovered"));
    }
    image_ = bytes.substr(0, good);
}

std::optional<RunResult>
ResultStore::lookup(const RunJob &job) const
{
    std::string key = keyBytes(job, scale_);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(key);
    if (it == results_.end()) {
        obs::storeMisses().inc();
        return std::nullopt;
    }
    obs::storeHits().inc();
    return it->second;
}

bool
ResultStore::put(const RunJob &job, const RunResult &result)
{
    std::string key = keyBytes(job, scale_);
    std::lock_guard<std::mutex> lock(mutex_);
    if (results_.count(key))
        return false;

    codec::ByteWriter payload;
    payload.u64(digestOf(job, scale_));
    payload.u32(static_cast<uint32_t>(key.size()));
    payload.raw(key.data(), key.size());
    codec::writeRunResult(payload, result);

    codec::ByteWriter frame;
    frame.u32(static_cast<uint32_t>(payload.bytes().size()));
    frame.u32(util::crc32(payload.bytes()));

    image_ += frame.bytes();
    image_ += payload.bytes();
    results_[std::move(key)] = result;
    persist();
    obs::storePuts().inc();
    return true;
}

void
ResultStore::persist() const
{
    // Atomic publish, same discipline as the checkpoint journal:
    // whole image to .tmp, rename over the real file, bounded
    // jittered retry around the transient-failure seam.
    std::string tmp = path_ + ".tmp";
    util::retry(
        [&] {
            TSP_FAULT_POINT("store.put");
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            util::fatalIf(
                !os, "cannot open result store for writing: " + tmp);
            os.write(image_.data(),
                     static_cast<std::streamsize>(image_.size()));
            os.flush();
            util::fatalIf(!os, "result store write failed: " + tmp);
            os.close();
            util::fatalIf(
                std::rename(tmp.c_str(), path_.c_str()) != 0,
                "cannot publish result store: " + path_);
        },
        util::jitteredRetryPolicy(path_), "result store put " + path_);
}

} // namespace tsp::svc
