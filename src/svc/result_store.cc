#include "svc/result_store.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "experiment/run_codec.h"
#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/file_lock.h"
#include "util/logging.h"
#include "util/retry.h"

namespace tsp::svc {

using experiment::RunJob;
using experiment::RunResult;
namespace codec = experiment::codec;

namespace {

constexpr char kMagic[4] = {'T', 'S', 'P', 'S'};
// v2: job keys carry the memory-system variant; RunResult payloads
// carry the shared-L2 counters.
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t);
constexpr size_t kFrameBytes = 2 * sizeof(uint32_t);

/** Keys are tiny fixed-layout configuration tuples. */
constexpr uint32_t kMaxKeyBytes = 256;

uint64_t
fnv1a(const std::string &bytes)
{
    uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : bytes)
        hash = (hash ^ c) * 1099511628211ull;
    return hash;
}

std::string
readWhole(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::string();
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

} // namespace

ResultStore::ResultStore(std::string path, uint32_t scale)
    : path_(std::move(path)), scale_(scale)
{
    load();
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

std::string
ResultStore::keyBytes(const RunJob &job, uint32_t scale)
{
    codec::ByteWriter key;
    key.u32(scale);
    key.u32(static_cast<uint32_t>(job.app));
    key.u32(static_cast<uint32_t>(job.alg));
    key.u32(job.point.processors);
    key.u32(job.point.contexts);
    key.u8(job.infiniteCache ? 1 : 0);
    key.u8(static_cast<uint8_t>(job.memSystem));
    return key.bytes();
}

uint64_t
ResultStore::digestOf(const RunJob &job, uint32_t scale)
{
    // FNV-1a over the canonical key bytes: stable across runs and
    // processes, which is all a content address needs here.
    return fnv1a(keyBytes(job, scale));
}

size_t
ResultStore::replay(const std::string &bytes)
{
    util::fatalIf(bytes.size() < kHeaderBytes ||
                      std::memcmp(bytes.data(), kMagic,
                                  sizeof(kMagic)) != 0,
                  "not a TSPS result store: " + path_);
    uint32_t version = 0, scale = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic),
                sizeof(version));
    std::memcpy(&scale, bytes.data() + sizeof(kMagic) + sizeof(version),
                sizeof(scale));
    util::fatalIf(version != kVersion,
                  util::concat("unsupported result store version ",
                               version, " in ", path_));
    util::fatalIf(scale != scale_,
                  util::concat("result store ", path_,
                               " was written at workload scale ",
                               scale, ", this daemon runs at scale ",
                               scale_));

    size_t pos = kHeaderBytes;
    size_t good = pos;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kFrameBytes)
            break;  // torn frame header
        uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, sizeof(len));
        std::memcpy(&crc, bytes.data() + pos + sizeof(len),
                    sizeof(crc));
        if (len > bytes.size() - pos - kFrameBytes)
            break;  // record truncated mid-payload
        std::string_view payload(bytes.data() + pos + kFrameBytes,
                                 len);
        if (util::crc32(payload) != crc)
            break;  // torn or bit-rotted record
        try {
            codec::ByteReader r(payload);
            uint64_t digest = r.u64();
            uint32_t keyLen = r.u32();
            util::fatalIf(keyLen > kMaxKeyBytes,
                          "result store key unreasonably large");
            std::string key(keyLen, '\0');
            r.raw(key.data(), keyLen);
            RunResult result = codec::readRunResult(r);
            util::fatalIf(!r.done(),
                          "result store record has trailing bytes");
            // Content-address self-check: a record whose digest does
            // not match its own key bytes is corrupt despite the CRC.
            util::fatalIf(digest != fnv1a(key),
                          "result store record digest mismatch");
            // First writer wins: a record this process already holds
            // (from its own puts or an earlier replay) is canonical —
            // the simulation is deterministic, so any honest
            // duplicate is bit-identical anyway.
            results_.emplace(std::move(key), std::move(result));
        } catch (const util::FatalError &) {
            break;  // malformed payload despite a valid CRC frame
        }
        pos += kFrameBytes + len;
        good = pos;
    }
    return good;
}

void
ResultStore::load()
{
    TSP_FAULT_POINT("store.load");
    // Shared advisory lock: many loaders may replay together, but
    // none overlaps a writer's exclusive publish cycle.
    util::FileLock flock(lockPath(), util::FileLock::Mode::Shared);
    if (flock.waited())
        obs::storeLockWaits().inc();
    std::string bytes = readWhole(path_);
    if (bytes.empty())
        return;  // no store yet: start fresh

    size_t good = replay(bytes);
    dropped_ = bytes.size() - good;
    if (dropped_ > 0) {
        util::warn(util::concat(
            "result store ", path_, ": dropping ", dropped_,
            " trailing bytes (truncated or corrupt record, likely a "
            "killed daemon); ", results_.size(),
            " intact results recovered"));
    }
}

void
ResultStore::mergeFromDisk()
{
    std::string bytes = readWhole(path_);
    if (bytes.empty())
        return;  // nothing published yet (or wiped between cycles)
    size_t before = results_.size();
    size_t good = replay(bytes);
    size_t adopted = results_.size() - before;
    if (adopted > 0) {
        util::inform(util::concat("result store ", path_, ": adopted ",
                                adopted,
                                " records published by another "
                                "process"));
    }
    if (bytes.size() != good) {
        util::warn(util::concat(
            "result store ", path_, ": ignoring ",
            bytes.size() - good,
            " corrupt trailing bytes while merging (they are "
            "dropped by this publish)"));
    }
}

std::optional<RunResult>
ResultStore::lookup(const RunJob &job) const
{
    std::string key = keyBytes(job, scale_);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = results_.find(key);
    if (it == results_.end()) {
        obs::storeMisses().inc();
        return std::nullopt;
    }
    obs::storeHits().inc();
    return it->second;
}

bool
ResultStore::put(const RunJob &job, const RunResult &result)
{
    std::string key = keyBytes(job, scale_);
    std::lock_guard<std::mutex> lock(mutex_);
    if (results_.count(key))
        return false;

    // The record becomes resident before the publish is attempted:
    // if persistence fails past its retry budget the result is still
    // served from memory and rides along with the next put.
    results_[std::move(key)] = result;
    persist();
    obs::storePuts().inc();
    return true;
}

std::string
ResultStore::buildImage() const
{
    codec::ByteWriter header;
    header.raw(kMagic, sizeof(kMagic));
    header.u32(kVersion);
    header.u32(scale_);
    std::string image = header.bytes();

    for (const auto &[key, result] : results_) {
        codec::ByteWriter payload;
        payload.u64(fnv1a(key));
        payload.u32(static_cast<uint32_t>(key.size()));
        payload.raw(key.data(), key.size());
        codec::writeRunResult(payload, result);

        codec::ByteWriter frame;
        frame.u32(static_cast<uint32_t>(payload.bytes().size()));
        frame.u32(util::crc32(payload.bytes()));
        image += frame.bytes();
        image += payload.bytes();
    }
    return image;
}

void
ResultStore::persist()
{
    // Read-merge-publish under the exclusive advisory lock, with the
    // checkpoint journal's atomic-rename discipline: re-read the file
    // (another process may have published since we last looked),
    // adopt its records, then write the merged image to .tmp and
    // rename it over the real file. Bounded jittered retry wraps the
    // whole cycle, so a transient lock or I/O failure is retried with
    // the merge re-run from scratch.
    std::string tmp = path_ + ".tmp";
    util::retry(
        [&] {
            TSP_FAULT_POINT("store.lock");
            util::FileLock flock(lockPath(),
                                 util::FileLock::Mode::Exclusive);
            if (flock.waited())
                obs::storeLockWaits().inc();
            mergeFromDisk();
            std::string image = buildImage();

            TSP_FAULT_POINT("store.put");
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            util::fatalIf(
                !os, "cannot open result store for writing: " + tmp);
            os.write(image.data(),
                     static_cast<std::streamsize>(image.size()));
            os.flush();
            util::fatalIf(!os, "result store write failed: " + tmp);
            os.close();
            util::fatalIf(
                std::rename(tmp.c_str(), path_.c_str()) != 0,
                "cannot publish result store: " + path_);
        },
        util::jitteredRetryPolicy(path_), "result store put " + path_);
}

} // namespace tsp::svc
