#include "svc/daemon.h"

#include <algorithm>

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/watchdog.h"

namespace tsp::svc {

using experiment::Outcome;
using experiment::RunJob;
using experiment::RunResult;

namespace {

double
millisBetween(Daemon::Clock::time_point from,
              Daemon::Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

/**
 * Deliver a progress/completion callback with observer containment:
 * a hook that throws is the observer's bug and never fails the study.
 */
template <typename Fn, typename Arg>
void
notify(const Fn &fn, const Arg &arg)
{
    if (!fn)
        return;
    try {
        fn(arg);
    } catch (...) {
        // Swallowed by design; the transport owns its own errors.
    }
}

} // namespace

std::string
statusName(StudyStatus status)
{
    switch (status) {
    case StudyStatus::Completed:
        return "completed";
    case StudyStatus::Expired:
        return "expired";
    case StudyStatus::DeadlineExceeded:
        return "deadline-exceeded";
    case StudyStatus::Failed:
        return "failed";
    }
    util::panic("unknown study status");
}

std::string
stageName(StudyProgress::Stage stage)
{
    switch (stage) {
    case StudyProgress::Stage::Queued:
        return "queued";
    case StudyProgress::Stage::Running:
        return "running";
    case StudyProgress::Stage::Done:
        return "done";
    }
    util::panic("unknown study progress stage");
}

Daemon::Daemon(const Config &config) : config_(config), lab_(config.scale)
{
    util::fatalIf(config_.queueCapacity == 0,
                  "daemon queue capacity must be >= 1");
    if (config_.workers == 0)
        config_.workers = 1;
    paused_ = config_.startPaused;
    if (!config_.storePath.empty())
        store_ = std::make_unique<ResultStore>(config_.storePath,
                                               config_.scale);
    workers_.reserve(config_.workers);
    for (unsigned i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Daemon::~Daemon()
{
    try {
        drain();
    } catch (...) {
        // A destructor must not throw; workers are joined regardless.
    }
}

Daemon::Clock::time_point
Daemon::now() const
{
    return config_.clock ? config_.clock() : Clock::now();
}

SubmitResult
Daemon::submit(StudyRequest request)
{
    Clock::time_point arrival = now();
    std::function<void(const StudyProgress &)> onProgress =
        request.onProgress;
    uint32_t totalCells = static_cast<uint32_t>(request.jobs.size());

    std::unique_lock<std::mutex> lock(mutex_);

    auto shed = [&](std::string reason) {
        ++counters_.shed;
        obs::svcShed().inc();
        SubmitResult result;
        result.rejection = std::move(reason);
        return result;
    };

    if (request.jobs.empty())
        return shed("rejected: empty study (no jobs)");
    if (draining_ || stopping_)
        return shed("rejected: draining (not admitting new requests)");
    if (queue_.size() >= config_.queueCapacity)
        return shed(util::concat("rejected: queue full (",
                                 config_.queueCapacity, " queued)"));
    try {
        TSP_FAULT_POINT("svc.admit");
    } catch (const util::PanicError &) {
        throw;  // a bug, not load: never masked as a shed
    } catch (const std::exception &e) {
        return shed(std::string("rejected: ") + e.what());
    }

    std::chrono::milliseconds deadline =
        request.deadline.count() > 0 ? request.deadline
                                     : config_.defaultDeadline;
    Pending pending;
    pending.request = std::move(request);
    pending.admitted = arrival;
    pending.expiry = deadline.count() > 0
                         ? arrival + deadline
                         : Clock::time_point::max();

    SubmitResult result;
    result.accepted = pending.promise.get_future();

    // The Queued heartbeat fires outside the daemon lock (a slow
    // observer — a congested socket, say — cannot stall admission)
    // and BEFORE the request becomes visible to workers, so
    // observers see Queued strictly before any Running even when the
    // study completes from cache in microseconds.
    lock.unlock();
    StudyProgress queued;
    queued.stage = StudyProgress::Stage::Queued;
    queued.totalCells = totalCells;
    notify(onProgress, queued);

    lock.lock();
    // Drain may have begun while the heartbeat ran; re-check rather
    // than enqueue work no worker will answer. The stray Queued
    // heartbeat before a shed is harmless — rejection is definitive
    // whenever it arrives.
    if (draining_ || stopping_)
        return shed("rejected: draining (not admitting new requests)");
    queue_.emplace(
        std::make_pair(-pending.request.priority, nextSeq_++),
        std::move(pending));
    ++counters_.admitted;
    obs::svcAdmitted().inc();
    obs::svcQueueDepth().add(1);
    workCv_.notify_one();
    return result;
}

void
Daemon::resume()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    workCv_.notify_all();
}

void
Daemon::beginDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
}

void
Daemon::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    paused_ = false;  // a paused daemon still owes queued answers
    workCv_.notify_all();
    idleCv_.wait(lock,
                 [&] { return queue_.empty() && inFlight_ == 0; });
    stopping_ = true;
    workCv_.notify_all();
    lock.unlock();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

bool
Daemon::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_ || stopping_;
}

size_t
Daemon::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

Daemon::Counters
Daemon::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
Daemon::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return stopping_ || (!queue_.empty() && !paused_);
        });
        if (stopping_ && (queue_.empty() || paused_))
            return;
        if (queue_.empty() || paused_)
            continue;

        auto node = queue_.extract(queue_.begin());
        Pending pending = std::move(node.mapped());
        obs::svcQueueDepth().add(-1);
        ++inFlight_;
        lock.unlock();

        StudyResponse response;
        try {
            TSP_FAULT_POINT("svc.dequeue");
            response = execute(pending);
        } catch (const std::exception &e) {
            // The request boundary: *nothing* a request raises —
            // injected faults, engine errors, even a PanicError from
            // a library bug — takes the daemon down. The request is
            // answered Failed (loudly) and the worker keeps serving.
            response = StudyResponse{};
            response.status = StudyStatus::Failed;
            response.error = e.what();
            response.outcomes.assign(pending.request.jobs.size(),
                                     Outcome<RunResult>{});
            util::warn(util::concat(
                "daemon request failed (service continues): ",
                e.what()));
        }
        Clock::time_point answered = now();
        response.totalMillis =
            millisBetween(pending.admitted, answered);
        obs::svcRequestMillis().observe(response.totalMillis);
        obs::svcRequestsCompleted().inc();

        // Done heartbeat + completion hook fire before the future is
        // fulfilled, covering the exception path above too (the
        // transport sees Failed responses the same way).
        StudyProgress done;
        done.stage = StudyProgress::Stage::Done;
        done.totalCells =
            static_cast<uint32_t>(pending.request.jobs.size());
        done.cellsDone = done.totalCells;
        notify(pending.request.onProgress, done);
        notify(pending.request.onComplete, response);
        pending.promise.set_value(std::move(response));

        lock.lock();
        ++counters_.completed;
        --inFlight_;
        if (queue_.empty() && inFlight_ == 0)
            idleCv_.notify_all();
    }
}

StudyResponse
Daemon::execute(Pending &pending)
{
    StudyResponse response;
    Clock::time_point start = now();
    response.queueMillis = millisBetween(pending.admitted, start);
    size_t n = pending.request.jobs.size();
    response.outcomes.assign(n, Outcome<RunResult>{});

    if (start >= pending.expiry) {
        // The deadline passed while the request sat in the queue:
        // answer immediately instead of burning a worker on an answer
        // nobody is waiting for.
        obs::svcExpired().inc();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.expired;
        }
        response.status = StudyStatus::Expired;
        response.error = "deadline expired while queued";
        for (auto &outcome : response.outcomes) {
            outcome = Outcome<RunResult>::failure(
                "request expired in queue before any cell ran");
        }
        return response;
    }

    // Per-request deadline enforcement: a real-time watchdog trips
    // the token if a cell stalls past the remaining budget, and the
    // inline clock checks between cells make the common case (the
    // budget runs out across many cells) deterministic.
    util::CancelToken cancel;
    std::optional<util::Watchdog> watchdog;
    std::optional<util::Watchdog::Guard> guard;
    if (pending.expiry != Clock::time_point::max() && !config_.clock) {
        auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                pending.expiry - start);
        watchdog.emplace(
            std::max(remaining, std::chrono::milliseconds(1)),
            [](const std::string &, std::chrono::milliseconds) {},
            config_.watchdogPoll);
        watchdog->cancelOnOverdue(&cancel);
        guard.emplace(watchdog->watch("study"));
    }

    for (size_t i = 0; i < n; ++i) {
        const RunJob &job = pending.request.jobs[i];
        obs::StopWatch cellWatch;
        if (now() >= pending.expiry)
            cancel.requestCancel();
        if (cancel.cancelled()) {
            response.outcomes[i] = Outcome<RunResult>::failure(
                "request deadline exceeded before this cell ran");
            ++response.cancelledCells;
        } else {
            try {
                if (store_) {
                    if (std::optional<RunResult> cached =
                            store_->lookup(job)) {
                        response.outcomes[i] =
                            Outcome<RunResult>::success(
                                std::move(*cached));
                        ++response.cacheHits;
                    }
                }
                if (!response.outcomes[i].ok()) {
                    RunResult result =
                        lab_.run(job.app, job.alg, job.point,
                                 job.infiniteCache, job.memSystem);
                    ++response.executed;
                    if (store_) {
                        try {
                            store_->put(job, result);
                        } catch (const std::exception &e) {
                            // The computed result is still good; it
                            // stays resident in the store's memory
                            // image and the next successful put
                            // re-publishes it.
                            util::warn(util::concat(
                                "result store put failed "
                                "(result kept): ",
                                e.what()));
                        }
                    }
                    response.outcomes[i] =
                        Outcome<RunResult>::success(
                            std::move(result));
                }
            } catch (const std::exception &e) {
                // Fault isolation, same policy as the sweep engine:
                // one failed cell degrades, the rest of the study
                // proceeds.
                response.outcomes[i] =
                    Outcome<RunResult>::failure(e.what());
            }
        }

        // Running heartbeat after every cell disposition (run, hit,
        // failure or cancellation), piggybacking the cell's wall
        // time so remote clients see per-cell pacing.
        StudyProgress running;
        running.stage = StudyProgress::Stage::Running;
        running.cellsDone = static_cast<uint32_t>(i + 1);
        running.totalCells = static_cast<uint32_t>(n);
        running.lastCellMillis = cellWatch.elapsedMs();
        notify(pending.request.onProgress, running);
    }

    guard.reset();
    watchdog.reset();
    response.status = response.cancelledCells > 0
                          ? StudyStatus::DeadlineExceeded
                          : StudyStatus::Completed;
    return response;
}

} // namespace tsp::svc
