/**
 * @file
 * The service's binary wire protocol: length-prefixed, CRC-framed
 * messages (the `experiment::codec` discipline applied to a socket)
 * carrying study requests, streamed progress, final responses and
 * reject-with-reason answers between `svc::Client` and `svc::Server`.
 *
 * Frame layout (little-endian, 16-byte header; the table in
 * docs/service.md mirrors this):
 *
 *     u32 magic "TSPW" | u8 version | u8 type | u16 reserved
 *     u32 payloadBytes | u32 crc32(payload) | payload
 *
 * Robustness rules, enforced before any allocation or dispatch:
 *  - a declared payload length above kMaxPayloadBytes poisons the
 *    stream immediately — a malicious length can never drive an
 *    allocation (mirrors the TSPT/TSPS bounds-checking);
 *  - the CRC must match before a payload is decoded, so bit rot or
 *    truncation fails loudly at the frame boundary;
 *  - payload decoding runs on `codec::ByteReader`, which bounds-checks
 *    every read, and every count/string length is sanity-capped.
 *
 * A malformed stream throws `util::FatalError`; the server answers
 * with a `Reject(Malformed)` frame and drops the connection, the
 * client treats it as a transport failure and reconnects.
 */

#ifndef TSP_SVC_WIRE_H
#define TSP_SVC_WIRE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "svc/daemon.h"

namespace tsp::svc::wire {

/** Protocol version; bumped on any frame or payload layout change. */
constexpr uint8_t kVersion = 1;

/** Frame header bytes (magic, version, type, reserved, len, crc). */
constexpr size_t kHeaderBytes = 16;

/** Hard cap on a frame's declared payload length. */
constexpr uint32_t kMaxPayloadBytes = 8u << 20;

/** Hard cap on any string carried in a payload. */
constexpr uint32_t kMaxStringBytes = 64u << 10;

/** Hard cap on jobs per request (and outcomes per response). */
constexpr uint32_t kMaxJobs = 4096;

/** Every message the protocol carries. */
enum class FrameType : uint8_t {
    Submit = 1,    //!< client -> server: a study request
    Progress = 2,  //!< server -> client: heartbeat / stage update
    Response = 3,  //!< server -> client: the final answer
    Reject = 4,    //!< server -> client: refused, with code + reason
};

/** Lowercase frame-type name, e.g. "progress". */
std::string frameTypeName(FrameType type);

/** Why a server refused to answer. */
enum class RejectCode : uint8_t {
    Shed = 1,       //!< admission control shed the request
    Capacity = 2,   //!< connection limit reached; try again later
    Malformed = 3,  //!< the received bytes were not a valid frame
    Draining = 4,   //!< the server is draining for shutdown
    Internal = 5,   //!< contained server-side failure
};

/** Lowercase reject-code name, e.g. "malformed". */
std::string rejectCodeName(RejectCode code);

/** One complete, CRC-verified frame. */
struct Frame
{
    FrameType type = FrameType::Reject;
    std::string payload;
};

/** A decoded Reject payload. */
struct Reject
{
    RejectCode code = RejectCode::Internal;
    std::string reason;
};

/** Frame @p payload as type @p type (header + CRC + payload). */
std::string encodeFrame(FrameType type, std::string_view payload);

/**
 * Incremental frame parser over a byte stream. Feed whatever the
 * socket produced; complete frames come out of next(). Malformed
 * input (bad magic/version/type, oversized declared length, CRC
 * mismatch) throws FatalError from feed() or next() — the stream is
 * poisoned and the connection must be dropped. Validation is eager:
 * an oversized declared length is rejected as soon as its header is
 * visible, before any payload is buffered.
 */
class Deframer
{
  public:
    /** Append @p len received bytes; throws on a malformed header. */
    void feed(const char *data, size_t len);

    /** The next complete frame, if one is buffered. */
    std::optional<Frame> next();

    /** Bytes buffered awaiting a complete frame. */
    size_t buffered() const { return buffer_.size(); }

    /** True while an unfinished frame sits in the buffer. */
    bool midFrame() const { return !buffer_.empty(); }

  private:
    /** Validate the buffered header prefix; throws when malformed. */
    void validate() const;

    std::string buffer_;
};

// --------------------------------------------------- payload codecs

/** Serialize a request's jobs, priority and deadline. */
std::string encodeSubmit(const StudyRequest &request);

/**
 * Inverse of encodeSubmit. Every count is capped and every enum
 * range-checked before use; malformed payloads throw FatalError.
 * Progress/completion callbacks are transport concerns and do not
 * travel (the result's hooks are empty).
 */
StudyRequest decodeSubmit(std::string_view payload);

std::string encodeProgress(const StudyProgress &progress);
StudyProgress decodeProgress(std::string_view payload);

std::string encodeResponse(const StudyResponse &response);
StudyResponse decodeResponse(std::string_view payload);

std::string encodeReject(RejectCode code, std::string_view reason);
Reject decodeReject(std::string_view payload);

/**
 * FNV-1a digest of a request's canonical submit payload — the same
 * configuration bytes the store's content addresses are derived from
 * server-side. Keys the client's retry jitter, so a reconnect-and-
 * reissue of the same request is an idempotent store dedup hit.
 */
uint64_t requestDigest(const StudyRequest &request);

} // namespace tsp::svc::wire

#endif // TSP_SVC_WIRE_H
