/**
 * @file
 * The one stopwatch and scoped timer every layer shares — replacing
 * the hand-rolled `steady_clock` arithmetic that used to live in
 * bench_common.h and the experiment engine.
 */

#ifndef TSP_OBS_TIMER_H
#define TSP_OBS_TIMER_H

#include <chrono>

#include "obs/metrics.h"

namespace tsp::obs {

/** Monotonic stopwatch. */
class StopWatch
{
  public:
    StopWatch() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds since construction (or the last reset()). */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Microseconds since construction (or the last reset()). */
    uint64_t
    elapsedUs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * RAII timer: records the scope's wall time (in milliseconds) into a
 * histogram on destruction. Observation is a no-op when metrics are
 * disabled, so the only residual cost is two clock reads.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist) : hist_(hist) {}

    ~ScopedTimer() { hist_.observe(watch_.elapsedMs()); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Elapsed so far, for callers that also want the number. */
    double elapsedMs() const { return watch_.elapsedMs(); }

  private:
    Histogram &hist_;
    StopWatch watch_;
};

} // namespace tsp::obs

#endif // TSP_OBS_TIMER_H
