#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace tsp::obs {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double x)
{
    if (!std::isfinite(x))
        return "0";  // JSON has no inf/nan; clamp rather than corrupt
    if (x == static_cast<double>(static_cast<long long>(x)) &&
        std::fabs(x) < 9.0e15) {
        return std::to_string(static_cast<long long>(x));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    util::fatalIf(type != Type::Object,
                  "JSON: at(\"" + key + "\") on a non-object");
    auto it = object.find(key);
    util::fatalIf(it == object.end(), "JSON: missing member " + key);
    return it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return type == Type::Object && object.count(key) > 0;
}

namespace {

/** Recursive-descent parser over a string (no streaming). */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipSpace();
        fail(pos_ != text_.size(), "trailing characters");
        return v;
    }

  private:
    void
    fail(bool cond, const std::string &what) const
    {
        util::fatalIf(cond, "JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        fail(pos_ >= text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        fail(peek() != c,
             std::string("expected '") + c + "', got '" + peek() + "'");
        ++pos_;
    }

    JsonValue
    value()
    {
        skipSpace();
        switch (peek()) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return stringValue();
          case 't': return literal("true", [](JsonValue &v) {
              v.type = JsonValue::Type::Bool;
              v.boolean = true;
          });
          case 'f': return literal("false", [](JsonValue &v) {
              v.type = JsonValue::Type::Bool;
              v.boolean = false;
          });
          case 'n': return literal("null", [](JsonValue &v) {
              v.type = JsonValue::Type::Null;
          });
          default: return numberValue();
        }
    }

    template <typename F>
    JsonValue
    literal(const std::string &word, F &&fill)
    {
        fail(text_.compare(pos_, word.size(), word) != 0,
             "invalid literal");
        pos_ += word.size();
        JsonValue v;
        fill(v);
        return v;
    }

    JsonValue
    stringValue()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (true) {
            fail(pos_ >= text_.size(), "unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                fail(pos_ >= text_.size(), "unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': v.string.push_back('"'); break;
                  case '\\': v.string.push_back('\\'); break;
                  case '/': v.string.push_back('/'); break;
                  case 'n': v.string.push_back('\n'); break;
                  case 'r': v.string.push_back('\r'); break;
                  case 't': v.string.push_back('\t'); break;
                  case 'b': v.string.push_back('\b'); break;
                  case 'f': v.string.push_back('\f'); break;
                  case 'u': {
                    fail(pos_ + 4 > text_.size(), "short \\u escape");
                    unsigned code = static_cast<unsigned>(std::strtoul(
                        text_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    // Keep it simple: encode as UTF-8 for the BMP.
                    if (code < 0x80) {
                        v.string.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        v.string.push_back(
                            static_cast<char>(0xC0 | (code >> 6)));
                        v.string.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        v.string.push_back(
                            static_cast<char>(0xE0 | (code >> 12)));
                        v.string.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F)));
                        v.string.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                  }
                  default: fail(true, "bad escape character");
                }
            } else {
                v.string.push_back(c);
            }
        }
        return v;
    }

    JsonValue
    numberValue()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        fail(pos_ == start, "invalid value");
        char *end = nullptr;
        std::string tok = text_.substr(start, pos_ - start);
        double x = std::strtod(tok.c_str(), &end);
        fail(end == tok.c_str() || *end != '\0', "invalid number");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = x;
        return v;
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        return v;
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipSpace();
            JsonValue key = stringValue();
            skipSpace();
            expect(':');
            v.object[key.string] = value();
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace tsp::obs
