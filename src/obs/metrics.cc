#include "obs/metrics.h"

#include <cstdlib>
#include <fstream>

#include "obs/json.h"
#include "util/error.h"

namespace tsp::obs {

namespace detail {
std::atomic<bool> metricsEnabled{false};
} // namespace detail

void
setMetricsEnabled(bool enabled)
{
    detail::metricsEnabled.store(enabled, std::memory_order_relaxed);
}

namespace {

std::string atexitMetricsPath;  // set once by configureFromEnv()

void
writeMetricsAtExit()
{
    try {
        Registry::instance().writeJsonFile(atexitMetricsPath);
    } catch (...) {
        // atexit must not throw; losing the snapshot is survivable.
    }
}

} // namespace

void
configureFromEnv()
{
    static bool configured = false;
    if (configured)
        return;
    configured = true;

    if (const char *flag = std::getenv("TSP_METRICS")) {
        if (*flag && std::string(flag) != "0")
            setMetricsEnabled(true);
    }
    if (const char *out = std::getenv("TSP_METRICS_OUT")) {
        if (*out) {
            setMetricsEnabled(true);
            atexitMetricsPath = out;
            std::atexit(writeMetricsAtExit);
        }
    }
}

namespace {

// Every binary that links the obs library honors TSP_METRICS /
// TSP_METRICS_OUT without per-main wiring: the env check runs once at
// static initialization (configureFromEnv stays idempotent, so mains
// that also call it explicitly are fine).
[[maybe_unused]] const bool envConfiguredAtStartup =
    (configureFromEnv(), true);

} // namespace

Registry &
Registry::instance()
{
    // Immortal: the TSP_METRICS_OUT atexit handler is registered at
    // static-init time, so it runs *after* exit-time destructors of
    // statics constructed during main — a destructible singleton here
    // would be gone by then. Held by a static pointer, so the object
    // stays reachable and leak checkers do not report it.
    static Registry *registry = new Registry();
    return *registry;
}

Counter &
Registry::counter(const std::string &name, const std::string &owner,
                  const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end())
        return *it->second;
    util::fatalIf(gauges_.count(name) || histograms_.count(name),
                  "metric '" + name +
                      "' already registered with a different kind");
    order_.push_back({name, "counter", owner, help});
    auto &slot = counters_[name];
    slot.reset(new Counter());
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &owner,
                const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end())
        return *it->second;
    util::fatalIf(counters_.count(name) || histograms_.count(name),
                  "metric '" + name +
                      "' already registered with a different kind");
    order_.push_back({name, "gauge", owner, help});
    auto &slot = gauges_[name];
    slot.reset(new Gauge());
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &owner,
                    const std::string &help,
                    std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end())
        return *it->second;
    util::fatalIf(counters_.count(name) || gauges_.count(name),
                  "metric '" + name +
                      "' already registered with a different kind");
    util::fatalIf(bounds.empty(),
                  "histogram '" + name + "' needs at least one bound");
    for (size_t i = 1; i < bounds.size(); ++i)
        util::fatalIf(bounds[i] <= bounds[i - 1],
                      "histogram '" + name +
                          "' bounds must be strictly increasing");
    order_.push_back({name, "histogram", owner, help});
    auto &slot = histograms_[name];
    slot.reset(new Histogram(std::move(bounds)));
    return *slot;
}

std::vector<MetricInfo>
Registry::metrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->value_.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : gauges_) {
        g->value_.store(0, std::memory_order_relaxed);
        g->max_.store(0, std::memory_order_relaxed);
    }
    for (auto &[name, h] : histograms_) {
        for (size_t i = 0; i <= h->bounds_.size(); ++i)
            h->counts_[i].store(0, std::memory_order_relaxed);
        h->count_.store(0, std::memory_order_relaxed);
        h->sum_.store(0.0, std::memory_order_relaxed);
    }
}

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\n  \"metrics\": {";
    bool first = true;
    for (const MetricInfo &info : order_) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    " + jsonQuote(info.name) + ": {";
        out += "\"kind\": " + jsonQuote(info.kind);
        out += ", \"owner\": " + jsonQuote(info.owner);
        if (info.kind == "counter") {
            const auto &c = counters_.at(info.name);
            out += ", \"value\": " +
                   std::to_string(c->value());
        } else if (info.kind == "gauge") {
            const auto &g = gauges_.at(info.name);
            out += ", \"value\": " + std::to_string(g->value());
            out += ", \"max\": " + std::to_string(g->max());
        } else {
            const auto &h = histograms_.at(info.name);
            out += ", \"count\": " + std::to_string(h->count());
            out += ", \"sum\": " + jsonNumber(h->sum());
            out += ", \"bounds\": [";
            for (size_t i = 0; i < h->bounds().size(); ++i) {
                if (i)
                    out += ", ";
                out += jsonNumber(h->bounds()[i]);
            }
            out += "], \"buckets\": [";
            for (size_t i = 0; i <= h->bounds().size(); ++i) {
                if (i)
                    out += ", ";
                out += std::to_string(h->bucketCount(i));
            }
            out += "]";
        }
        out += "}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
Registry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::trunc);
    util::fatalIf(!os, "cannot open metrics JSON for writing: " + path);
    std::string json = toJson();
    os.write(json.data(), static_cast<std::streamsize>(json.size()));
    os.flush();
    util::fatalIf(!os, "metrics JSON write failed: " + path);
}

} // namespace tsp::obs
