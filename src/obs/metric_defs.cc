#include "obs/metric_defs.h"

namespace tsp::obs {

namespace {

/** Shared wall-time bucket ladder (milliseconds). */
std::vector<double>
millisBounds()
{
    return {0.1, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
            1000, 2000, 5000, 10000, 30000};
}

} // namespace

#define TSP_OBS_COUNTER(fn, name, owner, help)                         \
    Counter &fn()                                                      \
    {                                                                  \
        static Counter &metric =                                       \
            Registry::instance().counter(name, owner, help);           \
        return metric;                                                 \
    }

#define TSP_OBS_GAUGE(fn, name, owner, help)                           \
    Gauge &fn()                                                        \
    {                                                                  \
        static Gauge &metric =                                         \
            Registry::instance().gauge(name, owner, help);             \
        return metric;                                                 \
    }

#define TSP_OBS_MS_HISTOGRAM(fn, name, owner, help)                    \
    Histogram &fn()                                                    \
    {                                                                  \
        static Histogram &metric = Registry::instance().histogram(     \
            name, owner, help, millisBounds());                        \
        return metric;                                                 \
    }

TSP_OBS_COUNTER(poolTasksExecuted, "pool.tasks_executed",
                "util::ThreadPool",
                "tasks run to completion (pooled or inline)")
TSP_OBS_GAUGE(poolQueueDepth, "pool.queue_depth", "util::ThreadPool",
              "tasks enqueued but not yet started (max = high water)")
TSP_OBS_COUNTER(poolWorkerBusyMicros, "pool.worker_busy_us",
                "util::ThreadPool",
                "cumulative worker time spent executing tasks")
TSP_OBS_COUNTER(poolWorkerIdleMicros, "pool.worker_idle_us",
                "util::ThreadPool",
                "cumulative worker time spent waiting for work")

TSP_OBS_COUNTER(watchdogDeadlineFires, "watchdog.deadline_fires",
                "util::Watchdog",
                "jobs flagged for exceeding their deadline")

TSP_OBS_COUNTER(labTraceMemoHits, "lab.trace_memo_hits",
                "experiment::Lab",
                "trace-set requests served from the memo cache")
TSP_OBS_COUNTER(labTraceMemoMisses, "lab.trace_memo_misses",
                "experiment::Lab",
                "trace-set requests that materialized the traces")
TSP_OBS_COUNTER(labAnalysisMemoHits, "lab.analysis_memo_hits",
                "experiment::Lab",
                "static-analysis requests served from the memo cache")
TSP_OBS_COUNTER(labAnalysisMemoMisses, "lab.analysis_memo_misses",
                "experiment::Lab",
                "static-analysis requests that ran the analyzer")
TSP_OBS_COUNTER(labProbeMemoHits, "lab.probe_memo_hits",
                "experiment::Lab",
                "coherence-probe requests served from the memo cache")
TSP_OBS_COUNTER(labProbeMemoMisses, "lab.probe_memo_misses",
                "experiment::Lab",
                "coherence-probe requests that ran the measurement")
TSP_OBS_MS_HISTOGRAM(labWarmupMillis, "lab.warmup_ms",
                     "experiment::Lab",
                     "per-application warmup wall time")

TSP_OBS_MS_HISTOGRAM(sweepCellMillis, "sweep.cell_ms",
                     "experiment::ParallelRunner",
                     "per-cell simulation wall time")
TSP_OBS_COUNTER(sweepCellsExecuted, "sweep.cells_executed",
                "experiment::ParallelRunner",
                "unique cells simulated this process")
TSP_OBS_COUNTER(sweepCellsFromCheckpoint, "sweep.cells_from_checkpoint",
                "experiment::ParallelRunner",
                "unique cells replayed from a checkpoint journal")
TSP_OBS_COUNTER(sweepCellsFailed, "sweep.cells_failed",
                "experiment::ParallelRunner",
                "unique cells that ended in a failed Outcome")

TSP_OBS_COUNTER(checkpointAppends, "checkpoint.appends",
                "experiment::Checkpoint",
                "journal records persisted (atomic publishes)")
TSP_OBS_COUNTER(checkpointAppendFailures, "checkpoint.append_failures",
                "experiment::Checkpoint",
                "journal appends that failed after bounded retry")

TSP_OBS_COUNTER(simRuns, "sim.runs", "sim::Machine",
                "completed simulate() calls")
TSP_OBS_MS_HISTOGRAM(simRunMillis, "sim.run_ms", "sim::Machine",
                     "per-run simulation wall time")
TSP_OBS_COUNTER(simInstructions, "sim.instructions", "sim::Machine",
                "instructions retired across all runs")
TSP_OBS_COUNTER(simMemRefs, "sim.mem_refs", "sim::Machine",
                "data references simulated across all runs")
TSP_OBS_COUNTER(simMissCompulsory, "sim.miss.compulsory",
                "sim::Machine", "compulsory misses across all runs")
TSP_OBS_COUNTER(simMissIntraConflict, "sim.miss.intra_conflict",
                "sim::Machine",
                "intra-thread conflict misses across all runs")
TSP_OBS_COUNTER(simMissInterConflict, "sim.miss.inter_conflict",
                "sim::Machine",
                "inter-thread conflict misses across all runs")
TSP_OBS_COUNTER(simMissInvalidation, "sim.miss.invalidation",
                "sim::Machine", "invalidation misses across all runs")
TSP_OBS_COUNTER(simInvalidationsSent, "sim.invalidations_sent",
                "sim::Directory",
                "invalidation messages the directory sent")
TSP_OBS_COUNTER(simUpgrades, "sim.upgrades", "sim::Directory",
                "write-hit upgrade transactions")
TSP_OBS_GAUGE(simDirEntries, "sim.dir_entries", "sim::Directory",
              "blocks in the directory table after a run "
              "(max = largest run)")
TSP_OBS_GAUGE(simHistoryEntries, "sim.history_entries", "sim::Cache",
              "summed per-cache departure-history entries after a run "
              "(max = largest run)")
TSP_OBS_COUNTER(simL2Hits, "sim.l2_hits", "sim::SharedL2",
                "L1 misses filled from the shared L2")
TSP_OBS_COUNTER(simL2Misses, "sim.l2_misses", "sim::SharedL2",
                "L1 misses the shared L2 also missed (memory fills)")
TSP_OBS_COUNTER(simNetQueueDelay, "sim.net_queue_delay",
                "sim::Interconnect",
                "cycles transactions waited on busy links/channels")

TSP_OBS_COUNTER(traceChunkRefills, "trace.chunk_refills",
                "trace::SharedTraceStream",
                "chunk windows pulled from streaming producers")
TSP_OBS_GAUGE(traceWindowEvents, "trace.window_events",
              "trace::SharedTraceStream",
              "events resident across chunk windows "
              "(max = streaming memory high water)")
TSP_OBS_GAUGE(traceResidentBytes, "trace.resident_bytes",
              "workload::generateTraces",
              "bytes held resident by trace generation: whole "
              "materialized traces, or the chunk-window high water "
              "of a streaming run (max = largest application)")

TSP_OBS_GAUGE(batchLanes, "batch.lanes", "sim::BatchMachine",
              "lanes being advanced by the running batch "
              "(max = widest batch)")
TSP_OBS_COUNTER(batchLaneFailures, "batch.lane_failures",
                "sim::BatchMachine",
                "lanes that failed and degraded to an error result")

TSP_OBS_GAUGE(svcQueueDepth, "svc.queue_depth", "svc::Daemon",
              "requests admitted but not yet started "
              "(max = queue high water)")
TSP_OBS_COUNTER(svcAdmitted, "svc.admitted", "svc::Daemon",
                "requests admitted to the bounded queue")
TSP_OBS_COUNTER(svcShed, "svc.shed", "svc::Daemon",
                "submissions rejected by admission control (load shed)")
TSP_OBS_COUNTER(svcExpired, "svc.expired", "svc::Daemon",
                "requests whose deadline passed while still queued")
TSP_OBS_COUNTER(svcRequestsCompleted, "svc.requests_completed",
                "svc::Daemon",
                "admitted requests answered (any final status)")
TSP_OBS_MS_HISTOGRAM(svcRequestMillis, "svc.request_ms", "svc::Daemon",
                     "admit-to-answer latency of admitted requests")

TSP_OBS_COUNTER(netConnectionsAccepted, "net.accepted", "svc::Server",
                "client connections accepted by the listener")
TSP_OBS_GAUGE(netConnectionsOpen, "net.open", "svc::Server",
              "connections currently open "
              "(max = concurrency high water)")
TSP_OBS_COUNTER(netConnectionsRejected, "net.rejected", "svc::Server",
                "connections refused at accept (capacity or draining)")
TSP_OBS_COUNTER(netFramesIn, "net.frames_in", "svc::Server",
                "wire frames received from clients")
TSP_OBS_COUNTER(netFramesOut, "net.frames_out", "svc::Server",
                "wire frames sent to clients")
TSP_OBS_COUNTER(netMalformedFrames, "net.malformed", "svc::Server",
                "malformed wire streams rejected and dropped")
TSP_OBS_COUNTER(netConnectionsReaped, "net.reaped", "svc::Server",
                "connections reaped for idling or stalling mid-frame")
TSP_OBS_COUNTER(netReconnects, "net.reconnects", "svc::Client",
                "transport failures answered by reconnect-and-reissue")

TSP_OBS_COUNTER(storeHits, "store.hits", "svc::ResultStore",
                "result lookups served from the store")
TSP_OBS_COUNTER(storeMisses, "store.misses", "svc::ResultStore",
                "result lookups that missed the store")
TSP_OBS_COUNTER(storePuts, "store.puts", "svc::ResultStore",
                "result records persisted (atomic publishes)")
TSP_OBS_COUNTER(storeLockWaits, "store.lock_waits", "svc::ResultStore",
                "advisory-lock acquisitions that had to wait for "
                "another process")

TSP_OBS_COUNTER(faultInjected, "fault.injected", "fault::Registry",
                "faults the injection framework actually fired")
TSP_OBS_GAUGE(faultSitesRegistered, "fault.sites", "fault::Registry",
              "fault-injection sites registered so far")

TSP_OBS_MS_HISTOGRAM(benchWallMillis, "bench.wall_ms", "bench",
                     "duration behind every [wall] timing line")

#undef TSP_OBS_COUNTER
#undef TSP_OBS_GAUGE
#undef TSP_OBS_MS_HISTOGRAM

std::vector<MetricInfo>
allMetrics()
{
    // Touch every accessor so the registry holds the full catalog.
    poolTasksExecuted();
    poolQueueDepth();
    poolWorkerBusyMicros();
    poolWorkerIdleMicros();
    watchdogDeadlineFires();
    labTraceMemoHits();
    labTraceMemoMisses();
    labAnalysisMemoHits();
    labAnalysisMemoMisses();
    labProbeMemoHits();
    labProbeMemoMisses();
    labWarmupMillis();
    sweepCellMillis();
    sweepCellsExecuted();
    sweepCellsFromCheckpoint();
    sweepCellsFailed();
    checkpointAppends();
    checkpointAppendFailures();
    simRuns();
    simRunMillis();
    simInstructions();
    simMemRefs();
    simMissCompulsory();
    simMissIntraConflict();
    simMissInterConflict();
    simMissInvalidation();
    simInvalidationsSent();
    simUpgrades();
    simDirEntries();
    simHistoryEntries();
    simL2Hits();
    simL2Misses();
    simNetQueueDelay();
    traceChunkRefills();
    traceWindowEvents();
    traceResidentBytes();
    batchLanes();
    batchLaneFailures();
    svcQueueDepth();
    svcAdmitted();
    svcShed();
    svcExpired();
    svcRequestsCompleted();
    svcRequestMillis();
    netConnectionsAccepted();
    netConnectionsOpen();
    netConnectionsRejected();
    netFramesIn();
    netFramesOut();
    netMalformedFrames();
    netConnectionsReaped();
    netReconnects();
    storeHits();
    storeMisses();
    storePuts();
    storeLockWaits();
    faultInjected();
    faultSitesRegistered();
    benchWallMillis();
    return Registry::instance().metrics();
}

} // namespace tsp::obs
