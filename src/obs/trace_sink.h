/**
 * @file
 * Structured sweep tracing: a thread-safe JSONL event sink whose
 * output is a well-formed Chrome trace-event file, so a sweep's
 * per-cell timeline opens directly in chrome://tracing or Perfetto.
 *
 * File layout: a `[` line, then one complete JSON event object per
 * line (trailing comma), then a final instant event and `]` written by
 * close(). Every event line (modulo its trailing comma) is standalone
 * JSON, so the file doubles as a JSONL stream for `jq`-style
 * processing; a file cut short by a crash is still accepted by the
 * trace viewers (the trailing `]` is optional in the Chrome format).
 *
 * Events use the "X" (complete: name, ts, dur), "i" (instant) and "M"
 * (metadata) phases. Timestamps are microseconds since sink creation;
 * thread ids are small integers assigned per OS thread on first use.
 * The schema is documented in docs/observability.md.
 *
 * A process-wide sink can be installed (installGlobal) so layers emit
 * events without plumbing a sink handle through every call; emitting
 * with no sink installed is a no-op.
 */

#ifndef TSP_OBS_TRACE_SINK_H
#define TSP_OBS_TRACE_SINK_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tsp::obs {

/** One "args" member of a trace event: key plus pre-rendered JSON. */
struct TraceArg
{
    std::string key;
    std::string json;  //!< already-valid JSON (use str()/num())

    static TraceArg str(std::string key, const std::string &value);
    static TraceArg num(std::string key, double value);
    static TraceArg num(std::string key, uint64_t value);
};

/** Thread-safe Chrome-trace-event JSONL writer. */
class TraceSink
{
  public:
    /** Open @p path and write the header; throws FatalError. */
    explicit TraceSink(const std::string &path,
                       const std::string &processName = "tsp");

    /** Calls close(); uninstalls itself if it was the global sink. */
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * Emit a complete ("X") event that *ended now* and lasted
     * @p durMs: ts is backdated by the duration, matching the scoped
     * timers that measure first and emit on destruction.
     */
    void complete(const std::string &name, const std::string &cat,
                  double durMs,
                  const std::vector<TraceArg> &args = {});

    /** Emit an instant ("i", global scope) event. */
    void instant(const std::string &name, const std::string &cat,
                 const std::vector<TraceArg> &args = {});

    /** Finalize the file into strictly valid JSON. Idempotent. */
    void close();

    /** Events emitted so far (excluding metadata). */
    uint64_t events() const { return events_.load(); }

    const std::string &path() const { return path_; }

    /**
     * Install @p sink as the process-wide sink (nullptr uninstalls).
     * Emission through global() is how instrumented layers trace
     * without holding a sink reference.
     */
    static void installGlobal(TraceSink *sink);

    /** The installed process-wide sink, or nullptr. */
    static TraceSink *global();

  private:
    uint64_t nowMicros() const;
    uint32_t threadId();
    void writeEvent(const std::string &json);

    std::string path_;
    std::ofstream os_;
    std::mutex mutex_;
    bool closed_ = false;
    std::atomic<uint64_t> events_{0};
    std::chrono::steady_clock::time_point epoch_;
    std::map<std::thread::id, uint32_t> threadIds_;
};

} // namespace tsp::obs

#endif // TSP_OBS_TRACE_SINK_H
