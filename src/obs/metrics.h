/**
 * @file
 * The observability metrics registry: named counters, gauges and
 * fixed-bucket histograms that any layer can register and mutate from
 * any thread.
 *
 * Design points:
 *  - near-zero cost when disabled: every mutation first checks one
 *    process-wide relaxed atomic flag and returns — no allocation, no
 *    atomic read-modify-write, no lock (the disabled path is pinned by
 *    an allocation-counting test);
 *  - mutation is lock-free when enabled: counters and gauges are
 *    relaxed atomics, histogram buckets are an atomic array; only
 *    registration (first use of a name) takes the registry mutex;
 *  - metric handles are stable: the registry never evicts, so
 *    `static Counter &c = Registry::instance().counter(...)` at a use
 *    site is the idiomatic (and allocation-free after first call)
 *    access pattern — `obs/metric_defs.h` centralizes every name;
 *  - metrics are process-wide observability, never experiment inputs:
 *    sweep results are bit-identical with metrics on or off.
 *
 * Export: `Registry::toJson()` / `writeJsonFile()` snapshot every
 * metric as one JSON document (schema in docs/observability.md);
 * `configureFromEnv()` wires the `TSP_METRICS` / `TSP_METRICS_OUT`
 * environment variables for binaries without their own flags.
 */

#ifndef TSP_OBS_METRICS_H
#define TSP_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tsp::obs {

namespace detail {
extern std::atomic<bool> metricsEnabled;
} // namespace detail

/** True when metric mutations are being recorded. */
inline bool
metricsEnabled()
{
    return detail::metricsEnabled.load(std::memory_order_relaxed);
}

/** Turn metric recording on or off (off is the default). */
void setMetricsEnabled(bool enabled);

/**
 * Configure from the environment (idempotent): `TSP_METRICS=1`
 * enables recording; `TSP_METRICS_OUT=<path>` enables recording *and*
 * installs an atexit hook that writes the registry snapshot to the
 * path. Runs automatically at startup in every binary linking the obs
 * library (and again, harmlessly, from the bench banner), so the
 * variables work without per-binary wiring.
 */
void configureFromEnv();

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous level (e.g. queue depth) with a high-water mark. */
class Gauge
{
  public:
    void
    add(int64_t delta)
    {
        if (!metricsEnabled())
            return;
        int64_t now =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        int64_t seen = max_.load(std::memory_order_relaxed);
        while (now > seen &&
               !max_.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed))
            ;
    }

    void
    set(int64_t value)
    {
        if (!metricsEnabled())
            return;
        value_.store(value, std::memory_order_relaxed);
        int64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed))
            ;
    }

    int64_t value() const { return value_.load(std::memory_order_relaxed); }

    /** Highest value ever recorded (0 if never positive). */
    int64_t max() const { return max_.load(std::memory_order_relaxed); }

  private:
    friend class Registry;
    std::atomic<int64_t> value_{0};
    std::atomic<int64_t> max_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * `value <= bounds[i]` (upper-inclusive); one extra overflow bucket
 * counts everything above the last bound. Bounds are fixed at
 * registration, so observation is a branchless scan plus one relaxed
 * atomic increment — no allocation ever.
 */
class Histogram
{
  public:
    void
    observe(double value)
    {
        if (!metricsEnabled())
            return;
        size_t bucket = bounds_.size();  // overflow by default
        for (size_t i = 0; i < bounds_.size(); ++i) {
            if (value <= bounds_[i]) {
                bucket = i;
                break;
            }
        }
        counts_[bucket].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        double seen = sum_.load(std::memory_order_relaxed);
        while (!sum_.compare_exchange_weak(seen, seen + value,
                                           std::memory_order_relaxed))
            ;
    }

    /** The registered upper bounds (not including overflow). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Count in bucket @p i; `i == bounds().size()` is the overflow. */
    uint64_t
    bucketCount(size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

  private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds)
        : bounds_(std::move(bounds)),
          counts_(std::make_unique<std::atomic<uint64_t>[]>(
              bounds_.size() + 1))
    {}

    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Metric metadata, as listed in docs/observability.md's table. */
struct MetricInfo
{
    std::string name;   //!< dotted lowercase, e.g. "pool.tasks_executed"
    std::string kind;   //!< "counter", "gauge" or "histogram"
    std::string owner;  //!< owning layer, e.g. "util::ThreadPool"
    std::string help;   //!< one-line description
};

/**
 * Process-wide metric registry. Registration (find-or-create by name)
 * takes a mutex; returned references stay valid for the process
 * lifetime. Registering an existing name with a different kind throws
 * FatalError — names are global and documented.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name, const std::string &owner,
                     const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &owner,
                 const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &owner,
                         const std::string &help,
                         std::vector<double> bounds);

    /** Metadata of every registered metric, in registration order. */
    std::vector<MetricInfo> metrics() const;

    /** Zero every metric's value (handles stay valid). Test helper. */
    void resetValues();

    /**
     * Snapshot every metric as one JSON document:
     *   {"metrics": {"<name>": {"kind": ..., "owner": ..., "value": ...
     *    | "value"/"max" | "count"/"sum"/"bounds"/"buckets"}, ...}}
     */
    std::string toJson() const;

    /** Write toJson() to @p path; throws FatalError on I/O failure. */
    void writeJsonFile(const std::string &path) const;

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::vector<MetricInfo> order_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace tsp::obs

#endif // TSP_OBS_METRICS_H
