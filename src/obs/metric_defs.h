/**
 * @file
 * The catalog of every metric the library emits. Each accessor
 * registers its metric on first use (function-local static, so the
 * steady-state path is one pointer read) and returns a process-wide
 * handle; `allMetrics()` force-registers the whole catalog and returns
 * its metadata.
 *
 * Rules:
 *  - every metric an instrumented layer mutates MUST have its accessor
 *    here and a row in docs/observability.md's reference table —
 *    `tests/obs_doc_test.cc` diffs the two and fails on drift;
 *  - names are dotted lowercase, prefixed by the owning layer
 *    (pool., lab., sweep., checkpoint., watchdog., sim., bench.).
 */

#ifndef TSP_OBS_METRIC_DEFS_H
#define TSP_OBS_METRIC_DEFS_H

#include <vector>

#include "obs/metrics.h"

namespace tsp::obs {

// ------------------------------------------------- util::ThreadPool
Counter &poolTasksExecuted();     //!< tasks run (pooled or inline)
Gauge &poolQueueDepth();          //!< tasks queued, not yet started
Counter &poolWorkerBusyMicros();  //!< worker time executing tasks
Counter &poolWorkerIdleMicros();  //!< worker time waiting for work

// ---------------------------------------------------- util::Watchdog
Counter &watchdogDeadlineFires(); //!< jobs flagged past their deadline

// ---------------------------------------------------- experiment::Lab
Counter &labTraceMemoHits();
Counter &labTraceMemoMisses();
Counter &labAnalysisMemoHits();
Counter &labAnalysisMemoMisses();
Counter &labProbeMemoHits();
Counter &labProbeMemoMisses();
Histogram &labWarmupMillis();     //!< per-app warmup wall time

// ----------------------------------------- experiment::ParallelRunner
Histogram &sweepCellMillis();     //!< per-cell simulation wall time
Counter &sweepCellsExecuted();
Counter &sweepCellsFromCheckpoint();
Counter &sweepCellsFailed();

// ----------------------------------------- experiment::Checkpoint
Counter &checkpointAppends();        //!< journal records persisted
Counter &checkpointAppendFailures(); //!< appends that failed after retry

// ------------------------------------------------------- sim::Machine
Counter &simRuns();               //!< completed simulate() calls
Histogram &simRunMillis();        //!< per-run simulation wall time
Counter &simInstructions();
Counter &simMemRefs();
Counter &simMissCompulsory();
Counter &simMissIntraConflict();
Counter &simMissInterConflict();
Counter &simMissInvalidation();
Counter &simInvalidationsSent(); //!< directory invalidation messages
Counter &simUpgrades();          //!< directory upgrade transactions
Gauge &simDirEntries();          //!< directory table size after a run
Gauge &simHistoryEntries();      //!< summed cache-history sizes
Counter &simL2Hits();            //!< shared-L2 hits on L1 misses
Counter &simL2Misses();          //!< shared-L2 misses (memory fills)
Counter &simNetQueueDelay();     //!< cycles waited on busy links

// ----------------------------------------- trace::SharedTraceStream
Counter &traceChunkRefills();     //!< chunks pulled from producers
Gauge &traceWindowEvents();       //!< events resident in chunk windows
Gauge &traceResidentBytes();      //!< bytes held by materialized traces

// --------------------------------------------------- sim::BatchMachine
Gauge &batchLanes();              //!< lanes in the running batch
Counter &batchLaneFailures();     //!< lanes degraded to an error

// --------------------------------------------------------- svc::Daemon
Gauge &svcQueueDepth();           //!< requests queued, not yet started
Counter &svcAdmitted();           //!< requests admitted to the queue
Counter &svcShed();               //!< submissions rejected (load shed)
Counter &svcExpired();            //!< requests expired in the queue
Counter &svcRequestsCompleted();  //!< requests answered (any status)
Histogram &svcRequestMillis();    //!< admit-to-answer request latency

// ----------------------------------------------- svc::Server / Client
Counter &netConnectionsAccepted(); //!< client connections accepted
Gauge &netConnectionsOpen();       //!< connections currently open
Counter &netConnectionsRejected(); //!< connections refused at accept
Counter &netFramesIn();            //!< wire frames received (server)
Counter &netFramesOut();           //!< wire frames sent (server)
Counter &netMalformedFrames();     //!< malformed streams rejected
Counter &netConnectionsReaped();   //!< idle/stalled connections reaped
Counter &netReconnects();          //!< client reconnect-and-reissues

// ---------------------------------------------------- svc::ResultStore
Counter &storeHits();             //!< lookups served from the store
Counter &storeMisses();           //!< lookups that missed the store
Counter &storePuts();             //!< result records persisted
Counter &storeLockWaits();        //!< contended advisory-lock waits

// ----------------------------------------------------- fault::Registry
Counter &faultInjected();         //!< faults actually injected
Gauge &faultSitesRegistered();    //!< injection sites registered

// ------------------------------------------------------------- bench
Histogram &benchWallMillis();     //!< every `[wall]` line's duration

/**
 * Register the full catalog (idempotent) and return the registry's
 * metadata for it. The doc-sync test compares this against the table
 * in docs/observability.md.
 */
std::vector<MetricInfo> allMetrics();

} // namespace tsp::obs

#endif // TSP_OBS_METRIC_DEFS_H
