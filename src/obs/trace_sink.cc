#include "obs/trace_sink.h"

#include "obs/json.h"
#include "util/error.h"

namespace tsp::obs {

namespace {

std::atomic<TraceSink *> globalSink{nullptr};

std::string
renderArgs(const std::vector<TraceArg> &args)
{
    if (args.empty())
        return "";
    std::string out = ", \"args\": {";
    for (size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(args[i].key) + ": " + args[i].json;
    }
    out += "}";
    return out;
}

} // namespace

TraceArg
TraceArg::str(std::string key, const std::string &value)
{
    return {std::move(key), jsonQuote(value)};
}

TraceArg
TraceArg::num(std::string key, double value)
{
    return {std::move(key), jsonNumber(value)};
}

TraceArg
TraceArg::num(std::string key, uint64_t value)
{
    return {std::move(key), std::to_string(value)};
}

TraceSink::TraceSink(const std::string &path,
                     const std::string &processName)
    : path_(path), epoch_(std::chrono::steady_clock::now())
{
    os_.open(path, std::ios::trunc);
    util::fatalIf(!os_, "cannot open trace for writing: " + path);
    os_ << "[\n";
    // Metadata first, so viewers label the process row.
    os_ << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": "
        << jsonQuote(processName) << "}},\n";
    util::fatalIf(!os_, "trace write failed: " + path);
}

TraceSink::~TraceSink()
{
    if (global() == this)
        installGlobal(nullptr);
    try {
        close();
    } catch (...) {
        // Destructors must not throw; the trace is best-effort.
    }
}

uint64_t
TraceSink::nowMicros() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint32_t
TraceSink::threadId()
{
    // Caller holds mutex_.
    auto [it, inserted] = threadIds_.try_emplace(
        std::this_thread::get_id(),
        static_cast<uint32_t>(threadIds_.size() + 1));
    return it->second;
}

void
TraceSink::writeEvent(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return;
    os_ << json << ",\n";
    os_.flush();  // crash tolerance: every event line hits the disk
    events_.fetch_add(1);
}

void
TraceSink::complete(const std::string &name, const std::string &cat,
                    double durMs,
                    const std::vector<TraceArg> &args)
{
    uint64_t durUs = static_cast<uint64_t>(durMs * 1000.0);
    uint64_t end = nowMicros();
    uint64_t ts = end > durUs ? end - durUs : 0;
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return;
    os_ << "{\"name\": " << jsonQuote(name)
        << ", \"cat\": " << jsonQuote(cat)
        << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << threadId()
        << ", \"ts\": " << ts << ", \"dur\": " << durUs
        << renderArgs(args) << "},\n";
    os_.flush();
    events_.fetch_add(1);
}

void
TraceSink::instant(const std::string &name, const std::string &cat,
                   const std::vector<TraceArg> &args)
{
    uint64_t ts = nowMicros();
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return;
    os_ << "{\"name\": " << jsonQuote(name)
        << ", \"cat\": " << jsonQuote(cat)
        << ", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": "
        << threadId() << ", \"ts\": " << ts << renderArgs(args)
        << "},\n";
    os_.flush();
    events_.fetch_add(1);
}

void
TraceSink::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return;
    closed_ = true;
    // Final event has no trailing comma, making the array valid JSON.
    os_ << "{\"name\": \"trace_end\", \"cat\": \"obs\", \"ph\": \"i\", "
           "\"s\": \"g\", \"pid\": 1, \"tid\": 0, \"ts\": "
        << nowMicros() << "}\n]\n";
    os_.flush();
    util::fatalIf(!os_, "trace finalize failed: " + path_);
    os_.close();
}

void
TraceSink::installGlobal(TraceSink *sink)
{
    globalSink.store(sink, std::memory_order_release);
}

TraceSink *
TraceSink::global()
{
    return globalSink.load(std::memory_order_acquire);
}

} // namespace tsp::obs
