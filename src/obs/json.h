/**
 * @file
 * Minimal JSON support for the observability layer: escaping for the
 * writers (metrics snapshot, trace sink) and a small recursive-descent
 * parser used by the tests to round-trip everything the writers emit.
 * Deliberately tiny — not a general-purpose JSON library.
 */

#ifndef TSP_OBS_JSON_H
#define TSP_OBS_JSON_H

#include <map>
#include <string>
#include <vector>

namespace tsp::obs {

/** Quote and escape @p s as a JSON string literal (with quotes). */
std::string jsonQuote(const std::string &s);

/** Format @p x as a JSON number (shortest round-trippable form). */
std::string jsonNumber(double x);

/** A parsed JSON value (tree). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Member lookup; throws FatalError when absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** True when this is an object with member @p key. */
    bool has(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * anything else after the value is an error). Throws FatalError with
 * the byte offset on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace tsp::obs

#endif // TSP_OBS_JSON_H
