#include "fault/fault.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "obs/metric_defs.h"
#include "util/error.h"

namespace tsp::fault {

namespace detail {
std::atomic<bool> faultArmed{false};
} // namespace detail

namespace {

/** How long a Delay-kind injection stalls its thread. */
constexpr std::chrono::milliseconds kDelay{2};

} // namespace

const std::vector<Kind> &
allKinds()
{
    static const std::vector<Kind> kinds{Kind::Error, Kind::Fatal,
                                         Kind::Delay};
    return kinds;
}

std::string
kindName(Kind kind)
{
    switch (kind) {
    case Kind::Error:
        return "error";
    case Kind::Fatal:
        return "fatal";
    case Kind::Delay:
        return "delay";
    }
    util::panic("unknown fault kind");
}

Kind
kindFromName(const std::string &name)
{
    for (Kind kind : allKinds()) {
        if (kindName(kind) == name)
            return kind;
    }
    util::fatal("unknown fault kind '" + name +
                "' (expected error, fatal or delay)");
}

std::string
FaultSpec::describe() const
{
    return site + ":" + std::to_string(nth) +
           (persistent ? "+" : "") + ":" + kindName(kind);
}

FaultSpec
parseFaultSpec(const std::string &spec)
{
    size_t firstColon = spec.find(':');
    size_t lastColon = spec.rfind(':');
    util::fatalIf(firstColon == std::string::npos ||
                      lastColon == firstColon,
                  "fault spec '" + spec +
                      "' is not of the form site:nth[+]:kind");

    FaultSpec parsed;
    parsed.site = spec.substr(0, firstColon);
    std::string nth =
        spec.substr(firstColon + 1, lastColon - firstColon - 1);
    parsed.kind = kindFromName(spec.substr(lastColon + 1));

    if (!nth.empty() && nth.back() == '+') {
        parsed.persistent = true;
        nth.pop_back();
    }
    util::fatalIf(nth.empty() ||
                      nth.find_first_not_of("0123456789") !=
                          std::string::npos,
                  "fault spec '" + spec +
                      "' has a non-numeric hit ordinal");
    try {
        parsed.nth = std::stoull(nth);
    } catch (const std::exception &) {
        util::fatal("fault spec '" + spec +
                    "' has an unparseable hit ordinal");
    }
    util::fatalIf(parsed.nth == 0,
                  "fault spec '" + spec +
                      "' must use a 1-based hit ordinal");
    util::fatalIf(!Registry::isCataloged(parsed.site),
                  "fault spec '" + spec + "' names unknown site '" +
                      parsed.site +
                      "' (see docs/robustness.md for the catalog)");
    return parsed;
}

// ------------------------------------------------------------------ Site

void
Site::hit()
{
    hits_.fetch_add(1, std::memory_order_relaxed);
    // Acquire pairs with applySpec's release store: observing
    // siteArmed_ == true makes the plain armNth_/armPersistent_/
    // armKind_ writes that preceded it visible to this thread.
    if (!siteArmed_.load(std::memory_order_acquire))
        return;
    // The ordinal is a single atomic increment, so even when pool
    // threads race through the site, exactly one of them observes the
    // armed ordinal (and with "nth+", every hit from it on fires).
    uint64_t ordinal = armHits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ordinal < armNth_ || (!armPersistent_ && ordinal > armNth_))
        return;

    triggered_.fetch_add(1, std::memory_order_relaxed);
    obs::faultInjected().inc();
    if (armKind_ == Kind::Delay) {
        std::this_thread::sleep_for(kDelay);
        return;
    }
    throwInjected(armKind_, ordinal);
}

void
Site::throwInjected(Kind kind, uint64_t ordinal) const
{
    std::string what = "injected fault at " + info_.name + " (hit " +
                       std::to_string(ordinal) + ")";
    if (kind == Kind::Fatal)
        util::fatal(what);
    throw std::runtime_error(what);
}

// -------------------------------------------------------------- Registry

const std::vector<SiteInfo> &
Registry::catalog()
{
    // The compiled-in site catalog. Every TSP_FAULT_POINT in the tree
    // must name a row here (novel names panic at the use site), and
    // docs/robustness.md's table must mirror it (fault_doc_test).
    static const std::vector<SiteInfo> sites{
        {"trace.read", "trace::loadFile",
         "opening a trace file for reading fails"},
        {"trace.decode", "trace::loadBinary",
         "a trace payload fails mid-decode (torn or corrupt stream)"},
        {"trace.write", "trace::saveFile",
         "writing the trace temp file fails before publish"},
        {"checkpoint.append", "experiment::Checkpoint",
         "writing the checkpoint journal's temp file fails"},
        {"checkpoint.rename", "experiment::Checkpoint",
         "the atomic tmp->journal rename publish fails"},
        {"lab.memo_init", "experiment::Lab",
         "materializing an application's traces fails"},
        {"pool.dispatch", "util::ThreadPool",
         "a pooled task fails at dispatch, before user code runs"},
        {"report.write", "experiment::CsvWriter",
         "appending a row to a report CSV fails"},
        {"sim.step", "sim::Machine",
         "a simulated memory access fails mid-run"},
        {"trace.chunk_refill", "trace::SharedTraceStream",
         "pulling the next trace chunk from a streaming producer "
         "fails"},
        {"batch.lane", "sim::BatchMachine",
         "constructing one lane of a lockstep batch fails"},
        {"svc.admit", "svc::Daemon",
         "admitting a request to the bounded job queue fails"},
        {"svc.dequeue", "svc::Daemon",
         "a worker dequeuing the next request fails"},
        {"store.put", "svc::ResultStore",
         "persisting a result record to the store fails"},
        {"store.load", "svc::ResultStore",
         "opening or replaying the on-disk result store fails"},
        {"store.lock", "svc::ResultStore",
         "taking the store's advisory file lock fails"},
        {"net.accept", "svc::Server",
         "accepting a client connection fails"},
        {"net.read", "svc::Server",
         "reading request bytes from a client socket fails"},
        {"net.write", "svc::Server",
         "writing response bytes to a client socket fails"},
        {"net.frame", "svc::Server",
         "decoding a received wire frame fails"},
    };
    return sites;
}

bool
Registry::isCataloged(const std::string &name)
{
    for (const SiteInfo &info : catalog()) {
        if (info.name == name)
            return true;
    }
    return false;
}

Registry &
Registry::instance()
{
    // Immortal, like the obs registry: sites referenced from
    // function-local statics must outlive exit-time destructors.
    static Registry *registry = new Registry();
    return *registry;
}

Site &
Registry::site(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(name);
    if (it != sites_.end())
        return *it->second;

    const SiteInfo *info = nullptr;
    for (const SiteInfo &candidate : catalog()) {
        if (candidate.name == name) {
            info = &candidate;
            break;
        }
    }
    util::panicIf(info == nullptr,
                  "fault site '" + name +
                      "' is not in the catalog (add it to "
                      "fault::Registry::catalog() and "
                      "docs/robustness.md)");

    auto &slot = sites_[name];
    slot.reset(new Site(*info));
    order_.push_back(name);
    obs::faultSitesRegistered().set(
        static_cast<int64_t>(order_.size()));
    if (armedSpec_ && armedSpec_->site == name)
        applySpec();
    return *slot;
}

std::vector<SiteInfo>
Registry::registered() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SiteInfo> out;
    out.reserve(order_.size());
    for (const std::string &name : order_)
        out.push_back(sites_.at(name)->info());
    return out;
}

std::vector<Registry::SiteCounters>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SiteCounters> out;
    out.reserve(order_.size());
    for (const std::string &name : order_) {
        const Site &site = *sites_.at(name);
        out.push_back({name, site.hits(), site.triggered()});
    }
    return out;
}

void
Registry::resetCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, site] : sites_) {
        site->hits_.store(0, std::memory_order_relaxed);
        site->triggered_.store(0, std::memory_order_relaxed);
    }
}

void
Registry::applySpec()
{
    for (auto &[name, site] : sites_) {
        bool mine = armedSpec_ && armedSpec_->site == name;
        if (mine) {
            site->armNth_ = armedSpec_->nth;
            site->armPersistent_ = armedSpec_->persistent;
            site->armKind_ = armedSpec_->kind;
            site->armHits_.store(0, std::memory_order_relaxed);
        }
        // Release publishes the plain armed-field writes above to any
        // thread whose hit() acquire-loads siteArmed_ == true. (The
        // registry mutex alone gives no happens-before with the
        // lock-free hit path.)
        site->siteArmed_.store(mine, std::memory_order_release);
    }
}

void
Registry::arm(const FaultSpec &spec)
{
    util::fatalIf(spec.nth == 0,
                  "fault spec needs a 1-based hit ordinal");
    util::fatalIf(!isCataloged(spec.site),
                  "cannot arm unknown fault site '" + spec.site + "'");
    std::lock_guard<std::mutex> lock(mutex_);
    armedSpec_ = spec;
    applySpec();
    // Release-ordered after applySpec's per-site stores; the relaxed
    // armed() fast-path load is still safe because hit() re-checks
    // siteArmed_ with acquire before touching the armed fields.
    detail::faultArmed.store(true, std::memory_order_release);
}

void
Registry::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    detail::faultArmed.store(false, std::memory_order_release);
    armedSpec_.reset();
    applySpec();
}

std::optional<FaultSpec>
Registry::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return armedSpec_;
}

uint64_t
Registry::injectedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto &[name, site] : sites_)
        total += site->triggered();
    return total;
}

void
arm(const std::string &spec)
{
    Registry::instance().arm(parseFaultSpec(spec));
}

void
disarm()
{
    Registry::instance().disarm();
}

void
configureFromEnv()
{
    static bool configured = false;
    if (configured)
        return;
    configured = true;
    if (const char *spec = std::getenv("TSP_FAULT")) {
        if (*spec)
            arm(std::string(spec));
    }
}

namespace {

// TSP_FAULT works in every binary linking the fault library without
// per-main wiring, mirroring TSP_METRICS. A malformed spec throws out
// of static init: better to die loudly than to run a chaos sweep that
// silently injects nothing.
[[maybe_unused]] const bool envConfiguredAtStartup =
    (configureFromEnv(), true);

} // namespace

} // namespace tsp::fault
