/**
 * @file
 * Deterministic fault-injection framework for the robustness seams.
 *
 * Every recovery mechanism in this repo (checkpoint/resume, bounded
 * retry, fault-isolated sweeps, watchdog) exists to survive failures —
 * and nothing proves recovery machinery like provoking the failure on
 * purpose. A named injection site is placed at each seam with
 *
 *     TSP_FAULT_POINT("checkpoint.rename");
 *
 * and does nothing until a fault is armed. Arming is deterministic:
 * one spec selects a site, the hit ordinal at which it fires, and the
 * failure kind —
 *
 *     TSP_FAULT=checkpoint.rename:1:error    (env, any tsp binary)
 *     tsp-run sweep ... --fault trace.write:2+:fatal
 *
 * grammar `site:nth[+]:kind`: fire at the nth hit of the site
 * (1-based, counted with one atomic per site so multi-threaded runs
 * fire exactly once), or at every hit from the nth on when the `+`
 * suffix is present (for exercising retry exhaustion). Kinds:
 *
 *  - `error` — throw std::runtime_error, the shape of a transient
 *    filesystem/environment failure (retry policies may heal it);
 *  - `fatal` — throw util::FatalError, the shape of a bad input or
 *    unrecoverable environment error (sweeps degrade the cell);
 *  - `delay` — sleep a few milliseconds, the shape of a stall
 *    (watchdog and deadline paths see it; nothing throws).
 *
 * Design points (mirroring the obs metrics registry, whose disabled
 * cost is pinned by test):
 *  - near-zero cost when disarmed: the macro checks one process-wide
 *    relaxed atomic flag and falls through — no allocation, no lock,
 *    no registration (pinned by tests/fault_test.cc);
 *  - sites register on first armed execution, against a fixed catalog
 *    compiled into the library: a TSP_FAULT_POINT whose name is not
 *    cataloged is a PanicError, so the catalog (and its documentation
 *    table in docs/robustness.md, enforced by fault_doc_test) can
 *    never silently lag the code;
 *  - observability: every injected fault bumps the `fault.injected`
 *    obs counter; `fault.sites` gauges the registered-site count.
 */

#ifndef TSP_FAULT_FAULT_H
#define TSP_FAULT_FAULT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace tsp::fault {

namespace detail {
extern std::atomic<bool> faultArmed;
} // namespace detail

/** True while some fault spec is armed. Relaxed is deliberate — this
 *  is the disarmed fast path pinned by test; Site::hit() re-checks
 *  the per-site armed flag with acquire before reading the spec, so
 *  no armed state is consumed on the strength of this load alone. */
inline bool
armed()
{
    return detail::faultArmed.load(std::memory_order_relaxed);
}

/** The failure shapes a site can be armed to produce. */
enum class Kind : uint8_t {
    Error = 0,  //!< throw std::runtime_error (transient-shaped)
    Fatal = 1,  //!< throw util::FatalError (bad-input-shaped)
    Delay = 2,  //!< sleep briefly (stall-shaped; nothing thrown)
};

/** Every kind, for matrix enumeration (chaos harness). */
const std::vector<Kind> &allKinds();

/** "error", "fatal" or "delay". */
std::string kindName(Kind kind);

/** Inverse of kindName; FatalError on an unknown name. */
Kind kindFromName(const std::string &name);

/** Catalog metadata of one injection site. */
struct SiteInfo
{
    std::string name;   //!< dotted lowercase, e.g. "checkpoint.rename"
    std::string owner;  //!< the layer hosting the seam
    std::string help;   //!< what failing here simulates
};

/** One armed fault: which site fires, when, and how. */
struct FaultSpec
{
    std::string site;
    uint64_t nth = 1;         //!< 1-based hit ordinal that fires
    bool persistent = false;  //!< fire on every hit >= nth ("nth+")
    Kind kind = Kind::Error;

    /** Canonical "site:nth[+]:kind" form. */
    std::string describe() const;
};

/**
 * Parse "site:nth[+]:kind" (e.g. "checkpoint.append:2:error",
 * "trace.write:1+:fatal"). FatalError on malformed specs, unknown
 * kinds, unknown (un-cataloged) sites, or nth == 0.
 */
FaultSpec parseFaultSpec(const std::string &spec);

/** One registered injection site. */
class Site
{
  public:
    const std::string &name() const { return info_.name; }
    const SiteInfo &info() const { return info_; }

    /** Total executions of this site while the framework was armed. */
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Faults this site actually injected. */
    uint64_t triggered() const
    {
        return triggered_.load(std::memory_order_relaxed);
    }

    /**
     * Called by TSP_FAULT_POINT (only while armed). Counts the hit
     * and, when this site's armed ordinal is reached, injects the
     * armed kind (throwing for Error/Fatal).
     */
    void hit();

  private:
    friend class Registry;
    explicit Site(SiteInfo info) : info_(std::move(info)) {}

    [[noreturn]] void throwInjected(Kind kind, uint64_t ordinal) const;

    SiteInfo info_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> triggered_{0};

    // Armed state, written by Registry::applySpec under its mutex and
    // read lock-free on the hit path. The plain fields below are
    // published by the release store of siteArmed_ and consumed after
    // its acquire load in hit(); re-arming while threads are actively
    // executing this site's fault point is not supported (see
    // Registry::arm).
    std::atomic<bool> siteArmed_{false};
    std::atomic<uint64_t> armHits_{0};
    uint64_t armNth_ = 1;
    bool armPersistent_ = false;
    Kind armKind_ = Kind::Error;
};

/**
 * Process-wide site registry. Site registration (first armed execution
 * of a TSP_FAULT_POINT) takes the mutex; returned references stay
 * valid for the process lifetime. Only cataloged names register —
 * a novel name is a PanicError, keeping code, catalog and docs in
 * lockstep.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Find-or-register the cataloged site @p name. */
    Site &site(const std::string &name);

    /** The full compiled-in catalog (registered or not). */
    static const std::vector<SiteInfo> &catalog();

    /** True when @p name is in the catalog. */
    static bool isCataloged(const std::string &name);

    /** Metadata of every site registered so far. */
    std::vector<SiteInfo> registered() const;

    /** Per-site (hits, triggered) counters, for tests and reports. */
    struct SiteCounters
    {
        std::string name;
        uint64_t hits = 0;
        uint64_t triggered = 0;
    };
    std::vector<SiteCounters> counters() const;

    /** Zero every site's hit/trigger counters. Test helper. */
    void resetCounters();

    /**
     * Arm @p spec: the named site fires per its nth/kind from now on.
     * Replaces any previously armed spec. FatalError on un-cataloged
     * sites or nth == 0.
     *
     * Concurrency: arming publishes the spec with release/acquire
     * ordering, so threads that start hitting fault points *after*
     * arm() returns observe it coherently. Re-arming (or disarming)
     * while other threads are actively executing an armed fault point
     * is not supported — a racing hit may observe a mix of the old
     * and new spec. Arm before launching the workload and disarm
     * after it drains (the chaos harness and tests do exactly this).
     */
    void arm(const FaultSpec &spec);

    /**
     * Disarm: every TSP_FAULT_POINT returns to the no-op fast path.
     * Same concurrency contract as arm().
     */
    void disarm();

    /** The armed spec, if any. */
    std::optional<FaultSpec> current() const;

    /** Total faults injected process-wide (all sites, all arms). */
    uint64_t injectedCount() const;

  private:
    Registry() = default;

    /** Push armedSpec_ into the per-site armed state (mutex held). */
    void applySpec();

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Site>> sites_;
    std::vector<std::string> order_;
    std::optional<FaultSpec> armedSpec_;
};

/** Parse-and-arm convenience ("site:nth[+]:kind"). */
void arm(const std::string &spec);

/** @copydoc Registry::disarm */
void disarm();

/**
 * Configure from the environment (idempotent): `TSP_FAULT=spec` arms
 * the spec in any binary linking the fault library. Runs automatically
 * at startup via a static initializer, so the variable needs no
 * per-binary wiring; a malformed spec aborts startup loudly rather
 * than silently not injecting.
 */
void configureFromEnv();

} // namespace tsp::fault

/**
 * A named fault-injection site. Near-zero cost while disarmed (one
 * relaxed atomic load); once armed, counts hits and injects the armed
 * fault at the configured ordinal. @p namestr must be a string literal
 * present in the fault catalog.
 */
#define TSP_FAULT_POINT(namestr)                                       \
    do {                                                               \
        if (::tsp::fault::armed()) {                                   \
            static ::tsp::fault::Site &tspFaultPointSite =             \
                ::tsp::fault::Registry::instance().site(namestr);      \
            tspFaultPointSite.hit();                                   \
        }                                                              \
    } while (0)

#endif // TSP_FAULT_FAULT_H
