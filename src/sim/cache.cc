#include "sim/cache.h"

#include "util/bits.h"
#include "util/error.h"

namespace tsp::sim {

Cache::Cache(const SimConfig &cfg)
{
    cfg.validate();
    uint64_t sets = cfg.numSets();
    util::panicIf(!util::isPow2(sets), "set count must be a power of 2");
    setMask_ = sets - 1;
    ways_ = cfg.associativity;
    frames_.resize(sets * ways_);
}

MissKind
Cache::classifyMiss(uint64_t block, uint32_t tid) const
{
    return classifyMissAndWriter(block, tid).kind;
}

Cache::MissClass
Cache::classifyMissAndWriter(uint64_t block, uint32_t tid) const
{
    const History *h = history_.find(block);
    if (!h)
        return {MissKind::Compulsory, -1};
    if (h->how == Departure::Invalidated)
        return {MissKind::Invalidation,
                static_cast<int32_t>(h->otherThread)};
    return {h->otherThread == tid ? MissKind::IntraConflict
                                  : MissKind::InterConflict,
            -1};
}

int32_t
Cache::invalidatingWriter(uint64_t block) const
{
    const History *h = history_.find(block);
    if (!h || h->how != Departure::Invalidated)
        return -1;
    return static_cast<int32_t>(h->otherThread);
}

void
Cache::recordEviction(uint64_t block, uint32_t evictor)
{
    *history_.tryEmplace(block).first = {Departure::Evicted, evictor};
}

Cache::BackInval
Cache::backInvalidate(uint64_t block, uint32_t causerTid)
{
    Frame *f = lookup(block);
    if (!f)
        return {};
    BackInval out{true, f->dirty()};
    f->state = CoherenceState::Invalid;
    *history_.tryEmplace(block).first = {Departure::Evicted,
                                         causerTid};
    return out;
}

int32_t
Cache::invalidate(uint64_t block, uint32_t writerTid)
{
    Frame *f = lookup(block);
    if (!f)
        return -1;
    int32_t resident = static_cast<int32_t>(f->threadId);
    f->state = CoherenceState::Invalid;
    *history_.tryEmplace(block).first = {Departure::Invalidated,
                                         writerTid};
    return resident;
}

} // namespace tsp::sim
