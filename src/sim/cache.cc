#include "sim/cache.h"

#include "util/bits.h"
#include "util/error.h"

namespace tsp::sim {

Cache::Cache(const SimConfig &cfg)
{
    cfg.validate();
    uint64_t sets = cfg.numSets();
    util::panicIf(!util::isPow2(sets), "set count must be a power of 2");
    setMask_ = sets - 1;
    ways_ = cfg.associativity;
    frames_.resize(sets * ways_);
}

Cache::Frame *
Cache::lookup(uint64_t block)
{
    size_t base = setBase(block);
    for (uint32_t w = 0; w < ways_; ++w) {
        Frame &f = frames_[base + w];
        if (f.valid() && f.tag == block)
            return &f;
    }
    return nullptr;
}

const Cache::Frame *
Cache::lookup(uint64_t block) const
{
    return const_cast<Cache *>(this)->lookup(block);
}

Cache::Frame &
Cache::victimFor(uint64_t block)
{
    size_t base = setBase(block);
    Frame *victim = &frames_[base];
    for (uint32_t w = 0; w < ways_; ++w) {
        Frame &f = frames_[base + w];
        if (!f.valid())
            return f;
        if (f.lastUse < victim->lastUse)
            victim = &f;
    }
    return *victim;
}

MissKind
Cache::classifyMiss(uint64_t block, uint32_t tid) const
{
    auto it = history_.find(block);
    if (it == history_.end())
        return MissKind::Compulsory;
    if (it->second.how == Departure::Invalidated)
        return MissKind::Invalidation;
    return it->second.otherThread == tid ? MissKind::IntraConflict
                                         : MissKind::InterConflict;
}

int32_t
Cache::invalidatingWriter(uint64_t block) const
{
    auto it = history_.find(block);
    if (it == history_.end() || it->second.how != Departure::Invalidated)
        return -1;
    return static_cast<int32_t>(it->second.otherThread);
}

void
Cache::recordEviction(uint64_t block, uint32_t evictor)
{
    history_[block] = {Departure::Evicted, evictor};
}

int32_t
Cache::invalidate(uint64_t block, uint32_t writerTid)
{
    Frame *f = lookup(block);
    if (!f)
        return -1;
    int32_t resident = static_cast<int32_t>(f->threadId);
    f->state = CoherenceState::Invalid;
    history_[block] = {Departure::Invalidated, writerTid};
    return resident;
}

} // namespace tsp::sim
