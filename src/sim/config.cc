#include "sim/config.h"

#include <sstream>

#include "util/bits.h"
#include "util/error.h"
#include "util/format.h"

namespace tsp::sim {

void
SimConfig::validate() const
{
    util::fatalIf(processors == 0 || processors > 128,
                  "processors must be in [1, 128]");
    util::fatalIf(contexts == 0, "need >= 1 hardware context");
    util::fatalIf(!util::isPow2(cacheBytes), "cache size must be 2^k");
    util::fatalIf(!util::isPow2(blockBytes), "block size must be 2^k");
    util::fatalIf(blockBytes < 4 || blockBytes > 4096,
                  "block size out of range");
    util::fatalIf(cacheBytes < blockBytes,
                  "cache smaller than one block");
    util::fatalIf(!util::isPow2(associativity) || associativity > 64,
                  "associativity must be a power of two <= 64");
    util::fatalIf(cacheBytes < static_cast<uint64_t>(blockBytes) *
                                   associativity,
                  "cache smaller than one set");
    util::fatalIf(hitLatency == 0, "hit latency must be >= 1 cycle");
}

std::string
SimConfig::describe() const
{
    std::ostringstream os;
    os << processors << " procs x " << contexts << " ctxs, "
       << util::fmtBytes(cacheBytes) << ' ';
    if (associativity == 1)
        os << "direct-mapped";
    else
        os << associativity << "-way";
    os << " (" << blockBytes << "B blocks), miss " << memoryLatency
       << "cy, switch " << contextSwitchCycles << "cy";
    return os.str();
}

} // namespace tsp::sim
