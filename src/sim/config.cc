#include "sim/config.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "util/bits.h"
#include "util/error.h"
#include "util/format.h"

namespace tsp::sim {

namespace {

/** ~0 = no override; anything else wins over the environment. */
std::atomic<uint64_t> paranoidOverride{~0ull};

} // namespace

uint64_t
defaultParanoidEvery()
{
    uint64_t forced = paranoidOverride.load(std::memory_order_relaxed);
    if (forced != ~0ull)
        return forced;
    static const uint64_t cached = [] {
        const char *env = std::getenv("TSP_PARANOID");
        if (!env || !*env)
            return uint64_t{0};
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env || *end != '\0')
            return uint64_t{0};
        return static_cast<uint64_t>(v);
    }();
    return cached;
}

void
setDefaultParanoidEvery(uint64_t every)
{
    paranoidOverride.store(every, std::memory_order_relaxed);
}

std::string
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::Msi:   return "MSI";
      case Protocol::Mesi:  return "MESI";
      case Protocol::Moesi: return "MOESI";
    }
    util::panic("unknown coherence protocol");
}

void
SimConfig::validate() const
{
    util::fatalIf(processors == 0 || processors > kMaxProcessors,
                  "processors must be in [1, " +
                      std::to_string(kMaxProcessors) +
                      "] (directory sharer-mask width)");
    util::fatalIf(contexts == 0, "need >= 1 hardware context");
    util::fatalIf(!util::isPow2(cacheBytes), "cache size must be 2^k");
    util::fatalIf(!util::isPow2(blockBytes), "block size must be 2^k");
    util::fatalIf(blockBytes < 4 || blockBytes > 4096,
                  "block size out of range");
    util::fatalIf(cacheBytes < blockBytes,
                  "cache smaller than one block");
    util::fatalIf(!util::isPow2(associativity) || associativity > 64,
                  "associativity must be a power of two <= 64");
    util::fatalIf(cacheBytes < static_cast<uint64_t>(blockBytes) *
                                   associativity,
                  "cache smaller than one set");
    util::fatalIf(hitLatency == 0, "hit latency must be >= 1 cycle");
    util::fatalIf(protocol != Protocol::Msi &&
                      protocol != Protocol::Mesi &&
                      protocol != Protocol::Moesi,
                  "unknown coherence protocol");
    if (l2Bytes > 0) {
        util::fatalIf(!util::isPow2(l2Bytes),
                      "L2 size must be 2^k bytes");
        util::fatalIf(!util::isPow2(l2Associativity) ||
                          l2Associativity > 64,
                      "L2 associativity must be a power of two <= 64");
        util::fatalIf(l2Bytes < static_cast<uint64_t>(blockBytes) *
                                    l2Associativity,
                      "L2 smaller than one set");
        util::fatalIf(l2HitLatency == 0 ||
                          l2HitLatency >= memoryLatency,
                      "L2 hit latency must be in [1, memoryLatency)");
    }
    util::fatalIf(networkLinks > 4096, "implausible link count");
    util::fatalIf(networkLinks > 0 && networkChannels > 0,
                  "networkLinks and networkChannels are alternative "
                  "contention models; enable at most one");
    util::fatalIf(networkLinks > 0 && linkOccupancy == 0,
                  "link occupancy must be >= 1 cycle");
}

std::vector<MemSystemKnob>
memSystemKnobs()
{
    const SimConfig d;  // defaults come from the code, never the doc
    auto num = [](uint64_t v) { return std::to_string(v); };
    auto onOff = [](bool v) { return std::string(v ? "true" : "false"); };
    return {
        {"cacheBytes", num(d.cacheBytes),
         "power of two >= blockBytes"},
        {"blockBytes", num(d.blockBytes), "power of two in [4, 4096]"},
        {"associativity", num(d.associativity),
         "power of two in [1, 64]"},
        {"hitLatency", num(d.hitLatency), ">= 1 cycle"},
        {"memoryLatency", num(d.memoryLatency), ">= 1 cycle"},
        {"stallOnUpgrade", onOff(d.stallOnUpgrade), "true / false"},
        {"protocol", protocolName(d.protocol), "MSI / MESI / MOESI"},
        {"l2Bytes", num(d.l2Bytes),
         "0 (no L2) or a power of two >= blockBytes x l2Associativity"},
        {"l2Associativity", num(d.l2Associativity),
         "power of two in [1, 64]"},
        {"l2HitLatency", num(d.l2HitLatency), "[1, memoryLatency)"},
        {"l2Inclusive", onOff(d.l2Inclusive), "true / false"},
        {"networkChannels", num(d.networkChannels),
         "0 (contention-free) or [1, 4096]; exclusive with "
         "networkLinks"},
        {"channelOccupancy", num(d.channelOccupancy), ">= 1 cycle"},
        {"networkLinks", num(d.networkLinks),
         "0 (contention-free) or [1, 4096]; exclusive with "
         "networkChannels"},
        {"linkOccupancy", num(d.linkOccupancy), ">= 1 cycle"},
    };
}

std::string
SimConfig::describe() const
{
    std::ostringstream os;
    os << processors << " procs x " << contexts << " ctxs, "
       << util::fmtBytes(cacheBytes) << ' ';
    if (associativity == 1)
        os << "direct-mapped";
    else
        os << associativity << "-way";
    os << " (" << blockBytes << "B blocks), miss " << memoryLatency
       << "cy, switch " << contextSwitchCycles << "cy";
    if (protocol != Protocol::Mesi)
        os << ", " << protocolName(protocol);
    if (l2Bytes > 0) {
        os << ", " << (l2Inclusive ? "inclusive" : "exclusive")
           << " shared L2 " << util::fmtBytes(l2Bytes) << ' '
           << l2Associativity << "-way " << l2HitLatency << "cy";
    }
    if (networkLinks > 0) {
        os << ", " << networkLinks << " queued links ("
           << linkOccupancy << "cy occupancy)";
    }
    if (paranoidEvery)
        os << ", paranoid every " << paranoidEvery << " refs";
    return os.str();
}

} // namespace tsp::sim
