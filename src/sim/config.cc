#include "sim/config.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "util/bits.h"
#include "util/error.h"
#include "util/format.h"

namespace tsp::sim {

namespace {

/** ~0 = no override; anything else wins over the environment. */
std::atomic<uint64_t> paranoidOverride{~0ull};

} // namespace

uint64_t
defaultParanoidEvery()
{
    uint64_t forced = paranoidOverride.load(std::memory_order_relaxed);
    if (forced != ~0ull)
        return forced;
    static const uint64_t cached = [] {
        const char *env = std::getenv("TSP_PARANOID");
        if (!env || !*env)
            return uint64_t{0};
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env || *end != '\0')
            return uint64_t{0};
        return static_cast<uint64_t>(v);
    }();
    return cached;
}

void
setDefaultParanoidEvery(uint64_t every)
{
    paranoidOverride.store(every, std::memory_order_relaxed);
}

void
SimConfig::validate() const
{
    util::fatalIf(processors == 0 || processors > kMaxProcessors,
                  "processors must be in [1, " +
                      std::to_string(kMaxProcessors) +
                      "] (directory sharer-mask width)");
    util::fatalIf(contexts == 0, "need >= 1 hardware context");
    util::fatalIf(!util::isPow2(cacheBytes), "cache size must be 2^k");
    util::fatalIf(!util::isPow2(blockBytes), "block size must be 2^k");
    util::fatalIf(blockBytes < 4 || blockBytes > 4096,
                  "block size out of range");
    util::fatalIf(cacheBytes < blockBytes,
                  "cache smaller than one block");
    util::fatalIf(!util::isPow2(associativity) || associativity > 64,
                  "associativity must be a power of two <= 64");
    util::fatalIf(cacheBytes < static_cast<uint64_t>(blockBytes) *
                                   associativity,
                  "cache smaller than one set");
    util::fatalIf(hitLatency == 0, "hit latency must be >= 1 cycle");
}

std::string
SimConfig::describe() const
{
    std::ostringstream os;
    os << processors << " procs x " << contexts << " ctxs, "
       << util::fmtBytes(cacheBytes) << ' ';
    if (associativity == 1)
        os << "direct-mapped";
    else
        os << associativity << "-way";
    os << " (" << blockBytes << "B blocks), miss " << memoryLatency
       << "cy, switch " << contextSwitchCycles << "cy";
    if (paranoidEvery)
        os << ", paranoid every " << paranoidEvery << " refs";
    return os.str();
}

} // namespace tsp::sim
