/**
 * @file
 * Batched lockstep simulation engine: advance N simulator lanes —
 * the same workload under different configurations and placements
 * (a processor-count sweep axis, competing placement arms) — together
 * over one shared trace. With a streaming SharedTraceStream the trace
 * is produced once and consumed by every lane while only a bounded
 * chunk window stays resident; with a materialized TraceSet the lanes
 * simply share the (already resident) events and the memoized census.
 *
 * Every lane is an ordinary sim::Machine, advanced through the public
 * advance()/finish() slicing, so each lane's SimStats is bit-identical
 * to a scalar Machine::run() over the same trace — the scalar path
 * stays the reference oracle (tests/sim_batch_test.cc pins parity).
 *
 * A lane that throws (bad configuration, injected fault) degrades to
 * an error LaneResult; sibling lanes are isolated and keep running.
 */

#ifndef TSP_SIM_BATCH_MACHINE_H
#define TSP_SIM_BATCH_MACHINE_H

#include <memory>
#include <string>
#include <vector>

#include "core/placement_map.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "sim/results.h"
#include "trace/chunk_source.h"
#include "trace/trace_set.h"

namespace tsp::sim {

/** One lane's inputs: an architecture and a placement for it. */
struct BatchLane
{
    SimConfig cfg;
    placement::PlacementMap placement;
};

/** One lane's outcome. */
struct LaneResult
{
    bool ok = false;
    std::string error;  //!< failure description when !ok
    SimStats stats;     //!< meaningful only when ok
};

/**
 * Construct with the lanes plus a trace source, call run() once, read
 * the per-lane results (in lane order).
 */
class BatchMachine
{
  public:
    /**
     * Chains each lane runs per lockstep turn. Large enough to
     * amortize the turn switch, small enough that lane divergence —
     * and with it a streaming window's resident spread — stays small
     * (docs/performance.md).
     */
    static constexpr uint64_t kDefaultChainQuantum = 4096;

    /** Lanes over a materialized, shared trace set. */
    BatchMachine(std::vector<BatchLane> lanes,
                 const trace::TraceSet &traces);

    /**
     * Lanes over a shared streaming source. @p stream must have been
     * built with laneCount() == lanes.size(); lane i consumes
     * stream.lane(i).
     */
    BatchMachine(std::vector<BatchLane> lanes,
                 trace::SharedTraceStream &stream);

    /** Number of lanes. */
    size_t laneCount() const { return lanes_.size(); }

    /**
     * Run every lane to completion (or failure) and return the
     * results in lane order. May be called once. Single-threaded by
     * design: the lockstep scheduler advances the most-lagging live
     * lane (by retired memory references) one quantum at a time.
     */
    std::vector<LaneResult>
    run(uint64_t chainQuantum = kDefaultChainQuantum);

  private:
    struct Lane
    {
        BatchLane spec;
        std::unique_ptr<Machine> machine;
        LaneResult result;
        bool done = false;
    };

    /** Fail lane @p i with @p what (releases its resources). */
    void failLane(size_t i, const std::string &what);

    std::vector<Lane> lanes_;
    const trace::TraceSet *traces_ = nullptr;
    trace::SharedTraceStream *stream_ = nullptr;
    bool ran_ = false;
};

} // namespace tsp::sim

#endif // TSP_SIM_BATCH_MACHINE_H
