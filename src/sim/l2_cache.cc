#include "sim/l2_cache.h"

#include "util/bits.h"
#include "util/error.h"

namespace tsp::sim {

SharedL2::SharedL2(const SimConfig &cfg)
{
    cfg.validate();
    util::panicIf(cfg.l2Bytes == 0,
                  "SharedL2 constructed with l2Bytes == 0");
    uint64_t sets = cfg.numL2Sets();
    util::panicIf(!util::isPow2(sets),
                  "L2 set count must be a power of 2");
    setMask_ = sets - 1;
    ways_ = cfg.l2Associativity;
    frames_.resize(sets * ways_);
}

SharedL2::Frame *
SharedL2::lookup(uint64_t block)
{
    size_t base = setBase(block);
    for (uint32_t w = 0; w < ways_; ++w) {
        Frame &f = frames_[base + w];
        if (f.valid && f.tag == block) {
            f.lastUse = ++tick_;
            return &f;
        }
    }
    return nullptr;
}

bool
SharedL2::present(uint64_t block) const
{
    size_t base = setBase(block);
    for (uint32_t w = 0; w < ways_; ++w) {
        const Frame &f = frames_[base + w];
        if (f.valid && f.tag == block)
            return true;
    }
    return false;
}

SharedL2::Victim
SharedL2::insert(uint64_t block, bool dirty)
{
    size_t base = setBase(block);
    Frame *victim = &frames_[base];
    for (uint32_t w = 0; w < ways_; ++w) {
        Frame &f = frames_[base + w];
        util::panicIf(f.valid && f.tag == block,
                      "L2 insert of an already-resident block");
        if (!f.valid) {
            victim = &f;
            break;
        }
        if (f.lastUse < victim->lastUse)
            victim = &f;
    }
    Victim out;
    if (victim->valid) {
        out.evicted = true;
        out.dirty = victim->dirty;
        out.block = victim->tag;
    }
    victim->tag = block;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = ++tick_;
    return out;
}

bool
SharedL2::remove(uint64_t block)
{
    size_t base = setBase(block);
    for (uint32_t w = 0; w < ways_; ++w) {
        Frame &f = frames_[base + w];
        if (f.valid && f.tag == block) {
            bool wasDirty = f.dirty;
            f.valid = false;
            f.dirty = false;
            return wasDirty;
        }
    }
    return false;
}

void
SharedL2::markDirty(uint64_t block)
{
    size_t base = setBase(block);
    for (uint32_t w = 0; w < ways_; ++w) {
        Frame &f = frames_[base + w];
        if (f.valid && f.tag == block) {
            f.dirty = true;
            return;
        }
    }
}

size_t
SharedL2::validCount() const
{
    size_t n = 0;
    for (const Frame &f : frames_)
        if (f.valid)
            ++n;
    return n;
}

} // namespace tsp::sim

