/**
 * @file
 * Paranoid-mode coherence invariant checker.
 *
 * The simulator's caches and directory maintain redundant views of the
 * same truth (which caches hold which blocks, in which states), and
 * the statistics derive from that truth. The checker cross-validates
 * all three periodically:
 *
 *  - directory vs caches: an Owned block has exactly one sharer, and
 *    that cache holds it Exclusive or Modified (never Exclusive under
 *    MSI); a Shared block's sharer set matches exactly the caches
 *    holding it Shared; a SharedOwned block (MOESI) has its owner
 *    holding it Owned and every other sharer holding it Shared; an
 *    Uncached block has no sharers;
 *  - caches vs directory: every valid frame's block has a directory
 *    entry listing that cache as a sharer;
 *  - shared L2, when present: inclusive — every valid L1 frame's
 *    block is L2-resident; exclusive — no L2-resident block is in
 *    any L1;
 *  - counters: per-processor hits + misses == memory references,
 *    references <= instructions, and every counter is monotonically
 *    non-decreasing between checks (the checker keeps the previous
 *    snapshot).
 *
 * A violation throws PanicError carrying a state dump (the offending
 * block, its directory entry, and the per-cache frame states), so the
 * failure is diagnosable from the exception alone. Enabled via
 * SimConfig::paranoidEvery; when disabled the Machine pays one branch
 * per reference and never constructs a checker.
 */

#ifndef TSP_SIM_INVARIANT_CHECKER_H
#define TSP_SIM_INVARIANT_CHECKER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.h"
#include "sim/directory.h"
#include "sim/l2_cache.h"
#include "sim/results.h"

namespace tsp::sim {

/**
 * Validates coherence + accounting invariants over a Machine's state.
 * Construct once per run; check() as often as paranoia demands.
 */
class InvariantChecker
{
  public:
    /**
     * @param directory   the machine's block directory
     * @param caches      one cache per processor
     * @param stats       the machine's statistics (procs must stay
     *                    sized to the cache count for the checker's
     *                    lifetime)
     * @param l2          the shared L2, or nullptr when disabled
     * @param l2Inclusive the L2's inclusion policy (ignored without
     *                    an L2)
     *
     * The checker aliases everything passed; it all must outlive it.
     * The protocol checked is the directory's.
     */
    InvariantChecker(const Directory &directory,
                     const std::vector<Cache> &caches,
                     const SimStats &stats,
                     const SharedL2 *l2 = nullptr,
                     bool l2Inclusive = true);

    /**
     * Validate every invariant; throws util::PanicError with a state
     * dump on the first violation. @p when labels the dump (e.g. the
     * reference count at the time of the check).
     */
    void check(uint64_t when);

    /** Number of successful check() calls so far. */
    uint64_t checksRun() const { return checksRun_; }

  private:
    /** Counter snapshot used for the monotonicity check. */
    struct ProcSnapshot
    {
        uint64_t busyCycles = 0;
        uint64_t switchCycles = 0;
        uint64_t idleCycles = 0;
        uint64_t instructions = 0;
        uint64_t memRefs = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
    };

    void checkDirectoryAgainstCaches(uint64_t when) const;
    void checkCachesAgainstDirectory(uint64_t when) const;
    void checkL2(uint64_t when) const;
    void checkCounters(uint64_t when);

    /** Render the full state of @p block across directory + caches. */
    std::string dumpBlock(uint64_t block) const;

    const Directory &directory_;
    const std::vector<Cache> &caches_;
    const SimStats &stats_;
    const SharedL2 *l2_;
    bool l2Inclusive_;
    std::vector<ProcSnapshot> prev_;
    uint64_t checksRun_ = 0;
};

} // namespace tsp::sim

#endif // TSP_SIM_INVARIANT_CHECKER_H
