/**
 * @file
 * Per-processor set-associative data cache (direct-mapped in the
 * paper's configuration) with the miss-classification bookkeeping the
 * paper's cache unit maintains: each miss is labeled compulsory,
 * intra-thread conflict, inter-thread conflict, or invalidation, based
 * on how the block last left this cache. Replacement within a set is
 * LRU.
 */

#ifndef TSP_SIM_CACHE_H
#define TSP_SIM_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/results.h"
#include "util/flat_map.h"

namespace tsp::sim {

/**
 * Per-frame coherence state. Which states a frame may occupy depends
 * on SimConfig::protocol: MSI uses {I, S, M}, MESI adds Exclusive,
 * MOESI adds Owned (a dirty copy whose block other caches share
 * clean — the M->O downgrade that saves MOESI its writebacks).
 */
enum class CoherenceState : uint8_t {
    Invalid = 0,
    Shared = 1,
    Exclusive = 2,
    Modified = 3,
    Owned = 4,
};

/**
 * One processor's cache: a sets x ways frame array plus the per-block
 * departure history used to classify misses.
 */
class Cache
{
  public:
    /** One cache frame. */
    struct Frame
    {
        uint64_t tag = 0;  //!< block address held (valid only if state!=I)
        uint64_t lastUse = 0;  //!< LRU stamp
        uint32_t threadId = 0;  //!< last thread to access the block here
        CoherenceState state = CoherenceState::Invalid;

        bool valid() const { return state != CoherenceState::Invalid; }
        bool
        dirty() const
        {
            return state == CoherenceState::Modified ||
                   state == CoherenceState::Owned;
        }
    };

    /** Construct from the architectural configuration. */
    explicit Cache(const SimConfig &cfg);

    /**
     * Look @p block up: returns its frame when present, nullptr on a
     * miss. Does not touch LRU state. Defined inline: this runs once
     * per simulated reference (docs/performance.md).
     */
    Frame *
    lookup(uint64_t block)
    {
        size_t base = setBase(block);
        for (uint32_t w = 0; w < ways_; ++w) {
            Frame &f = frames_[base + w];
            if (f.valid() && f.tag == block)
                return &f;
        }
        return nullptr;
    }

    /** Const lookup. */
    const Frame *
    lookup(uint64_t block) const
    {
        return const_cast<Cache *>(this)->lookup(block);
    }

    /**
     * The frame to fill for @p block: an invalid frame of its set if
     * one exists, otherwise the LRU frame (whose occupant the caller
     * must evict).
     */
    Frame &
    victimFor(uint64_t block)
    {
        size_t base = setBase(block);
        Frame *victim = &frames_[base];
        for (uint32_t w = 0; w < ways_; ++w) {
            Frame &f = frames_[base + w];
            if (!f.valid())
                return f;
            if (f.lastUse < victim->lastUse)
                victim = &f;
        }
        return *victim;
    }

    /** Mark @p frame most-recently-used. */
    void touch(Frame &frame) { frame.lastUse = ++tick_; }

    /** True when @p block is present. */
    bool present(uint64_t block) const { return lookup(block); }

    /**
     * Classify a miss on @p block by thread @p tid from this cache's
     * departure history.
     */
    MissKind classifyMiss(uint64_t block, uint32_t tid) const;

    /** A miss classification plus its invalidating writer, if any. */
    struct MissClass
    {
        MissKind kind;
        int32_t writer;  //!< invalidating writer, -1 unless the kind
                         //!< is Invalidation
    };

    /**
     * classifyMiss and invalidatingWriter fused into one departure-
     * history lookup — the simulator's miss path (docs/performance.md).
     */
    MissClass classifyMissAndWriter(uint64_t block, uint32_t tid) const;

    /**
     * Thread whose write invalidated @p block, when the history says
     * the block departed by invalidation; -1 otherwise.
     */
    int32_t invalidatingWriter(uint64_t block) const;

    /** Record that @p block was evicted by thread @p evictor. */
    void recordEviction(uint64_t block, uint32_t evictor);

    /**
     * Pre-size the departure history for @p blocks distinct blocks.
     * The Machine calls this with an upper bound on the blocks this
     * cache's threads touch, so the steady-state miss path never
     * rehashes (history entries are only ever created for blocks that
     * left this cache, a subset of the blocks it ever held).
     */
    void reserveHistory(size_t blocks) { history_.reserve(blocks); }

    /** Number of blocks with a departure-history entry. */
    size_t historySize() const { return history_.size(); }

    /**
     * Invalidate @p block (remote coherence). Records the departure as
     * an invalidation by @p writerTid and returns the frame's resident
     * thread id, or -1 if the block was not present.
     */
    int32_t invalidate(uint64_t block, uint32_t writerTid);

    /** Outcome of an inclusion-driven back-invalidation. */
    struct BackInval
    {
        bool present = false;   //!< the block was in this cache
        bool wasDirty = false;  //!< the departing copy was M or O
    };

    /**
     * Remove @p block because the inclusive shared L2 evicted it
     * (back-invalidation, sim/l2_cache.h). Unlike invalidate(), the
     * departure is recorded as an *eviction* by @p causerTid — the
     * thread whose L2 fill displaced the block — so a later re-miss
     * classifies as a conflict miss, not a coherence invalidation.
     */
    BackInval backInvalidate(uint64_t block, uint32_t causerTid);

    /** Number of frames (sets x ways). */
    size_t numFrames() const { return frames_.size(); }

    /** Ways per set. */
    uint32_t ways() const { return ways_; }

    /**
     * The raw frame array (sets x ways, set-major). Read-only view for
     * the paranoid-mode InvariantChecker; invalid frames carry
     * meaningless tags.
     */
    const std::vector<Frame> &frames() const { return frames_; }

  private:
    /** How a block last left the cache. */
    enum class Departure : uint8_t { Evicted, Invalidated };

    struct History
    {
        Departure how;
        uint32_t otherThread;  //!< evictor or invalidating writer
    };

    /** First frame index of @p block's set. */
    size_t
    setBase(uint64_t block) const
    {
        return static_cast<size_t>((block & setMask_) * ways_);
    }

    uint64_t setMask_;
    uint32_t ways_;
    uint64_t tick_ = 0;
    std::vector<Frame> frames_;  //!< sets x ways, set-major
    util::FlatMap<uint64_t, History> history_;
};

} // namespace tsp::sim

#endif // TSP_SIM_CACHE_H
