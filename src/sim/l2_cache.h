/**
 * @file
 * Optional shared L2/LLC behind the per-processor L1s
 * (SimConfig::l2Bytes > 0). Set-associative with LRU replacement,
 * shared by all processors, and purely a latency filter: an L1 miss
 * that hits here costs l2HitLatency instead of the full memoryLatency.
 *
 * Two inclusion policies (SimConfig::l2Inclusive):
 *
 *  - inclusive: every L1-resident block is also here; an L2 eviction
 *    therefore back-invalidates the L1 copies (the Machine drives
 *    that through the directory and Cache::backInvalidate);
 *  - exclusive: a victim cache — blocks live here only after leaving
 *    every L1, and an L1 fill that hits pulls the block back out.
 *
 * The L2 keeps no coherence state of its own (the directory already
 * tracks sharers exactly); it tracks only presence, recency, and a
 * dirty bit for writeback accounting.
 */

#ifndef TSP_SIM_L2_CACHE_H
#define TSP_SIM_L2_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace tsp::sim {

/** The shared second-level cache. */
class SharedL2
{
  public:
    /** One L2 frame. */
    struct Frame
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    /** Construct from the configuration; requires cfg.l2Bytes > 0. */
    explicit SharedL2(const SimConfig &cfg);

    /**
     * Look @p block up and mark it most-recently-used on a hit.
     * Returns the frame, or nullptr on a miss.
     */
    Frame *lookup(uint64_t block);

    /** Presence check without touching LRU state (tests/checker). */
    bool present(uint64_t block) const;

    /** The block an insert displaced, if any. */
    struct Victim
    {
        bool evicted = false;  //!< a valid block was displaced
        bool dirty = false;    //!< ... and its copy was dirty
        uint64_t block = 0;    //!< the displaced block
    };

    /**
     * Insert @p block (must not be present) with the given dirty
     * state, evicting the set's LRU frame when the set is full.
     */
    Victim insert(uint64_t block, bool dirty);

    /**
     * Remove @p block (exclusive policy: an L1 fill pulls the block
     * out of the victim cache). Returns whether the departing copy
     * was dirty; false when the block was not present.
     */
    bool remove(uint64_t block);

    /**
     * Mark @p block's copy dirty (an L1 wrote back into it). No-op
     * when the block is absent.
     */
    void markDirty(uint64_t block);

    /** Number of frames (sets x ways). */
    size_t numFrames() const { return frames_.size(); }

    /** Number of valid frames (tests/checker). */
    size_t validCount() const;

    /** Read-only frame array for the paranoid InvariantChecker. */
    const std::vector<Frame> &frames() const { return frames_; }

  private:
    size_t
    setBase(uint64_t block) const
    {
        return static_cast<size_t>((block & setMask_) * ways_);
    }

    uint64_t setMask_;
    uint32_t ways_;
    uint64_t tick_ = 0;
    std::vector<Frame> frames_;  //!< sets x ways, set-major
};

} // namespace tsp::sim

#endif // TSP_SIM_L2_CACHE_H
