/**
 * @file
 * Interconnect model. The paper "assumes a multipath network and does
 * not explicitly model network contention", approximating memory
 * access with a flat 50-cycle latency. This class reproduces that
 * default (unlimited channels) and additionally offers a bounded
 * multipath mode — k channels, each occupied for a fixed number of
 * cycles per transaction — so the contention-free assumption itself
 * can be ablated (`bench_ablation_bandwidth`).
 */

#ifndef TSP_SIM_INTERCONNECT_H
#define TSP_SIM_INTERCONNECT_H

#include <cstdint>
#include <vector>

namespace tsp::sim {

/**
 * Latency/occupancy model for memory transactions.
 */
class Interconnect
{
  public:
    /**
     * @param channels    parallel paths; 0 means unlimited (the
     *                    paper's contention-free model)
     * @param baseLatency cycles a transaction takes once on a channel
     * @param occupancy   cycles a transaction occupies its channel
     */
    Interconnect(uint32_t channels, uint32_t baseLatency,
                 uint32_t occupancy);

    /**
     * Issue a transaction at time @p now; returns the total latency
     * (queueing + base) the issuing context observes.
     */
    uint64_t transactionLatency(uint64_t now);

    /** Transactions issued so far. */
    uint64_t transactions() const { return transactions_; }

    /** Total cycles transactions spent waiting for a channel. */
    uint64_t queueingCycles() const { return queueing_; }

    /** Worst single-transaction queueing delay seen. */
    uint64_t maxQueueing() const { return maxQueueing_; }

  private:
    uint32_t baseLatency_;
    uint32_t occupancy_;
    std::vector<uint64_t> channelFreeAt_;  //!< empty when unlimited

    uint64_t transactions_ = 0;
    uint64_t queueing_ = 0;
    uint64_t maxQueueing_ = 0;
};

} // namespace tsp::sim

#endif // TSP_SIM_INTERCONNECT_H
