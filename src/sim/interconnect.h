/**
 * @file
 * Interconnect model. The paper "assumes a multipath network and does
 * not explicitly model network contention", approximating memory
 * access with a flat 50-cycle latency. This class reproduces that
 * default (unlimited channels) and additionally offers two bounded
 * contention modes, at most one of which may be enabled:
 *
 *  - channels (SimConfig::networkChannels): k interchangeable paths;
 *    a transaction takes whichever channel frees first and occupies
 *    it for channelOccupancy cycles (`bench_ablation_bandwidth`);
 *  - queued links (SimConfig::networkLinks): address-interleaved
 *    FIFOs — a transaction on block B queues on link B mod k and
 *    occupies it for linkOccupancy cycles, so latency grows with the
 *    queue a miss finds and hot blocks contend with themselves.
 *
 * The queueing delay is exposed separately from the fill latency
 * (queueDelay) so the Machine can combine it with whatever the miss
 * actually costs — full memoryLatency or a shared-L2 hit.
 */

#ifndef TSP_SIM_INTERCONNECT_H
#define TSP_SIM_INTERCONNECT_H

#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace tsp::sim {

/**
 * Latency/occupancy model for memory transactions.
 */
class Interconnect
{
  public:
    /**
     * Channels-mode constructor (kept for the channel ablation and
     * its tests).
     *
     * @param channels    parallel paths; 0 means unlimited (the
     *                    paper's contention-free model)
     * @param baseLatency cycles a transaction takes once on a channel
     * @param occupancy   cycles a transaction occupies its channel
     */
    Interconnect(uint32_t channels, uint32_t baseLatency,
                 uint32_t occupancy);

    /**
     * Construct the mode @p cfg selects: queued links when
     * cfg.networkLinks > 0, channels when cfg.networkChannels > 0,
     * contention-free otherwise (validate() rejects both at once).
     */
    explicit Interconnect(const SimConfig &cfg);

    /**
     * Issue a transaction for @p block at time @p now; returns the
     * cycles it waits before its memory access can start (0 in the
     * contention-free mode). @p block picks the link in queued-links
     * mode and is ignored by the channels mode.
     */
    uint64_t queueDelay(uint64_t now, uint64_t block);

    /**
     * Issue a transaction at time @p now; returns the total latency
     * (queueing + base) the issuing context observes. Equivalent to
     * queueDelay(now, 0) + the base latency.
     */
    uint64_t transactionLatency(uint64_t now);

    /** Transactions issued so far. */
    uint64_t transactions() const { return transactions_; }

    /** Total cycles transactions spent waiting for a channel/link. */
    uint64_t queueingCycles() const { return queueing_; }

    /** Worst single-transaction queueing delay seen. */
    uint64_t maxQueueing() const { return maxQueueing_; }

  private:
    uint32_t baseLatency_;
    uint32_t occupancy_;
    bool interleaved_ = false;  //!< links mode: index by block, FIFO
    std::vector<uint64_t> freeAt_;  //!< per channel/link; empty when
                                    //!< contention-free

    uint64_t transactions_ = 0;
    uint64_t queueing_ = 0;
    uint64_t maxQueueing_ = 0;
};

} // namespace tsp::sim

#endif // TSP_SIM_INTERCONNECT_H
