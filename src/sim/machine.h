/**
 * @file
 * The multithreaded multiprocessor simulator (Section 3.2).
 *
 * Each processor has multiple hardware contexts scheduled round-robin;
 * a cache miss initiates a 6-cycle context switch to the next ready
 * context; misses complete after a flat interconnect latency. The
 * machine is event-driven: processors interact only through directory
 * transactions, which occur at memory-reference events processed in
 * global time order, so the simulation is exact for the paper's
 * contention-free interconnect model.
 *
 * Traces may contain barrier markers (EventKind::Barrier); a thread
 * arriving at barrier k blocks until every thread has arrived at
 * barrier k. The paper's trace-driven simulation free-runs the
 * per-thread traces (no synchronization); barriers are this
 * reproduction's optional fidelity extension for the barrier-phased
 * programs the workload models.
 */

#ifndef TSP_SIM_MACHINE_H
#define TSP_SIM_MACHINE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "core/placement_map.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/directory.h"
#include "sim/interconnect.h"
#include "sim/invariant_checker.h"
#include "sim/results.h"
#include "sim/sharing_monitor.h"
#include "trace/trace_set.h"

namespace tsp::sim {

/**
 * One simulation instance. Construct, call run() once, read the stats.
 */
class Machine
{
  public:
    /**
     * @param cfg       architectural parameters (validated here)
     * @param traces    the application's per-thread traces
     * @param placement thread -> processor map; processor count must
     *                  match @p cfg
     */
    Machine(const SimConfig &cfg, const trace::TraceSet &traces,
            const placement::PlacementMap &placement);

    /**
     * Observer invoked on every data reference, in the exact global
     * order the machine processes them: (processor, thread, block,
     * isStore, hit, missKind — meaningful only when hit is false).
     * Used by the differential reference-model tests; adds a call per
     * reference, so leave unset in performance-sensitive runs.
     */
    using AccessObserver =
        std::function<void(uint32_t proc, uint32_t tid, uint64_t block,
                           bool isStore, bool hit, MissKind kind)>;

    /** Install an access observer (replaces any previous one). */
    void
    setAccessObserver(AccessObserver observer)
    {
        accessObserver_ = std::move(observer);
    }

    /** Run the simulation to completion and return the statistics. */
    SimStats run();

  private:
    /** readyAt sentinel: blocked at a barrier. */
    static constexpr uint64_t kWaiting = ~0ull;

    /** scheduledAt sentinel: no outstanding event. */
    static constexpr uint64_t kNoEvent = ~0ull;

    /** One hardware context. */
    struct Context
    {
        int32_t thread = -1;  //!< bound thread id, -1 when empty
        std::optional<trace::TraceCursor> cursor;
        uint64_t readyAt = 0;  //!< stalled until this cycle (kWaiting
                               //!< while blocked at a barrier)
        uint64_t barrierArriveAt = 0;

        // A chunk's work advances local time first; its trailing
        // interaction (memory reference or barrier) is committed in a
        // separate step so that directory operations and barrier
        // arrivals are processed in exact global time order.
        bool hasPending = false;
        bool pendingBarrier = false;
        bool pendingStore = false;
        uint64_t pendingAddr = 0;
    };

    /** One processor's scheduling state. */
    struct Proc
    {
        std::vector<Context> ctxs;
        std::deque<uint32_t> pending;  //!< threads not yet loaded
        int32_t active = -1;  //!< context currently in the pipeline
        std::optional<uint64_t> idleSince;  //!< lazily-accounted idle
    };

    /** Load @p tid into context @p c of processor @p p at time @p now. */
    void loadThread(Proc &proc, size_t c, uint32_t tid, uint64_t now);

    /** Retire contexts whose trace is exhausted and ready. */
    void reapFinished(uint32_t p, uint64_t now);

    /** Round-robin pick of a ready context; -1 when none. */
    int32_t pickReady(const Proc &proc, uint64_t now) const;

    /** Earliest wake among stalled (not barrier-blocked) contexts. */
    std::optional<uint64_t> nextWake(const Proc &proc) const;

    /**
     * Advance processor @p p one scheduling step starting at @p now.
     * Returns the next event time for this processor, or nullopt when
     * it has nothing runnable (finished, or all contexts barrier
     * blocked).
     */
    std::optional<uint64_t> step(uint32_t p, uint64_t now);

    /**
     * Perform the memory access, updating caches, directory and stats.
     * Returns true when the access missed (context must stall).
     */
    bool access(uint32_t p, uint32_t tid, uint64_t addr, bool isStore);

    /** Deliver invalidations for @p block to @p victims. */
    void applyInvalidations(uint32_t causerProc, uint32_t causerTid,
                            const std::vector<uint32_t> &victims,
                            uint64_t block);

    /** Record a barrier arrival; releases everyone on the last one. */
    void barrierArrive(uint32_t p, size_t c, uint64_t now);

    /** Wake every barrier waiter at time @p now. */
    void releaseBarrier(uint64_t now);

    /** Enqueue an event for @p p at @p t (dedupe/stale handling). */
    void schedule(uint32_t p, uint64_t t);

    SimConfig cfg_;
    const trace::TraceSet &traces_;
    unsigned blockShift_;

    std::vector<Proc> procs_;
    std::vector<Cache> caches_;
    Directory directory_;
    Interconnect interconnect_;
    std::optional<SharingMonitor> monitor_;
    AccessObserver accessObserver_;
    SimStats stats_;
    bool ran_ = false;

    // Paranoid mode (SimConfig::paranoidEvery > 0): the checker and a
    // countdown of references until the next check. When disabled the
    // optional stays empty and access() pays a single branch.
    std::optional<InvariantChecker> checker_;
    uint64_t refsUntilCheck_ = 0;
    uint64_t refsSeen_ = 0;

    // Event queue: (time, processor), earliest first. scheduledAt_
    // tracks each processor's authoritative outstanding event so that
    // superseded heap entries can be recognized and skipped.
    using Ev = std::pair<uint64_t, uint32_t>;
    std::priority_queue<Ev, std::vector<Ev>, std::greater<>> pq_;
    std::vector<uint64_t> scheduledAt_;

    // Barrier state.
    uint32_t barrierParticipants_ = 0;  //!< 0 when traces are barrier-free
    uint32_t barrierArrived_ = 0;
    std::vector<std::pair<uint32_t, uint32_t>> barrierWaiters_;
};

/** Convenience wrapper: construct a Machine and run it. */
SimStats simulate(const SimConfig &cfg, const trace::TraceSet &traces,
                  const placement::PlacementMap &placement);

} // namespace tsp::sim

#endif // TSP_SIM_MACHINE_H
