/**
 * @file
 * The multithreaded multiprocessor simulator (Section 3.2).
 *
 * Each processor has multiple hardware contexts scheduled round-robin;
 * a cache miss initiates a 6-cycle context switch to the next ready
 * context; misses complete after a flat interconnect latency. The
 * machine is event-driven: processors interact only through directory
 * transactions, which occur at memory-reference events processed in
 * global time order, so the simulation is exact for the paper's
 * contention-free interconnect model.
 *
 * Traces may contain barrier markers (EventKind::Barrier); a thread
 * arriving at barrier k blocks until every thread has arrived at
 * barrier k. The paper's trace-driven simulation free-runs the
 * per-thread traces (no synchronization); barriers are this
 * reproduction's optional fidelity extension for the barrier-phased
 * programs the workload models.
 */

#ifndef TSP_SIM_MACHINE_H
#define TSP_SIM_MACHINE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/placement_map.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/directory.h"
#include "sim/interconnect.h"
#include "sim/invariant_checker.h"
#include "sim/l2_cache.h"
#include "sim/results.h"
#include "sim/sharing_monitor.h"
#include "trace/chunk_source.h"
#include "trace/trace_set.h"
#include "util/error.h"

namespace tsp::sim {

/**
 * One simulation instance. Construct, call run() once, read the stats.
 */
class Machine
{
  public:
    /**
     * @param cfg       architectural parameters (validated here)
     * @param traces    the application's per-thread traces
     * @param placement thread -> processor map; processor count must
     *                  match @p cfg
     */
    Machine(const SimConfig &cfg, const trace::TraceSet &traces,
            const placement::PlacementMap &placement);

    /**
     * Streaming variant: consume a trace::TraceSource (chunked feeds)
     * instead of a materialized TraceSet. Identical simulation — the
     * cursor re-merges chunk boundaries, so the event sequence is the
     * one the equivalent TraceSet would produce — with trace memory
     * bounded by the source's chunk windows. @p source must outlive
     * the machine.
     */
    Machine(const SimConfig &cfg, trace::TraceSource &source,
            const placement::PlacementMap &placement);

    /**
     * Observer invoked on every data reference, in the exact global
     * order the machine processes them: (processor, thread, block,
     * isStore, hit, missKind — meaningful only when hit is false).
     * Used by the differential reference-model tests; adds a call per
     * reference, so leave unset in performance-sensitive runs.
     */
    using AccessObserver =
        std::function<void(uint32_t proc, uint32_t tid, uint64_t block,
                           bool isStore, bool hit, MissKind kind)>;

    /** Install an access observer (replaces any previous one). */
    void
    setAccessObserver(AccessObserver observer)
    {
        accessObserver_ = std::move(observer);
    }

    /** Run the simulation to completion and return the statistics. */
    SimStats run();

    /**
     * Advance the simulation by at most @p maxChains event chains
     * (outer-loop scheduler picks; 0 = unbounded). Returns true once
     * the event queue has drained. All scheduling state lives in
     * members between chains, so pausing here is invisible to the
     * simulation: any advance()/finish() slicing produces results
     * bit-identical to a single run(). Drives lockstep batching
     * (sim::BatchMachine).
     */
    bool advance(uint64_t maxChains);

    /**
     * Finalize after advance() returned true: end-of-run validation
     * plus the stats that only exist at completion. run() is exactly
     * advance(0) + finish().
     */
    SimStats finish();

    /**
     * Memory references retired so far: the lockstep scheduler's
     * progress metric (advancing the laggard first keeps the shared
     * chunk windows small).
     */
    uint64_t
    memRefsSoFar() const
    {
        uint64_t sum = 0;
        for (const ProcessorStats &ps : stats_.procs)
            sum += ps.memRefs;
        return sum;
    }

    /** Blocks in the directory table (for the sim.dir_entries gauge). */
    size_t directoryEntries() const { return directory_.entryCount(); }

    /** Summed per-cache departure-history sizes (sim.history_entries). */
    size_t
    historyEntries() const
    {
        size_t sum = 0;
        for (const Cache &c : caches_)
            sum += c.historySize();
        return sum;
    }

  private:
    /** readyAt sentinel: blocked at a barrier. */
    static constexpr uint64_t kWaiting = ~0ull;

    /** scheduledAt sentinel: no outstanding event. */
    static constexpr uint64_t kNoEvent = ~0ull;

    /** One hardware context. */
    struct Context
    {
        int32_t thread = -1;  //!< bound thread id, -1 when empty
        std::optional<trace::TraceCursor> cursor;
        uint64_t readyAt = 0;  //!< stalled until this cycle (kWaiting
                               //!< while blocked at a barrier)
        uint64_t barrierArriveAt = 0;

        // A chunk's work advances local time first; its trailing
        // interaction (memory reference or barrier) is committed in a
        // separate step so that directory operations and barrier
        // arrivals are processed in exact global time order.
        bool hasPending = false;
        bool pendingBarrier = false;
        bool pendingStore = false;
        uint64_t pendingBlock = 0;  //!< addr >> blockShift, translated
                                    //!< once when the chunk is fetched
    };

    /** One processor's scheduling state. */
    struct Proc
    {
        std::vector<Context> ctxs;
        std::deque<uint32_t> pending;  //!< threads not yet loaded
        int32_t active = -1;  //!< context currently in the pipeline
        std::optional<uint64_t> idleSince;  //!< lazily-accounted idle
        uint64_t liveMask = 0;  //!< bit c set when ctxs[c] holds a
                                //!< thread (maintained for c < 64)
        bool needsReap = false; //!< some context finished its trace and
                                //!< has not been unloaded yet
    };

    /** Load @p tid into context @p c of processor @p p at time @p now. */
    void loadThread(Proc &proc, size_t c, uint32_t tid, uint64_t now);

    /** Retire contexts whose trace is exhausted and ready. */
    void reapFinished(uint32_t p, uint64_t now);

    /** Round-robin pick of a ready context; -1 when none. */
    int32_t pickReady(const Proc &proc, uint64_t now) const;

    /** Earliest wake among stalled (not barrier-blocked) contexts. */
    std::optional<uint64_t> nextWake(const Proc &proc) const;

    /** Earliest pending event time across all processors. */
    uint64_t
    minScheduled() const
    {
        uint64_t t = kNoEvent;
        for (uint64_t s : scheduledAt_)
            t = s < t ? s : t;
        return t;
    }

    /**
     * Perform the memory access on @p block (already translated from
     * the address), updating caches, directory and stats. Returns true
     * when the access missed (context must stall).
     */
    bool access(uint32_t p, uint32_t tid, uint64_t block, bool isStore);

    /**
     * Deliver the invalidations of write transaction @p txn for
     * @p block, walking the victim bitmask in ascending processor
     * order (the same order the old vector was built in). Bitmask in,
     * no heap traffic: see docs/performance.md.
     */
    void applyInvalidations(uint32_t causerProc, uint32_t causerTid,
                            const Directory::Txn &txn, uint64_t block);

    /**
     * Inclusion maintenance: the inclusive L2 evicted @p vblock
     * (dirty if @p l2Dirty), so remove every L1 copy, in ascending
     * processor order, notifying the directory and accounting dirty
     * copies as writebacks. @p causerTid is the thread whose fill
     * displaced the block (departure histories record it as the
     * evictor).
     */
    void backInvalidateL1s(uint64_t vblock, bool l2Dirty,
                           uint32_t causerTid);

    /** Record a barrier arrival; releases everyone on the last one. */
    void barrierArrive(uint32_t p, size_t c, uint64_t now);

    /** Wake every barrier waiter at time @p now. */
    void releaseBarrier(uint64_t now);

    /** Move processor @p p's next event up to @p t if earlier. */
    void
    schedule(uint32_t p, uint64_t t)
    {
        util::panicIf(t == kNoEvent,
                      "event time collides with the no-event sentinel");
        if (t < scheduledAt_[p]) {
            scheduledAt_[p] = t;
            rescheduled_ = true;
        }
    }

    /** Shared tail of both constructors (members above already set). */
    void construct(const placement::PlacementMap &placement);

    /** Thread count from whichever trace source is bound. */
    uint32_t threadCountOf() const;

    /** Barrier count of thread @p tid from the bound source. */
    uint64_t barrierCountOf(uint32_t tid) const;

    SimConfig cfg_;
    const trace::TraceSet *traces_ = nullptr;  //!< materialized mode
    trace::TraceSource *source_ = nullptr;     //!< streaming mode
    unsigned blockShift_;

    std::vector<Proc> procs_;
    std::vector<Cache> caches_;
    Directory directory_;

    // frameDir_[p * framesPerCache_ + f] is the Txn::entry handle for
    // the block cache p's frame f holds (meaningless while the frame
    // is invalid). Evicting through the handle instead of re-hashing
    // the tag removes one directory lookup per miss
    // (docs/performance.md).
    size_t framesPerCache_ = 0;
    std::vector<Directory::Entry *> frameDir_;
    Interconnect interconnect_;
    std::optional<SharedL2> l2_;  //!< present when cfg.l2Bytes > 0

    // Fill cycles of the most recent stalling access() — the full
    // memoryLatency, or l2HitLatency when the shared L2 had the block.
    // The event loop adds the interconnect queueing delay on top, so
    // the flat default reproduces wait-free memoryLatency exactly.
    uint32_t missFillCycles_ = 0;
    std::optional<SharingMonitor> monitor_;
    AccessObserver accessObserver_;
    SimStats stats_;
    bool started_ = false;   //!< first advance()/run() happened
    bool complete_ = false;  //!< event queue drained
    bool finished_ = false;  //!< finish() consumed the stats

    // Paranoid mode (SimConfig::paranoidEvery > 0): the checker and a
    // countdown of references until the next check. When disabled the
    // optional stays empty and access() pays a single branch.
    std::optional<InvariantChecker> checker_;
    uint64_t refsUntilCheck_ = 0;
    uint64_t refsSeen_ = 0;

    // Event "queue": scheduledAt_[p] is processor p's next event time
    // (kNoEvent when it has none). With at most kMaxProcessors
    // processors, the run() loop finds the earliest event with a
    // linear argmin scan — cheaper than a binary heap at these sizes,
    // and allocation-free by construction (see docs/performance.md).
    // rescheduled_ flags a mid-chain schedule() (barrier release) so
    // run() recomputes its cached horizon only when it can change.
    std::vector<uint64_t> scheduledAt_;
    bool rescheduled_ = false;

    // Barrier state.
    uint32_t barrierParticipants_ = 0;  //!< 0 when traces are barrier-free
    uint32_t barrierArrived_ = 0;
    std::vector<std::pair<uint32_t, uint32_t>> barrierWaiters_;
};

/** Convenience wrapper: construct a Machine and run it. */
SimStats simulate(const SimConfig &cfg, const trace::TraceSet &traces,
                  const placement::PlacementMap &placement);

/**
 * Streaming convenience wrapper: fan @p factory into a single-lane
 * SharedTraceStream and simulate from it, so the trace is generated
 * in bounded chunk windows instead of materialized whole — the path
 * that makes 1024-processor billion-reference runs fit in RAM.
 * Results are bit-identical to simulate() over the materialized
 * equivalent (the cursor re-merges chunk boundaries). Sets the
 * trace.resident_bytes gauge to the stream's chunk-window high water;
 * @p residentBytesOut (optional) receives the same bound.
 */
SimStats simulateStreaming(
    const SimConfig &cfg, trace::StreamFactory &factory,
    const placement::PlacementMap &placement,
    size_t chunkEvents = trace::SharedTraceStream::kDefaultChunkEvents,
    size_t *residentBytesOut = nullptr);

/**
 * Record the per-run obs metrics for a completed simulation (one
 * batch of counter adds per run, zero accounting in the event loop).
 * Shared by simulate() and the batched engine's per-lane accounting.
 */
void recordRunMetrics(const SimStats &stats, const Machine &machine,
                      double wallMillis);

} // namespace tsp::sim

#endif // TSP_SIM_MACHINE_H
