#include "sim/coherence_probe.h"

#include <numeric>

#include "core/placement_map.h"
#include "sim/machine.h"
#include "util/error.h"

namespace tsp::sim {

CoherenceProbeResult
measureCoherenceTraffic(const trace::TraceSet &traces,
                        const SimConfig &base)
{
    const size_t t = traces.threadCount();
    util::fatalIf(t == 0, "empty trace set");
    util::fatalIf(t > kMaxProcessors,
                  "coherence probe thread count exceeds "
                  "sim::kMaxProcessors");

    SimConfig cfg = base;
    cfg.processors = static_cast<uint32_t>(t);
    cfg.contexts = 1;
    cfg.validate();

    std::vector<uint32_t> identity(t);
    std::iota(identity.begin(), identity.end(), 0u);
    placement::PlacementMap placement(cfg.processors,
                                      std::move(identity));

    SimStats stats = simulate(cfg, traces, placement);
    CoherenceProbeResult result{stats.coherencePairs, std::move(stats)};
    return result;
}

} // namespace tsp::sim
