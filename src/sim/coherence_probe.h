/**
 * @file
 * Dynamic coherence-traffic measurement (Section 4.2): simulate the
 * application with one thread per processor and as many processors as
 * threads, so the coherence traffic between processor pairs maps
 * one-to-one onto thread pairs. The resulting matrix is directly
 * comparable to the static pairwise shared-reference counts and feeds
 * the COHERENCE-TRAFFIC placement algorithm.
 */

#ifndef TSP_SIM_COHERENCE_PROBE_H
#define TSP_SIM_COHERENCE_PROBE_H

#include "sim/config.h"
#include "sim/results.h"
#include "stats/pair_matrix.h"
#include "trace/trace_set.h"

namespace tsp::sim {

/** Output of the one-thread-per-processor measurement run. */
struct CoherenceProbeResult
{
    /** Thread-pair coherence traffic + sharing compulsory misses. */
    stats::PairMatrix pairs;

    /** Full statistics of the measurement run. */
    SimStats stats;
};

/**
 * Run the measurement simulation. @p base supplies the cache and
 * latency parameters; processors and contexts are overridden to
 * (threads, 1). Thread counts above sim::kMaxProcessors are rejected
 * (the machine-width cap of sim/config.h).
 */
CoherenceProbeResult measureCoherenceTraffic(const trace::TraceSet &traces,
                                             const SimConfig &base);

} // namespace tsp::sim

#endif // TSP_SIM_COHERENCE_PROBE_H
