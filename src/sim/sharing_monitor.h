/**
 * @file
 * Runtime sharing-pattern profiling: classifies each shared block by
 * its dynamic access pattern, following the write-run taxonomy the
 * paper leans on in Section 4.2 ("73% of all shared elements [of FFT]
 * are migratory, i.e., accessed in long write runs", citing the
 * write-run analysis of its reference [5]).
 *
 * A *run* is a maximal sequence of consecutive accesses to a block by
 * a single thread; a *write run* is a run containing at least one
 * write. A shared block (touched by >= 2 threads) is
 *  - read-only   when no thread ever writes it,
 *  - migratory   when most of its accesses happen inside write runs
 *                and those runs are long (>= minWriteRunLength),
 *  - other       (producer/consumer, ping-pong, ...) otherwise.
 */

#ifndef TSP_SIM_SHARING_MONITOR_H
#define TSP_SIM_SHARING_MONITOR_H

#include <cstdint>
#include <unordered_map>

#include "sim/config.h"
#include "sim/sharer_set.h"
#include "stats/summary.h"

namespace tsp::sim {

/** Aggregated sharing-pattern profile of one simulation run. */
struct SharingProfile
{
    uint64_t privateBlocks = 0;   //!< touched by exactly one thread
    uint64_t sharedBlocks = 0;    //!< touched by >= 2 threads
    uint64_t readOnlyShared = 0;
    uint64_t migratoryShared = 0;
    uint64_t otherShared = 0;

    /** Statistics over write-run lengths on shared blocks. */
    stats::Summary writeRunLength;

    /** Statistics over read-run lengths on shared blocks. */
    stats::Summary readRunLength;

    /** Fraction of shared blocks classified migratory. */
    double
    migratoryFraction() const
    {
        return sharedBlocks
            ? static_cast<double>(migratoryShared) /
                  static_cast<double>(sharedBlocks)
            : 0.0;
    }

    /** Fraction of shared blocks that are read-only shared. */
    double
    readOnlyFraction() const
    {
        return sharedBlocks
            ? static_cast<double>(readOnlyShared) /
                  static_cast<double>(sharedBlocks)
            : 0.0;
    }
};

/**
 * Streaming monitor fed one event per data reference, in global
 * simulation order.
 */
class SharingMonitor
{
  public:
    /** Classification thresholds. */
    struct Options
    {
        /** Minimum mean write-run length for "long" write runs. */
        double minWriteRunLength = 2.0;

        /** Minimum fraction of accesses inside write runs. */
        double minWriteRunCoverage = 0.5;

        Options() {}
    };

    explicit SharingMonitor(Options options = Options())
        : options_(options)
    {}

    /** Record one access to @p block by thread @p tid. */
    void onAccess(uint64_t block, uint32_t tid, bool isWrite);

    /** Close all open runs and compute the aggregate profile. */
    SharingProfile finalize();

  private:
    struct BlockState
    {
        SharerSet threads;  //!< toucher set (dynamic width; the
                            //!< processor cap lives in kMaxProcessors)
        uint32_t runThread = 0;   //!< thread of the current run
        uint64_t runLength = 0;   //!< accesses in the current run
        bool runHasWrite = false;
        bool started = false;
        bool everWritten = false;

        uint64_t accesses = 0;
        uint64_t writeRuns = 0;
        uint64_t writeRunAccesses = 0;
        uint64_t readRuns = 0;
        uint64_t readRunAccesses = 0;
    };

    /** Fold the (closed) current run into the block's aggregates. */
    static void closeRun(BlockState &state);

    uint32_t toucherCount(const BlockState &state) const;

    Options options_;
    std::unordered_map<uint64_t, BlockState> blocks_;
};

} // namespace tsp::sim

#endif // TSP_SIM_SHARING_MONITOR_H
