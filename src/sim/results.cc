#include "sim/results.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace tsp::sim {

std::string
missKindName(MissKind kind)
{
    switch (kind) {
      case MissKind::Compulsory:    return "compulsory";
      case MissKind::IntraConflict: return "intra-thread conflict";
      case MissKind::InterConflict: return "inter-thread conflict";
      case MissKind::Invalidation:  return "invalidation";
    }
    util::panic("unknown miss kind");
}

uint64_t
ProcessorStats::totalMisses() const
{
    return std::accumulate(misses.begin(), misses.end(), uint64_t{0});
}

uint64_t
SimStats::executionTime() const
{
    uint64_t t = 0;
    for (const auto &p : procs)
        t = std::max(t, p.finishTime);
    return t;
}

uint64_t
SimStats::totalInstructions() const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.instructions;
    return n;
}

uint64_t
SimStats::totalMemRefs() const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.memRefs;
    return n;
}

uint64_t
SimStats::totalHits() const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.hits;
    return n;
}

uint64_t
SimStats::totalMisses() const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.totalMisses();
    return n;
}

uint64_t
SimStats::totalMissCount(MissKind kind) const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.missCount(kind);
    return n;
}

uint64_t
SimStats::totalInvalidationsSent() const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.invalidationsSent;
    return n;
}

uint64_t
SimStats::totalUpgrades() const
{
    uint64_t n = 0;
    for (const auto &p : procs)
        n += p.upgrades;
    return n;
}

uint64_t
SimStats::dynamicSharingTraffic() const
{
    return totalInvalidationsSent() +
           totalMissCount(MissKind::Invalidation) +
           sharingCompulsoryMisses;
}

double
SimStats::missRate() const
{
    uint64_t refs = totalMemRefs();
    if (refs == 0)
        return 0.0;
    return static_cast<double>(totalMisses()) /
           static_cast<double>(refs);
}

} // namespace tsp::sim
