#include "sim/machine.h"

#include <algorithm>

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "util/bits.h"
#include "util/error.h"

namespace tsp::sim {

Machine::Machine(const SimConfig &cfg, const trace::TraceSet &traces,
                 const placement::PlacementMap &placement)
    : cfg_(cfg), traces_(traces),
      directory_(cfg.processors),
      interconnect_(cfg.networkChannels, cfg.memoryLatency,
                    cfg.channelOccupancy)
{
    cfg_.validate();
    util::fatalIf(placement.threadCount() != traces.threadCount(),
                  "placement and trace set disagree on thread count");
    util::fatalIf(placement.processors() != cfg.processors,
                  "placement and config disagree on processor count");
    blockShift_ = util::log2Floor(cfg.blockBytes);

    procs_.resize(cfg.processors);
    caches_.reserve(cfg.processors);
    for (uint32_t p = 0; p < cfg.processors; ++p) {
        caches_.emplace_back(cfg_);
        procs_[p].ctxs.resize(cfg.contexts);
    }
    stats_.procs.resize(cfg.processors);
    stats_.coherencePairs = stats::PairMatrix(traces.threadCount());
    scheduledAt_.assign(cfg.processors, kNoEvent);
    if (cfg_.profileSharing)
        monitor_.emplace();
    if (cfg_.paranoidEvery > 0) {
        checker_.emplace(directory_, caches_, stats_);
        refsUntilCheck_ = cfg_.paranoidEvery;
    }

    // Barrier discovery and validation: either no thread uses
    // barriers, or all threads execute the same number of them.
    uint64_t barriers = traces.threadCount()
        ? traces.thread(0).barrierCount()
        : 0;
    bool anyBarriers = false;
    for (const auto &t : traces.threads()) {
        util::fatalIf(t.barrierCount() != barriers,
                      "all threads must execute the same barrier "
                      "sequence");
        anyBarriers |= t.barrierCount() > 0;
    }
    if (anyBarriers)
        barrierParticipants_ =
            static_cast<uint32_t>(traces.threadCount());

    // Distribute each processor's threads over its hardware contexts;
    // overflow threads wait in the pending queue.
    auto clusters = placement.clusters();
    for (uint32_t p = 0; p < cfg.processors; ++p) {
        Proc &proc = procs_[p];
        size_t c = 0;
        for (uint32_t tid : clusters[p]) {
            if (c < proc.ctxs.size()) {
                loadThread(proc, c++, tid, 0);
            } else {
                util::fatalIf(barrierParticipants_ > 0,
                              "barrier traces require every thread to "
                              "be resident (threads <= processors x "
                              "contexts)");
                proc.pending.push_back(tid);
            }
        }
    }
}

void
Machine::loadThread(Proc &proc, size_t c, uint32_t tid, uint64_t now)
{
    Context &ctx = proc.ctxs[c];
    ctx.thread = static_cast<int32_t>(tid);
    ctx.cursor.emplace(traces_.thread(tid));
    ctx.readyAt = now;
}

void
Machine::reapFinished(uint32_t p, uint64_t now)
{
    Proc &proc = procs_[p];
    for (size_t c = 0; c < proc.ctxs.size(); ++c) {
        Context &ctx = proc.ctxs[c];
        if (ctx.thread < 0 || !ctx.cursor->done() ||
            ctx.hasPending || ctx.readyAt > now) {
            continue;
        }
        // finishTime was recorded when the last chunk retired.
        ctx.thread = -1;
        ctx.cursor.reset();
        if (!proc.pending.empty()) {
            uint32_t tid = proc.pending.front();
            proc.pending.pop_front();
            loadThread(proc, c, tid, now);
        }
    }
}

int32_t
Machine::pickReady(const Proc &proc, uint64_t now) const
{
    const size_t n = proc.ctxs.size();
    // A context runs until it misses (Section 3.2): keep the active
    // context whenever it is still ready.
    if (proc.active >= 0) {
        const Context &active =
            proc.ctxs[static_cast<size_t>(proc.active)];
        if (active.thread >= 0 && active.readyAt <= now)
            return proc.active;
    }
    // Otherwise round-robin starting after the active context (an
    // unset active of -1 wraps to context 0 first).
    for (size_t k = 1; k <= n; ++k) {
        size_t c = (static_cast<size_t>(proc.active) + k) % n;
        const Context &ctx = proc.ctxs[c];
        if (ctx.thread >= 0 && ctx.readyAt <= now)
            return static_cast<int32_t>(c);
    }
    return -1;
}

std::optional<uint64_t>
Machine::nextWake(const Proc &proc) const
{
    std::optional<uint64_t> wake;
    for (const Context &ctx : proc.ctxs) {
        if (ctx.thread < 0 || ctx.readyAt == kWaiting)
            continue;
        if (!wake || ctx.readyAt < *wake)
            wake = ctx.readyAt;
    }
    return wake;
}

std::optional<uint64_t>
Machine::step(uint32_t p, uint64_t now)
{
    Proc &proc = procs_[p];
    ProcessorStats &ps = stats_.procs[p];

    // Close an open idle window (lazy accounting: a barrier release
    // may have cut the window short of the wake time estimated when
    // the processor went idle).
    if (proc.idleSince) {
        util::panicIf(*proc.idleSince > now, "idle window in the future");
        ps.idleCycles += now - *proc.idleSince;
        proc.idleSince.reset();
    }

    reapFinished(p, now);

    int32_t c = pickReady(proc, now);
    if (c < 0) {
        auto wake = nextWake(proc);
        proc.idleSince = now;
        if (!wake)
            return std::nullopt;  // finished or all barrier-blocked
        util::panicIf(*wake <= now, "stalled wake time in the past");
        return wake;
    }

    if (proc.active != c) {
        // Context switch: pipeline drain (Section 3.2).
        if (proc.active >= 0) {
            ps.switchCycles += cfg_.contextSwitchCycles;
            now += cfg_.contextSwitchCycles;
        }
        proc.active = c;
    }

    Context &ctx = proc.ctxs[static_cast<size_t>(c)];

    if (ctx.hasPending) {
        // Commit the interaction that the preceding work run led to.
        // This runs at its exact global time: later events of other
        // processors were processed first.
        ctx.hasPending = false;
        if (ctx.pendingBarrier) {
            barrierArrive(p, static_cast<size_t>(c), now);
            if (ctx.cursor->done() && ctx.readyAt != kWaiting) {
                // Trailing barrier and this arrival released it.
                ps.finishTime = std::max(ps.finishTime, now);
            }
            return now;
        }
        ps.instructions += 1;
        bool miss = access(p, static_cast<uint32_t>(ctx.thread),
                           ctx.pendingAddr, ctx.pendingStore);
        ps.busyCycles += cfg_.hitLatency;
        now += cfg_.hitLatency;
        if (miss)
            ctx.readyAt = now + interconnect_.transactionLatency(now);
        if (ctx.cursor->done()) {
            // The thread's last instruction retires when its final
            // memory operation completes.
            ps.finishTime =
                std::max(ps.finishTime, miss ? ctx.readyAt : now);
        }
        return now;
    }

    if (ctx.cursor->done()) {
        // Loaded an empty trace, or resumed purely to retire: record
        // completion and let reapFinished unload it next step.
        ps.finishTime = std::max(ps.finishTime, now);
        ctx.readyAt = now;
        reapFinished(p, now);
        return now;
    }

    trace::TraceCursor::Chunk chunk = ctx.cursor->next();
    ps.busyCycles += chunk.work;
    ps.instructions += chunk.work;
    now += chunk.work;

    if (chunk.hasRef || chunk.isBarrier) {
        ctx.hasPending = true;
        ctx.pendingBarrier = chunk.isBarrier;
        ctx.pendingStore = chunk.isStore;
        ctx.pendingAddr = chunk.addr;
        ctx.readyAt = now;
    } else if (ctx.cursor->done()) {
        ps.finishTime = std::max(ps.finishTime, now);
    }
    return now;
}

void
Machine::barrierArrive(uint32_t p, size_t c, uint64_t now)
{
    util::panicIf(barrierParticipants_ == 0,
                  "barrier event in a barrier-free run");
    Context &ctx = procs_[p].ctxs[c];
    ctx.readyAt = kWaiting;
    ctx.barrierArriveAt = now;
    barrierWaiters_.emplace_back(p, static_cast<uint32_t>(c));
    if (++barrierArrived_ == barrierParticipants_)
        releaseBarrier(now);
}

void
Machine::releaseBarrier(uint64_t now)
{
    for (auto [p, c] : barrierWaiters_) {
        Context &ctx = procs_[p].ctxs[c];
        stats_.procs[p].barrierCycles += now - ctx.barrierArriveAt;
        ctx.readyAt = now;
        if (ctx.cursor->done()) {
            stats_.procs[p].finishTime =
                std::max(stats_.procs[p].finishTime, now);
        }
        schedule(p, now);
    }
    barrierWaiters_.clear();
    barrierArrived_ = 0;
}

void
Machine::schedule(uint32_t p, uint64_t t)
{
    if (scheduledAt_[p] <= t)
        return;  // an earlier (or equal) event is already pending
    scheduledAt_[p] = t;
    pq_.push({t, p});
}

bool
Machine::access(uint32_t p, uint32_t tid, uint64_t addr, bool isStore)
{
    TSP_FAULT_POINT("sim.step");
    if (checker_) {
        // Validate between accesses, when the caches and directory are
        // guaranteed to agree; ++refsSeen_ labels any violation dump.
        ++refsSeen_;
        if (--refsUntilCheck_ == 0) {
            refsUntilCheck_ = cfg_.paranoidEvery;
            checker_->check(refsSeen_);
        }
    }
    ProcessorStats &ps = stats_.procs[p];
    Cache &cache = caches_[p];
    const uint64_t block = addr >> blockShift_;
    ++ps.memRefs;
    if (monitor_)
        monitor_->onAccess(block, tid, isStore);

    if (Cache::Frame *hit = cache.lookup(block)) {
        ++ps.hits;
        cache.touch(*hit);
        if (accessObserver_) {
            accessObserver_(p, tid, block, isStore, true,
                            MissKind::Compulsory);
        }
        if (isStore) {
            if (hit->state == CoherenceState::Shared) {
                // Upgrade: gain ownership, invalidating remote copies.
                auto txn = directory_.write(p, tid, block);
                ++ps.upgrades;
                applyInvalidations(p, tid, txn.invalidate, block);
                hit->state = CoherenceState::Modified;
                hit->threadId = tid;
                return cfg_.stallOnUpgrade && !txn.invalidate.empty();
            }
            hit->state = CoherenceState::Modified;  // silent E/M -> M
        }
        hit->threadId = tid;
        return false;
    }

    Cache::Frame &frame = cache.victimFor(block);

    // Miss: classify from this cache's departure history.
    MissKind kind = cache.classifyMiss(block, tid);
    ++ps.misses[static_cast<size_t>(kind)];
    if (accessObserver_)
        accessObserver_(p, tid, block, isStore, false, kind);
    if (kind == MissKind::Invalidation) {
        int32_t writer = cache.invalidatingWriter(block);
        if (writer >= 0 && static_cast<uint32_t>(writer) != tid)
            stats_.coherencePairs.add(tid, static_cast<uint32_t>(writer),
                                      1.0);
    }

    // Evict the current occupant (with a directory notification, so
    // sharer sets stay exact).
    if (frame.valid()) {
        if (frame.dirty())
            ++ps.writebacks;
        directory_.evict(p, frame.tag);
        cache.recordEviction(frame.tag, tid);
    }

    Directory::Txn txn;
    if (isStore) {
        txn = directory_.write(p, tid, block);
        applyInvalidations(p, tid, txn.invalidate, block);
        frame.state = CoherenceState::Modified;
    } else {
        txn = directory_.read(p, tid, block);
        if (txn.downgradeOwner) {
            Cache::Frame *ownerFrame =
                caches_[txn.prevOwner].lookup(block);
            util::panicIf(ownerFrame == nullptr,
                          "directory owner does not hold the block");
            if (ownerFrame->state == CoherenceState::Modified)
                ++stats_.procs[txn.prevOwner].writebacks;
            ownerFrame->state = CoherenceState::Shared;
        }
        frame.state = txn.grantedExclusive ? CoherenceState::Exclusive
                                           : CoherenceState::Shared;
    }

    if (kind == MissKind::Compulsory && txn.blockSeenBefore) {
        // Never in this cache, yet known to the directory: the block
        // was first touched by a remote processor. This is exactly the
        // compulsory-miss component sharing-based placement hopes to
        // remove (Section 1).
        ++stats_.sharingCompulsoryMisses;
        int32_t other = txn.prevLastWriter >= 0 ? txn.prevLastWriter
                                                : txn.prevLastToucher;
        if (other >= 0 && static_cast<uint32_t>(other) != tid)
            stats_.coherencePairs.add(tid, static_cast<uint32_t>(other),
                                      1.0);
    }

    frame.tag = block;
    frame.threadId = tid;
    cache.touch(frame);
    return true;
}

void
Machine::applyInvalidations(uint32_t causerProc, uint32_t causerTid,
                            const std::vector<uint32_t> &victims,
                            uint64_t block)
{
    for (uint32_t v : victims) {
        util::panicIf(v == causerProc, "self-invalidation");
        int32_t resident = caches_[v].invalidate(block, causerTid);
        util::panicIf(resident < 0,
                      "directory sharer does not hold the block");
        ++stats_.procs[causerProc].invalidationsSent;
        ++stats_.procs[v].invalidationsReceived;
        if (static_cast<uint32_t>(resident) != causerTid)
            stats_.coherencePairs.add(causerTid,
                                      static_cast<uint32_t>(resident),
                                      1.0);
    }
}

SimStats
Machine::run()
{
    util::fatalIf(ran_, "a Machine can only run once");
    ran_ = true;

    for (uint32_t p = 0; p < cfg_.processors; ++p)
        schedule(p, 0);

    while (!pq_.empty()) {
        auto [t, p] = pq_.top();
        pq_.pop();
        if (scheduledAt_[p] != t)
            continue;  // superseded by an earlier wake-up
        scheduledAt_[p] = kNoEvent;
        std::optional<uint64_t> next = step(p, t);
        // Keep advancing this processor while it remains the globally
        // earliest event; this skips most heap traffic on hit runs
        // without perturbing the global order of directory operations.
        while (next && (pq_.empty() || *next <= pq_.top().first))
            next = step(p, *next);
        // Any event this processor enqueued for itself mid-chain
        // (barrier self-release) is superseded by the chain's own
        // continuation.
        scheduledAt_[p] = kNoEvent;
        if (next)
            schedule(p, *next);
    }

    // Safety net: everything must have retired (a mismatched barrier
    // structure or an overflowed context pool would strand contexts).
    for (uint32_t p = 0; p < cfg_.processors; ++p) {
        for (const Context &ctx : procs_[p].ctxs) {
            util::fatalIf(ctx.thread >= 0,
                          "simulation ended with unfinished threads "
                          "(barrier deadlock?)");
        }
        util::fatalIf(!procs_[p].pending.empty(),
                      "simulation ended with unstarted threads");
    }

    if (checker_)
        checker_->check(refsSeen_);  // final end-of-run validation

    if (monitor_) {
        stats_.sharingProfile = monitor_->finalize();
        stats_.profiledSharing = true;
    }
    stats_.networkTransactions = interconnect_.transactions();
    stats_.networkQueueingCycles = interconnect_.queueingCycles();
    stats_.networkMaxQueueing = interconnect_.maxQueueing();
    return std::move(stats_);
}

SimStats
simulate(const SimConfig &cfg, const trace::TraceSet &traces,
         const placement::PlacementMap &placement)
{
    obs::StopWatch watch;
    Machine machine(cfg, traces, placement);
    SimStats stats = machine.run();
    // Per-run aggregation at the simulate() boundary: one batch of
    // counter adds per run, zero accounting in the event loop.
    obs::simRunMillis().observe(watch.elapsedMs());
    if (obs::metricsEnabled()) {
        obs::simRuns().inc();
        obs::simInstructions().add(stats.totalInstructions());
        obs::simMemRefs().add(stats.totalMemRefs());
        obs::simMissCompulsory().add(
            stats.totalMissCount(MissKind::Compulsory));
        obs::simMissIntraConflict().add(
            stats.totalMissCount(MissKind::IntraConflict));
        obs::simMissInterConflict().add(
            stats.totalMissCount(MissKind::InterConflict));
        obs::simMissInvalidation().add(
            stats.totalMissCount(MissKind::Invalidation));
        obs::simInvalidationsSent().add(
            stats.totalInvalidationsSent());
        obs::simUpgrades().add(stats.totalUpgrades());
    }
    return stats;
}

} // namespace tsp::sim
