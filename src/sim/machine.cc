#include "sim/machine.h"

#include <algorithm>
#include <bit>

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "util/bits.h"
#include "util/error.h"

namespace tsp::sim {

Machine::Machine(const SimConfig &cfg, const trace::TraceSet &traces,
                 const placement::PlacementMap &placement)
    : cfg_(cfg), traces_(&traces),
      directory_(cfg.processors, cfg.protocol),
      interconnect_(cfg)
{
    construct(placement);
}

Machine::Machine(const SimConfig &cfg, trace::TraceSource &source,
                 const placement::PlacementMap &placement)
    : cfg_(cfg), source_(&source),
      directory_(cfg.processors, cfg.protocol),
      interconnect_(cfg)
{
    construct(placement);
}

uint32_t
Machine::threadCountOf() const
{
    return traces_ ? static_cast<uint32_t>(traces_->threadCount())
                   : source_->threadCount();
}

uint64_t
Machine::barrierCountOf(uint32_t tid) const
{
    return traces_ ? traces_->thread(tid).barrierCount()
                   : source_->barrierCount(tid);
}

void
Machine::construct(const placement::PlacementMap &placement)
{
    cfg_.validate();
    const uint32_t threads = threadCountOf();
    util::fatalIf(placement.threadCount() != threads,
                  "placement and trace set disagree on thread count");
    util::fatalIf(placement.processors() != cfg_.processors,
                  "placement and config disagree on processor count");
    blockShift_ = util::log2Floor(cfg_.blockBytes);

    procs_.resize(cfg_.processors);
    caches_.reserve(cfg_.processors);
    for (uint32_t p = 0; p < cfg_.processors; ++p) {
        caches_.emplace_back(cfg_);
        procs_[p].ctxs.resize(cfg_.contexts);
    }
    stats_.procs.resize(cfg_.processors);
    stats_.coherencePairs = stats::PairMatrix(threads);
    scheduledAt_.assign(cfg_.processors, kNoEvent);
    framesPerCache_ = caches_[0].numFrames();
    frameDir_.assign(cfg_.processors * framesPerCache_, nullptr);

    // Pre-size every hash table and queue from the trace census so the
    // event loop never rehashes or reallocates (the allocation-free
    // steady state tests/sim_alloc_test.cc pins). In streaming mode
    // the source runs a dedicated census pass (memoized across lanes).
    const trace::TraceSet::TouchedBlocks &touched = traces_
        ? traces_->touchedBlocks(blockShift_)
        : source_->touchedBlocks(blockShift_);
    directory_.reserveBlocks(touched.total);
    barrierWaiters_.reserve(threads);
    if (cfg_.l2Bytes > 0)
        l2_.emplace(cfg_);
    if (cfg_.profileSharing)
        monitor_.emplace();
    if (cfg_.paranoidEvery > 0) {
        checker_.emplace(directory_, caches_, stats_,
                         l2_ ? &*l2_ : nullptr, cfg_.l2Inclusive);
        refsUntilCheck_ = cfg_.paranoidEvery;
    }

    // Barrier discovery and validation: either no thread uses
    // barriers, or all threads execute the same number of them.
    uint64_t barriers = threads ? barrierCountOf(0) : 0;
    bool anyBarriers = false;
    for (uint32_t tid = 0; tid < threads; ++tid) {
        util::fatalIf(barrierCountOf(tid) != barriers,
                      "all threads must execute the same barrier "
                      "sequence");
        anyBarriers |= barrierCountOf(tid) > 0;
    }
    if (anyBarriers)
        barrierParticipants_ = threads;

    // Distribute each processor's threads over its hardware contexts;
    // overflow threads wait in the pending queue.
    auto clusters = placement.clusters();
    for (uint32_t p = 0; p < cfg_.processors; ++p) {
        Proc &proc = procs_[p];
        size_t c = 0;
        uint64_t historyBlocks = 0;
        for (uint32_t tid : clusters[p]) {
            historyBlocks += touched.perThread[tid];
            if (c < proc.ctxs.size()) {
                loadThread(proc, c++, tid, 0);
            } else {
                util::fatalIf(barrierParticipants_ > 0,
                              "barrier traces require every thread to "
                              "be resident (threads <= processors x "
                              "contexts)");
                proc.pending.push_back(tid);
            }
        }
        // History keys are a subset of the blocks this cache ever
        // held, which is bounded by what its threads touch.
        caches_[p].reserveHistory(historyBlocks);
    }
}

void
Machine::loadThread(Proc &proc, size_t c, uint32_t tid, uint64_t now)
{
    Context &ctx = proc.ctxs[c];
    ctx.thread = static_cast<int32_t>(tid);
    if (traces_)
        ctx.cursor.emplace(traces_->thread(tid));
    else
        ctx.cursor.emplace(source_->openThread(tid));
    ctx.readyAt = now;
    if (c < 64)
        proc.liveMask |= 1ull << c;
    if (ctx.cursor->done())  // empty trace: retire on its next step
        proc.needsReap = true;
}

void
Machine::reapFinished(uint32_t p, uint64_t now)
{
    Proc &proc = procs_[p];
    // needsReap is raised whenever a context's trace runs dry and
    // stays up until every finished context has been unloaded, so
    // skipping the scan here never delays a retirement.
    if (!proc.needsReap)
        return;
    bool doneRemains = false;
    for (size_t c = 0; c < proc.ctxs.size(); ++c) {
        Context &ctx = proc.ctxs[c];
        if (ctx.thread < 0 || !ctx.cursor->done())
            continue;
        if (ctx.hasPending || ctx.readyAt > now) {
            doneRemains = true;  // finished, but not yet retirable
            continue;
        }
        // finishTime was recorded when the last chunk retired.
        ctx.thread = -1;
        ctx.cursor.reset();
        if (c < 64)
            proc.liveMask &= ~(1ull << c);
        if (!proc.pending.empty()) {
            uint32_t tid = proc.pending.front();
            proc.pending.pop_front();
            loadThread(proc, c, tid, now);
            // A just-loaded empty trace is itself due for reaping.
            doneRemains |= proc.ctxs[c].cursor->done();
        }
    }
    proc.needsReap = doneRemains;
}

int32_t
Machine::pickReady(const Proc &proc, uint64_t now) const
{
    const size_t n = proc.ctxs.size();
    // A context runs until it misses (Section 3.2): keep the active
    // context whenever it is still ready.
    if (proc.active >= 0) {
        const Context &active =
            proc.ctxs[static_cast<size_t>(proc.active)];
        if (active.thread >= 0 && active.readyAt <= now)
            return proc.active;
    }
    // Otherwise round-robin starting after the active context (an
    // unset active of -1 wraps to context 0 first).
    const size_t start =
        static_cast<size_t>(proc.active + 1) % n;
    if (n > 4 && n <= 64) {
        // Wide context files: walk only the loaded contexts via the
        // live bitmask, in the same rotated order as the linear scan.
        const uint64_t lowBits = (1ull << start) - 1;
        uint64_t wrap[2] = {proc.liveMask & ~lowBits,
                            proc.liveMask & lowBits};
        for (uint64_t m : wrap) {
            while (m != 0) {
                size_t c = static_cast<size_t>(std::countr_zero(m));
                m &= m - 1;
                if (proc.ctxs[c].readyAt <= now)
                    return static_cast<int32_t>(c);
            }
        }
        return -1;
    }
    for (size_t k = 0; k < n; ++k) {
        size_t c = (start + k) % n;
        const Context &ctx = proc.ctxs[c];
        if (ctx.thread >= 0 && ctx.readyAt <= now)
            return static_cast<int32_t>(c);
    }
    return -1;
}

std::optional<uint64_t>
Machine::nextWake(const Proc &proc) const
{
    std::optional<uint64_t> wake;
    for (const Context &ctx : proc.ctxs) {
        if (ctx.thread < 0 || ctx.readyAt == kWaiting)
            continue;
        if (!wake || ctx.readyAt < *wake)
            wake = ctx.readyAt;
    }
    return wake;
}

void
Machine::barrierArrive(uint32_t p, size_t c, uint64_t now)
{
    util::panicIf(barrierParticipants_ == 0,
                  "barrier event in a barrier-free run");
    Context &ctx = procs_[p].ctxs[c];
    ctx.readyAt = kWaiting;
    ctx.barrierArriveAt = now;
    barrierWaiters_.emplace_back(p, static_cast<uint32_t>(c));
    if (++barrierArrived_ == barrierParticipants_)
        releaseBarrier(now);
}

void
Machine::releaseBarrier(uint64_t now)
{
    for (auto [p, c] : barrierWaiters_) {
        Context &ctx = procs_[p].ctxs[c];
        stats_.procs[p].barrierCycles += now - ctx.barrierArriveAt;
        ctx.readyAt = now;
        if (ctx.cursor->done()) {
            stats_.procs[p].finishTime =
                std::max(stats_.procs[p].finishTime, now);
        }
        schedule(p, now);
    }
    barrierWaiters_.clear();
    barrierArrived_ = 0;
}

bool
Machine::access(uint32_t p, uint32_t tid, uint64_t block, bool isStore)
{
    TSP_FAULT_POINT("sim.step");
    if (checker_) {
        // Validate between accesses, when the caches and directory are
        // guaranteed to agree; ++refsSeen_ labels any violation dump.
        ++refsSeen_;
        if (--refsUntilCheck_ == 0) {
            refsUntilCheck_ = cfg_.paranoidEvery;
            checker_->check(refsSeen_);
        }
    }
    ProcessorStats &ps = stats_.procs[p];
    Cache &cache = caches_[p];
    ++ps.memRefs;
    if (monitor_)
        monitor_->onAccess(block, tid, isStore);

    if (Cache::Frame *hit = cache.lookup(block)) {
        ++ps.hits;
        cache.touch(*hit);
        if (accessObserver_) {
            accessObserver_(p, tid, block, isStore, true,
                            MissKind::Compulsory);
        }
        if (isStore) {
            if (hit->state == CoherenceState::Shared ||
                hit->state == CoherenceState::Owned) {
                // Upgrade: gain ownership, invalidating remote copies
                // (a MOESI Owned copy has sharers too — same path).
                auto txn = directory_.write(p, tid, block);
                ++ps.upgrades;
                applyInvalidations(p, tid, txn, block);
                hit->state = CoherenceState::Modified;
                hit->threadId = tid;
                // An upgrade carries no data: a stall costs the full
                // directory round-trip, never an L2 fill.
                missFillCycles_ = cfg_.memoryLatency;
                return cfg_.stallOnUpgrade && txn.anyInvalidate();
            }
            hit->state = CoherenceState::Modified;  // silent E/M -> M
        }
        hit->threadId = tid;
        return false;
    }

    Cache::Frame &frame = cache.victimFor(block);
    Directory::Entry *&frameEntry =
        frameDir_[p * framesPerCache_ +
                  static_cast<size_t>(&frame - cache.frames().data())];

    // Miss: classify from this cache's departure history.
    auto [kind, writer] = cache.classifyMissAndWriter(block, tid);
    ++ps.misses[static_cast<size_t>(kind)];
    if (accessObserver_)
        accessObserver_(p, tid, block, isStore, false, kind);
    if (writer >= 0 && static_cast<uint32_t>(writer) != tid)
        stats_.coherencePairs.add(tid, static_cast<uint32_t>(writer),
                                  1.0);

    // Evict the current occupant (with a directory notification, so
    // sharer sets stay exact), through the entry handle cached when
    // the frame was filled — no tag re-hash.
    if (frame.valid()) {
        bool wasDirty = frame.dirty();
        if (wasDirty)
            ++ps.writebacks;
        directory_.evictEntry(p, frameEntry);
        cache.recordEviction(frame.tag, tid);
        if (l2_) {
            if (cfg_.l2Inclusive) {
                // The writeback lands in the L2 copy (inclusion
                // guarantees it exists).
                if (wasDirty)
                    l2_->markDirty(frame.tag);
            } else if (frameEntry->sharerCount() == 0) {
                // Exclusive L2 is a victim cache: the block enters it
                // only once the last L1 copy leaves.
                SharedL2::Victim v = l2_->insert(frame.tag, wasDirty);
                if (v.evicted && v.dirty)
                    ++stats_.l2Writebacks;
            }
        }
    }

    // Fill latency: full memory unless the shared L2 has the block.
    missFillCycles_ = cfg_.memoryLatency;
    if (l2_) {
        if (cfg_.l2Inclusive) {
            if (l2_->lookup(block)) {
                ++stats_.l2Hits;
                missFillCycles_ = cfg_.l2HitLatency;
            } else {
                ++stats_.l2Misses;
                SharedL2::Victim v = l2_->insert(block, false);
                if (v.evicted)
                    backInvalidateL1s(v.block, v.dirty, tid);
            }
        } else {
            if (l2_->present(block)) {
                ++stats_.l2Hits;
                missFillCycles_ = cfg_.l2HitLatency;
                // The L1 fill pulls the block out; a dirty victim-
                // cache copy is flushed to memory on the way.
                if (l2_->remove(block))
                    ++stats_.l2Writebacks;
            } else {
                ++stats_.l2Misses;
            }
        }
    }

    Directory::Txn txn;
    if (isStore) {
        txn = directory_.write(p, tid, block);
        applyInvalidations(p, tid, txn, block);
        frame.state = CoherenceState::Modified;
    } else {
        txn = directory_.read(p, tid, block);
        if (txn.downgradeOwner) {
            Cache::Frame *ownerFrame =
                caches_[txn.prevOwner].lookup(block);
            util::panicIf(ownerFrame == nullptr,
                          "directory owner does not hold the block");
            if (cfg_.protocol == Protocol::Moesi &&
                ownerFrame->state == CoherenceState::Modified) {
                // MOESI: the dirty copy stays put (M -> O, no
                // writeback); the directory entered SharedOwned.
                ownerFrame->state = CoherenceState::Owned;
            } else {
                if (ownerFrame->state == CoherenceState::Modified)
                    ++stats_.procs[txn.prevOwner].writebacks;
                ownerFrame->state = CoherenceState::Shared;
                if (cfg_.protocol == Protocol::Moesi) {
                    // Clean owner: nothing to keep supplying —
                    // collapse the tentative SharedOwned state.
                    directory_.demoteToShared(txn.entry);
                }
            }
        }
        frame.state = txn.grantedExclusive ? CoherenceState::Exclusive
                                           : CoherenceState::Shared;
    }

    if (kind == MissKind::Compulsory && txn.blockSeenBefore) {
        // Never in this cache, yet known to the directory: the block
        // was first touched by a remote processor. This is exactly the
        // compulsory-miss component sharing-based placement hopes to
        // remove (Section 1).
        ++stats_.sharingCompulsoryMisses;
        int32_t other = txn.prevLastWriter >= 0 ? txn.prevLastWriter
                                                : txn.prevLastToucher;
        if (other >= 0 && static_cast<uint32_t>(other) != tid)
            stats_.coherencePairs.add(tid, static_cast<uint32_t>(other),
                                      1.0);
    }

    frame.tag = block;
    frame.threadId = tid;
    frameEntry = txn.entry;
    cache.touch(frame);
    return true;
}

void
Machine::applyInvalidations(uint32_t causerProc, uint32_t causerTid,
                            const Directory::Txn &txn, uint64_t block)
{
    if (!txn.anyInvalidate())
        return;
    txn.forEachInvalidate([&](uint32_t v) {
        util::panicIf(v == causerProc, "self-invalidation");
        int32_t resident = caches_[v].invalidate(block, causerTid);
        util::panicIf(resident < 0,
                      "directory sharer does not hold the block");
        ++stats_.procs[causerProc].invalidationsSent;
        ++stats_.procs[v].invalidationsReceived;
        if (static_cast<uint32_t>(resident) != causerTid)
            stats_.coherencePairs.add(causerTid,
                                      static_cast<uint32_t>(resident),
                                      1.0);
    });
}

void
Machine::backInvalidateL1s(uint64_t vblock, bool l2Dirty,
                           uint32_t causerTid)
{
    if (l2Dirty)
        ++stats_.l2Writebacks;
    const Directory::Entry *e = directory_.find(vblock);
    if (!e || e->sharerCount() == 0)
        return;
    // Snapshot the sharer set: each evict notification shrinks it.
    SharerSet sharers = e->sharers;
    sharers.forEach([&](uint32_t sp) {
        Cache::BackInval bi =
            caches_[sp].backInvalidate(vblock, causerTid);
        util::panicIf(!bi.present,
                      "directory sharer does not hold the "
                      "back-invalidated block");
        if (bi.wasDirty)
            ++stats_.procs[sp].writebacks;
        directory_.evict(sp, vblock);
        ++stats_.l2BackInvalidations;
    });
}

SimStats
Machine::run()
{
    util::fatalIf(started_, "a Machine can only run once");
    advance(0);
    return finish();
}

bool
Machine::advance(uint64_t maxChains)
{
    util::fatalIf(finished_, "machine already finished");
    if (complete_)
        return true;
    if (!started_) {
        started_ = true;
        for (uint32_t p = 0; p < cfg_.processors; ++p)
            schedule(p, 0);
    }

    const uint32_t n = cfg_.processors;
    uint64_t chains = 0;
    while (true) {
        if (maxChains != 0 && chains++ == maxChains)
            return false;
        // Earliest pending event and runner-up in one scan. Strict
        // less-than keeps the first of equal times, so ties go to the
        // lowest processor id — exactly the old heap's
        // (time, processor) ordering. The runner-up is the chain
        // horizon: the picked processor runs until its local time
        // passes it (see docs/performance.md).
        uint64_t now = kNoEvent;
        uint64_t horizon = kNoEvent;
        uint32_t p = 0;
        for (uint32_t i = 0; i < n; ++i) {
            uint64_t s = scheduledAt_[i];
            if (s < now) {
                horizon = now;
                now = s;
                p = i;
            } else if (s < horizon) {
                horizon = s;
            }
        }
        if (now == kNoEvent)
            break;
        scheduledAt_[p] = kNoEvent;
        rescheduled_ = false;

        Proc &proc = procs_[p];
        ProcessorStats &ps = stats_.procs[p];

        // Chain: one micro-step (commit a pending interaction, fetch
        // the next chunk, or go idle until a wake) per iteration, for
        // as long as this processor stays at or before every other
        // processor's next event. Inlined into the scan loop — not a
        // per-event function call — because at high processor counts a
        // chain is barely one micro-step long (docs/performance.md).
        // Identical micro-step semantics to processing one event at a
        // time through a scheduler queue, minus the dispatch overhead.
        for (;;) {
            // A barrier release inside a previous iteration may have
            // moved another processor's event up: refresh the cached
            // horizon.
            if (rescheduled_) {
                horizon = minScheduled();
                rescheduled_ = false;
            }
            if (now > horizon) {
                // Yield: this supersedes any event the processor
                // scheduled for itself mid-chain (barrier
                // self-release).
                scheduledAt_[p] = now;
                break;
            }

            // Close an open idle window (lazy accounting: a barrier
            // release may have cut the window short of the wake time
            // estimated when the processor went idle).
            if (proc.idleSince) {
                util::panicIf(*proc.idleSince > now,
                              "idle window in the future");
                ps.idleCycles += now - *proc.idleSince;
                proc.idleSince.reset();
            }

            // Guard the reap scan here so the common no-reap
            // micro-step pays one predictable branch instead of a
            // function call.
            if (proc.needsReap)
                reapFinished(p, now);

            // Fast path: the active context runs until it misses, so
            // most micro-steps re-pick the context that just ran.
            int32_t c = proc.active;
            if (c < 0 ||
                proc.ctxs[static_cast<size_t>(c)].thread < 0 ||
                proc.ctxs[static_cast<size_t>(c)].readyAt > now)
                c = pickReady(proc, now);
            if (c < 0) {
                auto wake = nextWake(proc);
                proc.idleSince = now;
                if (!wake) {
                    // Finished or all contexts barrier-blocked: no
                    // next event. The explicit clear supersedes any
                    // mid-chain barrier self-schedule.
                    scheduledAt_[p] = kNoEvent;
                    break;
                }
                util::panicIf(*wake <= now,
                              "stalled wake time in the past");
                now = *wake;
                continue;
            }

            if (proc.active != c) {
                // Context switch: pipeline drain (Section 3.2).
                if (proc.active >= 0) {
                    ps.switchCycles += cfg_.contextSwitchCycles;
                    now += cfg_.contextSwitchCycles;
                }
                proc.active = c;
            }

            Context &ctx = proc.ctxs[static_cast<size_t>(c)];

            if (ctx.hasPending) {
                // Commit the interaction that the preceding work run
                // led to. This runs at its exact global time: later
                // events of other processors were processed first.
                ctx.hasPending = false;
                if (ctx.pendingBarrier) {
                    barrierArrive(p, static_cast<size_t>(c), now);
                    if (ctx.cursor->done() && ctx.readyAt != kWaiting) {
                        // Trailing barrier, and this arrival released
                        // it.
                        ps.finishTime = std::max(ps.finishTime, now);
                    }
                    continue;
                }
                ps.instructions += 1;
                bool miss =
                    access(p, static_cast<uint32_t>(ctx.thread),
                           ctx.pendingBlock, ctx.pendingStore);
                ps.busyCycles += cfg_.hitLatency;
                now += cfg_.hitLatency;
                if (miss)
                    ctx.readyAt =
                        now +
                        interconnect_.queueDelay(now,
                                                 ctx.pendingBlock) +
                        missFillCycles_;
                if (ctx.cursor->done()) {
                    // The thread's last instruction retires when its
                    // final memory operation completes.
                    ps.finishTime = std::max(ps.finishTime,
                                             miss ? ctx.readyAt : now);
                }
                continue;
            }

            if (ctx.cursor->done()) {
                // Loaded an empty trace, or resumed purely to retire:
                // record completion and let reapFinished unload it.
                ps.finishTime = std::max(ps.finishTime, now);
                ctx.readyAt = now;
                proc.needsReap = true;
                reapFinished(p, now);
                continue;
            }

            trace::TraceCursor::Chunk chunk = ctx.cursor->next();
            ps.busyCycles += chunk.work;
            ps.instructions += chunk.work;
            now += chunk.work;
            if (ctx.cursor->done())
                proc.needsReap = true;

            if (chunk.hasRef || chunk.isBarrier) {
                ctx.hasPending = true;
                ctx.pendingBarrier = chunk.isBarrier;
                ctx.pendingStore = chunk.isStore;
                // Translate address to block once, at fetch; the
                // commit path (and barrier-delayed replays) reuse the
                // block.
                ctx.pendingBlock = chunk.addr >> blockShift_;
                ctx.readyAt = now;
            } else if (ctx.cursor->done()) {
                ps.finishTime = std::max(ps.finishTime, now);
            }
        }
    }

    complete_ = true;
    return true;
}

SimStats
Machine::finish()
{
    util::fatalIf(!complete_,
                  "finish() before the simulation completed");
    util::fatalIf(finished_, "finish() may only be called once");
    finished_ = true;

    // Safety net: everything must have retired (a mismatched barrier
    // structure or an overflowed context pool would strand contexts).
    for (uint32_t p = 0; p < cfg_.processors; ++p) {
        for (const Context &ctx : procs_[p].ctxs) {
            util::fatalIf(ctx.thread >= 0,
                          "simulation ended with unfinished threads "
                          "(barrier deadlock?)");
        }
        util::fatalIf(!procs_[p].pending.empty(),
                      "simulation ended with unstarted threads");
    }

    if (checker_)
        checker_->check(refsSeen_);  // final end-of-run validation

    if (monitor_) {
        stats_.sharingProfile = monitor_->finalize();
        stats_.profiledSharing = true;
    }
    stats_.networkTransactions = interconnect_.transactions();
    stats_.networkQueueingCycles = interconnect_.queueingCycles();
    stats_.networkMaxQueueing = interconnect_.maxQueueing();
    // L2 counters accumulate directly into stats_ during access().
    return std::move(stats_);
}

void
recordRunMetrics(const SimStats &stats, const Machine &machine,
                 double wallMillis)
{
    obs::simRunMillis().observe(wallMillis);
    if (!obs::metricsEnabled())
        return;
    obs::simRuns().inc();
    obs::simInstructions().add(stats.totalInstructions());
    obs::simMemRefs().add(stats.totalMemRefs());
    obs::simMissCompulsory().add(
        stats.totalMissCount(MissKind::Compulsory));
    obs::simMissIntraConflict().add(
        stats.totalMissCount(MissKind::IntraConflict));
    obs::simMissInterConflict().add(
        stats.totalMissCount(MissKind::InterConflict));
    obs::simMissInvalidation().add(
        stats.totalMissCount(MissKind::Invalidation));
    obs::simInvalidationsSent().add(stats.totalInvalidationsSent());
    obs::simUpgrades().add(stats.totalUpgrades());
    obs::simDirEntries().set(
        static_cast<double>(machine.directoryEntries()));
    obs::simHistoryEntries().set(
        static_cast<double>(machine.historyEntries()));
    obs::simL2Hits().add(stats.l2Hits);
    obs::simL2Misses().add(stats.l2Misses);
    obs::simNetQueueDelay().add(stats.networkQueueingCycles);
}

SimStats
simulate(const SimConfig &cfg, const trace::TraceSet &traces,
         const placement::PlacementMap &placement)
{
    obs::StopWatch watch;
    Machine machine(cfg, traces, placement);
    SimStats stats = machine.run();
    // Per-run aggregation at the simulate() boundary: one batch of
    // counter adds per run, zero accounting in the event loop.
    recordRunMetrics(stats, machine, watch.elapsedMs());
    return stats;
}

SimStats
simulateStreaming(const SimConfig &cfg, trace::StreamFactory &factory,
                  const placement::PlacementMap &placement,
                  size_t chunkEvents, size_t *residentBytesOut)
{
    obs::StopWatch watch;
    trace::SharedTraceStream stream(factory, /*lanes=*/1, chunkEvents);
    Machine machine(cfg, stream.lane(0), placement);
    SimStats stats = machine.run();
    size_t residentBytes =
        stream.windowEventsHighWater() * sizeof(trace::TraceEvent);
    obs::traceResidentBytes().set(
        static_cast<int64_t>(residentBytes));
    if (residentBytesOut)
        *residentBytesOut = residentBytes;
    recordRunMetrics(stats, machine, watch.elapsedMs());
    return stats;
}

} // namespace tsp::sim
