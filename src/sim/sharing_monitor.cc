#include "sim/sharing_monitor.h"

#include <bit>

namespace tsp::sim {

void
SharingMonitor::onAccess(uint64_t block, uint32_t tid, bool isWrite)
{
    BlockState &state = blocks_[block];
    state.threads.set(tid);
    ++state.accesses;
    state.everWritten |= isWrite;

    if (state.started && state.runThread == tid) {
        ++state.runLength;
        state.runHasWrite |= isWrite;
        return;
    }
    if (state.started)
        closeRun(state);
    state.started = true;
    state.runThread = tid;
    state.runLength = 1;
    state.runHasWrite = isWrite;
}

void
SharingMonitor::closeRun(BlockState &state)
{
    if (state.runHasWrite) {
        ++state.writeRuns;
        state.writeRunAccesses += state.runLength;
    } else {
        ++state.readRuns;
        state.readRunAccesses += state.runLength;
    }
}

uint32_t
SharingMonitor::toucherCount(const BlockState &state) const
{
    return state.threads.count();
}

SharingProfile
SharingMonitor::finalize()
{
    SharingProfile profile;
    for (auto &[block, state] : blocks_) {
        (void)block;
        if (state.started)
            closeRun(state);
        state.started = false;

        if (toucherCount(state) < 2) {
            ++profile.privateBlocks;
            continue;
        }
        ++profile.sharedBlocks;

        if (state.writeRuns) {
            profile.writeRunLength.add(
                static_cast<double>(state.writeRunAccesses) /
                static_cast<double>(state.writeRuns));
        }
        if (state.readRuns) {
            profile.readRunLength.add(
                static_cast<double>(state.readRunAccesses) /
                static_cast<double>(state.readRuns));
        }

        if (!state.everWritten) {
            ++profile.readOnlyShared;
            continue;
        }
        double meanWriteRun = state.writeRuns
            ? static_cast<double>(state.writeRunAccesses) /
                  static_cast<double>(state.writeRuns)
            : 0.0;
        double coverage = state.accesses
            ? static_cast<double>(state.writeRunAccesses) /
                  static_cast<double>(state.accesses)
            : 0.0;
        if (meanWriteRun >= options_.minWriteRunLength &&
            coverage >= options_.minWriteRunCoverage) {
            ++profile.migratoryShared;
        } else {
            ++profile.otherShared;
        }
    }
    return profile;
}

} // namespace tsp::sim
