/**
 * @file
 * Simulation statistics: per-processor cycle and miss accounting plus
 * the dynamically measured coherence traffic of Section 4.2.
 */

#ifndef TSP_SIM_RESULTS_H
#define TSP_SIM_RESULTS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/sharing_monitor.h"
#include "stats/pair_matrix.h"

namespace tsp::sim {

/**
 * Cache miss taxonomy of the paper (Section 3.2): the cache unit keeps
 * separate statistics on compulsory, intra-thread conflict,
 * inter-thread conflict and invalidation misses.
 */
enum class MissKind : uint8_t {
    Compulsory = 0,    //!< block never before present in this cache
    IntraConflict = 1, //!< evicted earlier by the same thread
    InterConflict = 2, //!< evicted earlier by a co-located thread
    Invalidation = 3,  //!< invalidated earlier by remote coherence
};

/** Number of miss kinds. */
constexpr size_t numMissKinds = 4;

/** Display name of a miss kind. */
std::string missKindName(MissKind kind);

/**
 * Per-processor counters. The cycle identity
 * busy + switch + idle == finishTime holds for every processor that
 * executed at least one instruction.
 */
struct ProcessorStats
{
    uint64_t busyCycles = 0;    //!< cycles retiring instructions
    uint64_t switchCycles = 0;  //!< cycles draining on context switches
    uint64_t idleCycles = 0;    //!< cycles with no ready context
    uint64_t finishTime = 0;    //!< cycle the last thread completed

    /**
     * Per-context cycles spent blocked at barriers (summed over this
     * processor's contexts). An overlay statistic: barrier waits
     * overlap other contexts' execution, so this does not enter the
     * busy+switch+idle == finishTime identity.
     */
    uint64_t barrierCycles = 0;

    uint64_t instructions = 0;
    uint64_t memRefs = 0;
    uint64_t hits = 0;
    std::array<uint64_t, numMissKinds> misses{};

    uint64_t upgrades = 0;             //!< write hits needing invalidation
    uint64_t invalidationsSent = 0;    //!< invalidation messages caused
    uint64_t invalidationsReceived = 0;
    uint64_t writebacks = 0;           //!< dirty evictions / downgrades

    /** Total misses across all kinds. */
    uint64_t totalMisses() const;

    /** Miss count of one kind. */
    uint64_t
    missCount(MissKind kind) const
    {
        return misses[static_cast<size_t>(kind)];
    }
};

/**
 * Full result of one simulation run.
 */
struct SimStats
{
    std::vector<ProcessorStats> procs;

    /**
     * Thread-pair coherence traffic: invalidations, invalidation
     * misses and sharing-compulsory misses attributed to thread pairs.
     * This matrix feeds the COHERENCE-TRAFFIC placement algorithm.
     */
    stats::PairMatrix coherencePairs;

    /** Compulsory misses whose block was first touched remotely. */
    uint64_t sharingCompulsoryMisses = 0;

    /** Write-run profile; populated when SimConfig::profileSharing. */
    SharingProfile sharingProfile;
    bool profiledSharing = false;

    /** Interconnect contention (zero under the paper's default). */
    uint64_t networkTransactions = 0;
    uint64_t networkQueueingCycles = 0;
    uint64_t networkMaxQueueing = 0;

    /** Shared L2 traffic (all zero when SimConfig::l2Bytes == 0). */
    uint64_t l2Hits = 0;    //!< L1 misses served by the shared L2
    uint64_t l2Misses = 0;  //!< L1 misses that also missed the L2
    uint64_t l2Writebacks = 0;  //!< dirty L2 lines flushed to memory
    uint64_t l2BackInvalidations = 0;  //!< L1 copies removed because
                                       //!< the inclusive L2 evicted
                                       //!< their block

    /** The paper's figure of merit: max finish time over processors. */
    uint64_t executionTime() const;

    /** Aggregate over processors. */
    uint64_t totalInstructions() const;
    uint64_t totalMemRefs() const;
    uint64_t totalHits() const;
    uint64_t totalMisses() const;
    uint64_t totalMissCount(MissKind kind) const;
    uint64_t totalInvalidationsSent() const;
    uint64_t totalUpgrades() const;

    /**
     * The paper's "coherence traffic + compulsory misses" measure
     * (Table 4): invalidations sent + invalidation misses +
     * sharing-related compulsory misses.
     */
    uint64_t dynamicSharingTraffic() const;

    /** Overall miss rate (misses / references). */
    double missRate() const;
};

} // namespace tsp::sim

#endif // TSP_SIM_RESULTS_H
