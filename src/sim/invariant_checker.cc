#include "sim/invariant_checker.h"

#include <sstream>

#include "util/error.h"
#include "util/logging.h"

namespace tsp::sim {

namespace {

const char *
stateName(CoherenceState s)
{
    switch (s) {
    case CoherenceState::Invalid:
        return "I";
    case CoherenceState::Shared:
        return "S";
    case CoherenceState::Exclusive:
        return "E";
    case CoherenceState::Modified:
        return "M";
    case CoherenceState::Owned:
        return "O";
    }
    return "?";
}

const char *
dirStateName(Directory::State s)
{
    switch (s) {
    case Directory::State::Uncached:
        return "Uncached";
    case Directory::State::Shared:
        return "Shared";
    case Directory::State::Owned:
        return "Owned";
    case Directory::State::SharedOwned:
        return "SharedOwned";
    }
    return "?";
}

} // namespace

InvariantChecker::InvariantChecker(const Directory &directory,
                                   const std::vector<Cache> &caches,
                                   const SimStats &stats,
                                   const SharedL2 *l2,
                                   bool l2Inclusive)
    : directory_(directory), caches_(caches), stats_(stats), l2_(l2),
      l2Inclusive_(l2Inclusive), prev_(caches.size())
{}

std::string
InvariantChecker::dumpBlock(uint64_t block) const
{
    std::ostringstream os;
    os << "block 0x" << std::hex << block << std::dec << ": directory ";
    if (const Directory::Entry *e = directory_.find(block)) {
        os << dirStateName(e->state) << " owner=" << e->owner
           << " sharers={";
        bool first = true;
        for (uint32_t p = 0; p < caches_.size(); ++p) {
            if (!e->isSharer(p)) {
                continue;
            }
            os << (first ? "" : ",") << p;
            first = false;
        }
        os << "}";
    } else {
        os << "(no entry)";
    }
    os << "; frames:";
    bool any = false;
    for (uint32_t p = 0; p < caches_.size(); ++p) {
        if (const Cache::Frame *f = caches_[p].lookup(block)) {
            os << " cache" << p << "=" << stateName(f->state)
               << "(tid " << f->threadId << ")";
            any = true;
        }
    }
    if (!any)
        os << " (in no cache)";
    return os.str();
}

void
InvariantChecker::checkDirectoryAgainstCaches(uint64_t when) const
{
    directory_.forEachEntry([&](uint64_t block,
                                const Directory::Entry &e) {
        auto fail = [&](const std::string &why) {
            util::panic(util::concat(
                "coherence invariant violated at ref ", when, ": ",
                why, " [", dumpBlock(block), "]"));
        };
        uint32_t sharers = e.sharerCount();
        switch (e.state) {
        case Directory::State::Uncached:
            if (sharers != 0)
                fail("Uncached block has sharers");
            break;
        case Directory::State::Owned: {
            if (sharers != 1)
                fail("Owned block must have exactly one sharer");
            if (!e.isSharer(e.owner))
                fail("Owned block's owner is not in the sharer set");
            if (e.owner >= caches_.size())
                fail("Owned block's owner is out of range");
            const Cache::Frame *f = caches_[e.owner].lookup(block);
            if (!f)
                fail("owning cache does not hold the block");
            if (f->state != CoherenceState::Exclusive &&
                f->state != CoherenceState::Modified) {
                fail("owning cache holds the block without ownership");
            }
            if (directory_.protocol() == Protocol::Msi &&
                f->state == CoherenceState::Exclusive) {
                fail("Exclusive frame under MSI");
            }
            break;
        }
        case Directory::State::SharedOwned: {
            if (directory_.protocol() != Protocol::Moesi)
                fail("SharedOwned block outside MOESI");
            if (sharers == 0)
                fail("SharedOwned block has an empty sharer set");
            if (!e.isSharer(e.owner))
                fail("SharedOwned block's owner is not in the sharer "
                     "set");
            if (e.owner >= caches_.size())
                fail("SharedOwned block's owner is out of range");
            for (uint32_t p = 0; p < caches_.size(); ++p) {
                if (!e.isSharer(p))
                    continue;
                const Cache::Frame *f = caches_[p].lookup(block);
                if (!f)
                    fail(util::concat("sharer cache ", p,
                                      " does not hold the block"));
                CoherenceState want = p == e.owner
                                          ? CoherenceState::Owned
                                          : CoherenceState::Shared;
                if (f->state != want)
                    fail(util::concat("sharer cache ", p,
                                      " holds the block in the wrong "
                                      "state"));
            }
            break;
        }
        case Directory::State::Shared:
            if (sharers == 0)
                fail("Shared block has an empty sharer set");
            for (uint32_t p = 0; p < caches_.size(); ++p) {
                if (!e.isSharer(p))
                    continue;
                const Cache::Frame *f = caches_[p].lookup(block);
                if (!f)
                    fail(util::concat("sharer cache ", p,
                                      " does not hold the block"));
                if (f->state != CoherenceState::Shared)
                    fail(util::concat("sharer cache ", p,
                                      " holds the block non-Shared"));
            }
            break;
        }
    });
}

void
InvariantChecker::checkCachesAgainstDirectory(uint64_t when) const
{
    for (uint32_t p = 0; p < caches_.size(); ++p) {
        for (const Cache::Frame &f : caches_[p].frames()) {
            if (!f.valid())
                continue;
            const Directory::Entry *e = directory_.find(f.tag);
            if (!e || !e->isSharer(p)) {
                util::panic(util::concat(
                    "coherence invariant violated at ref ", when,
                    ": cache ", p, " holds a block the directory does "
                    "not attribute to it [", dumpBlock(f.tag), "]"));
            }
        }
    }
}

void
InvariantChecker::checkL2(uint64_t when) const
{
    if (!l2_)
        return;
    if (l2Inclusive_) {
        // Inclusion: every L1-resident block is L2-resident.
        for (uint32_t p = 0; p < caches_.size(); ++p) {
            for (const Cache::Frame &f : caches_[p].frames()) {
                if (!f.valid())
                    continue;
                if (!l2_->present(f.tag)) {
                    util::panic(util::concat(
                        "L2 inclusion violated at ref ", when,
                        ": cache ", p, " holds a block absent from "
                        "the inclusive L2 [", dumpBlock(f.tag), "]"));
                }
            }
        }
        return;
    }
    // Exclusivity: the victim cache holds only blocks in no L1.
    for (const SharedL2::Frame &lf : l2_->frames()) {
        if (!lf.valid)
            continue;
        for (uint32_t p = 0; p < caches_.size(); ++p) {
            if (caches_[p].present(lf.tag)) {
                util::panic(util::concat(
                    "L2 exclusivity violated at ref ", when,
                    ": cache ", p, " and the exclusive L2 both hold "
                    "a block [", dumpBlock(lf.tag), "]"));
            }
        }
    }
}

void
InvariantChecker::checkCounters(uint64_t when)
{
    util::panicIf(stats_.procs.size() != prev_.size(),
                  "invariant checker: processor count changed mid-run");
    for (size_t p = 0; p < stats_.procs.size(); ++p) {
        const ProcessorStats &ps = stats_.procs[p];
        auto fail = [&](const std::string &why) {
            util::panic(util::concat(
                "accounting invariant violated at ref ", when,
                " on processor ", p, ": ", why, " (instructions=",
                ps.instructions, " memRefs=", ps.memRefs, " hits=",
                ps.hits, " misses=", ps.totalMisses(), ")"));
        };
        if (ps.hits + ps.totalMisses() != ps.memRefs)
            fail("hits + misses != memory references");
        if (ps.memRefs > ps.instructions)
            fail("more memory references than instructions");
        ProcSnapshot &last = prev_[p];
        if (ps.busyCycles < last.busyCycles ||
            ps.switchCycles < last.switchCycles ||
            ps.idleCycles < last.idleCycles ||
            ps.instructions < last.instructions ||
            ps.memRefs < last.memRefs || ps.hits < last.hits ||
            ps.totalMisses() < last.misses) {
            fail("a counter moved backwards since the previous check");
        }
        last = {ps.busyCycles, ps.switchCycles,  ps.idleCycles,
                ps.instructions, ps.memRefs, ps.hits,
                ps.totalMisses()};
    }
}

void
InvariantChecker::check(uint64_t when)
{
    checkDirectoryAgainstCaches(when);
    checkCachesAgainstDirectory(when);
    checkL2(when);
    checkCounters(when);
    ++checksRun_;
}

} // namespace tsp::sim
