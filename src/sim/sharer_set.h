/**
 * @file
 * Dynamic-width sharer set: the bit vector behind the directory's
 * sharer tracking, the write transaction's victim set and the sharing
 * monitor's toucher sets.
 *
 * The seed model capped the machine at 128 processors because those
 * sets were fixed std::array<uint64_t, 2> bitmasks. SharerSet keeps
 * the same representation — one bit per processor, walked in ascending
 * countr_zero order — but sizes it dynamically: the first two words
 * live inline in the object (so every machine up to 128 processors is
 * bit-for-bit the old mask, allocation-free on the simulate hot path,
 * pinned by tests/sim_alloc_test.cc), and wider machines spill to a
 * heap word array sized on first use. The processor cap therefore
 * lives only in sim::kMaxProcessors / SimConfig::validate(), not in
 * any storage type.
 *
 * Semantics notes the simulator relies on:
 *  - set() grows capacity; test()/reset() beyond capacity are benign
 *    (false / no-op), so narrow and wide sets interoperate;
 *  - copy-assignment reuses existing capacity when it suffices (the
 *    steady-state `txn.invalidate = entry.sharers` path never
 *    reallocates once an entry has reached its widest sharer);
 *  - forEach() visits members in ascending id order — invalidation
 *    delivery order is part of the golden-digest contract.
 */

#ifndef TSP_SIM_SHARER_SET_H
#define TSP_SIM_SHARER_SET_H

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

namespace tsp::sim {

/** Dynamic-width bit set over processor/thread ids. */
class SharerSet
{
  public:
    /** Words stored inline (no heap) — covers ids 0..127. */
    static constexpr uint32_t kInlineWords = 2;

    /** Largest id representable without spilling to the heap. */
    static constexpr uint32_t kInlineBits = kInlineWords * 64;

    SharerSet() = default;

    ~SharerSet()
    {
        if (spilled())
            delete[] heap_;
    }

    SharerSet(const SharerSet &o) { copyFrom(o); }

    SharerSet(SharerSet &&o) noexcept
        : words_(o.words_)
    {
        if (o.spilled()) {
            heap_ = o.heap_;
            o.words_ = kInlineWords;
            o.buf_ = {0, 0};
        } else {
            buf_ = o.buf_;
        }
    }

    SharerSet &
    operator=(const SharerSet &o)
    {
        if (this != &o)
            assignFrom(o);
        return *this;
    }

    SharerSet &
    operator=(SharerSet &&o) noexcept
    {
        if (this == &o)
            return *this;
        if (spilled())
            delete[] heap_;
        words_ = o.words_;
        if (o.spilled()) {
            heap_ = o.heap_;
            o.words_ = kInlineWords;
            o.buf_ = {0, 0};
        } else {
            buf_ = o.buf_;
        }
        return *this;
    }

    /** Membership test; ids beyond capacity are simply absent. */
    bool
    test(uint32_t id) const
    {
        uint32_t w = id >> 6;
        return w < words_ && ((data()[w] >> (id & 63)) & 1) != 0;
    }

    /** Insert @p id, growing the word array when needed. */
    void
    set(uint32_t id)
    {
        uint32_t w = id >> 6;
        if (w >= words_) [[unlikely]]
            grow(w + 1);
        data()[w] |= 1ull << (id & 63);
    }

    /** Remove @p id (no-op when beyond capacity). */
    void
    reset(uint32_t id)
    {
        uint32_t w = id >> 6;
        if (w < words_)
            data()[w] &= ~(1ull << (id & 63));
    }

    /** Remove every member; capacity is retained. */
    void
    clear()
    {
        uint64_t *p = data();
        for (uint32_t w = 0; w < words_; ++w)
            p[w] = 0;
    }

    /** True when the set is non-empty. */
    bool
    any() const
    {
        const uint64_t *p = data();
        for (uint32_t w = 0; w < words_; ++w)
            if (p[w] != 0)
                return true;
        return false;
    }

    /** Number of members. */
    uint32_t
    count() const
    {
        const uint64_t *p = data();
        uint32_t n = 0;
        for (uint32_t w = 0; w < words_; ++w)
            n += static_cast<uint32_t>(std::popcount(p[w]));
        return n;
    }

    /** Ids representable without growing. */
    uint32_t capacityBits() const { return words_ * 64; }

    /** True when the words live on the heap (capacity > 128 ids). */
    bool spilled() const { return words_ > kInlineWords; }

    /**
     * Release heap storage when every member fits back in the inline
     * words. Long-lived sets (sharing-monitor block states) call this
     * after wide transients; hot-path sets never need to.
     */
    void
    shrinkToFit()
    {
        if (!spilled())
            return;
        for (uint32_t w = kInlineWords; w < words_; ++w)
            if (heap_[w] != 0)
                return;
        uint64_t *old = heap_;
        buf_ = {old[0], old[1]};
        words_ = kInlineWords;
        delete[] old;
    }

    /** Visit members in ascending id order (countr_zero walk). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        const uint64_t *p = data();
        for (uint32_t w = 0; w < words_; ++w) {
            uint64_t m = p[w];
            while (m != 0) {
                uint32_t bit =
                    static_cast<uint32_t>(std::countr_zero(m));
                m &= m - 1;
                fn(w * 64 + bit);
            }
        }
    }

    /** Members as an ascending vector (tests/diagnostics). */
    std::vector<uint32_t>
    toVector() const
    {
        std::vector<uint32_t> out;
        out.reserve(count());
        forEach([&](uint32_t id) { out.push_back(id); });
        return out;
    }

    /** Width-agnostic equality: same members, any capacities. */
    bool
    operator==(const SharerSet &o) const
    {
        const uint64_t *a = data();
        const uint64_t *b = o.data();
        uint32_t lo = words_ < o.words_ ? words_ : o.words_;
        for (uint32_t w = 0; w < lo; ++w)
            if (a[w] != b[w])
                return false;
        for (uint32_t w = lo; w < words_; ++w)
            if (a[w] != 0)
                return false;
        for (uint32_t w = lo; w < o.words_; ++w)
            if (b[w] != 0)
                return false;
        return true;
    }

  private:
    const uint64_t *
    data() const
    {
        return spilled() ? heap_ : buf_.data();
    }

    uint64_t *
    data()
    {
        return spilled() ? heap_ : buf_.data();
    }

    /** Widen to at least @p neededWords (doubling to amortize). */
    void
    grow(uint32_t neededWords)
    {
        uint32_t newWords =
            neededWords > words_ * 2 ? neededWords : words_ * 2;
        uint64_t *fresh = new uint64_t[newWords];
        const uint64_t *src = data();
        uint32_t w = 0;
        for (; w < words_; ++w)
            fresh[w] = src[w];
        for (; w < newWords; ++w)
            fresh[w] = 0;
        if (spilled())
            delete[] heap_;
        heap_ = fresh;
        words_ = newWords;
    }

    /** Fresh-object copy (copy constructor body). */
    void
    copyFrom(const SharerSet &o)
    {
        words_ = o.words_;
        if (o.spilled()) {
            heap_ = new uint64_t[words_];
            for (uint32_t w = 0; w < words_; ++w)
                heap_[w] = o.heap_[w];
        } else {
            buf_ = o.buf_;
        }
    }

    /** Assignment: reuse capacity when it already suffices. */
    void
    assignFrom(const SharerSet &o)
    {
        if (o.words_ <= words_) {
            uint64_t *dst = data();
            const uint64_t *src = o.data();
            uint32_t w = 0;
            for (; w < o.words_; ++w)
                dst[w] = src[w];
            for (; w < words_; ++w)
                dst[w] = 0;
            return;
        }
        uint64_t *fresh = new uint64_t[o.words_];
        for (uint32_t w = 0; w < o.words_; ++w)
            fresh[w] = o.heap_[w];
        if (spilled())
            delete[] heap_;
        heap_ = fresh;
        words_ = o.words_;
    }

    uint32_t words_ = kInlineWords;
    union {
        std::array<uint64_t, kInlineWords> buf_{};
        uint64_t *heap_;
    };
};

} // namespace tsp::sim

#endif // TSP_SIM_SHARER_SET_H
