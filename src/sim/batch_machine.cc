#include "sim/batch_machine.h"

#include <limits>

#include "fault/fault.h"
#include "obs/metric_defs.h"
#include "obs/timer.h"
#include "util/error.h"

namespace tsp::sim {

BatchMachine::BatchMachine(std::vector<BatchLane> lanes,
                           const trace::TraceSet &traces)
    : traces_(&traces)
{
    util::fatalIf(lanes.empty(), "a batch needs >= 1 lane");
    lanes_.reserve(lanes.size());
    for (BatchLane &lane : lanes)
        lanes_.push_back(Lane{std::move(lane), nullptr, {}, false});
}

BatchMachine::BatchMachine(std::vector<BatchLane> lanes,
                           trace::SharedTraceStream &stream)
    : stream_(&stream)
{
    util::fatalIf(lanes.empty(), "a batch needs >= 1 lane");
    util::fatalIf(stream.laneCount() != lanes.size(),
                  "stream was built for a different lane count");
    lanes_.reserve(lanes.size());
    for (BatchLane &lane : lanes)
        lanes_.push_back(Lane{std::move(lane), nullptr, {}, false});
}

void
BatchMachine::failLane(size_t i, const std::string &what)
{
    Lane &lane = lanes_[i];
    lane.machine.reset();
    lane.done = true;
    lane.result.ok = false;
    lane.result.error = what;
    // A dead lane must not pin the shared chunk windows.
    if (stream_)
        stream_->retireLane(static_cast<uint32_t>(i));
    obs::batchLaneFailures().inc();
}

std::vector<LaneResult>
BatchMachine::run(uint64_t chainQuantum)
{
    util::fatalIf(ran_, "a BatchMachine can only run once");
    ran_ = true;
    util::fatalIf(chainQuantum == 0, "chain quantum must be >= 1");

    obs::StopWatch watch;
    obs::batchLanes().set(static_cast<int64_t>(lanes_.size()));

    // Construct lane machines one by one. A failing construction —
    // invalid configuration, injected fault — fails only that lane.
    for (size_t i = 0; i < lanes_.size(); ++i) {
        Lane &lane = lanes_[i];
        try {
            TSP_FAULT_POINT("batch.lane");
            if (stream_) {
                lane.machine = std::make_unique<Machine>(
                    lane.spec.cfg,
                    stream_->lane(static_cast<uint32_t>(i)),
                    lane.spec.placement);
            } else {
                lane.machine = std::make_unique<Machine>(
                    lane.spec.cfg, *traces_, lane.spec.placement);
            }
        } catch (const util::PanicError &) {
            throw;  // library bug: poison the whole batch
        } catch (const std::exception &e) {
            failLane(i, e.what());
        }
    }

    // Lockstep: each turn advances the live lane with the fewest
    // retired memory references by one quantum of event chains, so no
    // lane runs far ahead and a streaming window's resident spread
    // stays small.
    size_t live = 0;
    for (const Lane &lane : lanes_)
        live += lane.done ? 0 : 1;
    while (live > 0) {
        size_t pick = lanes_.size();
        uint64_t least = std::numeric_limits<uint64_t>::max();
        for (size_t i = 0; i < lanes_.size(); ++i) {
            if (lanes_[i].done)
                continue;
            uint64_t refs = lanes_[i].machine->memRefsSoFar();
            if (refs < least) {
                least = refs;
                pick = i;
            }
        }
        Lane &lane = lanes_[pick];
        try {
            if (lane.machine->advance(chainQuantum)) {
                lane.result.stats = lane.machine->finish();
                lane.result.ok = true;
                lane.done = true;
                if (stream_)
                    stream_->retireLane(static_cast<uint32_t>(pick));
                --live;
            }
        } catch (const util::PanicError &) {
            throw;
        } catch (const std::exception &e) {
            failLane(pick, e.what());
            --live;
        }
    }

    // Per-lane obs accounting through the same helper as simulate().
    // Lanes interleave on one thread, so per-lane wall time is not
    // separable; the batch wall is apportioned evenly.
    double laneMillis =
        watch.elapsedMs() / static_cast<double>(lanes_.size());
    for (Lane &lane : lanes_) {
        if (lane.result.ok)
            recordRunMetrics(lane.result.stats, *lane.machine,
                             laneMillis);
    }
    obs::batchLanes().set(0);

    std::vector<LaneResult> out;
    out.reserve(lanes_.size());
    for (Lane &lane : lanes_) {
        lane.machine.reset();
        out.push_back(std::move(lane.result));
    }
    return out;
}

} // namespace tsp::sim
